//! Observability primitives for the LinuxFP reproduction.
//!
//! The paper's central claim is *transparency*: every packet either takes the
//! synthesized eBPF fast path or falls back to the kernel slow path, with no
//! third outcome. That claim is only assertable if both paths are counted by
//! the same machinery, which is what this crate provides:
//!
//! - [`Counter`] / [`Gauge`] — atomic scalars, cloneable handles.
//! - [`Histogram`] — lock-free log2-bucketed latency histogram whose
//!   quantiles reuse the interpolation math in `linuxfp_sim::stats`.
//! - [`Registry`] — the metric namespace. There are no globals: the
//!   registry is created by the embedder and threaded through constructors,
//!   so two simulated hosts never share a counter.
//! - [`EventRing`] — fixed-capacity ring of controller trace events
//!   (program swaps, verifier rejections) for post-mortem inspection.
//! - [`render_prometheus`] / [`snapshot_json`] — the two renderers.
//!
//! All handles are `Clone + Send + Sync`; the hot-path increment is a single
//! relaxed atomic add.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use linuxfp_json::{json, Value};
use linuxfp_sim::stats::weighted_percentile;

pub mod trace;

/// Monotonically increasing event counter.
///
/// Cloning shares the underlying cell, so a component can keep a handle while
/// the registry keeps another.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero (not attached to any registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, installed-program counts).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero (not attached to any registry).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// How raw histogram samples map to the rendered unit.
///
/// The controller records reconcile latency in integer nanoseconds (the
/// simulator's native unit) but exports `linuxfp_reconcile_seconds`, so the
/// renderer divides by 1e9. Scaling at render time keeps the hot path
/// integer-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scale {
    /// Samples are already in the exported unit.
    #[default]
    Identity,
    /// Samples are nanoseconds; render as seconds.
    NanosToSeconds,
}

impl Scale {
    /// Multiplier applied to bucket bounds and sums at render time.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Identity => 1.0,
            Scale::NanosToSeconds => 1e-9,
        }
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i)`, up to bucket 64 for values `>= 2^63`.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Lock-free log2-bucketed histogram of `u64` samples.
///
/// Recording is wait-free (two relaxed atomic adds plus a bucket add);
/// quantiles are approximate to within the bucket width, computed with the
/// same rank interpolation the simulator's [`linuxfp_sim::Summary`] uses for
/// exact samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

/// Index of the log2 bucket for `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper edge of bucket `i`, used as its representative value.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A fresh histogram (not attached to any registry).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in the raw (pre-scale) unit.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of `(inclusive upper edge, count)` for every non-empty
    /// bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let c = self.inner.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_upper(i), c))
            })
            .collect()
    }

    /// Approximate percentile `p` in `[0, 100]` over the bucket upper
    /// edges, sharing the interpolation in
    /// [`linuxfp_sim::stats::weighted_percentile`]. Returns 0.0 when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        let pairs: Vec<(f64, u64)> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(edge, c)| (edge as f64, c))
            .collect();
        weighted_percentile(&pairs, p)
    }
}

/// What kind of metric lives under a name; mixing kinds under one name is a
/// registration bug and panics.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram, Scale),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(..) => "histogram",
        }
    }
}

/// One trace event in the [`EventRing`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number; never reused even after eviction.
    pub seq: u64,
    /// Static category, e.g. `"fp_install"` or `"verifier_reject"`.
    pub kind: &'static str,
    /// Free-form detail, e.g. the interface and program size.
    pub detail: String,
}

#[derive(Debug)]
struct RingInner {
    capacity: usize,
    next_seq: u64,
    events: VecDeque<Event>,
}

/// Fixed-capacity ring buffer of trace events; the oldest entry is evicted
/// when full. Cloning shares the buffer.
#[derive(Clone, Debug)]
pub struct EventRing {
    inner: Arc<Mutex<RingInner>>,
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            inner: Arc::new(Mutex::new(RingInner {
                capacity: capacity.max(1),
                next_seq: 0,
                events: VecDeque::new(),
            })),
        }
    }

    /// Appends an event, evicting the oldest if the ring is full. Returns
    /// the event's sequence number.
    pub fn push(&self, kind: &'static str, detail: impl Into<String>) -> u64 {
        let mut g = self.inner.lock().expect("event ring lock");
        let seq = g.next_seq;
        g.next_seq += 1;
        if g.events.len() == g.capacity {
            g.events.pop_front();
        }
        g.events.push_back(Event {
            seq,
            kind,
            detail: detail.into(),
        });
        seq
    }

    /// All retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("event ring lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event ring lock").events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().expect("event ring lock").next_seq
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("event ring lock").capacity
    }
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::with_capacity(256)
    }
}

/// `(metric name, sorted label pairs)` — the identity of a time series.
type SeriesKey = (String, Vec<(String, String)>);

#[derive(Debug, Default)]
struct RegistryInner {
    series: BTreeMap<SeriesKey, Metric>,
    help: BTreeMap<String, &'static str>,
}

/// The metric namespace for one simulated host.
///
/// Deliberately *not* a global: the embedder creates one and threads clones
/// through constructors (`Kernel::set_telemetry`, `ControllerConfig`, ...),
/// so tests and multi-host simulations get isolated metrics for free.
///
/// Registration is get-or-create: asking twice for the same name and label
/// set returns handles to the same underlying cell.
///
/// # Example
///
/// ```
/// use linuxfp_telemetry::Registry;
///
/// let reg = Registry::new();
/// let hits = reg.counter("linuxfp_fp_hits_total", &[("fpm", "router")]);
/// hits.inc();
/// assert_eq!(
///     reg.counter("linuxfp_fp_hits_total", &[("fpm", "router")]).get(),
///     1
/// );
/// ```
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
    events: EventRing,
}

impl Registry {
    /// An empty registry with a default-capacity event ring.
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry whose event ring retains `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Registry {
            inner: Arc::default(),
            events: EventRing::with_capacity(capacity),
        }
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut ls: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        ls.sort();
        (name.to_string(), ls)
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut g = self.inner.lock().expect("registry lock");
        let entry = g.series.entry(Self::key(name, labels)).or_insert_with(make);
        entry.clone()
    }

    /// Gets or creates the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the series is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("{name} is a {}, not a counter", other.kind()),
        }
    }

    /// Gets or creates the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the series is already registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(gauge) => gauge,
            other => panic!("{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Gets or creates the histogram `name{labels}` with render scale
    /// `scale`.
    ///
    /// # Panics
    ///
    /// Panics if the series is already registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], scale: Scale) -> Histogram {
        match self.get_or_insert(name, labels, || Metric::Histogram(Histogram::new(), scale)) {
            Metric::Histogram(h, _) => h,
            other => panic!("{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Attaches help text to a metric name (first call wins), rendered as
    /// `# HELP` by the Prometheus renderer.
    pub fn describe(&self, name: &str, help: &'static str) {
        self.inner
            .lock()
            .expect("registry lock")
            .help
            .entry(name.to_string())
            .or_insert(help);
    }

    /// The registry's trace-event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// All registered series names (deduplicated, sorted).
    pub fn names(&self) -> Vec<String> {
        let g = self.inner.lock().expect("registry lock");
        let mut names: Vec<String> = g.series.keys().map(|(n, _)| n.clone()).collect();
        names.dedup();
        names
    }

    /// Reads the current value of the counter `name{labels}`, or `None` if
    /// no such counter exists. Unlike [`Registry::counter`] this never
    /// creates the series — handy for assertions.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let g = self.inner.lock().expect("registry lock");
        match g.series.get(&Self::key(name, labels)) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Reads the current value of the gauge `name{labels}`, or `None` if
    /// no such gauge exists. Never creates the series.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let g = self.inner.lock().expect("registry lock");
        match g.series.get(&Self::key(name, labels)) {
            Some(Metric::Gauge(gauge)) => Some(gauge.get()),
            _ => None,
        }
    }

    /// All counter series named `name`, as `(sorted label pairs, value)` —
    /// e.g. to tabulate per-FPM hit counts without knowing the label
    /// values up front.
    pub fn counter_series(&self, name: &str) -> Vec<(Vec<(String, String)>, u64)> {
        let g = self.inner.lock().expect("registry lock");
        g.series
            .iter()
            .filter(|((n, _), _)| n == name)
            .filter_map(|((_, ls), m)| match m {
                Metric::Counter(c) => Some((ls.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// Sum of all counters named `name` across every label set — e.g. the
    /// total fast-path hits over all FPM pipelines.
    pub fn counter_total(&self, name: &str) -> u64 {
        let g = self.inner.lock().expect("registry lock");
        g.series
            .iter()
            .filter(|((n, _), _)| n == name)
            .filter_map(|(_, m)| match m {
                Metric::Counter(c) => Some(c.get()),
                _ => None,
            })
            .sum()
    }

    fn snapshot(&self) -> Vec<(SeriesKey, Metric)> {
        let g = self.inner.lock().expect("registry lock");
        g.series
            .iter()
            .map(|(k, m)| (k.clone(), m.clone()))
            .collect()
    }

    fn help_for(&self, name: &str) -> Option<&'static str> {
        self.inner
            .lock()
            .expect("registry lock")
            .help
            .get(name)
            .copied()
    }
}

/// Formats a float the way Prometheus expects (no exponent for the common
/// cases, integral values without a trailing `.0` suffix kept — Prometheus
/// accepts both, so plain `{}` formatting is fine).
fn fmt_f64(v: f64) -> String {
    if v == f64::MAX || v.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            let escaped = v
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            format!("{k}=\"{escaped}\"")
        })
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders the registry in the Prometheus text exposition format (v0.0.4):
/// `# HELP`/`# TYPE` headers, one line per series, `_bucket`/`_sum`/`_count`
/// expansion for histograms with cumulative `le` buckets ending in `+Inf`.
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_name: Option<String> = None;
    for ((name, labels), metric) in registry.snapshot() {
        if last_name.as_deref() != Some(name.as_str()) {
            if let Some(help) = registry.help_for(&name) {
                let _ = writeln!(out, "# HELP {name} {help}");
            }
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
            last_name = Some(name.clone());
        }
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "{name}{} {}", fmt_labels(&labels, None), c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "{name}{} {}", fmt_labels(&labels, None), g.get());
            }
            Metric::Histogram(h, scale) => {
                let mut cumulative = 0u64;
                for (edge, count) in h.nonzero_buckets() {
                    cumulative += count;
                    let le = fmt_f64(edge as f64 * scale.factor());
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cumulative}",
                        fmt_labels(&labels, Some(("le", &le)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {}",
                    fmt_labels(&labels, Some(("le", "+Inf"))),
                    h.count()
                );
                let _ = writeln!(
                    out,
                    "{name}_sum{} {}",
                    fmt_labels(&labels, None),
                    fmt_f64(h.sum() as f64 * scale.factor())
                );
                let _ = writeln!(
                    out,
                    "{name}_count{} {}",
                    fmt_labels(&labels, None),
                    h.count()
                );
            }
        }
    }
    out
}

/// Renders the registry as a JSON snapshot: a `metrics` array (one entry per
/// series, with quantiles for histograms) plus the retained trace `events`.
pub fn snapshot_json(registry: &Registry) -> Value {
    let mut metrics = Vec::new();
    for ((name, labels), metric) in registry.snapshot() {
        let label_obj: linuxfp_json::Map = labels
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(v.as_str())))
            .collect();
        let entry = match metric {
            Metric::Counter(c) => json!({
                "name": name,
                "type": "counter",
                "labels": Value::Object(label_obj),
                "value": c.get(),
            }),
            Metric::Gauge(g) => json!({
                "name": name,
                "type": "gauge",
                "labels": Value::Object(label_obj),
                "value": g.get(),
            }),
            Metric::Histogram(h, scale) => {
                let f = scale.factor();
                let buckets: Vec<Value> = h
                    .nonzero_buckets()
                    .into_iter()
                    .map(|(edge, c)| json!({"le": edge as f64 * f, "count": c}))
                    .collect();
                json!({
                    "name": name,
                    "type": "histogram",
                    "labels": Value::Object(label_obj),
                    "count": h.count(),
                    "sum": h.sum() as f64 * f,
                    "p50": h.quantile(50.0) * f,
                    "p99": h.quantile(99.0) * f,
                    "buckets": buckets,
                })
            }
        };
        metrics.push(entry);
    }
    let events: Vec<Value> = registry
        .events()
        .recent()
        .into_iter()
        .map(|e| json!({"seq": e.seq, "kind": e.kind, "detail": e.detail}))
        .collect();
    json!({ "metrics": metrics, "events": events })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn clones_share_the_cell() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1107);
        // All samples fit below the bucket edge for 1024.
        assert!(h.quantile(100.0) <= 1023.0);
        assert_eq!(h.quantile(0.0), 0.0);
        // Median of 7 samples is the 4th (value 2 → bucket edge 3).
        assert_eq!(h.quantile(50.0), 3.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(99.0), 0.0);
    }

    #[test]
    fn registry_is_get_or_create() {
        let reg = Registry::new();
        let a = reg.counter("x_total", &[("k", "v")]);
        let b = reg.counter("x_total", &[("k", "v")]);
        a.inc();
        assert_eq!(b.get(), 1);
        // Label order does not matter.
        let c = reg.counter("y_total", &[("a", "1"), ("b", "2")]);
        let d = reg.counter("y_total", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(d.get(), 1);
        // Different labels are different series.
        assert_eq!(reg.counter("x_total", &[("k", "other")]).get(), 0);
        assert_eq!(reg.counter_total("y_total"), 1);
        assert_eq!(reg.counter_value("x_total", &[("k", "v")]), Some(1));
        assert_eq!(reg.counter_value("absent", &[]), None);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("m", &[]);
        reg.gauge("m", &[]);
    }

    #[test]
    fn event_ring_evicts_oldest() {
        let ring = EventRing::with_capacity(3);
        for i in 0..5 {
            ring.push("swap", format!("e{i}"));
        }
        let events = ring.recent();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "e2");
        assert_eq!(events[2].seq, 4);
        assert_eq!(ring.total_pushed(), 5);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.describe("linuxfp_fp_hits_total", "Packets served by the fast path");
        reg.counter("linuxfp_fp_hits_total", &[("fpm", "router")])
            .add(3);
        reg.gauge("linuxfp_programs", &[]).set(2);
        let h = reg.histogram("linuxfp_reconcile_seconds", &[], Scale::NanosToSeconds);
        h.record(1_000_000_000);
        let text = render_prometheus(&reg);
        assert!(text.contains("# HELP linuxfp_fp_hits_total Packets served by the fast path"));
        assert!(text.contains("# TYPE linuxfp_fp_hits_total counter"));
        assert!(text.contains("linuxfp_fp_hits_total{fpm=\"router\"} 3"));
        assert!(text.contains("# TYPE linuxfp_programs gauge"));
        assert!(text.contains("linuxfp_programs 2"));
        assert!(text.contains("# TYPE linuxfp_reconcile_seconds histogram"));
        assert!(text.contains("linuxfp_reconcile_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("linuxfp_reconcile_seconds_sum 1"));
        assert!(text.contains("linuxfp_reconcile_seconds_count 1"));
    }

    #[test]
    fn prometheus_label_escaping() {
        // Backslashes, double quotes and newlines in label values must be
        // escaped per the exposition format, or the scrape line splits.
        let reg = Registry::new();
        reg.counter("weird_total", &[("reason", "path\\to \"x\"\nnext")])
            .inc();
        let text = render_prometheus(&reg);
        assert!(
            text.contains(r#"weird_total{reason="path\\to \"x\"\nnext"} 1"#),
            "bad escaping in: {text}"
        );
        // Every series still renders as exactly one line.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("weird_total"))
            .collect();
        assert_eq!(lines.len(), 1, "series split across lines: {text}");
    }

    #[test]
    fn histogram_single_bucket_quantiles() {
        // With every sample in one bucket, all percentiles collapse to
        // that bucket's representative edge.
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(5); // bucket edge 7
        }
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.quantile(p), 7.0, "p{p}");
        }
    }

    #[test]
    fn histogram_saturated_bucket_quantile() {
        // The top bucket's edge is u64::MAX; the quantile must surface it
        // rather than overflow or clamp to a smaller edge.
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.quantile(100.0), u64::MAX as f64);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn json_snapshot_shape() {
        let reg = Registry::new();
        reg.counter("hits_total", &[("fpm", "bridge")]).add(2);
        reg.histogram("lat", &[], Scale::Identity).record(5);
        reg.events().push("install", "eth0: 12 insns");
        let snap = snapshot_json(&reg);
        let metrics = snap["metrics"].as_array().unwrap();
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0]["name"], "hits_total");
        assert_eq!(metrics[0]["labels"]["fpm"], "bridge");
        assert_eq!(metrics[0]["value"], 2u64);
        assert_eq!(metrics[1]["type"], "histogram");
        assert_eq!(metrics[1]["count"], 1u64);
        let events = snap["events"].as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["kind"], "install");
    }

    #[test]
    fn histogram_quantile_matches_summary_on_exact_buckets() {
        // When every sample lands exactly on a bucket edge the histogram
        // quantile agrees with the exact Summary percentile.
        use linuxfp_sim::Summary;
        let h = Histogram::new();
        let mut s = Summary::new();
        for v in [1u64, 1, 3, 3, 3, 7] {
            h.record(v);
            s.record(v as f64);
        }
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(h.quantile(p), s.percentile(p), "p{p}");
        }
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Histogram>();
        assert_send_sync::<Registry>();
        assert_send_sync::<EventRing>();
    }
}
