//! Per-packet flight recorder: sampled datapath spans with per-stage
//! cost attribution.
//!
//! Aggregate counters can prove the conservation law (`fp_hits +
//! slowpath_fallbacks == packets_injected`) but cannot answer *where a
//! specific packet spent its nanoseconds* or *why it was dropped*. This
//! module adds that per-packet view without perturbing the thing it
//! observes:
//!
//! - [`DropReason`] / [`PuntReason`] — the machine-readable taxonomy
//!   that replaces ad-hoc `&'static str` drop labels across the stack.
//!   [`DropReason::as_str`] returns the exact historical label, so
//!   counters, difftest repros and golden tests are unaffected.
//! - [`TraceCtx`] — the per-packet context threaded through the
//!   datapath. Disabled (the default) it is two machine words and every
//!   append is a predictable untaken branch; it never allocates and
//!   never charges virtual time, so sampling off is bit-identical to
//!   the pre-trace datapath.
//! - [`TraceSpan`] — the finished record: total virtual-time cost, the
//!   per-stage fold of the packet's [`CostTracker`] (which sums to the
//!   total *by construction*), and the chronological typed events.
//! - [`TraceRing`] — fixed-capacity ring of finished spans, same
//!   discipline as the control-plane `EventRing`.
//! - [`Sampler`] / [`FlightRecorder`] — 1-in-N head sampling; N = 0
//!   means off.
//! - [`CostBreakdown`] — folds sampled spans into a ns/pkt-by-stage
//!   table grouped by regime × disposition, with p50/p99 from the
//!   existing log2 histograms.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use linuxfp_json::{json, Value};
use linuxfp_sim::cost::CostTracker;

use crate::Histogram;

/// Why the datapath dropped a packet.
///
/// One variant per historically distinct drop label; [`as_str`] returns
/// the exact legacy string so `drops()`, `drop_counts`, the
/// `linuxfp_drops_total{reason}` counter labels and the difftest corpus
/// all keep their wire format.
///
/// [`as_str`]: DropReason::as_str
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DropReason {
    /// Injection named a device index the kernel has never seen.
    NoSuchDevice,
    /// The ingress device is administratively down.
    DeviceDown,
    /// A frame was re-queued more than the hop budget allows.
    ForwardingLoop,
    /// An XDP program returned `DROP`.
    XdpDrop,
    /// A TC ingress program returned `DROP` (or `SHOT`).
    TcDrop,
    /// The frame is too short to carry an Ethernet header.
    MalformedEthernet,
    /// Unicast frame for a MAC the receiving port does not own.
    WrongDestinationMac,
    /// An STP BPDU terminated at the bridge control plane.
    BpduConsumed,
    /// A port references a bridge that no longer exists.
    MissingBridge,
    /// An iptables FORWARD rule (or br_netfilter) rejected the packet.
    NfForwardDrop,
    /// EtherType the slow path does not implement.
    UnhandledEthertype,
    /// The IPv4 header failed structural validation.
    MalformedIpv4,
    /// The IPv4 header checksum does not verify.
    BadIpv4Checksum,
    /// An iptables PREROUTING rule rejected the packet.
    NfPreroutingDrop,
    /// An iptables INPUT rule rejected the packet.
    NfInputDrop,
    /// `net.ipv4.ip_forward` is 0 and the packet is not local.
    ForwardingDisabled,
    /// No FIB entry matches the destination.
    NoRoute,
    /// TTL reached zero in the forwarding path.
    TtlExceeded,
    /// SNAT could not allocate a free source port.
    NatPortExhaustion,
    /// An iptables POSTROUTING rule rejected the packet.
    NfPostroutingDrop,
    /// ARP resolution had no usable source address on the egress net.
    NoArpSourceAddress,
    /// Transmit targeted a device index the kernel has never seen.
    TransmitMissingDevice,
    /// Transmit targeted an administratively-down device.
    TransmitDownDevice,
    /// Locally-originated packet (e.g. an ICMP error) has no route.
    NoRouteOutput,
    /// VXLAN egress found neither an FDB entry nor a default VTEP.
    VxlanNoRemoteVtep,
    /// The ARP payload failed structural validation.
    MalformedArp,
    /// An ARP request/reply terminated at the local ARP state machine.
    ArpConsumed,
    /// The VXLAN payload failed structural validation on decap.
    MalformedVxlan,
    /// Bridge input from a device that is not a port of any bridge.
    NotABridgePort,
    /// STP holds the ingress port in a non-forwarding state.
    IngressPortBlocked,
    /// VLAN filtering rejected the frame's VID on the ingress port.
    VlanFiltered,
    /// STP holds the ingress port in the learning state.
    IngressPortLearningOnly,
    /// The only egress was the ingress port and hairpin is off.
    Hairpin,
    /// VPP reference datapath: non-IP traffic is punted (modelled drop).
    VppNonIpPunted,
    /// VPP reference datapath: ACL deny.
    VppAclDeny,
    /// An L7 request policy (or a pinned connection verdict) denied the
    /// request.
    L7PolicyDeny,
}

impl DropReason {
    /// Every variant, for exhaustiveness tests and registry docs.
    pub const ALL: [DropReason; 36] = [
        DropReason::NoSuchDevice,
        DropReason::DeviceDown,
        DropReason::ForwardingLoop,
        DropReason::XdpDrop,
        DropReason::TcDrop,
        DropReason::MalformedEthernet,
        DropReason::WrongDestinationMac,
        DropReason::BpduConsumed,
        DropReason::MissingBridge,
        DropReason::NfForwardDrop,
        DropReason::UnhandledEthertype,
        DropReason::MalformedIpv4,
        DropReason::BadIpv4Checksum,
        DropReason::NfPreroutingDrop,
        DropReason::NfInputDrop,
        DropReason::ForwardingDisabled,
        DropReason::NoRoute,
        DropReason::TtlExceeded,
        DropReason::NatPortExhaustion,
        DropReason::NfPostroutingDrop,
        DropReason::NoArpSourceAddress,
        DropReason::TransmitMissingDevice,
        DropReason::TransmitDownDevice,
        DropReason::NoRouteOutput,
        DropReason::VxlanNoRemoteVtep,
        DropReason::MalformedArp,
        DropReason::ArpConsumed,
        DropReason::MalformedVxlan,
        DropReason::NotABridgePort,
        DropReason::IngressPortBlocked,
        DropReason::VlanFiltered,
        DropReason::IngressPortLearningOnly,
        DropReason::Hairpin,
        DropReason::VppNonIpPunted,
        DropReason::VppAclDeny,
        DropReason::L7PolicyDeny,
    ];

    /// The historical string label, unchanged from the pre-taxonomy
    /// `&'static str` era. Counter labels, difftest canonicalization
    /// and test assertions all key on these exact strings.
    pub const fn as_str(self) -> &'static str {
        match self {
            DropReason::NoSuchDevice => "no such device",
            DropReason::DeviceDown => "device down",
            DropReason::ForwardingLoop => "forwarding loop",
            DropReason::XdpDrop => "xdp drop",
            DropReason::TcDrop => "tc drop",
            DropReason::MalformedEthernet => "malformed ethernet",
            DropReason::WrongDestinationMac => "wrong destination mac",
            DropReason::BpduConsumed => "bpdu consumed",
            DropReason::MissingBridge => "missing bridge",
            DropReason::NfForwardDrop => "nf forward drop",
            DropReason::UnhandledEthertype => "unhandled ethertype",
            DropReason::MalformedIpv4 => "malformed ipv4",
            DropReason::BadIpv4Checksum => "bad ipv4 checksum",
            DropReason::NfPreroutingDrop => "nf prerouting drop",
            DropReason::NfInputDrop => "nf input drop",
            DropReason::ForwardingDisabled => "forwarding disabled",
            DropReason::NoRoute => "no route",
            DropReason::TtlExceeded => "ttl exceeded",
            DropReason::NatPortExhaustion => "nat port exhaustion",
            DropReason::NfPostroutingDrop => "nf postrouting drop",
            DropReason::NoArpSourceAddress => "no source address for arp",
            DropReason::TransmitMissingDevice => "transmit on missing device",
            DropReason::TransmitDownDevice => "transmit on down device",
            DropReason::NoRouteOutput => "no route (output)",
            DropReason::VxlanNoRemoteVtep => "vxlan no remote vtep",
            DropReason::MalformedArp => "malformed arp",
            DropReason::ArpConsumed => "arp consumed",
            DropReason::MalformedVxlan => "malformed vxlan",
            DropReason::NotABridgePort => "not a bridge port",
            DropReason::IngressPortBlocked => "ingress port not learning/forwarding",
            DropReason::VlanFiltered => "vlan filtered",
            DropReason::IngressPortLearningOnly => "ingress port learning only",
            DropReason::Hairpin => "hairpin",
            DropReason::VppNonIpPunted => "vpp: non-ip punted",
            DropReason::VppAclDeny => "vpp acl deny",
            DropReason::L7PolicyDeny => "l7 policy deny",
        }
    }
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a hook-entered packet fell through to the slow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PuntReason {
    /// The dispatcher's tail-call slot holds no program.
    EmptySlot,
    /// The fast-path program ran and returned `PASS`.
    ProgramPass,
    /// The microflow verdict cache replayed a recorded `PASS`.
    CachedPass,
    /// The L7 fast path could not parse the request line and deferred
    /// the verdict to the slow-path parser.
    L7Unparseable,
}

impl PuntReason {
    /// Stable label for JSON output and panels.
    pub const fn as_str(self) -> &'static str {
        match self {
            PuntReason::EmptySlot => "empty slot",
            PuntReason::ProgramPass => "program pass",
            PuntReason::CachedPass => "cached pass",
            PuntReason::L7Unparseable => "l7 unparseable",
        }
    }
}

impl std::fmt::Display for PuntReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Outcome of the microflow verdict cache lookup for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowCacheOutcome {
    /// A live entry replayed its verdict at the flat hit price.
    Hit,
    /// No entry existed for this flow yet.
    MissCold,
    /// The generation moved (config/time change) and flushed the cache.
    MissInvalidated,
    /// The packet is not cacheable (non-IPv4, fragment, bad checksum…).
    MissIneligible,
    /// The cache is off (sysctl or non-dispatcher attachment).
    MissDisabled,
}

impl FlowCacheOutcome {
    /// Stable label for JSON output and panels.
    pub const fn as_str(self) -> &'static str {
        match self {
            FlowCacheOutcome::Hit => "hit",
            FlowCacheOutcome::MissCold => "miss (cold)",
            FlowCacheOutcome::MissInvalidated => "miss (invalidated)",
            FlowCacheOutcome::MissIneligible => "miss (ineligible)",
            FlowCacheOutcome::MissDisabled => "miss (disabled)",
        }
    }
}

/// One typed occurrence inside a packet's span, in datapath order.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A virtual-time charge at a named stage.
    Stage {
        /// Cost-model stage name (same key as the `CostTracker` fold).
        stage: &'static str,
        /// Nanoseconds charged at this call site.
        ns: f64,
    },
    /// The microflow verdict cache consulted for this packet.
    FlowCache {
        /// Hit, or the specific miss cause.
        outcome: FlowCacheOutcome,
    },
    /// An eBPF program ran to a verdict.
    Vm {
        /// Program name (dispatcher-resolved for tail calls).
        program: String,
        /// Which hook ran it.
        hook: &'static str,
        /// Instructions the interpreter executed.
        insns: u64,
        /// Helper calls made.
        helpers: u64,
        /// Tail calls taken.
        tail_calls: u64,
        /// Final action, lower-case (`"pass"`, `"drop"`, …).
        verdict: &'static str,
        /// Interpreter virtual time, including helpers.
        ns: f64,
    },
    /// An iptables chain evaluated the packet.
    Netfilter {
        /// Chain name (`"prerouting"`, `"input"`, …).
        chain: &'static str,
        /// `"accept"` or `"drop"`.
        verdict: &'static str,
        /// Virtual time charged while the chain ran.
        ns: f64,
    },
    /// A NAT hook looked at (and possibly rewrote) the packet.
    Nat {
        /// `"prerouting"` (DNAT) or `"postrouting"` (SNAT).
        op: &'static str,
        /// Whether addresses/ports were rewritten.
        rewritten: bool,
        /// Virtual time charged while the hook ran.
        ns: f64,
    },
    /// The packet was dropped.
    Drop {
        /// Taxonomy reason.
        reason: DropReason,
    },
    /// The packet left the fast path for the slow path.
    Punt {
        /// Taxonomy reason.
        reason: PuntReason,
    },
    /// A housekeeping pass ran (marker spans only).
    Housekeeping {
        /// Aged-out bridge FDB entries removed.
        fdb_expired: usize,
        /// Expired conntrack entries removed.
        conntrack_expired: usize,
        /// Expired neighbor entries removed.
        neigh_expired: usize,
        /// Expired NAT bindings removed.
        nat_expired: usize,
    },
}

impl TraceEvent {
    /// Stable event-kind label (the registry table in DESIGN.md).
    pub const fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Stage { .. } => "stage",
            TraceEvent::FlowCache { .. } => "flowcache",
            TraceEvent::Vm { .. } => "vm",
            TraceEvent::Netfilter { .. } => "netfilter",
            TraceEvent::Nat { .. } => "nat",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Punt { .. } => "punt",
            TraceEvent::Housekeeping { .. } => "housekeeping",
        }
    }

    /// One-line rendering for the pretty-printer.
    pub fn render(&self) -> String {
        match self {
            TraceEvent::Stage { stage, ns } => format!("stage      {stage:<18} {ns:>8.1} ns"),
            TraceEvent::FlowCache { outcome } => format!("flowcache  {}", outcome.as_str()),
            TraceEvent::Vm {
                program,
                hook,
                insns,
                helpers,
                tail_calls,
                verdict,
                ns,
            } => format!(
                "vm         {program} @{hook}: {insns} insns, {helpers} helpers, \
                 {tail_calls} tail calls -> {verdict} ({ns:.1} ns)"
            ),
            TraceEvent::Netfilter { chain, verdict, ns } => {
                format!("netfilter  {chain} -> {verdict} ({ns:.1} ns)")
            }
            TraceEvent::Nat { op, rewritten, ns } => format!(
                "nat        {op}: {} ({ns:.1} ns)",
                if *rewritten { "rewritten" } else { "untouched" }
            ),
            TraceEvent::Drop { reason } => format!("drop       {reason}"),
            TraceEvent::Punt { reason } => format!("punt       {reason}"),
            TraceEvent::Housekeeping {
                fdb_expired,
                conntrack_expired,
                neigh_expired,
                nat_expired,
            } => format!(
                "housekeeping fdb={fdb_expired} ct={conntrack_expired} \
                 neigh={neigh_expired} nat={nat_expired}"
            ),
        }
    }

    fn to_json(&self) -> Value {
        match self {
            TraceEvent::Stage { stage, ns } => json!({
                "kind": "stage", "stage": (*stage), "ns": (*ns),
            }),
            TraceEvent::FlowCache { outcome } => json!({
                "kind": "flowcache", "outcome": outcome.as_str(),
            }),
            TraceEvent::Vm {
                program,
                hook,
                insns,
                helpers,
                tail_calls,
                verdict,
                ns,
            } => json!({
                "kind": "vm", "program": program.as_str(), "hook": (*hook),
                "insns": (*insns), "helpers": (*helpers),
                "tail_calls": (*tail_calls), "verdict": (*verdict), "ns": (*ns),
            }),
            TraceEvent::Netfilter { chain, verdict, ns } => json!({
                "kind": "netfilter", "chain": (*chain), "verdict": (*verdict),
                "ns": (*ns),
            }),
            TraceEvent::Nat { op, rewritten, ns } => json!({
                "kind": "nat", "op": (*op), "rewritten": (*rewritten), "ns": (*ns),
            }),
            TraceEvent::Drop { reason } => json!({
                "kind": "drop", "reason": reason.as_str(),
            }),
            TraceEvent::Punt { reason } => json!({
                "kind": "punt", "reason": reason.as_str(),
            }),
            TraceEvent::Housekeeping {
                fdb_expired,
                conntrack_expired,
                neigh_expired,
                nat_expired,
            } => json!({
                "kind": "housekeeping",
                "fdb_expired": (*fdb_expired as u64),
                "conntrack_expired": (*conntrack_expired as u64),
                "neigh_expired": (*neigh_expired as u64),
                "nat_expired": (*nat_expired as u64),
            }),
        }
    }
}

/// Which of the datapath's cost regimes the packet landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Regime {
    /// Flat-price microflow cache hit with a terminal verdict.
    FlowCacheHit,
    /// An eBPF program decided the packet (drop/redirect/deliver).
    FastPath,
    /// A hook ran but the packet fell through to the slow path.
    Punt,
    /// No hook decided the packet; the stock stack handled it.
    SlowPath,
    /// Timer work, not a packet (marker spans).
    Housekeeping,
}

impl Regime {
    /// Stable label for grouping and JSON.
    pub const fn as_str(self) -> &'static str {
        match self {
            Regime::FlowCacheHit => "flowcache_hit",
            Regime::FastPath => "fastpath",
            Regime::Punt => "punt",
            Regime::SlowPath => "slowpath",
            Regime::Housekeeping => "housekeeping",
        }
    }
}

/// What finally happened to the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Disposition {
    /// Left the host on a physical/overlay device.
    Transmitted,
    /// Delivered to a local endpoint (or AF_XDP socket).
    Delivered,
    /// Dropped, with the taxonomy reason.
    Dropped(DropReason),
    /// Held without a terminal effect (e.g. queued behind ARP).
    Queued,
}

impl Disposition {
    /// Short label for grouping and JSON (`"drop"` collapses reasons).
    pub const fn label(self) -> &'static str {
        match self {
            Disposition::Transmitted => "transmit",
            Disposition::Delivered => "deliver",
            Disposition::Dropped(_) => "drop",
            Disposition::Queued => "queued",
        }
    }
}

impl std::fmt::Display for Disposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Disposition::Dropped(reason) => write!(f, "drop ({reason})"),
            other => f.write_str(other.label()),
        }
    }
}

/// The per-packet context threaded through the datapath.
///
/// The default is *disabled*: no heap allocation, no virtual-time
/// charge, and every method body behind an `enabled` branch — the
/// zero-cost-off guarantee the pool-growth and warm-batch tests pin.
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    enabled: bool,
    seq: u64,
    dev: u32,
    shard: u32,
    start_ns: u64,
    events: Vec<TraceEvent>,
}

impl TraceCtx {
    /// Opens an enabled context for sampled packet `seq` arriving on
    /// `dev` at virtual time `start_ns`. The owning shard defaults to 0
    /// and is stamped by RSS steering via [`set_shard`](Self::set_shard).
    pub fn begin(seq: u64, dev: u32, start_ns: u64) -> Self {
        TraceCtx {
            enabled: true,
            seq,
            dev,
            shard: 0,
            start_ns,
            events: Vec::new(),
        }
    }

    /// Whether this packet is being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Stamps the shard the RSS hash steered this packet to.
    #[inline]
    pub fn set_shard(&mut self, shard: u32) {
        if self.enabled {
            self.shard = shard;
        }
    }

    /// Records a virtual-time charge at `stage`. No-op when disabled.
    #[inline]
    pub fn stage(&mut self, stage: &'static str, ns: f64) {
        if self.enabled {
            self.events.push(TraceEvent::Stage { stage, ns });
        }
    }

    /// Records a typed event. The closure only runs when enabled, so
    /// event construction (e.g. a program-name `String`) costs nothing
    /// on the off path.
    #[inline]
    pub fn event(&mut self, make: impl FnOnce() -> TraceEvent) {
        if self.enabled {
            self.events.push(make());
        }
    }

    /// Closes the span: folds the packet's [`CostTracker`] into the
    /// per-stage attribution (which therefore sums to `total_ns`
    /// exactly) and derives the regime from the recorded events.
    pub fn finish(self, cost: &CostTracker, disposition: Disposition) -> TraceSpan {
        let mut stages: Vec<(&'static str, u64, f64)> = cost
            .stages()
            .map(|(name, sc)| (name, sc.count, sc.total_ns))
            .collect();
        let attributed: f64 = stages.iter().map(|(_, _, ns)| ns).sum();
        let residual = cost.total_ns() - attributed;
        if residual.abs() > 1e-9 {
            stages.push(("(untracked)", 1, residual));
        }
        let regime = Self::derive_regime(&self.events);
        TraceSpan {
            seq: self.seq,
            dev: self.dev,
            shard: self.shard,
            start_ns: self.start_ns,
            total_ns: cost.total_ns(),
            regime,
            disposition,
            stages,
            events: self.events,
        }
    }

    fn derive_regime(events: &[TraceEvent]) -> Regime {
        let mut hit = false;
        let mut vm = false;
        for e in events {
            match e {
                TraceEvent::Punt { .. } => return Regime::Punt,
                TraceEvent::FlowCache {
                    outcome: FlowCacheOutcome::Hit,
                } => hit = true,
                TraceEvent::Vm { .. } => vm = true,
                _ => {}
            }
        }
        if hit {
            Regime::FlowCacheHit
        } else if vm {
            Regime::FastPath
        } else {
            Regime::SlowPath
        }
    }
}

/// One finished packet span.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Monotone sample sequence number (packet index among sampled).
    pub seq: u64,
    /// Ingress device index.
    pub dev: u32,
    /// The RSS shard that owned this packet (0 when sharding is off).
    pub shard: u32,
    /// Virtual time when the packet entered the datapath.
    pub start_ns: u64,
    /// Total virtual-time service cost charged to this packet.
    pub total_ns: f64,
    /// Which cost regime decided the packet.
    pub regime: Regime,
    /// What finally happened to it.
    pub disposition: Disposition,
    /// Per-stage fold of the packet's cost tracker: `(stage, count,
    /// ns)`. Sums to `total_ns` by construction.
    pub stages: Vec<(&'static str, u64, f64)>,
    /// Chronological typed events.
    pub events: Vec<TraceEvent>,
}

impl TraceSpan {
    /// A marker span for a housekeeping pass (no packet, no cost).
    pub fn housekeeping(
        start_ns: u64,
        fdb_expired: usize,
        conntrack_expired: usize,
        neigh_expired: usize,
        nat_expired: usize,
    ) -> Self {
        TraceSpan {
            seq: 0,
            dev: 0,
            shard: 0,
            start_ns,
            total_ns: 0.0,
            regime: Regime::Housekeeping,
            disposition: Disposition::Queued,
            stages: Vec::new(),
            events: vec![TraceEvent::Housekeeping {
                fdb_expired,
                conntrack_expired,
                neigh_expired,
                nat_expired,
            }],
        }
    }

    /// Sum of the per-stage attribution; equals [`total_ns`] up to
    /// float rounding — the conservation law `tests/observability.rs`
    /// asserts per subsystem.
    ///
    /// [`total_ns`]: TraceSpan::total_ns
    pub fn attributed_ns(&self) -> f64 {
        self.stages.iter().map(|(_, _, ns)| ns).sum()
    }

    /// Multi-line pretty-print of one span, for `linuxfp_trace`.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "packet #{} dev={} shard={} t={}ns  [{}] -> {}  total {:.1} ns",
            self.seq,
            self.dev,
            self.shard,
            self.start_ns,
            self.regime.as_str(),
            self.disposition,
            self.total_ns
        );
        for e in &self.events {
            let _ = writeln!(s, "  {}", e.render());
        }
        if !self.stages.is_empty() {
            let _ = writeln!(s, "  cost by stage:");
            for (stage, count, ns) in &self.stages {
                let _ = writeln!(s, "    {stage:<20} x{count:<3} {ns:>8.1} ns");
            }
            let _ = writeln!(
                s,
                "    {:<20} {:>12.1} ns (= total)",
                "sum",
                self.attributed_ns()
            );
        }
        s
    }

    /// JSON form of the span (the `linuxfp_trace --json` schema and
    /// the difftest repro `trace` field).
    pub fn to_json(&self) -> Value {
        let stages: Vec<Value> = self
            .stages
            .iter()
            .map(|(stage, count, ns)| json!({ "stage": (*stage), "count": (*count), "ns": (*ns) }))
            .collect();
        let events: Vec<Value> = self.events.iter().map(TraceEvent::to_json).collect();
        let mut span = json!({
            "seq": self.seq,
            "dev": (self.dev as u64),
            "shard": (self.shard as u64),
            "start_ns": self.start_ns,
            "total_ns": self.total_ns,
            "regime": self.regime.as_str(),
            "disposition": self.disposition.label(),
            "stages": stages,
            "events": events,
        });
        if let (Disposition::Dropped(reason), Value::Object(obj)) = (self.disposition, &mut span) {
            obj.insert("drop_reason".to_string(), Value::from(reason.as_str()));
        }
        span
    }
}

/// Fixed-capacity ring of finished spans: push evicts the oldest, the
/// total-pushed count keeps climbing.
#[derive(Clone, Debug)]
pub struct TraceRing {
    inner: Arc<Mutex<TraceRingInner>>,
}

#[derive(Debug)]
struct TraceRingInner {
    capacity: usize,
    total: u64,
    spans: VecDeque<TraceSpan>,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` spans (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRing {
            inner: Arc::new(Mutex::new(TraceRingInner {
                capacity: capacity.max(1),
                total: 0,
                spans: VecDeque::new(),
            })),
        }
    }

    /// Appends a span, evicting the oldest when full.
    pub fn push(&self, span: TraceSpan) {
        let mut inner = self.inner.lock().unwrap();
        if inner.spans.len() == inner.capacity {
            inner.spans.pop_front();
        }
        inner.spans.push_back(span);
        inner.total += 1;
    }

    /// The retained spans, oldest first.
    pub fn recent(&self) -> Vec<TraceSpan> {
        self.inner.lock().unwrap().spans.iter().cloned().collect()
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().spans.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().unwrap().total
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }

    /// Drops all retained spans (the total-pushed count is preserved).
    pub fn clear(&self) {
        self.inner.lock().unwrap().spans.clear();
    }
}

/// 1-in-N head sampler. `every == 0` means off; `every == 1` samples
/// every packet.
#[derive(Debug, Clone, Default)]
pub struct Sampler {
    every: u64,
    seen: u64,
}

impl Sampler {
    /// Creates a sampler taking one packet in `every`.
    pub fn new(every: u64) -> Self {
        Sampler { every, seen: 0 }
    }

    /// Changes the sampling period (0 = off) without resetting `seen`.
    pub fn set_every(&mut self, every: u64) {
        self.every = every;
    }

    /// The current sampling period.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Offers one packet; returns its sequence number if sampled.
    #[inline]
    pub fn sample(&mut self) -> Option<u64> {
        if self.every == 0 {
            return None;
        }
        let seq = self.seen;
        self.seen = self.seen.wrapping_add(1);
        if seq.is_multiple_of(self.every) {
            Some(seq)
        } else {
            None
        }
    }
}

/// The kernel-side recorder: a sampler deciding which packets get a
/// span and the ring the finished spans land in.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: TraceRing,
    sampler: Sampler,
}

impl FlightRecorder {
    /// Creates a recorder keeping `capacity` spans at 1-in-`every`
    /// sampling.
    pub fn new(capacity: usize, every: u64) -> Self {
        FlightRecorder {
            ring: TraceRing::with_capacity(capacity),
            sampler: Sampler::new(every),
        }
    }

    /// A shared handle to the span ring.
    pub fn ring(&self) -> TraceRing {
        self.ring.clone()
    }

    /// Updates the sampling period (0 = off).
    pub fn set_every(&mut self, every: u64) {
        self.sampler.set_every(every);
    }

    /// The current sampling period.
    pub fn every(&self) -> u64 {
        self.sampler.every()
    }

    /// Offers one packet; returns an enabled [`TraceCtx`] if sampled.
    #[inline]
    pub fn sample(&mut self, dev: u32, start_ns: u64) -> Option<TraceCtx> {
        self.sampler
            .sample()
            .map(|seq| TraceCtx::begin(seq, dev, start_ns))
    }

    /// Records a finished span.
    pub fn record(&self, span: TraceSpan) {
        self.ring.push(span);
    }
}

/// Aggregates sampled spans into a per-stage cost table grouped by
/// regime × disposition, with p50/p99 from the log2 histograms.
#[derive(Debug, Default)]
pub struct CostBreakdown {
    groups: BTreeMap<(Regime, &'static str), GroupStats>,
}

#[derive(Debug)]
struct GroupStats {
    packets: u64,
    total_ns: f64,
    hist: Histogram,
    stages: BTreeMap<&'static str, (u64, f64)>,
}

impl CostBreakdown {
    /// Folds `spans` into the breakdown. Housekeeping marker spans are
    /// skipped — they carry no packet cost.
    pub fn from_spans(spans: &[TraceSpan]) -> Self {
        let mut groups: BTreeMap<(Regime, &'static str), GroupStats> = BTreeMap::new();
        for span in spans {
            if span.regime == Regime::Housekeeping {
                continue;
            }
            let g = groups
                .entry((span.regime, span.disposition.label()))
                .or_insert_with(|| GroupStats {
                    packets: 0,
                    total_ns: 0.0,
                    hist: Histogram::new(),
                    stages: BTreeMap::new(),
                });
            g.packets += 1;
            g.total_ns += span.total_ns;
            g.hist.record(span.total_ns.round() as u64);
            for (stage, count, ns) in &span.stages {
                let e = g.stages.entry(stage).or_insert((0, 0.0));
                e.0 += count;
                e.1 += ns;
            }
        }
        CostBreakdown { groups }
    }

    /// Whether any packet span was folded in.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total packets folded across all groups.
    pub fn packets(&self) -> u64 {
        self.groups.values().map(|g| g.packets).sum()
    }

    /// One summary row per regime × disposition group:
    /// `(regime, disposition, packets, ns_per_pkt, p50, p99)`.
    pub fn rows(&self) -> Vec<(Regime, &'static str, u64, f64, f64, f64)> {
        self.groups
            .iter()
            .map(|(&(regime, disp), g)| {
                (
                    regime,
                    disp,
                    g.packets,
                    g.total_ns / g.packets as f64,
                    g.hist.quantile(50.0),
                    g.hist.quantile(99.0),
                )
            })
            .collect()
    }

    /// The `k` costliest stages of one regime × disposition group as
    /// `(stage, ns_per_pkt)`, costliest first. Empty if the group has
    /// no sampled packets.
    pub fn top_stages(
        &self,
        regime: Regime,
        disposition: &'static str,
        k: usize,
    ) -> Vec<(&'static str, f64)> {
        let Some(g) = self.groups.get(&(regime, disposition)) else {
            return Vec::new();
        };
        let mut stages: Vec<(&'static str, f64)> = g
            .stages
            .iter()
            .map(|(&stage, &(_, ns))| (stage, ns / g.packets as f64))
            .collect();
        stages.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(b.0)));
        stages.truncate(k);
        stages
    }

    /// The breakdown table as aligned text.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        if self.is_empty() {
            let _ = writeln!(s, "(no sampled spans)");
            return s;
        }
        let _ = writeln!(
            s,
            "{:<26} {:>7} {:>10} {:>9} {:>9}",
            "regime/disposition", "pkts", "ns/pkt", "p50", "p99"
        );
        for (regime, disp, pkts, per_pkt, p50, p99) in self.rows() {
            let group = format!("{}/{}", regime.as_str(), disp);
            let _ = writeln!(
                s,
                "{group:<26} {pkts:>7} {per_pkt:>10.1} {p50:>9.0} {p99:>9.0}"
            );
            let g = &self.groups[&(regime, disp)];
            let mut stages: Vec<_> = g.stages.iter().collect();
            stages.sort_by(|a, b| b.1 .1.partial_cmp(&a.1 .1).unwrap());
            for (stage, (count, ns)) in stages {
                let _ = writeln!(
                    s,
                    "  {:<24} {:>7} {:>10.1}",
                    stage,
                    count,
                    ns / g.packets as f64
                );
            }
        }
        s
    }

    /// The breakdown as JSON (`linuxfp_trace --json` and experiment
    /// artifacts).
    pub fn to_json(&self) -> Value {
        let groups: Vec<Value> = self
            .groups
            .iter()
            .map(|(&(regime, disp), g)| {
                let stages: Vec<Value> = g
                    .stages
                    .iter()
                    .map(|(stage, (count, ns))| {
                        json!({
                            "stage": (*stage),
                            "count": (*count),
                            "ns_per_pkt": (ns / g.packets as f64),
                        })
                    })
                    .collect();
                json!({
                    "regime": regime.as_str(),
                    "disposition": disp,
                    "packets": g.packets,
                    "ns_per_pkt": (g.total_ns / g.packets as f64),
                    "p50_ns": g.hist.quantile(50.0),
                    "p99_ns": g.hist.quantile(99.0),
                    "stages": stages,
                })
            })
            .collect();
        json!({ "packets": self.packets(), "groups": groups })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_with(total: f64, regime_events: Vec<TraceEvent>) -> TraceSpan {
        let mut cost = CostTracker::new();
        cost.charge("a", total / 2.0);
        cost.charge("b", total / 2.0);
        let mut ctx = TraceCtx::begin(0, 1, 0);
        for e in regime_events {
            ctx.event(|| e.clone());
        }
        ctx.finish(&cost, Disposition::Transmitted)
    }

    #[test]
    fn drop_reason_strings_are_the_legacy_labels() {
        assert_eq!(DropReason::XdpDrop.as_str(), "xdp drop");
        assert_eq!(DropReason::NoRouteOutput.as_str(), "no route (output)");
        assert_eq!(
            DropReason::IngressPortBlocked.as_str(),
            "ingress port not learning/forwarding"
        );
        // Labels are unique: the taxonomy is a bijection onto the
        // historical strings.
        let mut seen = std::collections::HashSet::new();
        for r in DropReason::ALL {
            assert!(seen.insert(r.as_str()), "duplicate label {:?}", r);
        }
        assert_eq!(seen.len(), DropReason::ALL.len());
    }

    #[test]
    fn disabled_ctx_is_inert_and_allocation_free() {
        let mut ctx = TraceCtx::default();
        assert!(!ctx.enabled());
        ctx.stage("driver_rx", 124.0);
        ctx.event(|| panic!("event closure must not run when disabled"));
        assert_eq!(ctx.events.capacity(), 0, "no heap allocation when off");
    }

    #[test]
    fn finish_folds_tracker_and_conserves_total() {
        let mut cost = CostTracker::new();
        cost.charge("driver_rx", 124.0);
        cost.charge("fib_lookup", 175.0);
        cost.charge("fib_lookup", 175.0);
        let ctx = TraceCtx::begin(7, 2, 1000);
        let span = ctx.finish(&cost, Disposition::Transmitted);
        assert_eq!(span.seq, 7);
        assert_eq!(span.total_ns, 474.0);
        assert!((span.attributed_ns() - span.total_ns).abs() < 1e-9);
        let fib = span
            .stages
            .iter()
            .find(|(s, _, _)| *s == "fib_lookup")
            .unwrap();
        assert_eq!(fib.1, 2);
        assert_eq!(fib.2, 350.0);
    }

    #[test]
    fn untracked_residual_is_attributed_explicitly() {
        let mut cost = CostTracker::new();
        cost.charge("driver_rx", 100.0);
        cost.charge_untracked(50.0);
        let span = TraceCtx::begin(0, 1, 0).finish(&cost, Disposition::Transmitted);
        assert!((span.attributed_ns() - span.total_ns).abs() < 1e-9);
        assert!(span.stages.iter().any(|(s, _, _)| *s == "(untracked)"));
    }

    #[test]
    fn regime_derivation_orders_punt_over_hit_over_vm() {
        let hit = TraceEvent::FlowCache {
            outcome: FlowCacheOutcome::Hit,
        };
        let vm = TraceEvent::Vm {
            program: "p".into(),
            hook: "xdp",
            insns: 10,
            helpers: 1,
            tail_calls: 0,
            verdict: "drop",
            ns: 100.0,
        };
        let punt = TraceEvent::Punt {
            reason: PuntReason::ProgramPass,
        };
        assert_eq!(
            span_with(100.0, vec![hit.clone()]).regime,
            Regime::FlowCacheHit
        );
        assert_eq!(span_with(100.0, vec![vm.clone()]).regime, Regime::FastPath);
        assert_eq!(
            span_with(100.0, vec![hit, punt.clone()]).regime,
            Regime::Punt
        );
        assert_eq!(span_with(100.0, vec![vm, punt]).regime, Regime::Punt);
        assert_eq!(span_with(100.0, vec![]).regime, Regime::SlowPath);
    }

    #[test]
    fn trace_ring_wraps_without_panic_and_keeps_counts_stable() {
        let ring = TraceRing::with_capacity(4);
        for i in 0..10u64 {
            let mut cost = CostTracker::new();
            cost.charge("x", i as f64);
            let span = TraceCtx::begin(i, 1, 0).finish(&cost, Disposition::Queued);
            ring.push(span);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.total_pushed(), 10);
        let seqs: Vec<u64> = ring.recent().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest spans evicted first");
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.total_pushed(), 10, "clear keeps the total");
    }

    #[test]
    fn sampler_take_one_in_n_and_zero_means_off() {
        let mut off = Sampler::new(0);
        assert!((0..100).all(|_| off.sample().is_none()));

        let mut s = Sampler::new(4);
        let sampled: Vec<Option<u64>> = (0..8).map(|_| s.sample()).collect();
        assert_eq!(
            sampled,
            vec![Some(0), None, None, None, Some(4), None, None, None]
        );

        let mut every = Sampler::new(1);
        assert_eq!(every.sample(), Some(0));
        assert_eq!(every.sample(), Some(1));
    }

    #[test]
    fn breakdown_groups_by_regime_and_disposition() {
        let mut spans = Vec::new();
        for i in 0..10u64 {
            let mut cost = CostTracker::new();
            cost.charge("flowcache_hit", 85.0);
            spans.push(TraceCtx::begin(i, 1, 0).finish(&cost, Disposition::Transmitted));
        }
        let mut cost = CostTracker::new();
        cost.charge("driver_rx", 124.0);
        cost.charge("fib_lookup", 175.0);
        let mut ctx = TraceCtx::begin(10, 1, 0);
        ctx.event(|| TraceEvent::Drop {
            reason: DropReason::NoRoute,
        });
        spans.push(ctx.finish(&cost, Disposition::Dropped(DropReason::NoRoute)));
        spans.push(TraceSpan::housekeeping(0, 1, 2, 3, 4));

        let b = CostBreakdown::from_spans(&spans);
        assert_eq!(b.packets(), 11, "housekeeping markers are not packets");
        let rows = b.rows();
        assert_eq!(rows.len(), 2);
        let slow_tx = rows
            .iter()
            .find(|r| r.0 == Regime::SlowPath && r.1 == "transmit")
            .unwrap();
        assert_eq!(slow_tx.2, 10);
        assert!((slow_tx.3 - 85.0).abs() < 1e-9);
        let dropped = rows
            .iter()
            .find(|r| r.0 == Regime::SlowPath && r.1 == "drop")
            .unwrap();
        assert_eq!(dropped.2, 1);
        assert!((dropped.3 - 299.0).abs() < 1e-9);
        let text = b.render_text();
        assert!(text.contains("slowpath/transmit"));
        assert!(text.contains("slowpath/drop"));
    }

    #[test]
    fn span_json_shape() {
        let mut cost = CostTracker::new();
        cost.charge("driver_rx", 124.0);
        let mut ctx = TraceCtx::begin(3, 2, 500);
        ctx.event(|| TraceEvent::Drop {
            reason: DropReason::TtlExceeded,
        });
        let span = ctx.finish(&cost, Disposition::Dropped(DropReason::TtlExceeded));
        let v = span.to_json();
        assert_eq!(v.get("seq").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("regime").and_then(Value::as_str), Some("slowpath"));
        assert_eq!(v.get("disposition").and_then(Value::as_str), Some("drop"));
        assert_eq!(
            v.get("drop_reason").and_then(Value::as_str),
            Some("ttl exceeded")
        );
        let events = v.get("events").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 1);
        // The JSON round-trips through the crate's own parser (the
        // `linuxfp_trace --json` CI gate relies on this).
        let text = v.to_string();
        let parsed = linuxfp_json::from_str(&text).expect("span JSON parses");
        assert_eq!(parsed.get("total_ns").and_then(Value::as_f64), Some(124.0));
    }
}
