//! Seeded differential fuzzer for LinuxFP transparency.
//!
//! Every seed deterministically expands into a [`DiffScenario`]: a random
//! kernel configuration spanning the accelerated subsystems (bridge FDB,
//! FIB routes, iptables filter + ipset, ipvs, NAT44), a randomized traffic
//! mix (TCP/UDP/ICMP, ragged bursts, replies, malformed frames), and
//! interleaved netlink churn (rule flushes, route changes, FPM redeploys
//! mid-stream). The [`runner`] executes the scenario on a Linux-only
//! kernel and a LinuxFP kernel side by side and asserts:
//!
//! - byte-identical emitted frames and delivery/drop sequences per burst,
//! - identical housekeeping reports,
//! - the telemetry ledger `hits + fallbacks == injected` on the LinuxFP side,
//! - zero buffer-pool growth after warm-up on both sides.
//!
//! On divergence, [`shrink`] greedily deletes ops and packets to a
//! 1-minimal repro that can be written as a self-contained JSON fixture
//! (see `tests/difftest_corpus/`) and replayed byte-for-byte.

pub mod gen;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use gen::generate;
pub use runner::{
    divergence_trace, run, run_with_options, run_with_shards, trace_scenario,
    trace_scenario_with_shards, Divergence, RunOutcome,
};
pub use scenario::{ChurnOp, DiffScenario, Dir, Op, PacketSpec};
pub use shrink::shrink;
