//! Seeded scenario generation: every scenario is a pure function of its
//! seed, so a failing seed reproduces exactly and a CI sweep is stable.

use crate::runner::CLIENTS;
use crate::scenario::{ChurnOp, DiffScenario, Dir, Op, PacketSpec, MALFORMED_KINDS};
use linuxfp_ebpf::hook::HookPoint;
use linuxfp_platforms::Scenario;
use linuxfp_sim::SimRng;

/// Generates the scenario for one seed.
pub fn generate(seed: u64) -> DiffScenario {
    let mut rng = SimRng::seed(seed);
    let base = Scenario::randomized(&mut rng);
    let hook = if rng.chance(0.3) {
        HookPoint::Tc
    } else {
        HookPoint::Xdp
    };
    let ipvs = rng.chance(0.4);
    let dnat = base.prefixes >= 2 && rng.chance(0.4);

    let mut ops = Vec::new();
    // Upper bound on masquerade allocations so far: reply targets are
    // drawn from the deterministic port sequence 32768, 32769, ...
    let mut masq_upper: u16 = 0;
    let n_ops = 12 + rng.uniform_u64(20);
    for _ in 0..n_ops {
        match rng.uniform_u64(100) {
            0..=54 => {
                let burst = gen_burst(&mut rng, &base, ipvs, dnat, &mut masq_upper);
                ops.push(burst);
            }
            55..=69 => ops.push(Op::Churn(gen_churn(&mut rng, &base, ipvs))),
            70..=77 => ops.extend(gen_established_churn(
                &mut rng,
                &base,
                ipvs,
                dnat,
                &mut masq_upper,
            )),
            78..=89 => {
                let ns = if rng.chance(0.1) {
                    // Rarely jump past the conntrack established timeout.
                    NANOS_PER_SEC * (601 + rng.uniform_u64(120))
                } else {
                    1 + rng.uniform_u64(5 * NANOS_PER_SEC)
                };
                ops.push(Op::Advance { ns });
            }
            _ => ops.push(Op::Housekeeping),
        }
    }
    // Always end with traffic so late churn is observable.
    ops.push(gen_burst(&mut rng, &base, ipvs, dnat, &mut masq_upper));

    DiffScenario {
        name: format!("seed-{seed}"),
        seed,
        base,
        hook,
        ipvs,
        dnat,
        ops,
    }
}

const NANOS_PER_SEC: u64 = 1_000_000_000;

fn gen_burst(
    rng: &mut SimRng,
    base: &Scenario,
    ipvs: bool,
    dnat: bool,
    masq_upper: &mut u16,
) -> Op {
    // Reply bursts enter downstream; everything else upstream.
    if base.masquerade && *masq_upper > 0 && rng.chance(0.2) {
        let n = 1 + rng.uniform_u64(4);
        let packets = (0..n)
            .map(|_| PacketSpec::Reply {
                server_flow: rng.uniform_u64(u64::from(base.prefixes)),
                port_off: rng.uniform_u64(u64::from(*masq_upper)) as u16,
            })
            .collect();
        return Op::Burst {
            dir: Dir::Down,
            packets,
        };
    }
    let n = 1 + rng.uniform_u64(12);
    let packets = (0..n)
        .map(|_| gen_packet(rng, base, ipvs, dnat, masq_upper))
        .collect();
    Op::Burst {
        dir: Dir::Up,
        packets,
    }
}

fn gen_packet(
    rng: &mut SimRng,
    base: &Scenario,
    ipvs: bool,
    dnat: bool,
    masq_upper: &mut u16,
) -> PacketSpec {
    loop {
        return match rng.uniform_u64(100) {
            0..=31 => PacketSpec::Forward {
                flow: rng.uniform_u64(1 + 2 * u64::from(base.prefixes)),
                len: 60 + rng.uniform_u64(1437) as u16,
            },
            // HTTP-ish TCP payloads regardless of configured policies:
            // with none, the L7 stage must stay invisible; with some,
            // every variant (allowed, blocked, split, garbage, empty)
            // must decide identically on both paths.
            32..=39 => PacketSpec::Http {
                flow: rng.uniform_u64(1 + 2 * u64::from(base.prefixes)),
                variant: rng.uniform_u64(crate::scenario::HTTP_VARIANTS.len() as u64) as u8,
            },
            40..=54 if base.masquerade => {
                // Any fresh client flow may allocate one masquerade port;
                // track the upper bound for reply generation.
                *masq_upper = masq_upper.saturating_add(1);
                PacketSpec::Client {
                    client: rng.uniform_u64(u64::from(CLIENTS)) as u8,
                    flow: rng.uniform_u64(u64::from(base.prefixes)),
                }
            }
            55..=64 if base.filter_rules > 0 => PacketSpec::Blocked {
                rule: rng.uniform_u64(u64::from(base.filter_rules)) as u32,
            },
            65..=69 => PacketSpec::ToHost {
                sport: 1024 + rng.uniform_u64(40000) as u16,
            },
            70..=76 if ipvs => PacketSpec::Vip {
                sport: 1024 + rng.uniform_u64(40000) as u16,
            },
            77..=83 if dnat => PacketSpec::Dnat {
                sport: 1024 + rng.uniform_u64(40000) as u16,
            },
            84..=88 => PacketSpec::Tcp {
                flow: rng.uniform_u64(1 + u64::from(base.prefixes)),
            },
            89..=92 => PacketSpec::Icmp {
                id: rng.uniform_u64(4096) as u16,
            },
            93..=99 => PacketSpec::Malformed {
                kind: rng.uniform_u64(MALFORMED_KINDS.len() as u64) as u8,
                flow: rng.uniform_u64(1 + u64::from(base.prefixes)),
            },
            // Guarded arms that didn't apply: draw again.
            _ => continue,
        };
    }
}

fn gen_churn(rng: &mut SimRng, base: &Scenario, ipvs: bool) -> ChurnOp {
    // Guarded arms that don't apply fall through to the thrash subset,
    // which is always applicable.
    match rng.uniform_u64(14) {
        0 => ChurnOp::IptAppend {
            rule: rng.uniform_u64(100) as u32,
        },
        1 if base.filter_rules > 0 => ChurnOp::IptFlush,
        2 => ChurnOp::RouteAdd {
            i: rng.uniform_u64(8) as u32,
        },
        3 => ChurnOp::RouteDel {
            i: rng.uniform_u64(u64::from(base.prefixes)) as u32,
        },
        4 => ChurnOp::NatAppendDnat {
            dport: 8081 + rng.uniform_u64(16) as u16,
        },
        5 if base.masquerade => ChurnOp::NatFlush,
        6 if base.use_ipset => ChurnOp::IpsetAdd {
            i: rng.uniform_u64(200) as u32,
        },
        7 if ipvs => ChurnOp::IpvsAddBackend {
            i: rng.uniform_u64(16) as u8,
        },
        8 => ChurnOp::L7Append {
            i: rng.uniform_u64(16) as u32,
        },
        9 if base.l7_policies > 0 => ChurnOp::L7Flush,
        _ => gen_thrash(rng, base, ipvs),
    }
}

/// The cache-thrashing churn subset: configuration events whose *point*
/// is invalidating derived fast-path state (verdict cache, batch-resolved
/// programs) with little or no semantic change.
fn gen_thrash(rng: &mut SimRng, base: &Scenario, ipvs: bool) -> ChurnOp {
    loop {
        return match rng.uniform_u64(4) {
            0 => ChurnOp::RouteReplace {
                i: rng.uniform_u64(u64::from(base.prefixes.max(1))) as u32,
            },
            1 if base.use_ipset => ChurnOp::IpsetFlush,
            2 if ipvs || base.masquerade => ChurnOp::CtCap {
                cap: 8 + rng.uniform_u64(56) as u32,
            },
            3 => ChurnOp::FpmSwap,
            _ => continue,
        };
    }
}

/// The microflow verdict cache's regression surface: an established flow
/// whose packets interleave with cache-thrashing churn. Every churn op
/// bumps the coherence generation, so each following packet must
/// re-derive its verdict from scratch — and still emit byte-identical
/// output.
fn gen_established_churn(
    rng: &mut SimRng,
    base: &Scenario,
    ipvs: bool,
    dnat: bool,
    masq_upper: &mut u16,
) -> Vec<Op> {
    let spec = loop {
        break match rng.uniform_u64(5) {
            0 => PacketSpec::Forward {
                flow: rng.uniform_u64(1 + 2 * u64::from(base.prefixes)),
                len: 60 + rng.uniform_u64(1437) as u16,
            },
            // A pinned L7 connection: churn flushes the pin, and the
            // next segment must re-derive the same verdict.
            4 if base.l7_policies > 0 => PacketSpec::Http {
                flow: rng.uniform_u64(1 + u64::from(base.prefixes)),
                variant: 0,
            },
            1 if base.masquerade => {
                *masq_upper = masq_upper.saturating_add(1);
                PacketSpec::Client {
                    client: rng.uniform_u64(u64::from(CLIENTS)) as u8,
                    flow: rng.uniform_u64(u64::from(base.prefixes)),
                }
            }
            2 if ipvs => PacketSpec::Vip {
                sport: 1024 + rng.uniform_u64(40000) as u16,
            },
            3 if dnat => PacketSpec::Dnat {
                sport: 1024 + rng.uniform_u64(40000) as u16,
            },
            _ => continue,
        };
    };
    // Two packets establish and cache the flow, then churn and repeat
    // packets alternate.
    let mut ops = vec![Op::Burst {
        dir: Dir::Up,
        packets: vec![spec, spec],
    }];
    for _ in 0..2 + rng.uniform_u64(3) {
        ops.push(Op::Churn(gen_thrash(rng, base, ipvs)));
        ops.push(Op::Burst {
            dir: Dir::Up,
            packets: vec![spec],
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0, 1, 42, 0xDEAD] {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn scenarios_vary_across_seeds() {
        let distinct: std::collections::HashSet<String> =
            (0..16).map(|s| generate(s).to_json()).collect();
        assert!(
            distinct.len() >= 15,
            "seeds barely vary: {}",
            distinct.len()
        );
    }

    #[test]
    fn generated_scenarios_round_trip_as_fixtures() {
        for seed in 0..16 {
            let s = generate(seed);
            let back = crate::scenario::DiffScenario::from_json(&s.to_json()).unwrap();
            assert_eq!(s, back, "seed {seed}");
        }
    }
}
