//! Differential-fuzzing CLI.
//!
//! ```text
//! difftest run --seeds N [--start S] [--corpus DIR] [--shards N] [--jit 0|1] [--opt 0|1]
//!                                                     sweep N seeded scenarios
//! difftest replay [--shards N] [--jit 0|1] [--opt 0|1] FILE...
//!                                                     replay stored fixtures
//! ```
//!
//! `--shards N` sets `net.linuxfp.rss_shards` on both kernels: the
//! sharded datapath must stay byte-identical to the single-core run.
//!
//! `--jit 0` clears `net.linuxfp.jit` on both kernels, forcing every
//! eBPF program onto the reference interpreter instead of its compiled
//! form — the interpreter-parity lane. Default is `--jit 1` (compiled,
//! matching the kernel default).
//!
//! `--opt 0` clears `net.linuxfp.opt` before the controller's first
//! deploy, loading every fast path in naive synthesized form — the
//! optimizer-equivalence lane. Default is `--opt 1` (optimized,
//! matching the kernel default).
//!
//! Exit status is non-zero on any divergence. `run` shrinks each failure
//! and, with `--corpus`, writes the minimal repro there as JSON.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => {
            eprintln!(
                "usage: difftest run --seeds N [--start S] [--corpus DIR] [--shards N] [--jit 0|1] [--opt 0|1]"
            );
            eprintln!("       difftest replay [--shards N] [--jit 0|1] [--opt 0|1] FILE...");
            ExitCode::from(2)
        }
    }
}

fn parse_u64(args: &[String], flag: &str) -> Option<u64> {
    let pos = args.iter().position(|a| a == flag)?;
    args.get(pos + 1)?.parse().ok()
}

fn parse_str<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let pos = args.iter().position(|a| a == flag)?;
    args.get(pos + 1).map(String::as_str)
}

/// The `--shards N --jit 0|1 --opt 0|1` mode suffix for log lines;
/// empty at the defaults.
fn mode_suffix(shards: u32, jit: bool, opt: bool) -> String {
    let mut parts = Vec::new();
    if shards > 1 {
        parts.push(format!("rss_shards={shards}"));
    }
    if !jit {
        parts.push("jit=off".to_string());
    }
    if !opt {
        parts.push("opt=off".to_string());
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(" ({})", parts.join(", "))
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let seeds = parse_u64(args, "--seeds").unwrap_or(200);
    let start = parse_u64(args, "--start").unwrap_or(0);
    let corpus = parse_str(args, "--corpus");
    let shards = parse_u64(args, "--shards").unwrap_or(1) as u32;
    let jit = parse_u64(args, "--jit").unwrap_or(1) != 0;
    let opt = parse_u64(args, "--opt").unwrap_or(1) != 0;

    let mut packets = 0usize;
    let mut failures = 0u32;
    for seed in start..start + seeds {
        let scenario = linuxfp_difftest::generate(seed);
        let outcome = linuxfp_difftest::run_with_options(&scenario, shards, jit, opt);
        packets += outcome.packets;
        if let Some(div) = &outcome.divergence {
            failures += 1;
            eprintln!(
                "difftest: seed {seed} DIVERGED at op {} [{}]{}",
                div.op,
                div.kind,
                mode_suffix(shards, jit, opt)
            );
            eprintln!("  {}", div.detail);
            let minimal = linuxfp_difftest::shrink(&scenario);
            eprintln!(
                "  shrunk to {} ops (from {})",
                minimal.ops.len(),
                scenario.ops.len()
            );
            // Re-run the minimal repro with the flight recorder forced
            // on and embed the diverging packet's trace (both kernels)
            // in the fixture, so the repro explains itself.
            let trace = linuxfp_difftest::run(&minimal)
                .divergence
                .as_ref()
                .and_then(|d| linuxfp_difftest::divergence_trace(&minimal, d));
            let mut doc = minimal.to_json_value();
            if let (Some(t), linuxfp_json::Value::Object(obj)) = (trace, &mut doc) {
                obj.insert("trace".to_string(), t);
            }
            let fixture = linuxfp_json::to_string_pretty(&doc);
            if let Some(dir) = corpus {
                let path = format!("{dir}/{}.json", minimal.name);
                match std::fs::write(&path, &fixture) {
                    Ok(()) => eprintln!("  wrote fixture {path}"),
                    Err(e) => eprintln!("  failed to write fixture {path}: {e}"),
                }
            } else {
                eprintln!("  minimal repro:\n{fixture}");
            }
        }
    }
    if failures > 0 {
        eprintln!("difftest: {failures}/{seeds} seeds diverged");
        return ExitCode::FAILURE;
    }
    println!(
        "difftest: {seeds} seeds, {packets} packets, zero divergence{}",
        mode_suffix(shards, jit, opt)
    );
    ExitCode::SUCCESS
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let shards = parse_u64(args, "--shards").unwrap_or(1) as u32;
    let jit = parse_u64(args, "--jit").unwrap_or(1) != 0;
    let opt = parse_u64(args, "--opt").unwrap_or(1) != 0;
    let mut skip_next = false;
    let files: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--shards" || *a == "--jit" || *a == "--opt" {
                skip_next = true;
                return false;
            }
            true
        })
        .collect();
    if files.is_empty() {
        eprintln!("difftest replay: no fixture files given");
        return ExitCode::from(2);
    }
    let mut failures = 0u32;
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("difftest: cannot read {file}: {e}");
                failures += 1;
                continue;
            }
        };
        let scenario = match linuxfp_difftest::DiffScenario::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("difftest: cannot parse {file}: {e}");
                failures += 1;
                continue;
            }
        };
        let outcome = linuxfp_difftest::run_with_options(&scenario, shards, jit, opt);
        match &outcome.divergence {
            Some(div) => {
                failures += 1;
                eprintln!(
                    "difftest: {file} ({}) DIVERGED at op {} [{}]: {}",
                    scenario.name, div.op, div.kind, div.detail
                );
            }
            None => println!(
                "difftest: {file} ({}) transparent, {} packets{}",
                scenario.name,
                outcome.packets,
                mode_suffix(shards, jit, opt)
            ),
        }
    }
    if failures > 0 {
        eprintln!("difftest: {failures} fixture(s) diverged");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
