//! Executes one [`DiffScenario`] on a Linux-only kernel and a LinuxFP
//! kernel side by side and reports the first observable divergence.
//!
//! Compared after every burst: the exact transmitted frames (bytes and
//! egress device), local deliveries, and drop-reason sequences. Compared
//! at the end: the housekeeping reports, the telemetry conservation
//! ledger (`hits + fallbacks == injected`), and buffer-pool growth
//! during a steady-state replay of the traffic.

use crate::scenario::{ChurnOp, DiffScenario, Dir, Op, PacketSpec};
use linuxfp_json::Value;
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::ipvs::Scheduler;
use linuxfp_netstack::l7::{L7Action, L7Policy};
use linuxfp_netstack::nat::{NatChain, NatRule, NatTarget};
use linuxfp_netstack::netfilter::{ChainHook, IptRule};
use linuxfp_netstack::stack::{Kernel, RxOutcome};
use linuxfp_packet::ipv4::{IpProto, Prefix};
use linuxfp_packet::tcp::TcpFlags;
use linuxfp_packet::{builder, Batch, BufferPool, MacAddr};
use linuxfp_platforms::scenario::{Scenario, NEXT_HOP, SINK_MAC, SOURCE_MAC};
use linuxfp_platforms::{LinuxFpPlatform, LinuxPlatform};
use linuxfp_sim::Nanos;
use linuxfp_telemetry::trace::TraceRing;
use linuxfp_telemetry::Registry;
use std::net::Ipv4Addr;

/// The ipvs virtual service address used by scenarios with `ipvs: true`.
pub const VIP: Ipv4Addr = Ipv4Addr::new(10, 96, 0, 10);
/// The routed "public" destination claimed by DNAT scenarios.
pub const DNAT_PUBLIC: Ipv4Addr = Ipv4Addr::new(10, 10, 0, 99);
/// Where DNAT sends it (inside the second routed prefix).
pub const DNAT_TARGET: Ipv4Addr = Ipv4Addr::new(10, 10, 1, 7);
/// Inside clients with pre-resolved ARP (reply traffic can reach them).
pub const CLIENTS: u8 = 10;

/// One observable divergence between the two kernels.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the op where behavior split (ops.len() for end-of-run
    /// checks: ledger, pool growth, steady-state replay).
    pub op: usize,
    /// Short machine-readable class: `output`, `housekeeping`, `ledger`,
    /// `pool-growth`.
    pub kind: &'static str,
    /// Whether the divergence appeared during the steady-state replay
    /// pass (bursts only, configuration frozen) rather than the first
    /// full pass.
    pub steady: bool,
    /// Human-readable explanation.
    pub detail: String,
}

/// The result of running one scenario.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Total frames injected (both passes, both directions).
    pub packets: usize,
    /// The first divergence found, if any.
    pub divergence: Option<Divergence>,
}

impl RunOutcome {
    /// Whether the two kernels behaved identically.
    pub fn transparent(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Flattened observable behavior of a burst.
#[derive(Debug, PartialEq)]
struct Observed {
    transmissions: Vec<(u32, Vec<u8>)>,
    deliveries: Vec<(u32, Vec<u8>)>,
    drops: Vec<String>,
}

/// Collapses drop reasons into layer-independent classes. A policy drop
/// surfaces as `nf input drop`/`nf forward drop` on the slow path but as
/// `xdp drop`/`tc drop` when the synthesized filter stage rejects the
/// same packet at the hook — the same decision, taken earlier. Everything
/// else (malformed, no route, ttl, exhaustion) compares verbatim.
fn canonical_drop(reason: &str) -> &str {
    match reason {
        "xdp drop" | "tc drop" | "nf input drop" | "nf forward drop" | "l7 policy deny" => {
            "policy drop"
        }
        other => other,
    }
}

fn observe<'a>(outcomes: impl Iterator<Item = &'a RxOutcome>) -> Observed {
    let mut obs = Observed {
        transmissions: Vec::new(),
        deliveries: Vec::new(),
        drops: Vec::new(),
    };
    for out in outcomes {
        for (dev, frame) in out.transmissions() {
            obs.transmissions.push((dev.as_u32(), frame.to_vec()));
        }
        for (dev, frame) in out.deliveries() {
            obs.deliveries.push((dev.as_u32(), frame.to_vec()));
        }
        for reason in out.drops() {
            obs.drops.push(canonical_drop(reason).to_string());
        }
    }
    obs
}

fn summarize_mismatch(expect: &Observed, got: &Observed) -> String {
    if expect.drops != got.drops {
        return format!("drops: linux {:?} vs linuxfp {:?}", expect.drops, got.drops);
    }
    if expect.transmissions.len() != got.transmissions.len() {
        return format!(
            "tx count: linux {} vs linuxfp {}",
            expect.transmissions.len(),
            got.transmissions.len()
        );
    }
    for (i, (a, b)) in expect
        .transmissions
        .iter()
        .zip(&got.transmissions)
        .enumerate()
    {
        if a != b {
            let hex = |f: &[u8]| {
                f.iter()
                    .take(48)
                    .map(|b| format!("{b:02x}"))
                    .collect::<String>()
            };
            return format!(
                "tx {i}: dev {} ({} bytes) vs dev {} ({} bytes), first differing byte {:?}\n  linux   {}\n  linuxfp {}",
                a.0,
                a.1.len(),
                b.0,
                b.1.len(),
                a.1.iter().zip(&b.1).position(|(x, y)| x != y),
                hex(&a.1),
                hex(&b.1)
            );
        }
    }
    "deliveries differ".to_string()
}

/// Recomputes the IPv4 header checksum in place (minimal 20-byte header).
fn fix_ipv4_csum(frame: &mut [u8]) {
    frame[24] = 0;
    frame[25] = 0;
    let mut sum: u32 = 0;
    for i in (14..34).step_by(2) {
        sum += u32::from(u16::from_be_bytes([frame[i], frame[i + 1]]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    let csum = !(sum as u16);
    frame[24..26].copy_from_slice(&csum.to_be_bytes());
}

/// Builds the bytes for one packet spec, addressed to the right MAC for
/// its ingress side.
fn build_frame(spec: &PacketSpec, base: &Scenario, up_mac: MacAddr, down_mac: MacAddr) -> Vec<u8> {
    let src_host = Ipv4Addr::new(10, 0, 1, 100);
    match *spec {
        PacketSpec::Forward { flow, len } => {
            base.frame(up_mac, flow, usize::from(len.clamp(60, 1496)))
        }
        PacketSpec::Blocked { rule } => builder::udp_packet(
            SOURCE_MAC,
            up_mac,
            src_host,
            base.blocked_dst(rule),
            1000 + (rule % 5000) as u16,
            4791,
            b"blocked",
        ),
        PacketSpec::ToHost { sport } => builder::udp_packet(
            SOURCE_MAC,
            up_mac,
            src_host,
            Ipv4Addr::new(10, 0, 1, 1),
            sport,
            4791,
            b"for the host",
        ),
        PacketSpec::Client { client, flow } => {
            base.client_frame(up_mac, 2 + client % CLIENTS, flow, 60)
        }
        PacketSpec::Vip { sport } => {
            builder::udp_packet(SOURCE_MAC, up_mac, src_host, VIP, sport, 53, b"query")
        }
        PacketSpec::Dnat { sport } => builder::udp_packet(
            SOURCE_MAC,
            up_mac,
            src_host,
            DNAT_PUBLIC,
            sport,
            8080,
            b"dnat",
        ),
        PacketSpec::Reply {
            server_flow,
            port_off,
        } => builder::udp_packet(
            SINK_MAC,
            down_mac,
            base.allowed_dst(server_flow),
            Ipv4Addr::new(10, 0, 2, 1),
            4791,
            32768 + port_off,
            b"reply",
        ),
        PacketSpec::Tcp { flow } => builder::tcp_packet(
            SOURCE_MAC,
            up_mac,
            src_host,
            base.allowed_dst(flow),
            2000 + (flow % 512) as u16,
            80,
            TcpFlags {
                syn: true,
                ..TcpFlags::default()
            },
            b"",
        ),
        PacketSpec::Icmp { id } => builder::icmp_echo_request(
            SOURCE_MAC,
            up_mac,
            src_host,
            base.allowed_dst(u64::from(id)),
            id,
            1,
        ),
        PacketSpec::Http { flow, variant } => {
            let payload: Vec<u8> = match variant % 5 {
                0 => Scenario::http_request(flow),
                1 => base.blocked_http_request(flow),
                2 => b"GET /api/v1/items".to_vec(), // line split mid-URL
                3 => vec![0x16, 0x03, 0x01, 0x00, 0x2a, 0x00, 0xff],
                _ => Vec::new(), // bare ACK
            };
            base.http_frame(up_mac, flow, &payload)
        }
        PacketSpec::Malformed { kind, flow } => {
            let mut frame = base.frame(up_mac, flow, 60);
            match kind % 7 {
                0 => frame.truncate(10),                           // runt: not even ethernet
                1 => frame.truncate(20),                           // IPv4 cut mid-header
                2 => frame[12..14].copy_from_slice(&[0x86, 0xDD]), // says IPv6
                3 => frame[14] = 0x65,                             // version 6, IHL 5
                4 => {
                    frame[22] = 1; // TTL 1: slow path answers Time Exceeded
                    fix_ipv4_csum(&mut frame);
                }
                5 => frame[25] ^= 0xFF, // corrupt header checksum
                _ => {
                    frame[20] = 0x00; // fragment offset 8
                    frame[21] = 0x01;
                    fix_ipv4_csum(&mut frame);
                }
            }
            frame
        }
    }
}

/// Extra configuration beyond the base scenario, applied identically to
/// both kernels via the same standard APIs.
fn configure_extras(k: &mut Kernel, ds: &DiffScenario, up: IfIndex, down: IfIndex) {
    let now = k.now();
    // Pre-resolve the inside clients so reply traffic (and masquerade
    // reverse flows) never parks frames behind ARP resolution.
    for c in 0..CLIENTS {
        k.neigh.learn(
            Ipv4Addr::new(10, 0, 1, 2 + c),
            MacAddr::from_index(0xC0 + u64::from(c)),
            up,
            now,
        );
    }
    if ds.ipvs {
        assert!(k.ipvsadm_add_service(VIP, 53, IpProto::Udp, Scheduler::RoundRobin));
        for i in 0..3u8 {
            let backend = Ipv4Addr::new(10, 0, 2, 10 + i);
            k.neigh
                .learn(backend, MacAddr::from_index(0xB0 + u64::from(i)), down, now);
            assert!(k.ipvsadm_add_backend(VIP, 53, IpProto::Udp, backend, 53));
        }
    }
    if ds.dnat {
        k.iptables_nat_append(
            NatChain::Prerouting,
            NatRule {
                dst: Some(Prefix::new(DNAT_PUBLIC, 32)),
                dport: Some(8080),
                proto: Some(IpProto::Udp),
                ..NatRule::any(NatTarget::Dnat {
                    to: DNAT_TARGET,
                    to_port: Some(80),
                })
            },
        );
    }
}

/// Applies one churn op to a kernel. Errors (duplicate route, missing
/// set) are ignored: both kernels share identical state, so both fail or
/// succeed identically.
fn apply_churn(k: &mut Kernel, c: &ChurnOp, base: &Scenario, down: IfIndex) {
    match *c {
        ChurnOp::IptAppend { rule } => k.iptables_append(
            ChainHook::Forward,
            IptRule::drop_dst(Scenario::blacklist_prefix(rule)),
        ),
        ChurnOp::IptFlush => k.iptables_flush(ChainHook::Forward),
        ChurnOp::RouteAdd { i } => {
            let _ = k.ip_route_add(
                Scenario::route_prefix(base.prefixes + i),
                Some(NEXT_HOP),
                None,
            );
        }
        ChurnOp::RouteDel { i } => {
            let _ = k.ip_route_del(Scenario::route_prefix(i % base.prefixes.max(1)), None);
        }
        ChurnOp::NatAppendDnat { dport } => {
            k.iptables_nat_append(
                NatChain::Prerouting,
                NatRule {
                    dst: Some(Prefix::new(DNAT_PUBLIC, 32)),
                    dport: Some(dport),
                    proto: Some(IpProto::Udp),
                    ..NatRule::any(NatTarget::Dnat {
                        to: DNAT_TARGET,
                        to_port: Some(80),
                    })
                },
            );
        }
        ChurnOp::NatFlush => k.iptables_nat_flush(),
        ChurnOp::IpsetAdd { i } => {
            let _ = k.ipset_add("blacklist", Scenario::blacklist_prefix(i));
        }
        ChurnOp::IpvsAddBackend { i } => {
            let backend = Ipv4Addr::new(10, 0, 2, 13 + i % 64);
            let now = k.now();
            k.neigh
                .learn(backend, MacAddr::from_index(0xD0 + u64::from(i)), down, now);
            let _ = k.ipvsadm_add_backend(VIP, 53, IpProto::Udp, backend, 53);
        }
        // Re-adding an existing prefix with its existing next hop is how
        // `ip route replace` (or an FRR resync) looks on the wire: no
        // semantic change, one netlink event, full fast-path rebuild.
        ChurnOp::RouteReplace { i } => {
            let _ = k.ip_route_add(
                Scenario::route_prefix(i % base.prefixes.max(1)),
                Some(NEXT_HOP),
                None,
            );
        }
        ChurnOp::IpsetFlush => {
            let _ = k.ipset_flush("blacklist");
        }
        ChurnOp::CtCap { cap } => {
            k.conntrack.max_entries = cap.clamp(8, 4096) as usize;
        }
        // Scratch prefix far past anything the traffic can hit: the add
        // and delete cancel out, leaving only the two redeployments.
        ChurnOp::FpmSwap => {
            let scratch = Scenario::route_prefix(240);
            let _ = k.ip_route_add(scratch, Some(NEXT_HOP), None);
            let _ = k.ip_route_del(scratch, None);
        }
        ChurnOp::L7Append { i } => {
            // Small modulus so appends overlap the prefixes blocked
            // traffic actually requests (including `/blocked/0`, the
            // target when no base policies exist).
            k.l7_policy_append(L7Policy::prefix(
                format!("/blocked/{}", i % 8).as_bytes(),
                L7Action::Deny,
            ));
        }
        ChurnOp::L7Flush => k.l7_policy_flush(),
    }
}

struct Side {
    pool: BufferPool,
    up: IfIndex,
    down: IfIndex,
}

impl Side {
    fn inject(&self, kernel: &mut Kernel, dir: Dir, frames: &[Vec<u8>]) -> Vec<RxOutcome> {
        let dev = match dir {
            Dir::Up => self.up,
            Dir::Down => self.down,
        };
        let mut batch = Batch::with_capacity(frames.len());
        for frame in frames {
            let mut buf = self.pool.acquire();
            buf.extend_from_slice(frame);
            batch.push(buf);
        }
        kernel.inject_batch(dev, &mut batch).outcomes
    }
}

/// Runs the scenario on both kernels and reports the first divergence.
pub fn run(ds: &DiffScenario) -> RunOutcome {
    run_with_shards(ds, 1)
}

/// Like [`run`] but steering both kernels across `shards` RSS shards
/// (`net.linuxfp.rss_shards`). The sharded datapath must stay
/// byte-identical to the single-core one — steering only partitions
/// caches and charges coherence costs, never verdicts — so any fixture
/// or seed that passes unsharded must pass at every shard count. The RSS
/// hash reads only L3/L4 fields, so the two kernels' differing MACs
/// cannot steer a flow to different shards.
pub fn run_with_shards(ds: &DiffScenario, shards: u32) -> RunOutcome {
    run_with_options(ds, shards, true, true)
}

/// Like [`run_with_shards`] but also selecting the eBPF execution
/// engine: `jit = false` clears `net.linuxfp.jit` on both kernels so
/// every program in the scenario runs on the reference interpreter
/// instead of its compiled form. The engines are parity-checked at the
/// instruction level (`crates/ebpf/tests/{jit,alu}_parity.rs`); this
/// lane closes the loop end-to-end — every fixture and seed must
/// produce byte-identical outputs and a balanced conservation ledger in
/// both modes.
///
/// `opt = false` clears `net.linuxfp.opt` *before* the controller's
/// first deploy, so every fast path loads in its naive synthesized
/// form. The optimizer is equivalence-checked per program
/// (`crates/ebpf/tests/opt_parity.rs`); this lane proves the whole
/// scenario — traffic, state churn, redeploys — behaves byte-identically
/// with and without synthesis-time optimization.
pub fn run_with_options(ds: &DiffScenario, shards: u32, jit: bool, opt: bool) -> RunOutcome {
    let registry = Registry::new();
    let mut linux = LinuxPlatform::new(ds.base);
    let mut lfp = LinuxFpPlatform::with_telemetry(ds.base, ds.hook, registry.clone());

    let (up_l, down_l) = interfaces(linux.kernel_mut());
    let (up_f, down_f) = interfaces(lfp.kernel_mut());
    let up_mac = linux.dut_mac();
    assert_eq!(up_mac, lfp.dut_mac(), "same seed, same MACs");
    let down_mac = linux.kernel_mut().device(down_l).expect("down").mac;

    configure_extras(linux.kernel_mut(), ds, up_l, down_l);
    configure_extras(lfp.kernel_mut(), ds, up_f, down_f);
    // The optimizer runs at deploy time, so its sysctl must be in
    // place before the controller's first poll (the engine sysctls
    // below are consulted per packet and may follow the deploy).
    if !opt {
        linux
            .kernel_mut()
            .sysctl_set("net.linuxfp.opt", 0)
            .expect("opt sysctl exists");
        lfp.kernel_mut()
            .sysctl_set("net.linuxfp.opt", 0)
            .expect("opt sysctl exists");
    }
    lfp.poll_controller();
    if shards > 1 {
        linux
            .kernel_mut()
            .sysctl_set("net.linuxfp.rss_shards", i64::from(shards))
            .expect("rss_shards sysctl exists");
        lfp.kernel_mut()
            .sysctl_set("net.linuxfp.rss_shards", i64::from(shards))
            .expect("rss_shards sysctl exists");
    }
    if !jit {
        linux
            .kernel_mut()
            .sysctl_set("net.linuxfp.jit", 0)
            .expect("jit sysctl exists");
        lfp.kernel_mut()
            .sysctl_set("net.linuxfp.jit", 0)
            .expect("jit sysctl exists");
    }

    let side_l = Side {
        pool: BufferPool::new(),
        up: up_l,
        down: down_l,
    };
    let side_f = Side {
        pool: BufferPool::new(),
        up: up_f,
        down: down_f,
    };

    let mut packets = 0usize;
    let exec = |linux: &mut LinuxPlatform,
                lfp: &mut LinuxFpPlatform,
                op_index: usize,
                op: &Op,
                bursts_only: bool,
                packets: &mut usize|
     -> Option<Divergence> {
        match op {
            Op::Burst {
                dir,
                packets: specs,
            } => {
                let frames: Vec<Vec<u8>> = specs
                    .iter()
                    .map(|s| build_frame(s, &ds.base, up_mac, down_mac))
                    .collect();
                *packets += frames.len();
                let out_l = side_l.inject(linux.kernel_mut(), *dir, &frames);
                let out_f = side_f.inject(lfp.kernel_mut(), *dir, &frames);
                let expect = observe(out_l.iter());
                let got = observe(out_f.iter());
                if expect != got {
                    let pass = if bursts_only { " (steady pass)" } else { "" };
                    return Some(Divergence {
                        op: op_index,
                        kind: "output",
                        steady: bursts_only,
                        detail: format!("{}{pass}", summarize_mismatch(&expect, &got)),
                    });
                }
            }
            Op::Churn(c) if !bursts_only => {
                apply_churn(linux.kernel_mut(), c, &ds.base, down_l);
                apply_churn(lfp.kernel_mut(), c, &ds.base, down_f);
                lfp.poll_controller();
            }
            Op::Advance { ns } if !bursts_only => {
                linux.kernel_mut().advance(Nanos::from_nanos(*ns));
                lfp.kernel_mut().advance(Nanos::from_nanos(*ns));
                // The testbed's pktgen keeps ARP warm: without this,
                // neighbor expiry parks frames behind re-resolution and
                // the parked buffers read as pool growth.
                warm_neighbors(linux.kernel_mut(), ds, up_l, down_l);
                warm_neighbors(lfp.kernel_mut(), ds, up_f, down_f);
            }
            Op::Housekeeping if !bursts_only => {
                let a = linux.kernel_mut().run_housekeeping();
                let b = lfp.kernel_mut().run_housekeeping();
                if a != b {
                    return Some(Divergence {
                        op: op_index,
                        kind: "housekeeping",
                        steady: false,
                        detail: format!("linux {a:?} vs linuxfp {b:?}"),
                    });
                }
            }
            _ => {}
        }
        None
    };

    for (i, op) in ds.ops.iter().enumerate() {
        if let Some(d) = exec(&mut linux, &mut lfp, i, op, false, &mut packets) {
            return RunOutcome {
                packets,
                divergence: Some(d),
            };
        }
    }

    // Steady state: with the pools warmed by the full run, replaying the
    // traffic (bursts only — configuration stays put) must not allocate.
    // Neighbor entries may have aged out across the scenario's time
    // jumps; the testbed's pktgen keeps ARP warm, so re-learn them (on
    // both kernels identically) rather than letting re-resolution park
    // frames and grow the pools.
    warm_neighbors(linux.kernel_mut(), ds, up_l, down_l);
    warm_neighbors(lfp.kernel_mut(), ds, up_f, down_f);
    let warm_l = side_l.pool.stats().allocated;
    let warm_f = side_f.pool.stats().allocated;
    for (i, op) in ds.ops.iter().enumerate() {
        if let Some(d) = exec(&mut linux, &mut lfp, i, op, true, &mut packets) {
            return RunOutcome {
                packets,
                divergence: Some(d),
            };
        }
    }
    let grown_l = side_l.pool.stats().allocated - warm_l;
    let grown_f = side_f.pool.stats().allocated - warm_f;
    if grown_l != 0 || grown_f != 0 {
        return RunOutcome {
            packets,
            divergence: Some(Divergence {
                op: ds.ops.len(),
                kind: "pool-growth",
                steady: false,
                detail: format!(
                    "buffer pool grew after warm-up: linux +{grown_l}, linuxfp +{grown_f}"
                ),
            }),
        };
    }

    // Conservation ledger on the accelerated side: every injected frame
    // was decided exactly once, by the fast path or the slow path.
    let hits = registry.counter_total("linuxfp_fp_hits_total");
    let fallbacks = registry.counter_total("linuxfp_slowpath_fallbacks_total");
    let injected = registry.counter_total("linuxfp_packets_injected_total");
    if injected != packets as u64 || hits + fallbacks != injected {
        return RunOutcome {
            packets,
            divergence: Some(Divergence {
                op: ds.ops.len(),
                kind: "ledger",
                steady: false,
                detail: format!(
                    "hits {hits} + fallbacks {fallbacks} != injected {injected} \
                     (expected {packets})"
                ),
            }),
        };
    }
    // And one level down: every packet that entered a hook either hit the
    // microflow verdict cache or was counted a miss (ineligible packets
    // included). A gap here means a packet was served from the cache
    // without the ledger knowing — exactly the kind of silent shortcut
    // the differential test exists to catch.
    let fc_hits = registry.counter_total("linuxfp_flowcache_hits_total");
    let fc_misses = registry.counter_total("linuxfp_flowcache_misses_total");
    if fc_hits + fc_misses != injected {
        return RunOutcome {
            packets,
            divergence: Some(Divergence {
                op: ds.ops.len(),
                kind: "ledger",
                steady: false,
                detail: format!(
                    "flowcache hits {fc_hits} + misses {fc_misses} != injected {injected}"
                ),
            }),
        };
    }

    RunOutcome {
        packets,
        divergence: None,
    }
}

/// Replays `ds` with the flight recorder forced to 1-in-1 sampling on
/// *both* kernels and returns the per-packet trace of the first packet
/// whose solo behavior differs in the diverging burst — the span pair
/// explains *where* in the datapath the two kernels parted ways, not
/// just that they did.
///
/// Only `output` divergences have a meaningful per-packet trace;
/// anything else (ledger, pool growth, housekeeping) returns `None`.
/// The returned JSON is embedded in shrunk repro fixtures under a
/// `trace` key, which [`DiffScenario::from_json`] ignores on replay.
pub fn divergence_trace(ds: &DiffScenario, div: &Divergence) -> Option<Value> {
    if div.kind != "output" || div.op >= ds.ops.len() {
        return None;
    }
    let registry = Registry::new();
    let mut linux = LinuxPlatform::new(ds.base);
    let mut lfp = LinuxFpPlatform::with_telemetry(ds.base, ds.hook, registry.clone());
    let ring_l = linux.kernel_mut().enable_flight_recorder(4096, 1);
    let ring_f = lfp.kernel_mut().enable_flight_recorder(4096, 1);

    let (up_l, down_l) = interfaces(linux.kernel_mut());
    let (up_f, down_f) = interfaces(lfp.kernel_mut());
    let up_mac = linux.dut_mac();
    let down_mac = linux.kernel_mut().device(down_l).expect("down").mac;
    configure_extras(linux.kernel_mut(), ds, up_l, down_l);
    configure_extras(lfp.kernel_mut(), ds, up_f, down_f);
    lfp.poll_controller();

    let side_l = Side {
        pool: BufferPool::new(),
        up: up_l,
        down: down_l,
    };
    let side_f = Side {
        pool: BufferPool::new(),
        up: up_f,
        down: down_f,
    };

    let replay = |linux: &mut LinuxPlatform,
                  lfp: &mut LinuxFpPlatform,
                  op_index: usize,
                  op: &Op,
                  bursts_only: bool|
     -> Option<Value> {
        match op {
            Op::Burst {
                dir,
                packets: specs,
            } => {
                let frames: Vec<Vec<u8>> = specs
                    .iter()
                    .map(|s| build_frame(s, &ds.base, up_mac, down_mac))
                    .collect();
                let out_l = side_l.inject(linux.kernel_mut(), *dir, &frames);
                let out_f = side_f.inject(lfp.kernel_mut(), *dir, &frames);
                if op_index == div.op && bursts_only == div.steady {
                    // The first packet whose *solo* observation differs;
                    // if the burst only diverges in aggregate (e.g. a
                    // reordering), fall back to its first packet.
                    let packet = out_l
                        .iter()
                        .zip(&out_f)
                        .position(|(a, b)| {
                            observe(std::iter::once(a)) != observe(std::iter::once(b))
                        })
                        .unwrap_or(0);
                    // With 1-in-1 sampling every injected packet pushed
                    // exactly one span, so the burst occupies the last
                    // `frames.len()` slots of each ring.
                    let span_json = |ring: &TraceRing| -> Value {
                        let spans = ring.recent();
                        spans
                            .get(spans.len().saturating_sub(frames.len()) + packet)
                            .map(|s| s.to_json())
                            .unwrap_or(Value::Null)
                    };
                    let mut doc = linuxfp_json::Map::new();
                    doc.insert("op".to_string(), Value::from(div.op as u64));
                    doc.insert("steady".to_string(), Value::from(div.steady));
                    doc.insert("packet".to_string(), Value::from(packet as u64));
                    doc.insert("linux".to_string(), span_json(&ring_l));
                    doc.insert("linuxfp".to_string(), span_json(&ring_f));
                    return Some(Value::Object(doc));
                }
            }
            Op::Churn(c) if !bursts_only => {
                apply_churn(linux.kernel_mut(), c, &ds.base, down_l);
                apply_churn(lfp.kernel_mut(), c, &ds.base, down_f);
                lfp.poll_controller();
            }
            Op::Advance { ns } if !bursts_only => {
                linux.kernel_mut().advance(Nanos::from_nanos(*ns));
                lfp.kernel_mut().advance(Nanos::from_nanos(*ns));
                warm_neighbors(linux.kernel_mut(), ds, up_l, down_l);
                warm_neighbors(lfp.kernel_mut(), ds, up_f, down_f);
            }
            Op::Housekeeping if !bursts_only => {
                linux.kernel_mut().run_housekeeping();
                lfp.kernel_mut().run_housekeeping();
            }
            _ => {}
        }
        None
    };

    for (i, op) in ds.ops.iter().enumerate() {
        if let Some(v) = replay(&mut linux, &mut lfp, i, op, false) {
            return Some(v);
        }
    }
    if div.steady {
        warm_neighbors(linux.kernel_mut(), ds, up_l, down_l);
        warm_neighbors(lfp.kernel_mut(), ds, up_f, down_f);
        for (i, op) in ds.ops.iter().enumerate() {
            if let Some(v) = replay(&mut linux, &mut lfp, i, op, true) {
                return Some(v);
            }
        }
    }
    None
}

/// Replays the scenario on the accelerated (LinuxFP) kernel alone with
/// the flight recorder at 1-in-`every` sampling and returns every span
/// it records, in arrival order. This is the `linuxfp_trace` explain
/// path: any corpus fixture can be turned into per-packet traces
/// without touching the comparison machinery.
pub fn trace_scenario(ds: &DiffScenario, every: u64) -> Vec<linuxfp_telemetry::trace::TraceSpan> {
    trace_scenario_with_shards(ds, every, 1)
}

/// [`trace_scenario`] on an N-shard datapath: spans carry the owning
/// shard chosen by RSS steering and, for `shards > 1`, a `coherence`
/// stage attributing the cross-core penalties each packet paid for
/// shared state another shard (or the control plane) wrote.
pub fn trace_scenario_with_shards(
    ds: &DiffScenario,
    every: u64,
    shards: u32,
) -> Vec<linuxfp_telemetry::trace::TraceSpan> {
    let registry = Registry::new();
    let mut lfp = LinuxFpPlatform::with_telemetry(ds.base, ds.hook, registry);
    let ring = lfp.kernel_mut().enable_flight_recorder(65536, every.max(1));
    let (up_f, down_f) = interfaces(lfp.kernel_mut());
    let up_mac = lfp.dut_mac();
    let down_mac = lfp.kernel_mut().device(down_f).expect("down").mac;
    configure_extras(lfp.kernel_mut(), ds, up_f, down_f);
    lfp.poll_controller();
    if shards > 1 {
        lfp.kernel_mut()
            .sysctl_set("net.linuxfp.rss_shards", i64::from(shards))
            .expect("rss_shards sysctl");
    }
    let side = Side {
        pool: BufferPool::new(),
        up: up_f,
        down: down_f,
    };
    for op in &ds.ops {
        match op {
            Op::Burst {
                dir,
                packets: specs,
            } => {
                let frames: Vec<Vec<u8>> = specs
                    .iter()
                    .map(|s| build_frame(s, &ds.base, up_mac, down_mac))
                    .collect();
                side.inject(lfp.kernel_mut(), *dir, &frames);
            }
            Op::Churn(c) => {
                apply_churn(lfp.kernel_mut(), c, &ds.base, down_f);
                lfp.poll_controller();
            }
            Op::Advance { ns } => {
                lfp.kernel_mut().advance(Nanos::from_nanos(*ns));
                warm_neighbors(lfp.kernel_mut(), ds, up_f, down_f);
            }
            Op::Housekeeping => {
                lfp.kernel_mut().run_housekeeping();
            }
        }
    }
    ring.recent()
}

/// Re-learns every neighbor the scenario ever resolved, at the current
/// clock: the fixed testbed peers, the inside clients, the configured
/// ipvs backends, and any backends added by churn ops.
fn warm_neighbors(k: &mut Kernel, ds: &DiffScenario, up: IfIndex, down: IfIndex) {
    let now = k.now();
    k.neigh.learn(NEXT_HOP, SINK_MAC, down, now);
    k.neigh
        .learn(Ipv4Addr::new(10, 0, 1, 100), SOURCE_MAC, up, now);
    for c in 0..CLIENTS {
        k.neigh.learn(
            Ipv4Addr::new(10, 0, 1, 2 + c),
            MacAddr::from_index(0xC0 + u64::from(c)),
            up,
            now,
        );
    }
    if ds.ipvs {
        for i in 0..3u8 {
            k.neigh.learn(
                Ipv4Addr::new(10, 0, 2, 10 + i),
                MacAddr::from_index(0xB0 + u64::from(i)),
                down,
                now,
            );
        }
    }
    for op in &ds.ops {
        if let Op::Churn(ChurnOp::IpvsAddBackend { i }) = op {
            k.neigh.learn(
                Ipv4Addr::new(10, 0, 2, 13 + i % 64),
                MacAddr::from_index(0xD0 + u64::from(*i)),
                down,
                now,
            );
        }
    }
}

fn interfaces(k: &mut Kernel) -> (IfIndex, IfIndex) {
    let up = k.ifindex("ens1f0").expect("scenario upstream");
    let down = k.ifindex("ens1f1").expect("scenario downstream");
    (up, down)
}
