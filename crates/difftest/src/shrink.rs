//! Greedy shrinker: reduce a diverging scenario to a minimal repro by
//! deleting ops, then individual packets, re-running after each removal
//! and keeping any deletion that preserves the divergence. Iterates to a
//! fixed point, so the result is 1-minimal (no single deletion helps).

use crate::runner;
use crate::scenario::{DiffScenario, Op};

fn still_diverges(ds: &DiffScenario) -> bool {
    runner::run(ds).divergence.is_some()
}

/// Shrinks a diverging scenario. Returns the input unchanged if it does
/// not actually diverge.
pub fn shrink(ds: &DiffScenario) -> DiffScenario {
    let mut cur = ds.clone();
    if !still_diverges(&cur) {
        return cur;
    }
    loop {
        let mut progressed = false;

        // Pass 1: drop whole ops, last first (later ops are more likely
        // to be dead weight after the divergence point).
        let mut i = cur.ops.len();
        while i > 0 {
            i -= 1;
            if cur.ops.len() == 1 {
                break;
            }
            let mut candidate = cur.clone();
            candidate.ops.remove(i);
            if still_diverges(&candidate) {
                cur = candidate;
                progressed = true;
            }
        }

        // Pass 2: drop individual packets inside surviving bursts.
        let mut oi = cur.ops.len();
        while oi > 0 {
            oi -= 1;
            let n_packets = match &cur.ops[oi] {
                Op::Burst { packets, .. } => packets.len(),
                _ => continue,
            };
            let mut pi = n_packets;
            while pi > 0 {
                pi -= 1;
                let mut candidate = cur.clone();
                let emptied = match &mut candidate.ops[oi] {
                    Op::Burst { packets, .. } => {
                        if pi >= packets.len() {
                            continue;
                        }
                        packets.remove(pi);
                        packets.is_empty()
                    }
                    _ => unreachable!(),
                };
                if emptied {
                    if candidate.ops.len() == 1 {
                        continue;
                    }
                    candidate.ops.remove(oi);
                }
                if still_diverges(&candidate) {
                    let removed_op = emptied;
                    cur = candidate;
                    progressed = true;
                    if removed_op {
                        break;
                    }
                }
            }
        }

        if !progressed {
            break;
        }
    }
    cur.name = format!("{}-shrunk", cur.name);
    cur
}
