//! The differential-test scenario model: a randomized kernel
//! configuration plus an interleaved sequence of traffic bursts and
//! netlink churn, with a JSON round-trip so shrunk failures can be
//! checked in as self-contained regression fixtures.

use linuxfp_ebpf::hook::HookPoint;
use linuxfp_json::{json, Value};
use linuxfp_platforms::Scenario;

/// Which interface a burst enters through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// The upstream (traffic-source facing) interface.
    Up,
    /// The downstream (next-hop facing) interface — reply traffic.
    Down,
}

/// One packet of a burst, described by intent rather than bytes so the
/// builder can address it to whichever kernel is under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketSpec {
    /// A routed UDP flow to an allowed destination.
    Forward {
        /// Flow selector (picks the destination prefix and source port).
        flow: u64,
        /// Total frame length, 60..=1496.
        len: u16,
    },
    /// A UDP flow into the blacklist (fast-path drop when filtering).
    Blocked {
        /// Which blacklist rule's prefix to hit.
        rule: u32,
    },
    /// A UDP frame addressed to the DUT itself (slow-path delivery).
    ToHost {
        /// Source port.
        sport: u16,
    },
    /// An inside client's flow (masquerade workload).
    Client {
        /// Client selector (maps to 10.0.1.2..).
        client: u8,
        /// Flow selector.
        flow: u64,
    },
    /// A query to the ipvs virtual service.
    Vip {
        /// Source port (distinct ports are distinct flows).
        sport: u16,
    },
    /// A flow to the DNAT'd public destination.
    Dnat {
        /// Source port.
        sport: u16,
    },
    /// A reply from a routed server to a masqueraded flow.
    Reply {
        /// The flow whose destination sends the reply.
        server_flow: u64,
        /// Offset into the deterministic masquerade port sequence.
        port_off: u16,
    },
    /// A routed TCP SYN.
    Tcp {
        /// Flow selector.
        flow: u64,
    },
    /// A routed ICMP echo request.
    Icmp {
        /// Echo identifier (also picks the destination).
        id: u16,
    },
    /// A deliberately malformed frame (see [`MALFORMED_KINDS`]).
    Malformed {
        /// Index into [`MALFORMED_KINDS`].
        kind: u8,
        /// Flow selector for the template frame.
        flow: u64,
    },
    /// A routed TCP segment carrying an HTTP-ish payload (see
    /// [`HTTP_VARIANTS`] for the payload taxonomy).
    Http {
        /// Flow selector (picks the destination and source port).
        flow: u64,
        /// Index into [`HTTP_VARIANTS`].
        variant: u8,
    },
}

/// The HTTP payload taxonomy, by `Http::variant` index: a well-formed
/// allowed request, a request every L7 deny policy matches, a request
/// line split across segments, binary garbage, and an empty payload.
pub const HTTP_VARIANTS: &[&str] = &["allowed", "blocked", "split", "garbage", "empty"];

/// The malformed-frame taxonomy, by `Malformed::kind` index.
pub const MALFORMED_KINDS: &[&str] = &[
    "runt",
    "truncated-ipv4",
    "non-ipv4-ethertype",
    "bad-ip-version",
    "ttl-one",
    "bad-ipv4-checksum",
    "fragment",
];

/// One configuration change applied mid-stream through the same
/// standard APIs the controller watches over netlink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// `iptables -A FORWARD -d <blacklist[rule]> -j DROP`.
    IptAppend {
        /// Blacklist prefix index.
        rule: u32,
    },
    /// `iptables -F FORWARD`.
    IptFlush,
    /// `ip route add` for a prefix beyond the base set.
    RouteAdd {
        /// Prefix index offset past `base.prefixes`.
        i: u32,
    },
    /// `ip route del` for one of the base prefixes.
    RouteDel {
        /// Base prefix index (mod `base.prefixes`).
        i: u32,
    },
    /// `iptables -t nat -A PREROUTING ... -j DNAT` for a fresh port.
    NatAppendDnat {
        /// Public destination port to claim.
        dport: u16,
    },
    /// `iptables -t nat -F`.
    NatFlush,
    /// `ipset add blacklist <prefix[i]>` (ipset scenarios only).
    IpsetAdd {
        /// Blacklist prefix index.
        i: u32,
    },
    /// `ipvsadm -a` adding one more backend to the virtual service.
    IpvsAddBackend {
        /// Backend selector (maps to 10.0.2.13..).
        i: u8,
    },
    /// `ip route replace` of a base prefix with its existing next hop: a
    /// semantics-free netlink event (FRR resyncing over FPM does this
    /// constantly) that still invalidates every derived fast-path state.
    RouteReplace {
        /// Base prefix index (mod `base.prefixes`).
        i: u32,
    },
    /// `ipset flush blacklist` (ipset scenarios only): every member gone
    /// in one event, previously-blocked flows start forwarding.
    IpsetFlush,
    /// Shrinks the conntrack table capacity (`nf_conntrack_max`), so new
    /// tracked flows evict the least-recently-seen entries.
    CtCap {
        /// The new capacity (small, to force eviction pressure).
        cap: u32,
    },
    /// A scratch route added and deleted back-to-back: net configuration
    /// unchanged, but the controller resynthesizes and swaps the FPM
    /// program twice.
    FpmSwap,
    /// Appends one L7 deny policy for a `/blocked/<i>` URL prefix.
    L7Append {
        /// Blocked-prefix index.
        i: u32,
    },
    /// Flushes the L7 policy table (and every pinned connection
    /// verdict) in one event.
    L7Flush,
}

/// One step of a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Inject a burst of frames through one interface.
    Burst {
        /// Ingress side.
        dir: Dir,
        /// The frames, in order.
        packets: Vec<PacketSpec>,
    },
    /// Reconfigure both kernels, then let the controller react.
    Churn(ChurnOp),
    /// Advance virtual time on both kernels.
    Advance {
        /// Nanoseconds to advance.
        ns: u64,
    },
    /// Run periodic slow-path housekeeping on both kernels.
    Housekeeping,
}

/// A complete differential scenario: what to configure and what to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffScenario {
    /// Human-readable label (seed tag or fixture name).
    pub name: String,
    /// The generator seed this scenario came from (0 for hand-written).
    pub seed: u64,
    /// The base router/gateway configuration.
    pub base: Scenario,
    /// Hook point for the LinuxFP side.
    pub hook: HookPoint,
    /// Whether an ipvs virtual service (VIP + 3 backends) is configured.
    pub ipvs: bool,
    /// Whether a DNAT rule for the public service destination is
    /// configured at start-of-day.
    pub dnat: bool,
    /// The interleaved traffic / churn / time steps.
    pub ops: Vec<Op>,
}

// ---------------------------------------------------------------------
// JSON round-trip (fixture format)
// ---------------------------------------------------------------------

fn dir_str(d: Dir) -> &'static str {
    match d {
        Dir::Up => "up",
        Dir::Down => "down",
    }
}

fn packet_json(p: &PacketSpec) -> Value {
    let (kind, a, b) = match *p {
        PacketSpec::Forward { flow, len } => ("forward", flow, u64::from(len)),
        PacketSpec::Blocked { rule } => ("blocked", u64::from(rule), 0),
        PacketSpec::ToHost { sport } => ("to_host", u64::from(sport), 0),
        PacketSpec::Client { client, flow } => ("client", u64::from(client), flow),
        PacketSpec::Vip { sport } => ("vip", u64::from(sport), 0),
        PacketSpec::Dnat { sport } => ("dnat", u64::from(sport), 0),
        PacketSpec::Reply {
            server_flow,
            port_off,
        } => ("reply", server_flow, u64::from(port_off)),
        PacketSpec::Tcp { flow } => ("tcp", flow, 0),
        PacketSpec::Icmp { id } => ("icmp", u64::from(id), 0),
        PacketSpec::Malformed { kind, flow } => ("malformed", u64::from(kind), flow),
        PacketSpec::Http { flow, variant } => ("http", flow, u64::from(variant)),
    };
    json!({"kind": kind, "a": a, "b": b})
}

fn churn_json(c: &ChurnOp) -> Value {
    let (kind, a) = match *c {
        ChurnOp::IptAppend { rule } => ("ipt_append", u64::from(rule)),
        ChurnOp::IptFlush => ("ipt_flush", 0),
        ChurnOp::RouteAdd { i } => ("route_add", u64::from(i)),
        ChurnOp::RouteDel { i } => ("route_del", u64::from(i)),
        ChurnOp::NatAppendDnat { dport } => ("nat_append_dnat", u64::from(dport)),
        ChurnOp::NatFlush => ("nat_flush", 0),
        ChurnOp::IpsetAdd { i } => ("ipset_add", u64::from(i)),
        ChurnOp::IpvsAddBackend { i } => ("ipvs_add_backend", u64::from(i)),
        ChurnOp::RouteReplace { i } => ("route_replace", u64::from(i)),
        ChurnOp::IpsetFlush => ("ipset_flush", 0),
        ChurnOp::CtCap { cap } => ("ct_cap", u64::from(cap)),
        ChurnOp::FpmSwap => ("fpm_swap", 0),
        ChurnOp::L7Append { i } => ("l7_append", u64::from(i)),
        ChurnOp::L7Flush => ("l7_flush", 0),
    };
    json!({"kind": kind, "a": a})
}

impl DiffScenario {
    /// Renders the scenario as a pretty-printed JSON fixture.
    pub fn to_json(&self) -> String {
        linuxfp_json::to_string_pretty(&self.to_json_value())
    }

    /// The fixture document as a JSON value, for callers that attach
    /// extra keys (e.g. the `trace` of a captured divergence) before
    /// serializing. [`DiffScenario::from_json`] ignores unknown keys, so
    /// decorated fixtures still round-trip.
    pub fn to_json_value(&self) -> Value {
        let ops: Vec<Value> = self
            .ops
            .iter()
            .map(|op| match op {
                Op::Burst { dir, packets } => {
                    let pkts: Vec<Value> = packets.iter().map(packet_json).collect();
                    json!({"burst": {"dir": dir_str(*dir), "packets": pkts}})
                }
                Op::Churn(c) => json!({"churn": churn_json(c)}),
                Op::Advance { ns } => json!({"advance_ns": *ns}),
                Op::Housekeeping => json!({"housekeeping": true}),
            })
            .collect();
        let doc = json!({
            "name": self.name.as_str(),
            "seed": self.seed,
            "base": {
                "prefixes": self.base.prefixes,
                "filter_rules": self.base.filter_rules,
                "use_ipset": self.base.use_ipset,
                "masquerade": self.base.masquerade,
                "l7_policies": self.base.l7_policies,
            },
            "hook": match self.hook { HookPoint::Xdp => "xdp", HookPoint::Tc => "tc" },
            "ipvs": self.ipvs,
            "dnat": self.dnat,
            "ops": ops,
        });
        doc
    }

    /// Parses a fixture produced by [`DiffScenario::to_json`].
    pub fn from_json(text: &str) -> Result<DiffScenario, String> {
        let doc = linuxfp_json::from_str(text).map_err(|e| e.to_string())?;
        let obj = doc.as_object().ok_or("fixture root must be an object")?;
        let base_v = doc.get("base").ok_or("missing base")?;
        let base = Scenario {
            prefixes: field_u64(base_v, "prefixes")? as u32,
            filter_rules: field_u64(base_v, "filter_rules")? as u32,
            use_ipset: field_bool(base_v, "use_ipset")?,
            masquerade: field_bool(base_v, "masquerade")?,
            // Absent in fixtures checked in before the L7 subsystem.
            l7_policies: base_v["l7_policies"].as_u64().unwrap_or(0) as u32,
        };
        let hook = match doc["hook"].as_str() {
            Some("xdp") => HookPoint::Xdp,
            Some("tc") => HookPoint::Tc,
            other => return Err(format!("bad hook {other:?}")),
        };
        let ops_v = doc["ops"].as_array().ok_or("missing ops array")?;
        let mut ops = Vec::with_capacity(ops_v.len());
        for (i, op_v) in ops_v.iter().enumerate() {
            ops.push(parse_op(op_v).map_err(|e| format!("op {i}: {e}"))?);
        }
        Ok(DiffScenario {
            name: doc["name"].as_str().unwrap_or("unnamed").to_string(),
            seed: obj.get("seed").and_then(Value::as_u64).unwrap_or(0),
            base,
            hook,
            ipvs: field_bool(&doc, "ipvs")?,
            dnat: field_bool(&doc, "dnat")?,
            ops,
        })
    }
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v[key]
        .as_u64()
        .ok_or_else(|| format!("missing number {key}"))
}

fn field_bool(v: &Value, key: &str) -> Result<bool, String> {
    v[key]
        .as_bool()
        .ok_or_else(|| format!("missing bool {key}"))
}

fn parse_op(v: &Value) -> Result<Op, String> {
    if let Some(burst) = v.get("burst") {
        let dir = match burst["dir"].as_str() {
            Some("up") => Dir::Up,
            Some("down") => Dir::Down,
            other => return Err(format!("bad dir {other:?}")),
        };
        let pkts = burst["packets"].as_array().ok_or("burst without packets")?;
        let packets = pkts
            .iter()
            .map(parse_packet)
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Op::Burst { dir, packets });
    }
    if let Some(churn) = v.get("churn") {
        return Ok(Op::Churn(parse_churn(churn)?));
    }
    if let Some(ns) = v.get("advance_ns").and_then(Value::as_u64) {
        return Ok(Op::Advance { ns });
    }
    if v.get("housekeeping").is_some() {
        return Ok(Op::Housekeeping);
    }
    Err(format!("unrecognized op {v}"))
}

fn parse_packet(v: &Value) -> Result<PacketSpec, String> {
    let a = field_u64(v, "a")?;
    let b = v["b"].as_u64().unwrap_or(0);
    match v["kind"].as_str() {
        Some("forward") => Ok(PacketSpec::Forward {
            flow: a,
            len: b as u16,
        }),
        Some("blocked") => Ok(PacketSpec::Blocked { rule: a as u32 }),
        Some("to_host") => Ok(PacketSpec::ToHost { sport: a as u16 }),
        Some("client") => Ok(PacketSpec::Client {
            client: a as u8,
            flow: b,
        }),
        Some("vip") => Ok(PacketSpec::Vip { sport: a as u16 }),
        Some("dnat") => Ok(PacketSpec::Dnat { sport: a as u16 }),
        Some("reply") => Ok(PacketSpec::Reply {
            server_flow: a,
            port_off: b as u16,
        }),
        Some("tcp") => Ok(PacketSpec::Tcp { flow: a }),
        Some("icmp") => Ok(PacketSpec::Icmp { id: a as u16 }),
        Some("malformed") => Ok(PacketSpec::Malformed {
            kind: a as u8,
            flow: b,
        }),
        Some("http") => Ok(PacketSpec::Http {
            flow: a,
            variant: b as u8,
        }),
        other => Err(format!("bad packet kind {other:?}")),
    }
}

fn parse_churn(v: &Value) -> Result<ChurnOp, String> {
    let a = v["a"].as_u64().unwrap_or(0);
    match v["kind"].as_str() {
        Some("ipt_append") => Ok(ChurnOp::IptAppend { rule: a as u32 }),
        Some("ipt_flush") => Ok(ChurnOp::IptFlush),
        Some("route_add") => Ok(ChurnOp::RouteAdd { i: a as u32 }),
        Some("route_del") => Ok(ChurnOp::RouteDel { i: a as u32 }),
        Some("nat_append_dnat") => Ok(ChurnOp::NatAppendDnat { dport: a as u16 }),
        Some("nat_flush") => Ok(ChurnOp::NatFlush),
        Some("ipset_add") => Ok(ChurnOp::IpsetAdd { i: a as u32 }),
        Some("ipvs_add_backend") => Ok(ChurnOp::IpvsAddBackend { i: a as u8 }),
        Some("route_replace") => Ok(ChurnOp::RouteReplace { i: a as u32 }),
        Some("ipset_flush") => Ok(ChurnOp::IpsetFlush),
        Some("ct_cap") => Ok(ChurnOp::CtCap { cap: a as u32 }),
        Some("fpm_swap") => Ok(ChurnOp::FpmSwap),
        Some("l7_append") => Ok(ChurnOp::L7Append { i: a as u32 }),
        Some("l7_flush") => Ok(ChurnOp::L7Flush),
        other => Err(format!("bad churn kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiffScenario {
        DiffScenario {
            name: "sample".to_string(),
            seed: 7,
            base: Scenario::nat_gateway(),
            hook: HookPoint::Tc,
            ipvs: true,
            dnat: true,
            ops: vec![
                Op::Burst {
                    dir: Dir::Up,
                    packets: vec![
                        PacketSpec::Forward { flow: 3, len: 60 },
                        PacketSpec::Client { client: 1, flow: 2 },
                        PacketSpec::Malformed { kind: 5, flow: 0 },
                        PacketSpec::Http {
                            flow: 1,
                            variant: 3,
                        },
                    ],
                },
                Op::Churn(ChurnOp::RouteDel { i: 1 }),
                Op::Churn(ChurnOp::L7Append { i: 4 }),
                Op::Churn(ChurnOp::L7Flush),
                Op::Churn(ChurnOp::RouteReplace { i: 0 }),
                Op::Churn(ChurnOp::IpsetFlush),
                Op::Churn(ChurnOp::CtCap { cap: 32 }),
                Op::Churn(ChurnOp::FpmSwap),
                Op::Advance { ns: 1_000_000 },
                Op::Housekeeping,
                Op::Burst {
                    dir: Dir::Down,
                    packets: vec![PacketSpec::Reply {
                        server_flow: 2,
                        port_off: 0,
                    }],
                },
            ],
        }
    }

    #[test]
    fn fixture_round_trips() {
        let s = sample();
        let text = s.to_json();
        let back = DiffScenario::from_json(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn malformed_fixture_is_rejected() {
        assert!(DiffScenario::from_json("{}").is_err());
        assert!(DiffScenario::from_json("not json").is_err());
        let mut s = sample().to_json();
        s = s
            .replace("\"xdp\"", "\"afxdp\"")
            .replace("\"tc\"", "\"afxdp\"");
        assert!(DiffScenario::from_json(&s).is_err());
    }
}
