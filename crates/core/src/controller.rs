//! The LinuxFP controller daemon: introspect → model → synthesize →
//! deploy, continuously.
//!
//! This is the component that makes the acceleration *transparent*: users
//! keep configuring the kernel with their tools of choice (`ip`, `brctl`,
//! `iptables`, a Kubernetes CNI); the controller hears about it over
//! netlink, rebuilds the processing graph, synthesizes a minimal fast
//! path, and atomically swaps it in. [`ReactionReport`] captures the
//! reaction time of each update — the quantity paper Table VI reports.

use crate::capability::Capabilities;
use crate::deploy::{DeployError, Deployer};
use crate::fpm::CustomFpm;
use crate::graph::build_graph;
use crate::objects::ObjectStore;
use crate::synth::synthesize_with_customs;
use linuxfp_ebpf::hook::HookPoint;
use linuxfp_ebpf::maps::MapStore;
use linuxfp_json::Value;
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::netlink::{NlGroup, SubscriberId};
use linuxfp_netstack::stack::Kernel;
use linuxfp_sim::Nanos;
use linuxfp_telemetry::{Registry, Scale};
use std::collections::BTreeSet;

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Which hook to attach fast paths to. XDP is the default (paper:
    /// "Unless stated otherwise, we use XDP driver mode"); TC suits
    /// container hosts where the `sk_buff` is unavoidable.
    pub hook: HookPoint,
    /// Kernel capabilities available to synthesis.
    pub capabilities: Capabilities,
    /// User-supplied custom modules inlined into every synthesized fast
    /// path (paper §VIII, e.g. monitoring). Verifier-gated like all
    /// synthesized code.
    pub custom_modules: Vec<CustomFpm>,
    /// Telemetry registry: when set, the controller records reconcile
    /// latency histograms, graph-rebuild counts and verifier tallies, and
    /// its deployer labels per-FPM hit/fallback counters.
    pub telemetry: Option<Registry>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            hook: HookPoint::Xdp,
            capabilities: Capabilities::full(),
            custom_modules: Vec::new(),
            telemetry: None,
        }
    }
}

/// What triggered a controller update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Trigger {
    /// Initial synchronization at controller start.
    Startup,
    /// Link state / enslavement change.
    Link,
    /// Address change.
    Addr,
    /// Route change.
    Route,
    /// Netfilter rule/set change.
    Netfilter,
    /// Sysctl change.
    Sysctl,
    /// A custom module was installed or removed at runtime.
    CustomModule,
}

/// Report of one controller reaction: what triggered it, how long the
/// introspect→deploy pipeline took (in modeled virtual time, the quantity
/// of paper Table VI), and what was deployed.
#[derive(Debug, Clone)]
pub struct ReactionReport {
    /// What triggered the update.
    pub triggers: Vec<Trigger>,
    /// End-to-end reaction time (configuration seen → data path
    /// installed).
    pub reaction: Nanos,
    /// Per-stage breakdown of the reaction time.
    pub stages: Vec<(&'static str, Nanos)>,
    /// Whether the processing graph changed (and a deploy happened).
    pub changed: bool,
    /// Installed programs as `(interface, instruction count)`.
    pub installed: Vec<(String, usize)>,
    /// Interfaces whose fast path was removed.
    pub removed: Vec<IfIndex>,
    /// Total FPM instances across all installed programs.
    pub fpm_count: usize,
}

/// The controller daemon state.
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    subscription: SubscriberId,
    deployer: Deployer,
    graph: Value,
}

impl Controller {
    /// Attaches a controller to a kernel: subscribes to netlink groups,
    /// performs the initial introspection, and deploys fast paths for the
    /// existing configuration.
    ///
    /// # Errors
    ///
    /// Propagates deployment failures.
    pub fn attach(
        kernel: &mut Kernel,
        cfg: ControllerConfig,
    ) -> Result<(Controller, ReactionReport), DeployError> {
        let subscription = kernel.netlink_subscribe(&[
            NlGroup::Link,
            NlGroup::Addr,
            NlGroup::Route,
            NlGroup::Netfilter,
            NlGroup::Sysctl,
        ]);
        let mut deployer = Deployer::new(cfg.hook, MapStore::new());
        if let Some(registry) = &cfg.telemetry {
            registry.describe(
                "linuxfp_reconcile_seconds",
                "Controller reaction time per reconcile (configuration seen -> data path installed)",
            );
            registry.describe(
                "linuxfp_graph_rebuilds_total",
                "Processing-graph rebuilds performed by the controller",
            );
            registry.describe(
                "linuxfp_reconciles_total",
                "Controller reconcile rounds by whether the graph changed",
            );
            deployer.set_telemetry(registry.clone());
        }
        let mut controller = Controller {
            cfg,
            subscription,
            deployer,
            graph: Value::Null,
        };
        let report = controller.sync(kernel, vec![Trigger::Startup])?;
        Ok((controller, report))
    }

    /// Processes pending netlink notifications; returns a report if any
    /// were seen (whether or not the graph changed).
    ///
    /// # Errors
    ///
    /// Propagates deployment failures.
    pub fn poll(&mut self, kernel: &mut Kernel) -> Result<Option<ReactionReport>, DeployError> {
        let events = kernel.netlink_poll(self.subscription);
        if events.is_empty() {
            return Ok(None);
        }
        let mut triggers = BTreeSet::new();
        for event in &events {
            triggers.insert(match event.group() {
                NlGroup::Link => Trigger::Link,
                NlGroup::Addr => Trigger::Addr,
                NlGroup::Route => Trigger::Route,
                NlGroup::Netfilter => Trigger::Netfilter,
                NlGroup::Sysctl => Trigger::Sysctl,
                NlGroup::Neigh => continue, // neighbor state is read live via helpers
            });
        }
        if triggers.is_empty() {
            return Ok(None);
        }
        self.sync(kernel, triggers.into_iter().collect()).map(Some)
    }

    /// Installs a user-supplied custom module at runtime (paper §VIII):
    /// every fast path is resynthesized with the module inlined, verified
    /// and atomically swapped.
    ///
    /// # Errors
    ///
    /// Propagates verification/deployment failures; on failure the module
    /// is removed again and the previous data paths stay installed.
    pub fn install_custom_module(
        &mut self,
        kernel: &mut Kernel,
        module: CustomFpm,
    ) -> Result<ReactionReport, DeployError> {
        self.cfg.custom_modules.push(module);
        let old_graph = std::mem::replace(&mut self.graph, Value::Null);
        match self.sync(kernel, vec![Trigger::CustomModule]) {
            Ok(report) => Ok(report),
            Err(e) => {
                self.cfg.custom_modules.pop();
                self.graph = old_graph;
                Err(e)
            }
        }
    }

    /// The current JSON processing graph.
    pub fn graph(&self) -> &Value {
        &self.graph
    }

    /// The deployer (for inspecting installed programs).
    pub fn deployer(&self) -> &Deployer {
        &self.deployer
    }

    /// Records one reconcile round in the telemetry registry: the
    /// reaction-latency histogram (modeled virtual time), the
    /// changed/unchanged tally, and a trace event naming the triggers.
    fn record_reconcile(&self, triggers: &[Trigger], reaction: Nanos, changed: bool) {
        let Some(reg) = &self.cfg.telemetry else {
            return;
        };
        reg.histogram("linuxfp_reconcile_seconds", &[], Scale::NanosToSeconds)
            .record(reaction.as_nanos());
        let label = if changed { "true" } else { "false" };
        reg.counter("linuxfp_reconciles_total", &[("changed", label)])
            .inc();
        reg.events().push(
            "reconcile",
            format!("triggers {triggers:?}, reaction {reaction}, changed {changed}"),
        );
    }

    /// Runs the introspect → graph → synthesize → deploy pipeline,
    /// accumulating the modeled reaction time of each stage.
    fn sync(
        &mut self,
        kernel: &mut Kernel,
        triggers: Vec<Trigger>,
    ) -> Result<ReactionReport, DeployError> {
        let cost = kernel.cost_model().clone();
        let mut stages: Vec<(&'static str, Nanos)> = Vec::new();
        let charge = |stages: &mut Vec<(&'static str, Nanos)>, name, ns: f64| {
            stages.push((name, Nanos::from_nanos_f64(ns)));
        };

        charge(&mut stages, "detect", cost.ctrl_detect_ns);
        // Re-query exactly the subsystems the notifications touched; the
        // iptables query (libiptc-style) is the slow one, which is why
        // the paper's Table VI shows ~1 s for iptables vs ~0.5 s for
        // link-level commands.
        let mut need_link = false;
        let mut need_route = false;
        let mut need_ipt = false;
        for t in &triggers {
            match t {
                Trigger::Startup => {
                    need_link = true;
                    need_route = true;
                    need_ipt = true;
                }
                Trigger::Link => need_link = true,
                Trigger::Addr | Trigger::Route | Trigger::Sysctl => need_route = true,
                Trigger::Netfilter => need_ipt = true,
                Trigger::CustomModule => {}
            }
        }
        if need_link {
            charge(&mut stages, "introspect_links", cost.ctrl_requery_link_ns);
        }
        if need_route {
            charge(&mut stages, "introspect_routes", cost.ctrl_requery_route_ns);
        }
        if need_ipt {
            charge(&mut stages, "introspect_iptables", cost.ctrl_requery_ipt_ns);
        }

        let store = ObjectStore::snapshot(kernel);
        let graph = build_graph(&store, &self.cfg.capabilities);
        charge(&mut stages, "build_graph", cost.ctrl_graph_build_ns);
        if let Some(reg) = &self.cfg.telemetry {
            reg.counter("linuxfp_graph_rebuilds_total", &[]).inc();
        }

        // The pipeline regenerates on every observed state change (as the
        // paper's Jinja-template + clang pipeline does); unchanged
        // programs are detected at the end and left untouched, so only
        // changed ones pay verification + load.
        let fps = synthesize_with_customs(&graph, &self.cfg.custom_modules)
            .map_err(|e| DeployError::Device(e.to_string()))?;
        let fpm_count: usize = fps.iter().map(|fp| fp.fpm_count).sum();
        charge(
            &mut stages,
            "synthesize",
            cost.ctrl_synth_per_fpm_ns * fpm_count.max(1) as f64,
        );
        charge(
            &mut stages,
            "optimize",
            cost.ctrl_opt_per_fpm_ns * fpm_count.max(1) as f64,
        );
        charge(
            &mut stages,
            "compile",
            cost.ctrl_compile_base_ns + cost.ctrl_compile_per_fpm_ns * fpm_count as f64,
        );

        if graph == self.graph {
            let reaction = stages.iter().map(|(_, ns)| *ns).sum();
            self.record_reconcile(&triggers, reaction, false);
            return Ok(ReactionReport {
                triggers,
                reaction,
                stages,
                changed: false,
                installed: Vec::new(),
                removed: Vec::new(),
                fpm_count,
            });
        }

        let outcome = self.deployer.deploy(kernel, &fps)?;
        charge(
            &mut stages,
            "verify_load",
            cost.ctrl_verify_load_ns * outcome.swapped.max(1) as f64,
        );
        charge(&mut stages, "swap", cost.ctrl_swap_ns);

        self.graph = graph;
        let reaction = stages.iter().map(|(_, ns)| *ns).sum();
        self.record_reconcile(&triggers, reaction, true);
        Ok(ReactionReport {
            triggers,
            reaction,
            stages,
            changed: true,
            installed: outcome.installed,
            removed: outcome.removed,
            fpm_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxfp_netstack::netfilter::{ChainHook, IptRule};
    use linuxfp_netstack::stack::IfAddr;
    use linuxfp_packet::{builder, MacAddr};
    use std::net::Ipv4Addr;

    fn base_kernel() -> (Kernel, IfIndex, IfIndex) {
        let mut k = Kernel::new(6);
        let eth0 = k.add_physical("eth0").unwrap();
        let eth1 = k.add_physical("eth1").unwrap();
        k.ip_link_set_up(eth0).unwrap();
        k.ip_link_set_up(eth1).unwrap();
        (k, eth0, eth1)
    }

    #[test]
    fn controller_reacts_to_ip_commands_transparently() {
        let (mut k, eth0, eth1) = base_kernel();
        let (mut ctrl, initial) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
        assert_eq!(initial.triggers, vec![Trigger::Startup]);
        assert!(!initial.changed || initial.installed.is_empty());

        // The user runs plain `ip` commands; no LinuxFP-specific API.
        k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
        k.ip_route_add(
            "10.10.0.0/16".parse().unwrap(),
            Some(Ipv4Addr::new(10, 0, 2, 2)),
            None,
        )
        .unwrap();
        let report = ctrl.poll(&mut k).unwrap().unwrap();
        assert!(report.changed);
        assert_eq!(report.installed.len(), 2);
        assert_eq!(report.fpm_count, 2);
        assert!(report.reaction > Nanos::ZERO);
        assert!(report.triggers.contains(&Trigger::Route));

        // And traffic is now fast-pathed.
        let now = k.now();
        k.neigh.learn(
            Ipv4Addr::new(10, 0, 2, 2),
            MacAddr::from_index(0xBEEF),
            eth1,
            now,
        );
        let frame = builder::udp_packet(
            MacAddr::from_index(1),
            k.device(eth0).unwrap().mac,
            Ipv4Addr::new(10, 0, 1, 100),
            Ipv4Addr::new(10, 10, 3, 7),
            1,
            2,
            b"x",
        );
        let out = k.receive(eth0, frame);
        assert_eq!(out.transmissions().len(), 1);
        assert_eq!(out.cost.stage_count("skb_alloc"), 0, "fast path skips skb");
    }

    #[test]
    fn iptables_reaction_is_slower_than_link_reaction() {
        // Paper Table VI: iptables (1.028 s) > ip addr (0.602 s) >
        // brctl addbr (0.539) > brctl addif (0.493).
        let (mut k, eth0, eth1) = base_kernel();
        let (mut ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
        k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
        let addr_report = ctrl.poll(&mut k).unwrap().unwrap();

        k.iptables_append(
            ChainHook::Forward,
            IptRule::drop_dst("10.10.3.0/24".parse().unwrap()),
        );
        let ipt_report = ctrl.poll(&mut k).unwrap().unwrap();
        assert!(ipt_report.changed);
        assert!(
            ipt_report.reaction > addr_report.reaction,
            "iptables {} vs addr {}",
            ipt_report.reaction,
            addr_report.reaction
        );
        // Both land in the sub-~1.5 s band of Table VI.
        assert!(ipt_report.reaction.as_secs_f64() < 1.5);
        assert!(addr_report.reaction.as_secs_f64() > 0.2);
    }

    #[test]
    fn unchanged_configuration_does_not_redeploy() {
        let (mut k, eth0, _) = base_kernel();
        let (mut ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
        // A link flap that doesn't alter the graph (no routing at all).
        k.ip_link_set_down(eth0).unwrap();
        k.ip_link_set_up(eth0).unwrap();
        let report = ctrl.poll(&mut k).unwrap().unwrap();
        assert!(!report.changed);
        assert!(report.installed.is_empty());
        // No events at all -> no report.
        assert!(ctrl.poll(&mut k).unwrap().is_none());
    }

    #[test]
    fn removing_config_removes_fast_path() {
        let (mut k, eth0, eth1) = base_kernel();
        let (mut ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
        k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
        ctrl.poll(&mut k).unwrap().unwrap();
        assert_eq!(ctrl.deployer().active_interfaces().len(), 2);

        k.sysctl_set("net.ipv4.ip_forward", 0).unwrap();
        let report = ctrl.poll(&mut k).unwrap().unwrap();
        assert!(report.changed);
        assert_eq!(report.removed.len(), 2);
        assert!(ctrl.deployer().active_interfaces().is_empty());
    }

    #[test]
    fn graph_is_exposed() {
        let (mut k, _, _) = base_kernel();
        let (ctrl, _) = Controller::attach(&mut k, ControllerConfig::default()).unwrap();
        assert!(ctrl.graph().get("interfaces").is_some());
    }

    #[test]
    fn stock_kernel_capabilities_limit_acceleration() {
        let (mut k, _, _) = base_kernel();
        let p1 = k.add_physical("p1").unwrap();
        let br = k.add_bridge("br0").unwrap();
        k.brctl_addif(br, p1).unwrap();
        k.ip_link_set_up(p1).unwrap();
        k.ip_link_set_up(br).unwrap();
        let cfg = ControllerConfig {
            hook: HookPoint::Xdp,
            capabilities: Capabilities::stock_kernel(),
            ..ControllerConfig::default()
        };
        let (ctrl, report) = Controller::attach(&mut k, cfg).unwrap();
        // Bridging can't be accelerated without bpf_fdb_lookup.
        assert!(report.installed.is_empty());
        assert!(ctrl.deployer().active_interfaces().is_empty());
    }
}
