//! LinuxFP objects: typed descriptions of network services discovered in
//! the kernel.
//!
//! The Service Introspection component converts netlink dumps and
//! notifications into these objects (paper §IV-C1: "Received messages are
//! converted into network object descriptions (LinuxFP objects) containing
//! a type and a set of configuration attributes").

use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::netlink::{LinkInfo, RouteInfo};
use linuxfp_netstack::stack::Kernel;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A network-interface object with its derived attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceObject {
    /// Interface index.
    pub index: IfIndex,
    /// Interface name.
    pub name: String,
    /// Device kind (`physical`, `veth`, `bridge`, `vxlan`).
    pub kind: String,
    /// Up/down state.
    pub up: bool,
    /// Whether the interface has at least one IPv4 address.
    pub has_ip: bool,
    /// Assigned addresses.
    pub addrs: Vec<(Ipv4Addr, u8)>,
    /// Hardware address octets.
    pub mac: [u8; 6],
    /// Enslaving bridge, if this interface is a bridge port.
    pub master: Option<IfIndex>,
    /// Bridge attributes when this interface *is* a bridge.
    pub bridge: Option<BridgeObject>,
}

/// Bridge-specific attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BridgeObject {
    /// Whether STP is enabled.
    pub stp_enabled: bool,
    /// Whether VLAN filtering is enabled.
    pub vlan_filtering: bool,
    /// Member ports.
    pub ports: Vec<IfIndex>,
    /// Per-port PVIDs (for specializing the VLAN snippet per port).
    pub port_pvids: Vec<(IfIndex, u16)>,
}

/// One accelerable virtual service (UDP with at least one backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpvsServiceObject {
    /// The service address.
    pub vip: [u8; 4],
    /// The service port.
    pub port: u16,
}

/// Summary of the netfilter configuration relevant to synthesis.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetfilterObject {
    /// Rules in the FORWARD chain.
    pub forward_rules: usize,
    /// Whether any FORWARD rule matches against an ipset.
    pub uses_ipset: bool,
    /// Configuration generation (bumped on every change).
    pub generation: u64,
}

/// Summary of the iptables `nat` table relevant to synthesis.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NatObject {
    /// DNAT rules in the PREROUTING chain.
    pub dnat_rules: usize,
    /// SNAT/MASQUERADE rules in the POSTROUTING chain.
    pub snat_rules: usize,
    /// Configuration generation (bumped on every change).
    pub generation: u64,
}

/// Summary of the L7 request-policy table relevant to synthesis.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct L7Object {
    /// Request policies currently configured.
    pub rules: usize,
    /// Configuration generation (bumped on policy changes, flushes, and
    /// connection-pin evictions).
    pub generation: u64,
}

/// The controller's coherent snapshot of kernel networking state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObjectStore {
    /// All interfaces, keyed by index.
    pub interfaces: BTreeMap<IfIndex, InterfaceObject>,
    /// All routes.
    pub routes: Vec<RouteInfo>,
    /// Whether IPv4 forwarding is enabled.
    pub ip_forward: bool,
    /// Whether `bridge-nf-call-iptables` is enabled.
    pub bridge_nf: bool,
    /// Whether the synthesis-time bytecode optimizer is enabled
    /// (`net.linuxfp.opt`). Part of the snapshot so flipping the sysctl
    /// changes the graph and triggers a redeploy in whichever form the
    /// operator asked for.
    pub opt: bool,
    /// Netfilter summary.
    pub netfilter: NetfilterObject,
    /// Accelerable ipvs services.
    pub ipvs_services: Vec<IpvsServiceObject>,
    /// Whether any ipvs service exists at all (accelerable or not).
    pub ipvs_configured: bool,
    /// Iptables `nat` table summary.
    pub nat: NatObject,
    /// Whether NAT can touch traffic: any rule exists, or established
    /// bindings from since-removed rules are still live in conntrack
    /// (the slow path keeps honoring those, so the fast path must too).
    pub nat_configured: bool,
    /// L7 request-policy table summary.
    pub l7: L7Object,
    /// Whether the L7 policy engine can touch traffic: any policy
    /// exists, or connection pins are still live (the slow path keeps
    /// honoring pinned verdicts, so the fast path must too).
    pub l7_configured: bool,
}

impl ObjectStore {
    /// Builds a complete snapshot from kernel dumps — what the controller
    /// does at startup and after relevant notifications.
    pub fn snapshot(kernel: &Kernel) -> Self {
        let mut interfaces = BTreeMap::new();
        for link in kernel.dump_links() {
            interfaces.insert(link.index, InterfaceObject::from_link(&link, kernel));
        }
        let nf = &kernel.netfilter;
        let forward = nf.rules(linuxfp_netstack::netfilter::ChainHook::Forward);
        let ipvs_services = kernel
            .ipvs
            .services()
            .iter()
            .filter(|s| s.proto == linuxfp_packet::ipv4::IpProto::Udp && !s.backends().is_empty())
            .map(|s| IpvsServiceObject {
                vip: s.vip.octets(),
                port: s.port,
            })
            .collect();
        ObjectStore {
            interfaces,
            routes: kernel.dump_routes(),
            ip_forward: kernel.ip_forward_enabled(),
            bridge_nf: kernel.bridge_nf_enabled(),
            opt: kernel.opt_enabled(),
            netfilter: NetfilterObject {
                forward_rules: forward.len(),
                uses_ipset: forward.iter().any(|r| r.set_match.is_some()),
                generation: nf.generation,
            },
            ipvs_services,
            ipvs_configured: !kernel.ipvs.is_empty(),
            nat: NatObject {
                dnat_rules: kernel.nat.dnat_rules(),
                snat_rules: kernel.nat.snat_rules(),
                generation: kernel.nat.generation,
            },
            // Mirrors the slow path's own `nat_active` condition: rules
            // OR live bindings. A flush with established flows must keep
            // the NAT stage deployed, or the fast path forwards frames
            // the slow path would still translate.
            nat_configured: kernel.nat.total_rules() > 0 || kernel.conntrack.nat_len() > 0,
            l7: L7Object {
                rules: kernel.l7.total_rules(),
                generation: kernel.l7.generation,
            },
            // Same shape as `nat_configured`: policies OR live pins. A
            // flush clears both atomically, so the stage retires with
            // the table — but a defensive disjunction keeps any future
            // pin-retaining operation transparent by construction.
            l7_configured: kernel.l7.total_rules() > 0 || kernel.l7.pinned_len() > 0,
        }
    }

    /// The interface object for `index`.
    pub fn interface(&self, index: IfIndex) -> Option<&InterfaceObject> {
        self.interfaces.get(&index)
    }

    /// Whether any non-bridge interface could forward (routing active).
    pub fn routing_active(&self) -> bool {
        self.ip_forward && !self.routes.is_empty()
    }

    /// The bridge object (if any) that `port` belongs to.
    pub fn bridge_of(&self, port: IfIndex) -> Option<(&InterfaceObject, &BridgeObject)> {
        let master = self.interfaces.get(&port)?.master?;
        let br = self.interfaces.get(&master)?;
        br.bridge.as_ref().map(|b| (br, b))
    }
}

impl InterfaceObject {
    fn from_link(link: &LinkInfo, kernel: &Kernel) -> Self {
        let bridge = if link.kind == "bridge" {
            let br = kernel.bridge(link.index);
            Some(BridgeObject {
                stp_enabled: link.stp_enabled.unwrap_or(false),
                vlan_filtering: link.vlan_filtering.unwrap_or(false),
                ports: br
                    .map(|b| b.ports().map(|p| p.ifindex).collect())
                    .unwrap_or_default(),
                port_pvids: br
                    .map(|b| b.ports().map(|p| (p.ifindex, p.pvid)).collect())
                    .unwrap_or_default(),
            })
        } else {
            None
        };
        InterfaceObject {
            index: link.index,
            name: link.name.clone(),
            kind: link.kind.clone(),
            up: link.up,
            has_ip: !link.addrs.is_empty(),
            addrs: link.addrs.clone(),
            mac: link.mac.octets(),
            master: link.master,
            bridge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxfp_netstack::netfilter::{ChainHook, IptRule};
    use linuxfp_netstack::stack::IfAddr;

    #[test]
    fn nat_configured_survives_rule_flush_while_bindings_live() {
        use linuxfp_netstack::conntrack::NatTuple;
        use linuxfp_netstack::nat::{NatChain, NatRule, NatTarget};
        use std::net::Ipv4Addr;

        let mut k = Kernel::new(1);
        k.iptables_nat_append(NatChain::Postrouting, NatRule::any(NatTarget::Masquerade));
        assert!(ObjectStore::snapshot(&k).nat_configured);

        // An established flow binds, then the rules are flushed. The
        // slow path keeps translating through the binding, so the
        // controller must keep the NAT stage deployed.
        let orig = NatTuple::new(
            Ipv4Addr::new(10, 0, 1, 5),
            4000,
            Ipv4Addr::new(10, 10, 0, 7),
            53,
            17,
        );
        let mut xlat = orig;
        xlat.src = Ipv4Addr::new(10, 0, 2, 1);
        xlat.sport = 32768;
        let now = k.now();
        k.conntrack.nat_install(orig, xlat, Some(32768), now);
        k.iptables_nat_flush();
        assert!(
            ObjectStore::snapshot(&k).nat_configured,
            "live bindings keep NAT configured after a flush"
        );

        // Once the bindings expire and are collected, the stage can go.
        k.advance(linuxfp_sim::Nanos::from_secs(3600));
        k.conntrack.nat_gc(k.now());
        assert!(!ObjectStore::snapshot(&k).nat_configured);
    }

    #[test]
    fn l7_configured_tracks_policies_and_pins() {
        use linuxfp_netstack::l7::{L7Action, L7ConnKey, L7Policy};
        use std::net::Ipv4Addr;

        let mut k = Kernel::new(9);
        assert!(!ObjectStore::snapshot(&k).l7_configured);
        k.l7_policy_append(L7Policy::prefix(b"/api", L7Action::Deny));
        let store = ObjectStore::snapshot(&k);
        assert!(store.l7_configured);
        assert_eq!(store.l7.rules, 1);
        let gen_before = store.l7.generation;

        // A parsed request pins the connection verdict; the snapshot
        // keeps the stage deployed (rules still present) and the
        // generation is what coherence keys on.
        let key = L7ConnKey {
            src: Ipv4Addr::new(10, 0, 1, 5),
            sport: 4000,
            dst: Ipv4Addr::new(10, 10, 0, 7),
            dport: 80,
        };
        let _ = k.l7.lookup(key, b"GET /api/x HTTP/1.1\r\n");
        assert_eq!(k.l7.pinned_len(), 1);
        assert!(ObjectStore::snapshot(&k).l7_configured);

        // Flush clears policies AND pins atomically: the stage retires,
        // and the generation moved so deployed caches invalidate.
        k.l7_policy_flush();
        let store = ObjectStore::snapshot(&k);
        assert!(!store.l7_configured);
        assert_eq!(k.l7.pinned_len(), 0);
        assert!(store.l7.generation > gen_before);
    }

    #[test]
    fn snapshot_reflects_router_config() {
        let mut k = Kernel::new(1);
        let eth0 = k.add_physical("eth0").unwrap();
        k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_link_set_up(eth0).unwrap();
        k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
        let store = ObjectStore::snapshot(&k);
        assert!(store.routing_active());
        let iface = store.interface(eth0).unwrap();
        assert!(iface.up && iface.has_ip);
        assert_eq!(iface.kind, "physical");
        assert!(iface.bridge.is_none());
        assert_eq!(store.netfilter.forward_rules, 0);
    }

    #[test]
    fn snapshot_reflects_bridge_and_ports() {
        let mut k = Kernel::new(2);
        let p1 = k.add_physical("p1").unwrap();
        let br = k.add_bridge("br0").unwrap();
        k.brctl_addif(br, p1).unwrap();
        k.bridge_set_stp(br, true).unwrap();
        let store = ObjectStore::snapshot(&k);
        let (br_obj, bridge) = store.bridge_of(p1).unwrap();
        assert_eq!(br_obj.name, "br0");
        assert!(bridge.stp_enabled);
        assert!(!bridge.vlan_filtering);
        assert_eq!(bridge.ports, vec![p1]);
        assert!(store.bridge_of(br).is_none());
    }

    #[test]
    fn snapshot_reflects_netfilter() {
        let mut k = Kernel::new(3);
        k.iptables_append(
            ChainHook::Forward,
            IptRule::drop_dst("10.0.0.0/8".parse().unwrap()),
        );
        k.iptables_append(ChainHook::Forward, IptRule::drop_dst_set("bl"));
        let store = ObjectStore::snapshot(&k);
        assert_eq!(store.netfilter.forward_rules, 2);
        assert!(store.netfilter.uses_ipset);
        assert!(store.netfilter.generation > 0);
        assert!(!store.routing_active());
    }
}
