//! The Topology Manager and the JSON processing-graph model.
//!
//! LinuxFP "models the Linux network processing configuration as a graph
//! encoded in JSON" (paper §IV-C2): keys are processing nodes (FPMs),
//! sub-keys carry per-node configuration, and `next_nf` entries express
//! ordering. [`build_graph`] derives that model from an [`ObjectStore`]
//! snapshot; the synthesizer consumes the JSON (not the intermediate Rust
//! structures), matching the paper's pipeline of Fig. 3.

use crate::capability::Capabilities;
use crate::fpm::{BridgeConf, FilterConf, FpmInstance, FpmKind, IpvsConf, L7Conf, NatConf};
use crate::objects::ObjectStore;
use linuxfp_json::{json, Map, Value};
use linuxfp_netstack::device::IfIndex;

/// Builds the JSON processing-graph model for the current kernel state.
///
/// Shape:
///
/// ```json
/// {
///   "interfaces": {
///     "eth0": {
///       "ifindex": 1,
///       "pipeline": [
///         { "nf": "router", "conf": {}, "next_nf": "filter" },
///         { "nf": "filter", "conf": { "rules": 100, "ipset": false,
///                                     "match_ports": false },
///           "next_nf": null }
///       ]
///     }
///   }
/// }
/// ```
pub fn build_graph(store: &ObjectStore, caps: &Capabilities) -> Value {
    let mut interfaces = Map::new();
    for iface in store.interfaces.values() {
        if !iface.up || iface.kind == "bridge" {
            continue;
        }
        let pipeline = plan_interface(store, caps, iface.index);
        if pipeline.is_empty() {
            continue;
        }
        let nodes: Vec<Value> = pipeline
            .iter()
            .enumerate()
            .map(|(i, fpm)| {
                let next = pipeline.get(i + 1).map(|n| n.kind().key());
                json!({
                    "nf": fpm.kind().key(),
                    "conf": conf_json(fpm),
                    "next_nf": next,
                })
            })
            .collect();
        interfaces.insert(
            iface.name.clone(),
            json!({ "ifindex": iface.index.as_u32(), "pipeline": nodes }),
        );
    }
    // The optimizer flag is part of the desired state: the same
    // configuration deployed naive vs shrunk is a different artifact,
    // so flipping `net.linuxfp.opt` must read as a graph change (and
    // trigger a redeploy) like any other sysctl.
    json!({ "interfaces": Value::Object(interfaces), "opt": store.opt })
}

/// Derives the FPM pipeline for one interface, honoring capabilities:
/// an unsupported module truncates the pipeline at its position (the
/// slow path covers the remainder), and an unsupported *leading* module
/// means no fast path at all for the interface.
pub fn plan_interface(
    store: &ObjectStore,
    caps: &Capabilities,
    ifindex: IfIndex,
) -> Vec<FpmInstance> {
    let Some(iface) = store.interface(ifindex) else {
        return Vec::new();
    };
    if store.nat_configured && !caps.supports(FpmKind::Nat) {
        // NAT rules exist but the kernel lacks `bpf_nat_lookup`: any
        // fast-path forwarding could bypass address translation (the
        // binding a packet needs may be installed on *another*
        // interface's return path), so no interface gets a fast path.
        return Vec::new();
    }
    if store.l7_configured && !caps.supports(FpmKind::L7) {
        // Same reasoning for L7 policies: accelerated forwarding would
        // skip a request verdict (deny/steer) the slow path enforces,
        // so no interface gets a fast path.
        return Vec::new();
    }
    let mut pipeline = Vec::new();

    if let Some((br_iface, bridge)) = store.bridge_of(ifindex) {
        // Bridge port: L2 fast path, with an L3 tail if the bridge itself
        // routes (a route points at the bridge subnet or the bridge has
        // addresses — the paper's next_nf rule).
        if !caps.supports(FpmKind::Bridge) {
            return Vec::new();
        }
        let filtering = store.netfilter.forward_rules > 0;
        let br_nf = store.bridge_nf && filtering;
        if br_nf && !caps.supports(FpmKind::Filter) {
            // Bridged traffic must traverse iptables but the fast path
            // cannot evaluate it: forwarding on the fast path would
            // bypass the firewall, so no fast path at all.
            return Vec::new();
        }
        let has_l3 = br_iface.has_ip && store.routing_active();
        pipeline.push(FpmInstance::Bridge(BridgeConf {
            stp_enabled: bridge.stp_enabled,
            vlan_enabled: bridge.vlan_filtering,
            pvid: bridge.port_pvid(ifindex),
            bridge_mac: br_iface.mac,
            has_l3,
            br_nf,
        }));
        if has_l3
            && caps.supports(FpmKind::Router)
            && (!store.ipvs_configured || caps.supports(FpmKind::Ipvs))
        {
            // The L3 tail mirrors the plain-interface pipeline: ipvs
            // services first (pod-to-VIP traffic on Kubernetes nodes),
            // then routing, then filtering.
            if caps.supports(FpmKind::Ipvs) {
                for svc in &store.ipvs_services {
                    pipeline.push(FpmInstance::Ipvs(IpvsConf {
                        vip: svc.vip,
                        port: svc.port,
                    }));
                }
            }
            pipeline.push(FpmInstance::Router);
            push_nat(store, caps, &mut pipeline);
            push_l7(store, caps, &mut pipeline);
            push_filter(store, caps, &mut pipeline);
        } else if br_nf {
            push_filter(store, caps, &mut pipeline);
        }
        return pipeline;
    }

    // Plain interface: router (+ filter) when forwarding is configured.
    if store.routing_active() && iface.has_ip {
        if !caps.supports(FpmKind::Router) {
            return Vec::new();
        }
        if store.netfilter.forward_rules > 0 && !caps.supports(FpmKind::Filter) {
            // Forwarded traffic must traverse FORWARD, but the fast path
            // cannot evaluate it: a router-only fast path would bypass
            // the firewall. Leave the interface entirely to the slow
            // path (paper Table I: "handle rules on unsupported hooks"
            // is slow-path work).
            return Vec::new();
        }
        if store.ipvs_configured && !caps.supports(FpmKind::Ipvs) {
            // Same reasoning for load balancing: forwarding VIP traffic
            // past the scheduler would break service semantics.
            return Vec::new();
        }
        // ipvs FPMs precede routing: VIP traffic is rewritten toward its
        // pinned backend before the FIB decides the egress.
        if caps.supports(FpmKind::Ipvs) {
            for svc in &store.ipvs_services {
                pipeline.push(FpmInstance::Ipvs(IpvsConf {
                    vip: svc.vip,
                    port: svc.port,
                }));
            }
        }
        pipeline.push(FpmInstance::Router);
        push_nat(store, caps, &mut pipeline);
        push_l7(store, caps, &mut pipeline);
        push_filter(store, caps, &mut pipeline);
    }
    pipeline
}

fn push_nat(store: &ObjectStore, caps: &Capabilities, pipeline: &mut Vec<FpmInstance>) {
    if store.nat_configured && caps.supports(FpmKind::Nat) {
        pipeline.push(FpmInstance::Nat(NatConf {
            dnat_rules: store.nat.dnat_rules,
            snat_rules: store.nat.snat_rules,
        }));
    }
}

fn push_l7(store: &ObjectStore, caps: &Capabilities, pipeline: &mut Vec<FpmInstance>) {
    if store.l7_configured && caps.supports(FpmKind::L7) {
        pipeline.push(FpmInstance::L7(L7Conf {
            rules: store.l7.rules,
        }));
    }
}

fn push_filter(store: &ObjectStore, caps: &Capabilities, pipeline: &mut Vec<FpmInstance>) {
    if store.netfilter.forward_rules > 0 && caps.supports(FpmKind::Filter) {
        pipeline.push(FpmInstance::Filter(FilterConf {
            rules: store.netfilter.forward_rules,
            ipset: store.netfilter.uses_ipset,
            match_ports: true,
        }));
    }
}

fn conf_json(fpm: &FpmInstance) -> Value {
    match fpm {
        FpmInstance::Bridge(c) => c.to_value(),
        FpmInstance::Router => json!({}),
        FpmInstance::Filter(c) => c.to_value(),
        FpmInstance::Ipvs(c) => c.to_value(),
        FpmInstance::Nat(c) => c.to_value(),
        FpmInstance::L7(c) => c.to_value(),
    }
}

/// Parses one interface's pipeline back out of the JSON model — the
/// synthesizer's input path.
///
/// # Errors
///
/// Returns a human-readable description of the malformed part.
pub fn pipeline_from_json(entry: &Value) -> Result<(IfIndex, Vec<FpmInstance>), String> {
    let ifindex = entry
        .get("ifindex")
        .and_then(Value::as_u64)
        .ok_or("missing ifindex")? as u32;
    let nodes = entry
        .get("pipeline")
        .and_then(Value::as_array)
        .ok_or("missing pipeline")?;
    let mut pipeline = Vec::new();
    for node in nodes {
        let key = node
            .get("nf")
            .and_then(Value::as_str)
            .ok_or("missing nf key")?;
        let kind = FpmKind::from_key(key).ok_or("unknown nf kind")?;
        let conf = node.get("conf").unwrap_or(&Value::Null);
        let fpm = match kind {
            FpmKind::Bridge => FpmInstance::Bridge(
                BridgeConf::from_value(conf).map_err(|e| format!("bad bridge conf: {e}"))?,
            ),
            FpmKind::Router => FpmInstance::Router,
            FpmKind::Filter => FpmInstance::Filter(
                FilterConf::from_value(conf).map_err(|e| format!("bad filter conf: {e}"))?,
            ),
            FpmKind::Ipvs => FpmInstance::Ipvs(
                IpvsConf::from_value(conf).map_err(|e| format!("bad ipvs conf: {e}"))?,
            ),
            FpmKind::Nat => FpmInstance::Nat(
                NatConf::from_value(conf).map_err(|e| format!("bad nat conf: {e}"))?,
            ),
            FpmKind::L7 => {
                FpmInstance::L7(L7Conf::from_value(conf).map_err(|e| format!("bad l7 conf: {e}"))?)
            }
        };
        pipeline.push(fpm);
    }
    Ok((IfIndex(ifindex), pipeline))
}

impl crate::objects::BridgeObject {
    /// The PVID of `port` (default 1 when unknown).
    pub fn port_pvid(&self, port: IfIndex) -> u16 {
        self.port_pvids
            .iter()
            .find(|(p, _)| *p == port)
            .map(|(_, pvid)| *pvid)
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxfp_netstack::netfilter::{ChainHook, IptRule};
    use linuxfp_netstack::stack::{IfAddr, Kernel};
    use std::net::Ipv4Addr;

    fn router_kernel() -> (Kernel, IfIndex, IfIndex) {
        let mut k = Kernel::new(1);
        let eth0 = k.add_physical("eth0").unwrap();
        let eth1 = k.add_physical("eth1").unwrap();
        k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_link_set_up(eth0).unwrap();
        k.ip_link_set_up(eth1).unwrap();
        k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
        k.ip_route_add(
            "10.10.0.0/16".parse().unwrap(),
            Some(Ipv4Addr::new(10, 0, 2, 2)),
            None,
        )
        .unwrap();
        (k, eth0, eth1)
    }

    #[test]
    fn router_config_yields_router_pipelines() {
        let (k, eth0, eth1) = router_kernel();
        let store = ObjectStore::snapshot(&k);
        let caps = Capabilities::full();
        let graph = build_graph(&store, &caps);
        let ifaces = graph["interfaces"].as_object().unwrap();
        assert_eq!(ifaces.len(), 2);
        for name in ["eth0", "eth1"] {
            let (idx, pipeline) = pipeline_from_json(&ifaces[name]).unwrap();
            assert!(idx == eth0 || idx == eth1);
            assert_eq!(pipeline, vec![FpmInstance::Router]);
        }
        // The graph names next_nf: a lone router has none.
        assert_eq!(ifaces["eth0"]["pipeline"][0]["next_nf"], Value::Null);
    }

    #[test]
    fn gateway_config_appends_filter_fpm() {
        let (mut k, _, _) = router_kernel();
        k.iptables_append(
            ChainHook::Forward,
            IptRule::drop_dst("10.10.3.0/24".parse().unwrap()),
        );
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &Capabilities::full());
        let entry = &graph["interfaces"]["eth0"];
        assert_eq!(entry["pipeline"][0]["nf"], "router");
        assert_eq!(entry["pipeline"][0]["next_nf"], "filter");
        assert_eq!(entry["pipeline"][1]["nf"], "filter");
        let (_, pipeline) = pipeline_from_json(entry).unwrap();
        assert!(matches!(
            &pipeline[1],
            FpmInstance::Filter(c) if c.rules == 1 && !c.ipset
        ));
    }

    #[test]
    fn forwarding_disabled_means_no_router() {
        let (mut k, _, _) = router_kernel();
        k.sysctl_set("net.ipv4.ip_forward", 0).unwrap();
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &Capabilities::full());
        assert!(graph["interfaces"].as_object().unwrap().is_empty());
    }

    #[test]
    fn bridge_ports_get_bridge_pipelines() {
        let mut k = Kernel::new(2);
        let p1 = k.add_physical("p1").unwrap();
        let p2 = k.add_physical("p2").unwrap();
        let br = k.add_bridge("br0").unwrap();
        k.brctl_addif(br, p1).unwrap();
        k.brctl_addif(br, p2).unwrap();
        for d in [p1, p2, br] {
            k.ip_link_set_up(d).unwrap();
        }
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &Capabilities::full());
        let ifaces = graph["interfaces"].as_object().unwrap();
        assert_eq!(ifaces.len(), 2);
        let (_, pipeline) = pipeline_from_json(&ifaces["p1"]).unwrap();
        assert!(matches!(&pipeline[0], FpmInstance::Bridge(c) if !c.has_l3));
        // The bridge master itself carries no program.
        assert!(!ifaces.contains_key("br0"));
    }

    #[test]
    fn routed_bridge_chains_router_after_bridge() {
        let mut k = Kernel::new(3);
        let p1 = k.add_physical("p1").unwrap();
        let br = k.add_bridge("cni0").unwrap();
        let eth0 = k.add_physical("eth0").unwrap();
        k.brctl_addif(br, p1).unwrap();
        k.ip_addr_add(br, "10.244.1.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_addr_add(eth0, "192.168.0.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        for d in [p1, br, eth0] {
            k.ip_link_set_up(d).unwrap();
        }
        k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &Capabilities::full());
        let (_, pipeline) = pipeline_from_json(&graph["interfaces"]["p1"]).unwrap();
        assert_eq!(pipeline.len(), 2);
        assert!(matches!(&pipeline[0], FpmInstance::Bridge(c) if c.has_l3));
        assert_eq!(pipeline[1], FpmInstance::Router);
        // Paper Fig. 3: next_nf wires bridge -> router.
        assert_eq!(
            graph["interfaces"]["p1"]["pipeline"][0]["next_nf"],
            "router"
        );
    }

    #[test]
    fn missing_capability_truncates_or_removes_pipeline() {
        let (mut k, _, _) = router_kernel();
        k.iptables_append(
            ChainHook::Forward,
            IptRule::drop_dst("10.10.3.0/24".parse().unwrap()),
        );
        let store = ObjectStore::snapshot(&k);
        // No bpf_ipt_lookup while FORWARD rules exist: a router-only fast
        // path would bypass the firewall, so nothing is accelerated.
        let caps = Capabilities::stock_kernel();
        let graph = build_graph(&store, &caps);
        assert!(graph["interfaces"].as_object().unwrap().is_empty());
        // Without rules, the router alone is fine on a stock kernel.
        k.iptables_flush(ChainHook::Forward);
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &caps);
        let (_, pipeline) = pipeline_from_json(&graph["interfaces"]["eth0"]).unwrap();
        assert_eq!(pipeline, vec![FpmInstance::Router]);
        // No bpf_fib_lookup either: nothing to accelerate.
        let caps = caps.without(linuxfp_ebpf::insn::HelperId::FibLookup);
        let graph = build_graph(&store, &caps);
        assert!(graph["interfaces"].as_object().unwrap().is_empty());
    }

    #[test]
    fn nat_config_appends_nat_fpm() {
        use linuxfp_netstack::nat::{NatChain, NatRule, NatTarget};
        let (mut k, _, _) = router_kernel();
        k.iptables_nat_append(
            NatChain::Prerouting,
            NatRule::any(NatTarget::Dnat {
                to: Ipv4Addr::new(10, 0, 2, 9),
                to_port: Some(8080),
            }),
        );
        k.iptables_nat_append(NatChain::Postrouting, NatRule::any(NatTarget::Masquerade));
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &Capabilities::full());
        let entry = &graph["interfaces"]["eth0"];
        // Paper Fig. 3 ordering: routing decides the egress, then the
        // nat node rewrites; any filter node would follow it.
        assert_eq!(entry["pipeline"][0]["nf"], "router");
        assert_eq!(entry["pipeline"][0]["next_nf"], "nat");
        assert_eq!(entry["pipeline"][1]["nf"], "nat");
        let (_, pipeline) = pipeline_from_json(entry).unwrap();
        assert_eq!(
            pipeline[1],
            FpmInstance::Nat(NatConf {
                dnat_rules: 1,
                snat_rules: 1,
            })
        );
    }

    #[test]
    fn nat_without_helper_disables_all_fast_paths() {
        use linuxfp_netstack::nat::{NatChain, NatRule, NatTarget};
        let (mut k, _, _) = router_kernel();
        k.iptables_nat_append(NatChain::Postrouting, NatRule::any(NatTarget::Masquerade));
        let store = ObjectStore::snapshot(&k);
        // Without `bpf_nat_lookup`, accelerated forwarding could skip a
        // translation the packet needs — every interface stays slow.
        let caps = Capabilities::full().without(linuxfp_ebpf::insn::HelperId::NatLookup);
        let graph = build_graph(&store, &caps);
        assert!(graph["interfaces"].as_object().unwrap().is_empty());
        // Flushing the nat table restores the router fast path.
        k.iptables_nat_flush();
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &caps);
        let (_, pipeline) = pipeline_from_json(&graph["interfaces"]["eth0"]).unwrap();
        assert_eq!(pipeline, vec![FpmInstance::Router]);
    }

    #[test]
    fn l7_config_appends_l7_fpm() {
        use linuxfp_netstack::l7::{L7Action, L7Policy};
        let (mut k, _, _) = router_kernel();
        k.l7_policy_append(L7Policy::prefix(b"/admin", L7Action::Deny));
        k.l7_policy_append(L7Policy::prefix(b"/", L7Action::Allow));
        let store = ObjectStore::snapshot(&k);
        assert!(store.l7_configured);
        assert_eq!(store.l7.rules, 2);
        let graph = build_graph(&store, &Capabilities::full());
        let entry = &graph["interfaces"]["eth0"];
        assert_eq!(entry["pipeline"][0]["nf"], "router");
        assert_eq!(entry["pipeline"][0]["next_nf"], "l7");
        assert_eq!(entry["pipeline"][1]["nf"], "l7");
        let (_, pipeline) = pipeline_from_json(entry).unwrap();
        assert_eq!(
            pipeline[1],
            FpmInstance::L7(crate::fpm::L7Conf { rules: 2 })
        );
    }

    #[test]
    fn l7_without_helper_disables_all_fast_paths() {
        use linuxfp_netstack::l7::{L7Action, L7Policy};
        let (mut k, _, _) = router_kernel();
        k.l7_policy_append(L7Policy::prefix(b"/", L7Action::Deny));
        let store = ObjectStore::snapshot(&k);
        // Without `bpf_l7_policy_lookup`, accelerated forwarding would
        // skip request verdicts — every interface stays slow.
        let caps = Capabilities::full().without(linuxfp_ebpf::insn::HelperId::L7PolicyLookup);
        let graph = build_graph(&store, &caps);
        assert!(graph["interfaces"].as_object().unwrap().is_empty());
        // Flushing the policies (which also clears pins) restores the
        // router fast path.
        k.l7_policy_flush();
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &caps);
        let (_, pipeline) = pipeline_from_json(&graph["interfaces"]["eth0"]).unwrap();
        assert_eq!(pipeline, vec![FpmInstance::Router]);
    }

    #[test]
    fn graph_node_names_are_model_consistent() {
        // Satellite check: every `nf` name a built graph can emit parses
        // back through `FpmKind::from_key`, its conf round-trips through
        // `pipeline_from_json`, and every `next_nf` names the following
        // node exactly. Builds a maximal configuration so all L3 node
        // kinds appear in one graph.
        use linuxfp_netstack::l7::{L7Action, L7Policy};
        use linuxfp_netstack::nat::{NatChain, NatRule, NatTarget};
        use linuxfp_netstack::netfilter::{ChainHook, IptRule};
        let (mut k, _, _) = router_kernel();
        k.iptables_append(
            ChainHook::Forward,
            IptRule::drop_dst("10.10.3.0/24".parse().unwrap()),
        );
        k.iptables_nat_append(NatChain::Postrouting, NatRule::any(NatTarget::Masquerade));
        k.l7_policy_append(L7Policy::prefix(b"/", L7Action::Allow));
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &Capabilities::full());
        let ifaces = graph["interfaces"].as_object().unwrap();
        assert!(!ifaces.is_empty());
        let mut seen = std::collections::HashSet::new();
        for (name, entry) in ifaces {
            let nodes = entry["pipeline"].as_array().unwrap();
            for (i, node) in nodes.iter().enumerate() {
                let nf = node["nf"].as_str().unwrap();
                let kind = FpmKind::from_key(nf)
                    .unwrap_or_else(|| panic!("{name}: unknown nf key {nf:?}"));
                assert_eq!(kind.key(), nf, "{name}: key round-trip");
                seen.insert(nf.to_string());
                match nodes.get(i + 1) {
                    Some(next) => assert_eq!(node["next_nf"], next["nf"], "{name}[{i}]"),
                    None => assert_eq!(node["next_nf"], Value::Null, "{name}[{i}]"),
                }
            }
            // The JSON is the synthesizer's real input: it must parse.
            let (_, pipeline) = pipeline_from_json(entry).unwrap();
            assert_eq!(pipeline.len(), nodes.len());
        }
        for expected in ["router", "nat", "l7", "filter"] {
            assert!(seen.contains(expected), "graph never emitted {expected}");
        }
    }

    #[test]
    fn pipeline_from_json_rejects_malformed_entries() {
        assert!(pipeline_from_json(&json!({})).is_err());
        assert!(pipeline_from_json(&json!({"ifindex": 1})).is_err());
        assert!(pipeline_from_json(&json!({"ifindex": 1, "pipeline": [{"nf": "warp"}]})).is_err());
        assert!(pipeline_from_json(
            &json!({"ifindex": 1, "pipeline": [{"nf": "bridge", "conf": {"bogus": true}}]})
        )
        .is_err());
        let ok = pipeline_from_json(&json!({"ifindex": 1, "pipeline": [{"nf": "router"}]}));
        assert_eq!(ok.unwrap().1, vec![FpmInstance::Router]);
    }
}
