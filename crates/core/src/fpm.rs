//! The FPM library: parameterized fast-path module templates.
//!
//! Each FPM is a bytecode *template* (paper §IV-B: "FPMs are functions
//! inside an eBPF program that taken together constitute an accelerated
//! fast path"). The synthesizer specializes a template with the current
//! configuration — a bridge FPM is emitted with VLAN parsing only when
//! VLAN filtering is actually enabled, with the bridge's MAC baked in as
//! an immediate, and so on. Branching the configuration can decide at
//! synthesis time never reaches the data path, which is the paper's
//! "less code leads to more efficient code paths" principle.
//!
//! Register conventions inside a synthesized program:
//!
//! | register | role |
//! |---|---|
//! | `r6` | packet data pointer (callee-saved) |
//! | `r7` | packet end pointer (callee-saved) |
//! | `r8` | saved ctx pointer (helpers clobber `r1`) |
//! | `r9` | VLAN id scratch (survives helper calls) |
//! | `r1`–`r5` | helper arguments / scratch |
//!
//! Stack layout (offsets from `r10`): the `bpf_fib_lookup` parameter block
//! at −24, the `bpf_ipt_lookup` metadata block at −48, the
//! `bpf_fdb_lookup` block at −72, the conntrack block at −96, and the
//! `bpf_nat_lookup` block at −128.

use linuxfp_ebpf::asm::Asm;
use linuxfp_ebpf::insn::{Action, AluOp, HelperId, JmpCond, MemSize};
use linuxfp_json::{json, Value};

/// Stack offset of the `bpf_fib_lookup` parameter block.
pub const FIB_BUF: i16 = -24;
/// Stack offset of the `bpf_ipt_lookup` metadata block.
pub const META_BUF: i16 = -48;
/// Stack offset of the `bpf_fdb_lookup` parameter block.
pub const FDB_BUF: i16 = -72;
/// Stack offset of the conntrack parameter block (ipvs extension).
pub const CT_BUF: i16 = -96;
/// Stack offset of the `bpf_nat_lookup` parameter block (NAT44
/// extension): key tuple at +0..14, translated tuple at +16..28.
pub const NAT_BUF: i16 = -128;

/// EtherType constants as they appear when the wire bytes are read with a
/// little-endian 16-bit load (the same `htons` dance real XDP C code
/// performs).
pub const ETH_P_IPV4_LE: i64 = 0x0008;
/// 802.1Q tag, byte-swapped.
pub const ETH_P_VLAN_LE: i64 = 0x0081;

/// The kinds of fast-path modules in the library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpmKind {
    /// L2 bridging: FDB lookup + forward (paper Table I, row 1).
    Bridge,
    /// IPv4 forwarding: FIB lookup + rewrite + forward (row 2).
    Router,
    /// IP filtering: iptables FORWARD verdict via `bpf_ipt_lookup` (row 3).
    Filter,
    /// ipvs-style load balancing via conntrack (row 4; paper future work,
    /// prototyped here as an extension).
    Ipvs,
    /// iptables NAT44 (DNAT/SNAT/MASQUERADE) via conntrack NAT bindings
    /// (row 5; extension — established flows are translated inline with
    /// incremental checksum updates, first packets bind in the slow path).
    Nat,
    /// L7 HTTP/1.x request-policy offload via `bpf_l7_policy_lookup`
    /// (row 6; extension — the helper parses the request line inside the
    /// kernel against the live policy table; anything unparseable punts).
    L7,
}

impl FpmKind {
    /// Every FPM kind in the library, in paper-table order. Tests iterate
    /// this instead of hand-maintained lists so a new kind cannot be
    /// silently skipped.
    pub const ALL: [FpmKind; 6] = [
        FpmKind::Bridge,
        FpmKind::Router,
        FpmKind::Filter,
        FpmKind::Ipvs,
        FpmKind::Nat,
        FpmKind::L7,
    ];

    /// The kernel helpers this FPM's template calls.
    pub fn required_helpers(self) -> &'static [HelperId] {
        match self {
            FpmKind::Bridge => &[HelperId::FdbLookup, HelperId::Redirect],
            FpmKind::Router => &[HelperId::FibLookup, HelperId::Redirect],
            FpmKind::Filter => &[HelperId::IptLookup],
            FpmKind::Ipvs => &[HelperId::CtLookup],
            FpmKind::Nat => &[HelperId::NatLookup],
            FpmKind::L7 => &[HelperId::L7PolicyLookup],
        }
    }

    /// The key used for this FPM in the JSON processing-graph model.
    pub fn key(self) -> &'static str {
        match self {
            FpmKind::Bridge => "bridge",
            FpmKind::Router => "router",
            FpmKind::Filter => "filter",
            FpmKind::Ipvs => "ipvs",
            FpmKind::Nat => "nat",
            FpmKind::L7 => "l7",
        }
    }

    /// Parses a JSON-model key.
    pub fn from_key(key: &str) -> Option<FpmKind> {
        match key {
            "bridge" => Some(FpmKind::Bridge),
            "router" => Some(FpmKind::Router),
            "filter" => Some(FpmKind::Filter),
            "ipvs" => Some(FpmKind::Ipvs),
            "nat" => Some(FpmKind::Nat),
            "l7" => Some(FpmKind::L7),
            _ => None,
        }
    }
}

/// Configuration attributes of a bridge FPM instance (the `conf` subkeys
/// of the JSON model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeConf {
    /// Whether STP is enabled on the bridge (BPDUs and port states are
    /// slow-path concerns, but the attribute is part of the model).
    pub stp_enabled: bool,
    /// Whether VLAN filtering is enabled (adds the VLAN-parsing snippet).
    pub vlan_enabled: bool,
    /// This port's PVID for untagged traffic.
    pub pvid: u16,
    /// The bridge's own MAC (traffic to it goes up to L3).
    pub bridge_mac: [u8; 6],
    /// Whether the bridge has L3 configuration (addresses + routing), so
    /// traffic to `bridge_mac` continues into the router FPM.
    pub has_l3: bool,
    /// Whether `bridge-nf-call-iptables` is active: bridged IPv4 frames
    /// must traverse the FORWARD chain even on the L2 path (the
    /// Kubernetes host configuration).
    pub br_nf: bool,
}

/// Configuration attributes of a filter FPM instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterConf {
    /// FORWARD rules currently configured (informational; the helper
    /// always evaluates live kernel state).
    pub rules: usize,
    /// Whether rules aggregate addresses with ipset.
    pub ipset: bool,
    /// Whether L4 ports must be parsed for rule matching.
    pub match_ports: bool,
}

/// Configuration attributes of an ipvs FPM instance (extension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpvsConf {
    /// The virtual service address the fast path intercepts.
    pub vip: [u8; 4],
    /// The virtual service port.
    pub port: u16,
}

/// Configuration attributes of a NAT FPM instance (extension). The
/// counts are informational — `bpf_nat_lookup` always consults live
/// kernel bindings, so rule content never needs to be compiled in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NatConf {
    /// DNAT rules currently in the PREROUTING chain.
    pub dnat_rules: usize,
    /// SNAT/MASQUERADE rules currently in the POSTROUTING chain.
    pub snat_rules: usize,
}

// JSON projections of the conf structs (the `conf` subtree of the
// processing-graph model). `from_value` is strict about field presence
// and types — a malformed graph must surface as a structured error, not
// synthesize from garbage — but tolerates unknown extra keys, matching
// how the netlink introspection may grow attributes over time.

fn conf_bool(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing or non-boolean field `{key}`"))
}

fn conf_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn conf_u16(v: &Value, key: &str) -> Result<u16, String> {
    u16::try_from(conf_u64(v, key)?).map_err(|_| format!("field `{key}` out of u16 range"))
}

fn conf_bytes<const N: usize>(v: &Value, key: &str) -> Result<[u8; N], String> {
    let arr = v
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing or non-array field `{key}`"))?;
    if arr.len() != N {
        return Err(format!("field `{key}` must have {N} bytes"));
    }
    let mut out = [0u8; N];
    for (i, item) in arr.iter().enumerate() {
        let byte = item
            .as_u64()
            .and_then(|b| u8::try_from(b).ok())
            .ok_or_else(|| format!("field `{key}`[{i}] not a byte"))?;
        out[i] = byte;
    }
    Ok(out)
}

impl BridgeConf {
    /// The conf as a JSON object.
    pub fn to_value(&self) -> Value {
        json!({
            "stp_enabled": self.stp_enabled,
            "vlan_enabled": self.vlan_enabled,
            "pvid": self.pvid,
            "bridge_mac": self.bridge_mac,
            "has_l3": self.has_l3,
            "br_nf": self.br_nf,
        })
    }

    /// Parses the conf back out of a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_value(v: &Value) -> Result<BridgeConf, String> {
        Ok(BridgeConf {
            stp_enabled: conf_bool(v, "stp_enabled")?,
            vlan_enabled: conf_bool(v, "vlan_enabled")?,
            pvid: conf_u16(v, "pvid")?,
            bridge_mac: conf_bytes(v, "bridge_mac")?,
            has_l3: conf_bool(v, "has_l3")?,
            br_nf: conf_bool(v, "br_nf")?,
        })
    }
}

impl FilterConf {
    /// The conf as a JSON object.
    pub fn to_value(&self) -> Value {
        json!({
            "rules": self.rules,
            "ipset": self.ipset,
            "match_ports": self.match_ports,
        })
    }

    /// Parses the conf back out of a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_value(v: &Value) -> Result<FilterConf, String> {
        Ok(FilterConf {
            rules: conf_u64(v, "rules")? as usize,
            ipset: conf_bool(v, "ipset")?,
            match_ports: conf_bool(v, "match_ports")?,
        })
    }
}

impl IpvsConf {
    /// The conf as a JSON object.
    pub fn to_value(&self) -> Value {
        json!({
            "vip": self.vip,
            "port": self.port,
        })
    }

    /// Parses the conf back out of a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_value(v: &Value) -> Result<IpvsConf, String> {
        Ok(IpvsConf {
            vip: conf_bytes(v, "vip")?,
            port: conf_u16(v, "port")?,
        })
    }
}

/// Configuration attributes of an L7 policy FPM instance (extension).
/// The count is informational — `bpf_l7_policy_lookup` always evaluates
/// the live kernel policy table, so rule content never compiles in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L7Conf {
    /// Request policies currently configured.
    pub rules: usize,
}

impl L7Conf {
    /// The conf as a JSON object.
    pub fn to_value(&self) -> Value {
        json!({
            "rules": self.rules,
        })
    }

    /// Parses the conf back out of a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_value(v: &Value) -> Result<L7Conf, String> {
        Ok(L7Conf {
            rules: conf_u64(v, "rules")? as usize,
        })
    }
}

impl NatConf {
    /// The conf as a JSON object.
    pub fn to_value(&self) -> Value {
        json!({
            "dnat_rules": self.dnat_rules,
            "snat_rules": self.snat_rules,
        })
    }

    /// Parses the conf back out of a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_value(v: &Value) -> Result<NatConf, String> {
        Ok(NatConf {
            dnat_rules: conf_u64(v, "dnat_rules")? as usize,
            snat_rules: conf_u64(v, "snat_rules")? as usize,
        })
    }
}

/// A user-supplied custom module (paper §VIII: "support the insertion of
/// custom functionality, e.g., for monitoring modules ... inject custom
/// eBPF code at different points in the XDP processing pipeline").
///
/// The snippet is raw bytecode inlined right after the shared prologue of
/// every synthesized program. It runs with `r6`/`r7` holding the packet
/// window, `r8` the ctx, and may clobber `r0`–`r5` and `r9`; internal
/// jumps must stay within the snippet. The **verifier still gates the
/// final program** — an unsafe custom module rejects the whole deploy and
/// the previous data path stays installed.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomFpm {
    /// Module name (reported in deploy errors).
    pub name: String,
    /// The raw instructions to inline.
    pub insns: Vec<linuxfp_ebpf::insn::Insn>,
}

impl CustomFpm {
    /// A monitoring module that counts every packet entering the fast
    /// path in slot 0 of `counter_map` (a 4-byte-key array/hash map) —
    /// the paper's motivating example of custom injection.
    pub fn packet_counter(name: impl Into<String>, counter_map: u32) -> CustomFpm {
        let mut a = Asm::new();
        // key (u32 0) at fp-104, value window at fp-112.
        a.mov_reg(3, 10);
        a.alu_imm(AluOp::Add, 3, -104);
        a.store_imm(MemSize::W, 3, 0, 0);
        a.mov_reg(4, 10);
        a.alu_imm(AluOp::Add, 4, -112);
        a.mov_imm(1, i64::from(counter_map));
        a.mov_reg(2, 3);
        a.mov_imm(3, 4);
        a.mov_imm(5, 8);
        a.call(HelperId::MapLookup);
        // Increment the (possibly fresh) counter and write it back.
        a.mov_reg(4, 10);
        a.alu_imm(AluOp::Add, 4, -112);
        a.load(MemSize::DW, 2, 4, 0);
        a.alu_imm(AluOp::Add, 2, 1);
        a.store(MemSize::DW, 4, 0, 2);
        a.mov_reg(3, 10);
        a.alu_imm(AluOp::Add, 3, -104);
        a.mov_imm(1, i64::from(counter_map));
        a.mov_reg(2, 3);
        a.mov_imm(3, 4);
        a.mov_imm(5, 8);
        a.call(HelperId::MapUpdate);
        CustomFpm {
            name: name.into(),
            insns: a.finish().expect("no labels used"),
        }
    }
}

impl CustomFpm {
    /// A tcpdump-style mirror module: copies every packet entering the
    /// fast path onto the AF_XDP socket bound to `xsk_map`, then lets the
    /// pipeline continue — live packet capture with zero changes to the
    /// data path's verdicts (paper §VIII's AF_XDP direction).
    pub fn mirror_to_user(name: impl Into<String>, xsk_map: u32) -> CustomFpm {
        let mut a = Asm::new();
        a.mov_imm(1, i64::from(xsk_map));
        a.mov_imm(2, 0); // queue index
        a.call(HelperId::XskRedirect);
        CustomFpm {
            name: name.into(),
            insns: a.finish().expect("no labels used"),
        }
    }
}

/// One FPM instance in a pipeline: the kind plus its parsed
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum FpmInstance {
    /// A bridge module.
    Bridge(BridgeConf),
    /// A router module.
    Router,
    /// A filter module.
    Filter(FilterConf),
    /// An ipvs load-balancer module (extension).
    Ipvs(IpvsConf),
    /// A NAT44 module (extension).
    Nat(NatConf),
    /// An L7 request-policy module (extension).
    L7(L7Conf),
}

impl FpmInstance {
    /// The module's kind.
    pub fn kind(&self) -> FpmKind {
        match self {
            FpmInstance::Bridge(_) => FpmKind::Bridge,
            FpmInstance::Router => FpmKind::Router,
            FpmInstance::Filter(_) => FpmKind::Filter,
            FpmInstance::Ipvs(_) => FpmKind::Ipvs,
            FpmInstance::Nat(_) => FpmKind::Nat,
            FpmInstance::L7(_) => FpmKind::L7,
        }
    }
}

/// Validates a pipeline's module composition without emitting code:
/// the structural rules [`emit_pipeline`] assumes. The topology manager
/// only produces valid pipelines; this guards the synthesizer against
/// malformed or hostile JSON graphs.
///
/// # Errors
///
/// Returns a description of the structural violation.
pub fn validate_pipeline(pipeline: &[FpmInstance]) -> Result<(), String> {
    if pipeline.is_empty() {
        return Err("empty FPM pipeline".into());
    }
    let (head, tail) = pipeline.split_first().expect("non-empty");
    let routers = pipeline
        .iter()
        .filter(|f| matches!(f, FpmInstance::Router))
        .count();
    let filters = pipeline
        .iter()
        .filter(|f| matches!(f, FpmInstance::Filter(_)))
        .count();
    let nats = pipeline
        .iter()
        .filter(|f| matches!(f, FpmInstance::Nat(_)))
        .count();
    let l7s = pipeline
        .iter()
        .filter(|f| matches!(f, FpmInstance::L7(_)))
        .count();
    if routers > 1 {
        return Err("at most one router FPM per pipeline".into());
    }
    if filters > 1 {
        return Err("at most one filter FPM per pipeline".into());
    }
    if nats > 1 {
        return Err("at most one nat FPM per pipeline".into());
    }
    if l7s > 1 {
        return Err("at most one l7 FPM per pipeline".into());
    }
    if pipeline[1..]
        .iter()
        .any(|f| matches!(f, FpmInstance::Bridge(_)))
    {
        return Err("bridge FPM must lead the pipeline".into());
    }
    match head {
        FpmInstance::Bridge(conf) => {
            let tail_has_router = routers == 1;
            if tail_has_router {
                return Ok(()); // l3 tail covers filter/ipvs
            }
            // Without a router, the tail may only be a br_nf filter.
            for f in tail {
                match f {
                    FpmInstance::Filter(_) if conf.br_nf => {}
                    FpmInstance::Filter(_) => {
                        return Err("filter in a bridge pipeline requires br_nf or a router".into())
                    }
                    _ => return Err("bridge pipeline tail must be l3 modules".into()),
                }
            }
            Ok(())
        }
        _ => {
            if routers == 0 {
                return Err("L3 pipeline requires a router FPM".into());
            }
            Ok(())
        }
    }
}

const R_DATA: u8 = 6;
const R_END: u8 = 7;
const R_CTX: u8 = 8;
const R_VLAN: u8 = 9;

/// Emits the shared program prologue: save the ctx pointer and load the
/// packet window.
pub fn emit_prologue(a: &mut Asm) {
    a.mov_reg(R_CTX, 1);
    a.load(
        MemSize::DW,
        R_DATA,
        1,
        linuxfp_ebpf::verifier::ctx_layout::DATA as i16,
    );
    a.load(
        MemSize::DW,
        R_END,
        1,
        linuxfp_ebpf::verifier::ctx_layout::DATA_END as i16,
    );
}

/// Emits the terminal `pass` / `drop` labels every snippet branches to.
pub fn emit_exits(a: &mut Asm) {
    a.label("pass");
    a.mov_imm(0, Action::Pass.code() as i64);
    a.exit();
    a.label("drop");
    a.mov_imm(0, Action::Drop.code() as i64);
    a.exit();
}

/// Emits a packet bounds guard: jump to `pass` (slow path) unless
/// `bytes` bytes are available.
pub fn emit_guard(a: &mut Asm, bytes: i64) {
    a.mov_reg(2, R_DATA);
    a.alu_imm(AluOp::Add, 2, bytes);
    a.jmp_reg(JmpCond::Gt, 2, R_END, "pass");
}

/// Emits the full pipeline for one interface. Returns the number of FPM
/// instances actually emitted.
///
/// The composition rules mirror the paper's processing-graph semantics:
/// a leading bridge FPM handles L2, and — when the bridge carries L3
/// configuration — traffic addressed to the bridge MAC falls through to
/// the router (and filter) FPMs; a leading router FPM handles forwarding
/// with an optional filter stage.
///
/// # Panics
///
/// Panics if the pipeline is empty or orders modules in an unsupported
/// way (the topology manager never produces such pipelines).
pub fn emit_pipeline(a: &mut Asm, pipeline: &[FpmInstance]) -> usize {
    emit_pipeline_with_customs(a, pipeline, &[])
}

/// Like [`emit_pipeline`], with user-supplied custom modules inlined at
/// the pipeline entry.
pub fn emit_pipeline_with_customs(
    a: &mut Asm,
    pipeline: &[FpmInstance],
    customs: &[CustomFpm],
) -> usize {
    assert!(!pipeline.is_empty(), "empty FPM pipeline");
    emit_prologue(a);
    for custom in customs {
        for insn in &custom.insns {
            a.raw(*insn);
        }
    }
    let mut count = customs.len();
    match &pipeline[0] {
        FpmInstance::Bridge(conf) => {
            count += 1;
            let tail = &pipeline[1..];
            let filter = tail.iter().find_map(|f| match f {
                FpmInstance::Filter(c) => Some(c),
                _ => None,
            });
            let has_router = tail.iter().any(|f| matches!(f, FpmInstance::Router));
            let l2_filter = if conf.br_nf { filter } else { None };
            emit_bridge(a, conf, has_router, l2_filter);
            if has_router {
                a.label("l3");
                count += emit_l3(a, tail);
            } else {
                count += tail.len();
            }
        }
        _ => {
            count += emit_l3(a, pipeline);
        }
    }
    emit_exits(a);
    count
}

/// Emits the L3 part of a pipeline (router, optionally preceded by ipvs
/// and followed by filter).
fn emit_l3(a: &mut Asm, pipeline: &[FpmInstance]) -> usize {
    let mut filter: Option<&FilterConf> = None;
    let mut ipvs: Vec<&IpvsConf> = Vec::new();
    let mut nat: Option<&NatConf> = None;
    let mut l7: Option<&L7Conf> = None;
    let mut has_router = false;
    for fpm in pipeline {
        match fpm {
            FpmInstance::Router => has_router = true,
            FpmInstance::Filter(c) => filter = Some(c),
            FpmInstance::Ipvs(c) => ipvs.push(c),
            FpmInstance::Nat(c) => nat = Some(c),
            FpmInstance::L7(c) => l7 = Some(c),
            FpmInstance::Bridge(_) => panic!("bridge FPM must lead the pipeline"),
        }
    }
    assert!(has_router, "L3 pipeline requires a router FPM");
    emit_router(a, filter, &ipvs, nat, l7);
    pipeline.len()
}

/// Emits the bridge FPM body. When `has_l3_tail` is set, IPv4 frames
/// addressed to the bridge MAC jump to the `l3` label instead of being
/// L2-forwarded. When `l2_filter` is present (br_netfilter hosts),
/// bridged IPv4 frames consult `bpf_ipt_lookup` before being forwarded.
fn emit_bridge(a: &mut Asm, conf: &BridgeConf, has_l3_tail: bool, l2_filter: Option<&FilterConf>) {
    emit_guard(a, 14);
    // Broadcast/multicast (including STP BPDUs): slow-path work
    // (flooding, protocol processing).
    a.load(MemSize::B, 2, R_DATA, 0);
    a.alu_imm(AluOp::And, 2, 1);
    a.jmp_imm(JmpCond::Ne, 2, 0, "pass");

    // Determine the VLAN for the FDB lookup.
    if conf.vlan_enabled {
        a.mov_imm(R_VLAN, i64::from(conf.pvid));
        a.load(MemSize::H, 2, R_DATA, 12);
        a.jmp_imm(JmpCond::Ne, 2, ETH_P_VLAN_LE, "fdb");
        emit_guard(a, 18);
        a.load(MemSize::B, 2, R_DATA, 14);
        a.alu_imm(AluOp::And, 2, 0x0F);
        a.alu_imm(AluOp::Lsh, 2, 8);
        a.load(MemSize::B, 3, R_DATA, 15);
        a.alu_reg(AluOp::Or, 2, 3);
        a.mov_reg(R_VLAN, 2);
    } else {
        a.mov_imm(R_VLAN, 0);
    }
    a.label("fdb");

    // bpf_fdb_lookup runs for EVERY frame (including L3-destined ones):
    // it refreshes the source entry — the fast path's "FDB update" duty
    // (paper Table I) — and punts unknown sources to the slow path so
    // learning still happens.
    a.mov_reg(3, 10);
    a.alu_imm(AluOp::Add, 3, i64::from(FDB_BUF));
    a.load(MemSize::W, 2, R_DATA, 6);
    a.store(MemSize::W, 3, 0, 2);
    a.load(MemSize::H, 2, R_DATA, 10);
    a.store(MemSize::H, 3, 4, 2);
    a.load(MemSize::W, 2, R_DATA, 0);
    a.store(MemSize::W, 3, 6, 2);
    a.load(MemSize::H, 2, R_DATA, 4);
    a.store(MemSize::H, 3, 10, 2);
    a.store(MemSize::H, 3, 12, R_VLAN);
    a.mov_reg(1, R_CTX);
    a.mov_reg(2, 3);
    a.mov_imm(3, 20);
    a.call(HelperId::FdbLookup);
    // r0 == 1: unknown source (or non-forwarding port) -> slow path
    // learns / applies STP.
    a.jmp_imm(JmpCond::Eq, 0, 1, "pass");
    // r0 == 2: destination miss -> L3 tail for frames addressed to the
    // bridge itself; flooding stays in the slow path.
    a.jmp_imm(JmpCond::Eq, 0, 2, "dst_miss");

    if let Some(filter) = l2_filter {
        // br_netfilter: bridged IPv4 traffic traverses FORWARD. Non-IP
        // frames skip straight to forwarding.
        a.load(MemSize::H, 2, R_DATA, 12);
        a.jmp_imm(JmpCond::Ne, 2, ETH_P_IPV4_LE, "l2_fwd");
        emit_guard(a, 34);
        a.mov_reg(4, 10);
        a.alu_imm(AluOp::Add, 4, i64::from(META_BUF));
        if filter.match_ports {
            emit_parse_ports(a, "l2p");
        } else {
            a.load(MemSize::B, 2, R_DATA, 23);
            a.store(MemSize::B, 4, 8, 2);
            a.store_imm(MemSize::H, 4, 10, 0);
            a.store_imm(MemSize::H, 4, 12, 0);
        }
        a.load(MemSize::W, 2, R_DATA, 26);
        a.store(MemSize::W, 4, 0, 2);
        a.load(MemSize::W, 2, R_DATA, 30);
        a.store(MemSize::W, 4, 4, 2);
        a.load(
            MemSize::W,
            2,
            R_CTX,
            linuxfp_ebpf::verifier::ctx_layout::IFINDEX as i16,
        );
        a.store(MemSize::W, 4, 16, 2);
        a.mov_reg(3, 10);
        a.alu_imm(AluOp::Add, 3, i64::from(FDB_BUF));
        a.load(MemSize::W, 2, 3, 16);
        a.store(MemSize::W, 4, 20, 2);
        a.mov_reg(1, R_CTX);
        a.mov_reg(2, 4);
        a.mov_imm(3, 24);
        a.call(HelperId::IptLookup);
        a.jmp_imm(JmpCond::Ne, 0, 0, "drop");
        a.label("l2_fwd");
    }

    a.mov_reg(3, 10);
    a.alu_imm(AluOp::Add, 3, i64::from(FDB_BUF));
    a.load(MemSize::W, 1, 3, 16);
    a.mov_imm(2, 0);
    a.call(HelperId::Redirect);
    a.exit();

    a.label("dst_miss");
    if conf.has_l3 && has_l3_tail {
        // dst MAC == bridge MAC and payload is IPv4 -> the router FPM
        // (tagged frames fail the ethertype check and fall to the slow
        // path).
        let mac_lo = u32::from_le_bytes([
            conf.bridge_mac[0],
            conf.bridge_mac[1],
            conf.bridge_mac[2],
            conf.bridge_mac[3],
        ]);
        let mac_hi = u16::from_le_bytes([conf.bridge_mac[4], conf.bridge_mac[5]]);
        a.load(MemSize::W, 2, R_DATA, 0);
        a.jmp_imm(JmpCond::Ne, 2, i64::from(mac_lo), "pass");
        a.load(MemSize::H, 2, R_DATA, 4);
        a.jmp_imm(JmpCond::Ne, 2, i64::from(mac_hi), "pass");
        a.load(MemSize::H, 2, R_DATA, 12);
        a.jmp_imm(JmpCond::Ne, 2, ETH_P_IPV4_LE, "pass");
        a.ja("l3");
    } else {
        a.ja("pass");
    }
}

/// Emits the router FPM (with optional ipvs, nat, and filter stages
/// fused in, exactly as the synthesizer composes modules through
/// function calls rather than tail calls — paper §VI-B).
fn emit_router(
    a: &mut Asm,
    filter: Option<&FilterConf>,
    ipvs: &[&IpvsConf],
    nat: Option<&NatConf>,
    l7: Option<&L7Conf>,
) {
    emit_guard(a, 34);
    // EtherType must be IPv4 (tagged frames go to the slow path).
    a.load(MemSize::H, 2, R_DATA, 12);
    a.jmp_imm(JmpCond::Ne, 2, ETH_P_IPV4_LE, "pass");
    // Version 4, IHL 5 (options are a slow-path corner case).
    a.load(MemSize::B, 2, R_DATA, 14);
    a.jmp_imm(JmpCond::Ne, 2, 0x45, "pass");
    emit_ipv4_csum_verify(a);
    // Fragments are slow-path corner cases (paper Table I).
    a.load(MemSize::H, 2, R_DATA, 20);
    a.alu_imm(AluOp::And, 2, 0xFFBF); // ignore the DF bit
    a.jmp_imm(JmpCond::Ne, 2, 0, "pass");
    // TTL <= 1: the slow path generates ICMP time-exceeded.
    a.load(MemSize::B, 2, R_DATA, 22);
    a.jmp_imm(JmpCond::Lt, 2, 2, "pass");

    let need_ports =
        filter.map(|f| f.match_ports).unwrap_or(false) || !ipvs.is_empty() || nat.is_some();
    if need_ports {
        emit_parse_ports(a, "l3p");
    }

    for (i, conf) in ipvs.iter().enumerate() {
        emit_ipvs(a, conf, i);
    }

    if nat.is_some() {
        emit_nat_prerouting(a);
    }

    if l7.is_some() {
        // Post-DNAT so connection pins key on the same tuple the slow
        // path sees, pre-FIB so a deny precedes any route-miss ICMP.
        emit_l7(a);
    }

    // bpf_fib_lookup: destination from the packet (post-DNAT when the
    // nat stage rewrote it — routing must see the translated address,
    // just as PREROUTING runs before the route lookup in the kernel).
    a.mov_reg(3, 10);
    a.alu_imm(AluOp::Add, 3, i64::from(FIB_BUF));
    a.load(MemSize::W, 2, R_DATA, 30);
    a.store(MemSize::W, 3, 0, 2);
    a.mov_reg(1, R_CTX);
    a.mov_reg(2, 3);
    a.mov_imm(3, 24);
    a.call(HelperId::FibLookup);
    a.jmp_imm(JmpCond::Ne, 0, 0, "pass"); // miss / unresolved neighbor

    if filter.is_some() {
        emit_filter(a);
    }

    if nat.is_some() {
        // Source half of the translation runs after the filter so the
        // FORWARD chain sees the pre-SNAT source, mirroring where
        // POSTROUTING sits in the kernel.
        emit_nat_postrouting(a);
    }

    // Rewrite MACs from the fib result.
    a.mov_reg(3, 10);
    a.alu_imm(AluOp::Add, 3, i64::from(FIB_BUF));
    a.load(MemSize::W, 2, 3, 14);
    a.store(MemSize::W, R_DATA, 0, 2);
    a.load(MemSize::H, 2, 3, 18);
    a.store(MemSize::H, R_DATA, 4, 2);
    a.load(MemSize::W, 2, 3, 8);
    a.store(MemSize::W, R_DATA, 6, 2);
    a.load(MemSize::H, 2, 3, 12);
    a.store(MemSize::H, R_DATA, 10, 2);

    emit_ttl_decrement(a);

    // Redirect out the interface the FIB chose.
    a.mov_reg(3, 10);
    a.alu_imm(AluOp::Add, 3, i64::from(FIB_BUF));
    a.load(MemSize::W, 1, 3, 4);
    a.mov_imm(2, 0);
    a.call(HelperId::Redirect);
    a.exit();
}

/// Parses L4 ports (TCP/UDP) into the ipt metadata block; other
/// protocols record zero ports.
fn emit_parse_ports(a: &mut Asm, prefix: &str) {
    let l_ports = format!("{prefix}_ports");
    let l_done = format!("{prefix}_ports_done");
    a.mov_reg(4, 10);
    a.alu_imm(AluOp::Add, 4, i64::from(META_BUF));
    a.load(MemSize::B, 2, R_DATA, 23);
    a.store(MemSize::B, 4, 8, 2);
    a.jmp_imm(JmpCond::Eq, 2, 6, &l_ports);
    a.jmp_imm(JmpCond::Eq, 2, 17, &l_ports);
    a.store_imm(MemSize::H, 4, 10, 0);
    a.store_imm(MemSize::H, 4, 12, 0);
    a.ja(&l_done);
    a.label(&l_ports);
    emit_guard(a, 38);
    a.load(MemSize::B, 2, R_DATA, 34);
    a.alu_imm(AluOp::Lsh, 2, 8);
    a.load(MemSize::B, 3, R_DATA, 35);
    a.alu_reg(AluOp::Or, 2, 3);
    a.store(MemSize::H, 4, 10, 2);
    a.load(MemSize::B, 2, R_DATA, 36);
    a.alu_imm(AluOp::Lsh, 2, 8);
    a.load(MemSize::B, 3, R_DATA, 37);
    a.alu_reg(AluOp::Or, 2, 3);
    a.store(MemSize::H, 4, 12, 2);
    a.label(&l_done);
}

/// Fills the remaining ipt metadata (addresses, interfaces) and calls
/// `bpf_ipt_lookup`; a DROP verdict jumps to `drop`.
fn emit_filter(a: &mut Asm) {
    a.mov_reg(4, 10);
    a.alu_imm(AluOp::Add, 4, i64::from(META_BUF));
    a.load(MemSize::W, 2, R_DATA, 26);
    a.store(MemSize::W, 4, 0, 2);
    a.load(MemSize::W, 2, R_DATA, 30);
    a.store(MemSize::W, 4, 4, 2);
    a.load(
        MemSize::W,
        2,
        R_CTX,
        linuxfp_ebpf::verifier::ctx_layout::IFINDEX as i16,
    );
    a.store(MemSize::W, 4, 16, 2);
    a.mov_reg(3, 10);
    a.alu_imm(AluOp::Add, 3, i64::from(FIB_BUF));
    a.load(MemSize::W, 2, 3, 4);
    a.store(MemSize::W, 4, 20, 2);
    a.mov_reg(1, R_CTX);
    a.mov_reg(2, 4);
    a.mov_imm(3, 24);
    a.call(HelperId::IptLookup);
    a.jmp_imm(JmpCond::Ne, 0, 0, "drop");
}

/// ipvs extension: conntrack lookup for a pinned backend; on a hit the
/// destination address/port are rewritten (UDP only — TCP checksum
/// fixups stay in the slow path) before routing continues.
fn emit_ipvs(a: &mut Asm, conf: &IpvsConf, index: usize) {
    let done = format!("ipvs_done_{index}");
    // Only intercept traffic to the VIP:port, UDP only.
    let vip_le = u32::from_le_bytes(conf.vip);
    a.load(MemSize::W, 2, R_DATA, 30);
    a.jmp_imm(JmpCond::Ne, 2, i64::from(vip_le), &done);
    a.load(MemSize::B, 2, R_DATA, 23);
    a.jmp_imm(JmpCond::Ne, 2, 17, "pass"); // non-UDP to the VIP: slow path
                                           // The port must match the service; other ports are plain traffic.
    a.mov_reg(3, 10);
    a.alu_imm(AluOp::Add, 3, i64::from(META_BUF));
    a.load(MemSize::H, 2, 3, 12);
    a.jmp_imm(JmpCond::Ne, 2, i64::from(conf.port), &done);
    // Fill the conntrack key from the packet + parsed ports.
    a.mov_reg(4, 10);
    a.alu_imm(AluOp::Add, 4, i64::from(CT_BUF));
    a.load(MemSize::W, 2, R_DATA, 26);
    a.store(MemSize::W, 4, 0, 2);
    a.load(MemSize::W, 2, R_DATA, 30);
    a.store(MemSize::W, 4, 4, 2);
    a.store_imm(MemSize::B, 4, 8, 17);
    a.mov_reg(3, 10);
    a.alu_imm(AluOp::Add, 3, i64::from(META_BUF));
    a.load(MemSize::H, 2, 3, 10);
    a.store(MemSize::H, 4, 10, 2);
    a.load(MemSize::H, 2, 3, 12);
    a.store(MemSize::H, 4, 12, 2);
    a.mov_reg(1, R_CTX);
    a.mov_reg(2, 4);
    a.mov_imm(3, 24);
    a.call(HelperId::CtLookup);
    // No pinned backend: slow path schedules one (paper Table I row 4).
    a.jmp_imm(JmpCond::Ne, 0, 0, "pass");
    // The rewrite touches the UDP header and checksum (bytes up to 42);
    // prove them available first.
    emit_guard(a, 42);
    // Rewrite dst IP to the backend (bytes preserved LE->LE) and fix the
    // IPv4 header checksum incrementally for both changed words.
    a.mov_reg(4, 10);
    a.alu_imm(AluOp::Add, 4, i64::from(CT_BUF));
    // old dst words (BE): bytes 30..32 and 32..34.
    emit_csum_word_update_from_stack(a, 30, 16);
    emit_csum_word_update_from_stack(a, 32, 18);
    a.load(MemSize::W, 2, 4, 16);
    a.store(MemSize::W, R_DATA, 30, 2);
    // Rewrite the UDP dst port: the conntrack block stores it host-order;
    // the wire wants big-endian, so swap bytes while storing.
    a.load(MemSize::H, 2, 4, 20);
    a.mov_reg(3, 2);
    a.alu_imm(AluOp::Rsh, 3, 8);
    a.store(MemSize::B, R_DATA, 37, 2);
    a.store(MemSize::B, R_DATA, 36, 3);
    // Clear the UDP checksum (0 is legal over IPv4 after a rewrite).
    a.store_imm(MemSize::H, R_DATA, 40, 0);
    a.label(&done);
}

/// NAT44 extension, destination half: look up the packet's tuple in the
/// kernel's NAT binding table and, on a hit, rewrite the destination
/// address/port with incremental checksum updates *before* the FIB
/// lookup (PREROUTING position). `r9` records whether a binding hit so
/// [`emit_nat_postrouting`] can apply the source half after the filter.
///
/// Helper outcomes: 0 = hit (translated tuple in the buffer), 1 = miss
/// (slow path must evaluate rules and bind first), 2 = no NAT applies.
fn emit_nat_prerouting(a: &mut Asm) {
    a.mov_imm(R_VLAN, 0); // r9 doubles as the "binding hit" flag here
                          // Fill the bpf_nat_lookup key: addresses and protocol straight from
                          // the packet, ports from the parsed metadata block.
    a.mov_reg(4, 10);
    a.alu_imm(AluOp::Add, 4, i64::from(NAT_BUF));
    a.load(MemSize::W, 2, R_DATA, 26);
    a.store(MemSize::W, 4, 0, 2);
    a.load(MemSize::W, 2, R_DATA, 30);
    a.store(MemSize::W, 4, 4, 2);
    a.load(MemSize::B, 2, R_DATA, 23);
    a.store(MemSize::B, 4, 8, 2);
    a.mov_reg(3, 10);
    a.alu_imm(AluOp::Add, 3, i64::from(META_BUF));
    a.load(MemSize::H, 2, 3, 10);
    a.store(MemSize::H, 4, 10, 2);
    a.load(MemSize::H, 2, 3, 12);
    a.store(MemSize::H, 4, 12, 2);
    a.mov_reg(1, R_CTX);
    a.mov_reg(2, 4);
    a.mov_imm(3, 32);
    a.call(HelperId::NatLookup);
    a.jmp_imm(JmpCond::Eq, 0, 2, "nat_done"); // no NAT: plain forwarding
    a.jmp_imm(JmpCond::Ne, 0, 0, "pass"); // miss: slow path binds
                                          // Hit (UDP only — the helper reports TCP as a miss). The rewrite
                                          // touches bytes up to the UDP checksum; prove them available.
    emit_guard(a, 42);
    a.mov_imm(R_VLAN, 1);
    a.mov_reg(4, 10);
    a.alu_imm(AluOp::Add, 4, i64::from(NAT_BUF));
    // Destination address: checksum deltas first (they read the old
    // bytes from the packet), then the store.
    emit_csum_word_update_from_stack(a, 30, 20);
    emit_csum_word_update_from_stack(a, 32, 22);
    a.load(MemSize::W, 2, 4, 20);
    a.store(MemSize::W, R_DATA, 30, 2);
    // Destination port: host-order in the result block, big-endian on
    // the wire.
    a.load(MemSize::H, 2, 4, 26);
    a.mov_reg(3, 2);
    a.alu_imm(AluOp::Rsh, 3, 8);
    a.store(MemSize::B, R_DATA, 37, 2);
    a.store(MemSize::B, R_DATA, 36, 3);
    // The filter stage matches on the parsed metadata; keep its dport in
    // sync with the rewritten packet (FORWARD runs after DNAT).
    a.mov_reg(3, 10);
    a.alu_imm(AluOp::Add, 3, i64::from(META_BUF));
    a.store(MemSize::H, 3, 12, 2);
    // A zero UDP checksum is legal over IPv4 — same as the slow path.
    a.store_imm(MemSize::H, R_DATA, 40, 0);
    a.label("nat_done");
}

/// NAT44 extension, source half: when [`emit_nat_prerouting`] recorded a
/// binding hit in `r9`, rewrite the source address/port from the same
/// result block (POSTROUTING position — after the filter, before the
/// MAC rewrite). For pure-DNAT bindings the source words are unchanged
/// and the updates degenerate to byte-identical no-ops.
fn emit_nat_postrouting(a: &mut Asm) {
    a.jmp_imm(JmpCond::Eq, R_VLAN, 0, "nat_nosrc");
    // The 42-byte window was proven on the hit path, but joins with
    // non-NAT paths lowered the verified bound; re-prove it.
    emit_guard(a, 42);
    a.mov_reg(4, 10);
    a.alu_imm(AluOp::Add, 4, i64::from(NAT_BUF));
    emit_csum_word_update_from_stack(a, 26, 16);
    emit_csum_word_update_from_stack(a, 28, 18);
    a.load(MemSize::W, 2, 4, 16);
    a.store(MemSize::W, R_DATA, 26, 2);
    a.load(MemSize::H, 2, 4, 24);
    a.mov_reg(3, 2);
    a.alu_imm(AluOp::Rsh, 3, 8);
    a.store(MemSize::B, R_DATA, 35, 2);
    a.store(MemSize::B, R_DATA, 34, 3);
    a.label("nat_nosrc");
}

/// L7 extension: evaluate the HTTP/1.x request policy over the TCP
/// payload via `bpf_l7_policy_lookup`. Sits post-DNAT / pre-FIB, exactly
/// where the slow path evaluates its policy table.
///
/// This is the library's only **variable-length** payload access: the TCP
/// data offset is read from the packet, shifted into a byte count, and
/// added to a packet pointer — a `PtrPacketVar` in the verifier — whose
/// bound against the segment end must be proven by explicit guards before
/// the first payload byte is loaded or the pointer is passed to the
/// helper. Every malformed shape (short segment, doff < 5, doff past the
/// segment end) branches to `pass`: the slow path re-runs the same policy
/// via its own parser, so punting is always transparent.
///
/// Helper results: 0 = allow (pinned), 1 = deny, 2 = punt (steer or
/// unparseable — the slow path decides), 3 = allow-without-pin (no
/// request data; the pipeline continues but the verdict must not be
/// flow-cached).
fn emit_l7(a: &mut Asm) {
    // Non-TCP traffic never carries a request; skip the stage entirely.
    a.load(MemSize::B, 2, R_DATA, 23);
    a.jmp_imm(JmpCond::Ne, 2, 6, "l7_done");
    // Ethernet (14) + IPv4 IHL=5 (20) + minimal TCP (20) = 54 bytes.
    emit_guard(a, 54);
    // Data offset: high nibble of byte 46, in 32-bit words.
    a.load(MemSize::B, 2, R_DATA, 46);
    a.alu_imm(AluOp::Rsh, 2, 4);
    // doff < 5 is a malformed header the slow path rejects while
    // parsing: punt so both paths agree.
    a.jmp_imm(JmpCond::Lt, 2, 5, "pass");
    a.alu_imm(AluOp::Lsh, 2, 2); // header length in bytes (20..=60)
                                 // Payload pointer = data + 34 + doff*4 (a variable offset).
    a.mov_reg(5, R_DATA);
    a.alu_imm(AluOp::Add, 5, 34);
    a.alu_reg(AluOp::Add, 5, 2);
    // Data offset past the segment end: punt (the slow path sees a
    // truncated payload and punts identically).
    a.jmp_reg(JmpCond::Gt, 5, R_END, "pass");
    // First payload byte, or the 0x100 sentinel for an empty segment.
    a.mov_imm(4, 0x100);
    a.mov_reg(2, 5);
    a.alu_imm(AluOp::Add, 2, 1);
    a.jmp_reg(JmpCond::Gt, 2, R_END, "l7_call");
    a.load(MemSize::B, 4, 5, 0);
    a.label("l7_call");
    a.mov_reg(1, R_CTX);
    a.mov_reg(2, 5);
    a.mov_imm(3, linuxfp_netstack::l7::PARSE_WINDOW as i64);
    a.call(HelperId::L7PolicyLookup);
    a.jmp_imm(JmpCond::Eq, 0, 1, "drop"); // policy deny
    a.jmp_imm(JmpCond::Eq, 0, 2, "pass"); // steer / unparseable: punt
    a.label("l7_done");
}

/// Emits full IPv4 header-checksum verification for the 20-byte header
/// the preceding `0x45` check proved (and the 34-byte guard made
/// loadable): sums the ten header halfwords, folds, and punts to the
/// slow path unless the one's-complement sum is all-ones. Linux drops
/// bad-checksum datagrams in `ip_rcv`; without this stage the fast path
/// forwards frames the slow path rejects — a transparency divergence
/// found by the differential fuzzer (`crates/difftest`). Halfwords are
/// summed in load order: the one's-complement checksum is byte-order
/// independent (RFC 1071 §2.B), so the all-ones test needs no swaps.
fn emit_ipv4_csum_verify(a: &mut Asm) {
    a.mov_imm(5, 0);
    for off in (14..34).step_by(2) {
        a.load(MemSize::H, 2, R_DATA, off);
        a.alu_reg(AluOp::Add, 5, 2);
    }
    // Two folds suffice: ten halfwords carry at most 4 bits past 16.
    for _ in 0..2 {
        a.mov_reg(2, 5);
        a.alu_imm(AluOp::Rsh, 2, 16);
        a.alu_imm(AluOp::And, 5, 0xFFFF);
        a.alu_reg(AluOp::Add, 5, 2);
    }
    a.jmp_imm(JmpCond::Ne, 5, 0xFFFF, "pass");
}

/// Applies one RFC 1624 incremental checksum update for the 16-bit word
/// at packet offset `pkt_off`, whose new value sits at `CT_BUF +
/// stack_off` (big-endian bytes). Assumes `r4` holds the CT_BUF pointer.
fn emit_csum_word_update_from_stack(a: &mut Asm, pkt_off: i16, stack_off: i16) {
    // w_old (BE) from the packet.
    a.load(MemSize::B, 2, R_DATA, pkt_off);
    a.alu_imm(AluOp::Lsh, 2, 8);
    a.load(MemSize::B, 3, R_DATA, pkt_off + 1);
    a.alu_reg(AluOp::Or, 2, 3);
    // w_new (BE) from the stack.
    a.load(MemSize::B, 3, 4, stack_off);
    a.alu_imm(AluOp::Lsh, 3, 8);
    a.load(MemSize::B, 5, 4, stack_off + 1);
    a.alu_reg(AluOp::Or, 3, 5);
    // hc (BE) from the packet checksum field at 24.
    a.load(MemSize::B, 5, R_DATA, 24);
    a.alu_imm(AluOp::Lsh, 5, 8);
    a.load(MemSize::B, 0, R_DATA, 25);
    a.alu_reg(AluOp::Or, 5, 0);
    // sum = ~hc + ~w_old + w_new (all masked to 16 bits).
    a.alu_imm(AluOp::Xor, 5, 0xFFFF);
    a.alu_imm(AluOp::Xor, 2, 0xFFFF);
    a.alu_reg(AluOp::Add, 5, 2);
    a.alu_reg(AluOp::Add, 5, 3);
    // Fold twice.
    for _ in 0..2 {
        a.mov_reg(2, 5);
        a.alu_imm(AluOp::Rsh, 2, 16);
        a.alu_imm(AluOp::And, 5, 0xFFFF);
        a.alu_reg(AluOp::Add, 5, 2);
    }
    // The folded sum is already <= 0xFFFF (two folds of a < 2^18 sum),
    // and xor 0xFFFF preserves that bound, so no final mask is needed.
    a.alu_imm(AluOp::Xor, 5, 0xFFFF);
    // Store back (BE).
    a.mov_reg(2, 5);
    a.alu_imm(AluOp::Rsh, 2, 8);
    a.store(MemSize::B, R_DATA, 24, 2);
    a.store(MemSize::B, R_DATA, 25, 5);
}

/// Emits the in-place TTL decrement with the RFC 1624 incremental
/// checksum fix — the rewrite stage of the forwarding FPM. Public so
/// baseline platforms can reuse the identical snippet.
pub fn emit_ttl_decrement(a: &mut Asm) {
    // w_old = (ttl << 8) | proto.
    a.load(MemSize::B, 2, R_DATA, 22);
    a.load(MemSize::B, 4, R_DATA, 23);
    a.mov_reg(5, 2);
    a.alu_imm(AluOp::Lsh, 5, 8);
    a.alu_reg(AluOp::Or, 5, 4);
    // ttl -= 1 (guaranteed > 1 by the earlier check).
    a.alu_imm(AluOp::Sub, 2, 1);
    a.store(MemSize::B, R_DATA, 22, 2);
    // w_new = (ttl' << 8) | proto.
    a.alu_imm(AluOp::Lsh, 2, 8);
    a.alu_reg(AluOp::Or, 2, 4);
    // hc (BE).
    a.load(MemSize::B, 4, R_DATA, 24);
    a.alu_imm(AluOp::Lsh, 4, 8);
    a.load(MemSize::B, 9, R_DATA, 25);
    a.alu_reg(AluOp::Or, 4, 9);
    // sum = ~hc + ~w_old + w_new.
    a.alu_imm(AluOp::Xor, 4, 0xFFFF);
    a.alu_imm(AluOp::Xor, 5, 0xFFFF);
    a.alu_reg(AluOp::Add, 4, 5);
    a.alu_reg(AluOp::Add, 4, 2);
    for _ in 0..2 {
        a.mov_reg(5, 4);
        a.alu_imm(AluOp::Rsh, 5, 16);
        a.alu_imm(AluOp::And, 4, 0xFFFF);
        a.alu_reg(AluOp::Add, 4, 5);
    }
    // As in emit_csum_word_update_from_stack: the folded sum is already
    // <= 0xFFFF and the complement keeps it there, so no final mask.
    a.alu_imm(AluOp::Xor, 4, 0xFFFF);
    a.mov_reg(5, 4);
    a.alu_imm(AluOp::Rsh, 5, 8);
    a.store(MemSize::B, R_DATA, 24, 5);
    a.store(MemSize::B, R_DATA, 25, 4);
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxfp_ebpf::program::{LoadedProgram, Program};

    fn bridge_conf(vlan: bool, has_l3: bool) -> BridgeConf {
        BridgeConf {
            stp_enabled: false,
            vlan_enabled: vlan,
            pvid: 1,
            bridge_mac: [2, 0, 0, 0, 0, 9],
            has_l3,
            br_nf: false,
        }
    }

    fn load_pipeline(pipeline: &[FpmInstance]) -> LoadedProgram {
        let mut a = Asm::new();
        emit_pipeline(&mut a, pipeline);
        LoadedProgram::load(Program::new("test_fp", a.finish().unwrap()))
            .expect("synthesized FPM pipelines must verify")
    }

    #[test]
    fn all_pipeline_shapes_pass_the_verifier() {
        let filter = FilterConf {
            rules: 100,
            ipset: false,
            match_ports: true,
        };
        let filter_no_ports = FilterConf {
            rules: 1,
            ipset: true,
            match_ports: false,
        };
        let ipvs = IpvsConf {
            vip: [10, 96, 0, 1],
            port: 80,
        };
        let shapes: Vec<Vec<FpmInstance>> = vec![
            vec![FpmInstance::Router],
            vec![FpmInstance::Router, FpmInstance::Filter(filter.clone())],
            vec![FpmInstance::Router, FpmInstance::Filter(filter_no_ports)],
            vec![FpmInstance::Bridge(bridge_conf(false, false))],
            vec![FpmInstance::Bridge(bridge_conf(true, false))],
            vec![
                FpmInstance::Bridge(bridge_conf(false, true)),
                FpmInstance::Router,
            ],
            vec![
                FpmInstance::Bridge(bridge_conf(true, true)),
                FpmInstance::Router,
                FpmInstance::Filter(filter.clone()),
            ],
            vec![
                FpmInstance::Router,
                FpmInstance::Ipvs(ipvs),
                FpmInstance::Filter(filter.clone()),
            ],
            vec![
                FpmInstance::Router,
                FpmInstance::Nat(NatConf {
                    dnat_rules: 1,
                    snat_rules: 1,
                }),
            ],
            vec![
                FpmInstance::Router,
                FpmInstance::Nat(NatConf {
                    dnat_rules: 0,
                    snat_rules: 2,
                }),
                FpmInstance::Filter(filter.clone()),
            ],
            vec![
                FpmInstance::Bridge(bridge_conf(true, true)),
                FpmInstance::Router,
                FpmInstance::Nat(NatConf {
                    dnat_rules: 1,
                    snat_rules: 0,
                }),
            ],
            vec![FpmInstance::Router, FpmInstance::L7(L7Conf { rules: 3 })],
            vec![
                FpmInstance::Router,
                FpmInstance::Nat(NatConf {
                    dnat_rules: 1,
                    snat_rules: 1,
                }),
                FpmInstance::L7(L7Conf { rules: 1 }),
                FpmInstance::Filter(filter.clone()),
            ],
            vec![
                FpmInstance::Bridge(bridge_conf(false, true)),
                FpmInstance::Router,
                FpmInstance::L7(L7Conf { rules: 2 }),
            ],
        ];
        for shape in shapes {
            let prog = load_pipeline(&shape);
            assert!(prog.len() > 10, "{:?} suspiciously small", shape);
        }
    }

    #[test]
    fn configuration_changes_program_size() {
        // "Less code leads to more efficient code paths": a plain router
        // is smaller than router+filter, and a VLAN-less bridge is
        // smaller than a VLAN-aware one.
        let plain = load_pipeline(&[FpmInstance::Router]);
        let filtered = load_pipeline(&[
            FpmInstance::Router,
            FpmInstance::Filter(FilterConf {
                rules: 10,
                ipset: false,
                match_ports: true,
            }),
        ]);
        assert!(plain.len() < filtered.len());
        let no_vlan = load_pipeline(&[FpmInstance::Bridge(bridge_conf(false, false))]);
        let vlan = load_pipeline(&[FpmInstance::Bridge(bridge_conf(true, false))]);
        assert!(no_vlan.len() < vlan.len());
    }

    #[test]
    fn kind_metadata() {
        for kind in FpmKind::ALL {
            assert_eq!(FpmKind::from_key(kind.key()), Some(kind));
            assert!(!kind.required_helpers().is_empty());
        }
        assert_eq!(FpmKind::from_key("nonsense"), None);
    }

    #[test]
    fn kind_keys_round_trip_exhaustively() {
        // Property over the whole key space the model can emit: every
        // kind's key parses back to exactly that kind, keys are unique,
        // and from_key accepts *only* those strings — perturbations
        // (case, whitespace, prefixes) must all be rejected, since an
        // unknown nf key has to fail graph parsing rather than silently
        // alias another module.
        let keys: Vec<&str> = FpmKind::ALL.iter().map(|k| k.key()).collect();
        let unique: std::collections::HashSet<&str> = keys.iter().copied().collect();
        assert_eq!(unique.len(), FpmKind::ALL.len(), "duplicate FPM keys");
        for kind in FpmKind::ALL {
            let key = kind.key();
            assert_eq!(FpmKind::from_key(key), Some(kind));
            for perturbed in [
                key.to_uppercase(),
                format!(" {key}"),
                format!("{key} "),
                format!("{key}x"),
                format!("x{key}"),
                key.chars().rev().collect::<String>(),
            ] {
                if !keys.contains(&perturbed.as_str()) {
                    assert_eq!(FpmKind::from_key(&perturbed), None, "{perturbed:?}");
                }
            }
        }
    }

    #[test]
    fn instance_kinds() {
        assert_eq!(FpmInstance::Router.kind(), FpmKind::Router);
        assert_eq!(
            FpmInstance::Bridge(bridge_conf(false, false)).kind(),
            FpmKind::Bridge
        );
        assert_eq!(
            FpmInstance::Filter(FilterConf {
                rules: 0,
                ipset: false,
                match_ports: false
            })
            .kind(),
            FpmKind::Filter
        );
        assert_eq!(
            FpmInstance::Ipvs(IpvsConf {
                vip: [0; 4],
                port: 0
            })
            .kind(),
            FpmKind::Ipvs
        );
    }

    #[test]
    fn validate_pipeline_rules() {
        let filter = FpmInstance::Filter(FilterConf {
            rules: 1,
            ipset: false,
            match_ports: false,
        });
        let br = |br_nf| {
            FpmInstance::Bridge(BridgeConf {
                br_nf,
                ..bridge_conf(false, false)
            })
        };
        assert!(validate_pipeline(&[]).is_err());
        assert!(validate_pipeline(&[FpmInstance::Router]).is_ok());
        assert!(validate_pipeline(std::slice::from_ref(&filter)).is_err());
        assert!(validate_pipeline(&[FpmInstance::Router, filter.clone()]).is_ok());
        assert!(validate_pipeline(&[FpmInstance::Router, FpmInstance::Router]).is_err());
        assert!(validate_pipeline(&[FpmInstance::Router, filter.clone(), filter.clone()]).is_err());
        assert!(validate_pipeline(&[FpmInstance::Router, br(false)]).is_err());
        assert!(validate_pipeline(&[br(false)]).is_ok());
        assert!(validate_pipeline(&[br(true), filter.clone()]).is_ok());
        assert!(validate_pipeline(&[br(false), filter.clone()]).is_err());
        assert!(validate_pipeline(&[br(false), FpmInstance::Router, filter.clone()]).is_ok());
        let ipvs = FpmInstance::Ipvs(IpvsConf {
            vip: [0; 4],
            port: 1,
        });
        assert!(validate_pipeline(&[ipvs.clone(), FpmInstance::Router]).is_ok());
        assert!(validate_pipeline(&[br(false), ipvs]).is_err());
        let nat = FpmInstance::Nat(NatConf {
            dnat_rules: 1,
            snat_rules: 1,
        });
        assert!(validate_pipeline(&[FpmInstance::Router, nat.clone()]).is_ok());
        assert!(validate_pipeline(std::slice::from_ref(&nat)).is_err());
        assert!(validate_pipeline(&[FpmInstance::Router, nat.clone(), nat.clone()]).is_err());
        assert!(validate_pipeline(&[br(false), nat]).is_err());
        let l7 = FpmInstance::L7(L7Conf { rules: 1 });
        assert!(validate_pipeline(&[FpmInstance::Router, l7.clone()]).is_ok());
        assert!(validate_pipeline(std::slice::from_ref(&l7)).is_err());
        assert!(validate_pipeline(&[FpmInstance::Router, l7.clone(), l7.clone()]).is_err());
        assert!(validate_pipeline(&[br(false), l7]).is_err());
    }

    #[test]
    #[should_panic(expected = "empty FPM pipeline")]
    fn empty_pipeline_panics() {
        let mut a = Asm::new();
        emit_pipeline(&mut a, &[]);
    }

    #[test]
    #[should_panic(expected = "requires a router FPM")]
    fn filter_without_router_panics() {
        let mut a = Asm::new();
        emit_pipeline(
            &mut a,
            &[FpmInstance::Filter(FilterConf {
                rules: 1,
                ipset: false,
                match_ports: false,
            })],
        );
    }
}
