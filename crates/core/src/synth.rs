//! The Fast Path Synthesizer: JSON processing graph → programs.
//!
//! The paper renders Jinja C templates and compiles them with clang; here
//! the templates are bytecode emitters ([`crate::fpm`]) and "compilation"
//! produces VM instructions directly, but the pipeline is the same: one
//! specialized program per interface, composed of exactly the modules the
//! current configuration needs, with modules fused through function calls
//! (inlining) rather than tail calls — the composition choice the paper
//! measures in Fig. 10.

use crate::fpm::{self, FpmInstance};
use crate::graph;
use linuxfp_ebpf::asm::Asm;
use linuxfp_ebpf::insn::{Action, AluOp, HelperId, MemSize};
use linuxfp_ebpf::maps::MapStore;
use linuxfp_ebpf::program::Program;
use linuxfp_json::Value;
use linuxfp_netstack::device::IfIndex;
use std::fmt;

/// A synthesized (not yet verified/loaded) fast path for one interface.
#[derive(Debug, Clone)]
pub struct SynthesizedFp {
    /// Target interface.
    pub ifindex: IfIndex,
    /// Interface name (for reporting).
    pub ifname: String,
    /// The program.
    pub program: Program,
    /// How many FPM instances were fused into the program.
    pub fpm_count: usize,
    /// The pipeline's FPM composition as a metric label, kinds joined
    /// with `+` in pipeline order (e.g. `router+filter`).
    pub fpm_label: String,
    /// The synthesizer's cacheability contract: whether the microflow
    /// verdict cache may record this program's verdicts. Template-only
    /// pipelines are cacheable (every helper they call is covered by the
    /// coherence generation); pipelines with inlined custom modules are
    /// not — custom bytecode can carry state the generation does not see.
    /// The loader's static helper scan independently rechecks this.
    pub cacheable: bool,
}

/// Synthesis failures (malformed graph or assembler errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthError(pub String);

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "synthesis failed: {}", self.0)
    }
}

impl std::error::Error for SynthError {}

/// Synthesizes one program per interface entry in the JSON graph.
///
/// # Errors
///
/// Fails on malformed graph entries or label errors in templates.
pub fn synthesize(graph_json: &Value) -> Result<Vec<SynthesizedFp>, SynthError> {
    synthesize_with_customs(graph_json, &[])
}

/// Like [`synthesize`], inlining user-supplied custom modules (paper
/// §VIII) at the entry of every program.
///
/// # Errors
///
/// Fails on malformed graph entries or label errors in templates.
pub fn synthesize_with_customs(
    graph_json: &Value,
    customs: &[fpm::CustomFpm],
) -> Result<Vec<SynthesizedFp>, SynthError> {
    let Some(interfaces) = graph_json.get("interfaces").and_then(Value::as_object) else {
        return Err(SynthError("graph missing interfaces object".into()));
    };
    let mut out = Vec::new();
    for (name, entry) in interfaces {
        let (ifindex, pipeline) =
            graph::pipeline_from_json(entry).map_err(|e| SynthError(format!("{name}: {e}")))?;
        if pipeline.is_empty() {
            continue;
        }
        fpm::validate_pipeline(&pipeline).map_err(|e| SynthError(format!("{name}: {e}")))?;
        let fpm_label = fpm_label(&pipeline);
        let mut asm = Asm::new();
        let fpm_count = fpm::emit_pipeline_with_customs(&mut asm, &pipeline, customs);
        let insns = asm
            .finish()
            .map_err(|e| SynthError(format!("{name}: {e}")))?;
        out.push(SynthesizedFp {
            ifindex,
            ifname: name.clone(),
            program: Program::new(format!("linuxfp_{name}"), insns),
            fpm_count,
            fpm_label,
            cacheable: customs.is_empty(),
        });
    }
    Ok(out)
}

/// Synthesizes a single-interface pipeline directly (bypassing the JSON
/// model); used by microbenchmarks and ablations.
///
/// # Errors
///
/// Fails on assembler label errors.
pub fn synthesize_pipeline(
    ifindex: IfIndex,
    name: &str,
    pipeline: &[FpmInstance],
) -> Result<SynthesizedFp, SynthError> {
    let mut asm = Asm::new();
    let fpm_count = fpm::emit_pipeline(&mut asm, pipeline);
    let insns = asm.finish().map_err(|e| SynthError(e.to_string()))?;
    Ok(SynthesizedFp {
        ifindex,
        ifname: name.to_string(),
        program: Program::new(format!("linuxfp_{name}"), insns),
        fpm_count,
        fpm_label: fpm_label(pipeline),
        cacheable: true,
    })
}

/// The metric label naming a pipeline's FPM composition.
fn fpm_label(pipeline: &[FpmInstance]) -> String {
    pipeline
        .iter()
        .map(|p| p.kind().key())
        .collect::<Vec<_>>()
        .join("+")
}

/// Emits one "trivial network function" snippet: reads a packet byte and
/// folds it into `r9` (cheap, but not removable — there is no optimizer).
fn emit_trivial_nf(a: &mut Asm, index: usize) {
    a.load(MemSize::B, 2, 6, 0);
    a.alu_imm(AluOp::Xor, 2, index as i64 & 0xFF);
    a.alu_reg(AluOp::Add, 9, 2);
}

/// Emits the terminal function of the Fig. 10 chain: "modifies the
/// Ethernet and IP headers and then uses XDP_REDIRECT" (paper §VI-B) —
/// a full MAC rewrite plus the TTL decrement with incremental checksum.
fn emit_chain_terminal(a: &mut Asm, out_if: u32) {
    fpm::emit_guard(a, 34);
    // Rewrite both MACs to fixed next-hop addresses.
    a.mov_imm(2, 0x0202_0202);
    a.store(MemSize::W, 6, 0, 2);
    a.mov_imm(2, 0x0202);
    a.store(MemSize::H, 6, 4, 2);
    a.mov_imm(2, 0x0303_0303);
    a.store(MemSize::W, 6, 6, 2);
    a.mov_imm(2, 0x0303);
    a.store(MemSize::H, 6, 10, 2);
    // Guard the TTL > 1 invariant the decrement snippet assumes.
    a.load(MemSize::B, 2, 6, 22);
    a.jmp_imm(linuxfp_ebpf::insn::JmpCond::Lt, 2, 2, "pass");
    fpm::emit_ttl_decrement(a);
    a.mov_imm(1, i64::from(out_if));
    a.mov_imm(2, 0);
    a.call(HelperId::Redirect);
    a.exit();
}

/// Builds the paper's Fig. 10 microbenchmark data path with **inlined
/// function calls**: one program containing `n` trivial NFs followed by
/// the rewrite+redirect terminal.
pub fn trivial_chain_inline(n: usize, out_if: u32) -> Program {
    let mut a = Asm::new();
    fpm::emit_prologue(&mut a);
    fpm::emit_guard(&mut a, 34);
    a.mov_imm(9, 0);
    for i in 0..n {
        emit_trivial_nf(&mut a, i);
    }
    emit_chain_terminal(&mut a, out_if);
    fpm::emit_exits(&mut a);
    Program::new(
        format!("chain_inline_{n}"),
        a.finish().expect("valid labels"),
    )
}

/// Builds the same chain with **tail calls**: `n` programs each running
/// one trivial NF and tail-calling the next slot, ending in the terminal
/// program. Returns the entry program; the rest are installed into
/// `maps`' program array (returned id).
pub fn trivial_chain_tailcalls(
    n: usize,
    out_if: u32,
    maps: &MapStore,
) -> (Program, linuxfp_ebpf::maps::MapId) {
    let prog_array = maps.create_prog_array(n + 1);
    // Stage programs 1..n and the terminal at slot n.
    for i in 1..=n {
        let mut a = Asm::new();
        // Every tail-called program must re-derive its pointers — the
        // real mechanism's per-program overhead.
        fpm::emit_prologue(&mut a);
        fpm::emit_guard(&mut a, 34);
        a.mov_imm(9, 0);
        if i < n {
            emit_trivial_nf(&mut a, i);
            a.mov_imm(0, Action::Pass.code() as i64);
            a.tail_call(prog_array.0, i as u32 + 1);
            a.exit();
        } else {
            emit_chain_terminal(&mut a, out_if);
        }
        fpm::emit_exits(&mut a);
        let prog = linuxfp_ebpf::program::LoadedProgram::load(Program::new(
            format!("chain_tc_{i}"),
            a.finish().expect("valid labels"),
        ))
        .expect("chain programs verify");
        maps.prog_array_set(prog_array, i, Some(prog))
            .expect("slot in range");
    }
    // Entry program (NF 0).
    let mut a = Asm::new();
    fpm::emit_prologue(&mut a);
    fpm::emit_guard(&mut a, 34);
    a.mov_imm(9, 0);
    if n == 0 {
        emit_chain_terminal(&mut a, out_if);
    } else {
        emit_trivial_nf(&mut a, 0);
        a.mov_imm(0, Action::Pass.code() as i64);
        a.tail_call(prog_array.0, 1);
        a.exit();
    }
    fpm::emit_exits(&mut a);
    (
        Program::new(
            "chain_tc_entry".to_string(),
            a.finish().expect("valid labels"),
        ),
        prog_array,
    )
}

/// A jump-free sanity helper used in tests: whether a program contains a
/// call to the given helper.
pub fn program_calls(program: &Program, helper: HelperId) -> bool {
    program
        .insns
        .iter()
        .any(|i| matches!(i, linuxfp_ebpf::insn::Insn::Call { helper: h } if *h == helper))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::Capabilities;
    use crate::graph::build_graph;
    use crate::objects::ObjectStore;
    use linuxfp_ebpf::program::LoadedProgram;
    use linuxfp_netstack::netfilter::{ChainHook, IptRule};
    use linuxfp_netstack::stack::{IfAddr, Kernel};
    use std::net::Ipv4Addr;

    fn gateway_kernel() -> Kernel {
        let mut k = Kernel::new(4);
        let eth0 = k.add_physical("eth0").unwrap();
        let eth1 = k.add_physical("eth1").unwrap();
        k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_link_set_up(eth0).unwrap();
        k.ip_link_set_up(eth1).unwrap();
        k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
        k.ip_route_add(
            "10.10.0.0/16".parse().unwrap(),
            Some(Ipv4Addr::new(10, 0, 2, 2)),
            None,
        )
        .unwrap();
        k.iptables_append(
            ChainHook::Forward,
            IptRule::drop_dst("10.10.3.0/24".parse().unwrap()),
        );
        k
    }

    #[test]
    fn synthesizes_verifiable_programs_from_graph() {
        let k = gateway_kernel();
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &Capabilities::full());
        let fps = synthesize(&graph).unwrap();
        assert_eq!(fps.len(), 2);
        for fp in &fps {
            assert_eq!(fp.fpm_count, 2, "{}: router+filter", fp.ifname);
            let loaded = LoadedProgram::load(fp.program.clone())
                .unwrap_or_else(|e| panic!("{} failed verification: {e}", fp.ifname));
            assert!(loaded.len() > 30);
            assert!(program_calls(&fp.program, HelperId::FibLookup));
            assert!(program_calls(&fp.program, HelperId::IptLookup));
            assert!(program_calls(&fp.program, HelperId::Redirect));
            assert!(!program_calls(&fp.program, HelperId::FdbLookup));
        }
    }

    #[test]
    fn l7_policies_add_the_policy_helper_call() {
        use linuxfp_netstack::l7::{L7Action, L7Policy};
        let mut k = gateway_kernel();
        k.l7_policy_append(L7Policy::prefix(b"/admin", L7Action::Deny));
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &Capabilities::full());
        let fps = synthesize(&graph).unwrap();
        assert_eq!(fps.len(), 2);
        for fp in &fps {
            assert_eq!(fp.fpm_count, 3, "{}: router+l7+filter", fp.ifname);
            LoadedProgram::load(fp.program.clone())
                .unwrap_or_else(|e| panic!("{} failed verification: {e}", fp.ifname));
            assert!(program_calls(&fp.program, HelperId::L7PolicyLookup));
        }
    }

    #[test]
    fn minimality_no_filter_module_without_rules() {
        let mut k = gateway_kernel();
        k.iptables_flush(ChainHook::Forward);
        let store = ObjectStore::snapshot(&k);
        let graph = build_graph(&store, &Capabilities::full());
        let fps = synthesize(&graph).unwrap();
        for fp in &fps {
            assert_eq!(fp.fpm_count, 1);
            assert!(!program_calls(&fp.program, HelperId::IptLookup));
        }
    }

    #[test]
    fn malformed_graph_is_an_error() {
        assert!(synthesize(&linuxfp_json::json!({})).is_err());
        assert!(synthesize(&linuxfp_json::json!({"interfaces": {"x": {}}})).is_err());
        let empty = synthesize(&linuxfp_json::json!({"interfaces": {}})).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn inline_chain_grows_slowly_with_n() {
        let p1 = trivial_chain_inline(1, 2);
        let p16 = trivial_chain_inline(16, 2);
        LoadedProgram::load(p1.clone()).unwrap();
        LoadedProgram::load(p16.clone()).unwrap();
        // Each trivial NF is 3 instructions.
        assert_eq!(p16.len() - p1.len(), 45);
    }

    #[test]
    fn tailcall_chain_verifies_and_fills_slots() {
        let maps = MapStore::new();
        let (entry, pa) = trivial_chain_tailcalls(4, 2, &maps);
        LoadedProgram::load(entry).unwrap();
        for slot in 1..=4 {
            assert!(maps.prog_array_get(pa, slot).is_some(), "slot {slot}");
        }
        assert!(maps.prog_array_get(pa, 0).is_none());
    }

    #[test]
    fn error_display() {
        assert!(SynthError("x".into()).to_string().contains("x"));
    }
}
