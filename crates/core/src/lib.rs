//! LinuxFP: transparently accelerating (simulated) Linux networking —
//! the paper's primary contribution.
//!
//! The controller continuously introspects the kernel over netlink,
//! models the active configuration as a JSON processing graph, then
//! synthesizes, verifies and atomically deploys a **minimal** eBPF fast
//! path containing exactly the modules the configuration needs. Linux
//! (here, `linuxfp-netstack`) remains the complete slow path, and the
//! fast path reads kernel state through helpers, so both paths always
//! agree — the user keeps using `ip`, `brctl`, `iptables`, Kubernetes
//! CNIs, and transparently gets acceleration.
//!
//! Components (paper §V):
//!
//! - [`objects`] + Service Introspection: netlink dumps/notifications →
//!   LinuxFP objects ([`objects::ObjectStore`]).
//! - [`graph`]: the Topology Manager deriving the JSON processing-graph
//!   model from the objects.
//! - [`fpm`]: the FPM template library (bridge, router, filter, and the
//!   ipvs extension), specialized per configuration.
//! - [`synth`]: the Fast Path Synthesizer turning the JSON model into
//!   bytecode programs (plus the Fig. 10 microbenchmark chains).
//! - [`capability`]: the Capability Manager gating modules on available
//!   kernel helpers.
//! - [`deploy`]: the Fast Path Deployer with per-interface dispatchers
//!   and atomic tail-call swaps.
//! - [`controller`]: the daemon tying it all together and reporting
//!   reaction times (paper Table VI).
//!
//! # Example
//!
//! ```
//! use linuxfp_core::controller::{Controller, ControllerConfig};
//! use linuxfp_netstack::stack::{IfAddr, Kernel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kernel = Kernel::new(7);
//! let eth0 = kernel.add_physical("eth0")?;
//! let eth1 = kernel.add_physical("eth1")?;
//! kernel.ip_link_set_up(eth0)?;
//! kernel.ip_link_set_up(eth1)?;
//! let (mut controller, _) = Controller::attach(&mut kernel, ControllerConfig::default())?;
//!
//! // Configure Linux the ordinary way; the controller reacts on poll.
//! kernel.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>()?)?;
//! kernel.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>()?)?;
//! kernel.sysctl_set("net.ipv4.ip_forward", 1)?;
//! let report = controller.poll(&mut kernel)?.expect("events pending");
//! assert!(report.changed);
//! assert_eq!(report.installed.len(), 2); // one fast path per NIC
//! # Ok(())
//! # }
//! ```

pub mod capability;
pub mod controller;
pub mod deploy;
pub mod fpm;
pub mod graph;
pub mod objects;
pub mod synth;

pub use capability::Capabilities;
pub use controller::{Controller, ControllerConfig, ReactionReport, Trigger};
pub use deploy::{DeployError, Deployer};
pub use fpm::{FpmInstance, FpmKind};
pub use objects::ObjectStore;
pub use synth::{SynthError, SynthesizedFp};
