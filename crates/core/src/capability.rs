//! The Capability Manager: does the running kernel support the fast path
//! we are about to build?
//!
//! The paper's helpers (`bpf_fdb_lookup`, `bpf_ipt_lookup`) are *not*
//! upstream; a LinuxFP controller on a stock kernel must detect their
//! absence and synthesize only what the kernel can support, leaving the
//! rest to the slow path (paper §V, "Capability Manager"). Failure
//! injection tests flip these flags to verify graceful degradation.

use crate::fpm::FpmKind;
use linuxfp_ebpf::insn::HelperId;
use std::collections::HashSet;

/// The set of kernel facilities available to synthesized fast paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capabilities {
    helpers: HashSet<HelperId>,
}

impl Capabilities {
    /// Everything available — a kernel carrying the paper's helper
    /// patches.
    pub fn full() -> Self {
        Capabilities {
            helpers: [
                HelperId::FibLookup,
                HelperId::FdbLookup,
                HelperId::IptLookup,
                HelperId::Redirect,
                HelperId::KtimeGetNs,
                HelperId::MapLookup,
                HelperId::MapUpdate,
                HelperId::CtLookup,
                HelperId::NatLookup,
                HelperId::L7PolicyLookup,
                HelperId::TrivialNf,
                HelperId::XskRedirect,
            ]
            .into_iter()
            .collect(),
        }
    }

    /// A stock mainline kernel: `bpf_fib_lookup` exists, the paper's new
    /// helpers do not.
    pub fn stock_kernel() -> Self {
        let mut caps = Capabilities::full();
        caps.helpers.remove(&HelperId::FdbLookup);
        caps.helpers.remove(&HelperId::IptLookup);
        caps.helpers.remove(&HelperId::CtLookup);
        caps.helpers.remove(&HelperId::NatLookup);
        caps.helpers.remove(&HelperId::L7PolicyLookup);
        caps
    }

    /// Removes a helper (failure injection / older kernels).
    pub fn without(mut self, helper: HelperId) -> Self {
        self.helpers.remove(&helper);
        self
    }

    /// Whether a helper is available.
    pub fn has(&self, helper: HelperId) -> bool {
        self.helpers.contains(&helper)
    }

    /// Whether every helper an FPM kind requires is available.
    pub fn supports(&self, kind: FpmKind) -> bool {
        kind.required_helpers().iter().all(|h| self.has(*h))
    }
}

impl Default for Capabilities {
    fn default() -> Self {
        Capabilities::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_supports_everything() {
        let caps = Capabilities::full();
        for kind in FpmKind::ALL {
            assert!(caps.supports(kind), "{kind:?}");
        }
    }

    #[test]
    fn stock_kernel_lacks_new_helpers() {
        let caps = Capabilities::stock_kernel();
        assert!(caps.supports(FpmKind::Router)); // bpf_fib_lookup upstream
        assert!(!caps.supports(FpmKind::Bridge)); // needs bpf_fdb_lookup
        assert!(!caps.supports(FpmKind::Filter)); // needs bpf_ipt_lookup
        assert!(!caps.supports(FpmKind::Ipvs));
        assert!(!caps.supports(FpmKind::Nat)); // needs bpf_nat_lookup
        assert!(!caps.supports(FpmKind::L7)); // needs bpf_l7_policy_lookup
    }

    #[test]
    fn without_removes_single_helpers() {
        let caps = Capabilities::full().without(HelperId::FibLookup);
        assert!(!caps.supports(FpmKind::Router));
        assert!(caps.supports(FpmKind::Bridge));
        assert!(!caps.has(HelperId::FibLookup));
        assert!(caps.has(HelperId::Redirect));
    }
}
