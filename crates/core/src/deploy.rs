//! The Fast Path Deployer: verify, load, attach dispatchers, and swap
//! data paths atomically.
//!
//! Per paper §IV-A2: replacing an attached XDP program can lose packets
//! for seconds, so LinuxFP attaches a constant dispatcher per interface
//! and swaps the *tail-call target* instead. The deployer owns one
//! [`Dispatcher`] per accelerated interface and hook, creates it on first
//! deployment, and afterwards only updates program-array slots.

use crate::synth::SynthesizedFp;
use linuxfp_ebpf::hook::{Dispatcher, HookPoint};
use linuxfp_ebpf::maps::MapStore;
use linuxfp_ebpf::opt;
use linuxfp_ebpf::program::{LoadedProgram, Program};
use linuxfp_ebpf::verifier::VerifyError;
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::stack::Kernel;
use linuxfp_netstack::NetError;
use linuxfp_telemetry::Registry;
use std::collections::HashMap;
use std::fmt;

/// Deployment failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The synthesized program failed verification — a controller bug;
    /// the old data path stays installed.
    Rejected {
        /// Interface whose program was rejected.
        ifname: String,
        /// The verifier error.
        error: VerifyError,
    },
    /// The target interface disappeared between synthesis and deploy.
    Device(String),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Rejected { ifname, error } => {
                write!(f, "program for {ifname} rejected by verifier: {error}")
            }
            DeployError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<NetError> for DeployError {
    fn from(e: NetError) -> Self {
        DeployError::Device(e.to_string())
    }
}

/// Summary of one deployment round.
#[derive(Debug, Clone, Default)]
pub struct DeployOutcome {
    /// `(interface name, program instruction count)` for each installed
    /// data path.
    pub installed: Vec<(String, usize)>,
    /// Interfaces whose data path was removed (configuration no longer
    /// needs one).
    pub removed: Vec<IfIndex>,
    /// How many programs actually changed (were verified, loaded and
    /// swapped); unchanged programs are left untouched.
    pub swapped: usize,
    /// Instructions removed by the bytecode optimizer across the
    /// programs swapped this round (0 with `net.linuxfp.opt=0`).
    pub opt_removed: usize,
}

/// Owns the per-interface dispatchers and performs atomic swaps.
#[derive(Debug)]
pub struct Deployer {
    hook: HookPoint,
    maps: MapStore,
    dispatchers: HashMap<IfIndex, Dispatcher>,
    telemetry: Option<Registry>,
}

impl Deployer {
    /// Creates a deployer targeting the given hook point.
    pub fn new(hook: HookPoint, maps: MapStore) -> Self {
        Deployer {
            hook,
            maps,
            dispatchers: HashMap::new(),
            telemetry: None,
        }
    }

    /// Enables telemetry: dispatcher hit/fallback/VM counters, verifier
    /// accept/reject tallies and swap trace events land in `registry`
    /// (applies to existing and future dispatchers).
    pub fn set_telemetry(&mut self, registry: Registry) {
        registry.describe(
            "linuxfp_verifier_accepted_total",
            "Synthesized programs accepted by the in-kernel verifier",
        );
        registry.describe(
            "linuxfp_verifier_rejected_total",
            "Synthesized programs rejected by the in-kernel verifier",
        );
        registry.describe(
            "linuxfp_opt_insns_before_total",
            "Instructions entering the bytecode optimizer at deploy time",
        );
        registry.describe(
            "linuxfp_opt_insns_after_total",
            "Instructions leaving the bytecode optimizer at deploy time",
        );
        registry.describe(
            "linuxfp_fp_program_insns",
            "Deployed program size in instructions, per FPM pipeline",
        );
        registry.describe(
            "linuxfp_opt_insns_removed",
            "Instructions the optimizer removed from the deployed program, per FPM pipeline",
        );
        for dispatcher in self.dispatchers.values() {
            dispatcher.enable_telemetry(&registry);
        }
        self.telemetry = Some(registry);
    }

    /// The telemetry registry, if enabled.
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telemetry.as_ref()
    }

    /// The hook point this deployer attaches to.
    pub fn hook(&self) -> HookPoint {
        self.hook
    }

    /// The shared map store (program arrays + any platform maps).
    pub fn maps(&self) -> &MapStore {
        &self.maps
    }

    /// Interfaces that currently have a data path installed.
    pub fn active_interfaces(&self) -> Vec<IfIndex> {
        let mut v: Vec<IfIndex> = self
            .dispatchers
            .iter()
            .filter(|(_, d)| d.installed().is_some())
            .map(|(i, _)| *i)
            .collect();
        v.sort();
        v
    }

    /// The installed program for an interface, if any.
    pub fn installed(&self, ifindex: IfIndex) -> Option<LoadedProgram> {
        self.dispatchers.get(&ifindex).and_then(|d| d.installed())
    }

    /// Deploys a full set of synthesized fast paths: verifies and loads
    /// each program, attaches dispatchers on first use, swaps slots, and
    /// uninstalls data paths for interfaces no longer in the set.
    ///
    /// # Errors
    ///
    /// On the first verification or device failure; interfaces already
    /// swapped in this round keep their new program (each swap is
    /// individually atomic, as in the paper).
    pub fn deploy(
        &mut self,
        kernel: &mut Kernel,
        fps: &[SynthesizedFp],
    ) -> Result<DeployOutcome, DeployError> {
        let mut outcome = DeployOutcome::default();
        let mut target: HashMap<IfIndex, &SynthesizedFp> = HashMap::new();
        for fp in fps {
            target.insert(fp.ifindex, fp);
        }

        // Remove data paths for interfaces that no longer need one.
        for (ifindex, dispatcher) in &self.dispatchers {
            if !target.contains_key(ifindex) && dispatcher.installed().is_some() {
                dispatcher.uninstall();
                outcome.removed.push(*ifindex);
            }
        }
        outcome.removed.sort();

        for fp in fps {
            // Run the synthesized program through the bytecode
            // optimizer (sysctl-gated) before verification: the
            // verifier and the load-time JIT then see the shrunk form.
            // The optimizer re-verifies its output and falls back to
            // the input on any failure, so this cannot turn a loadable
            // program into a rejected one.
            let (effective, stats) = if kernel.opt_enabled() {
                let (insns, stats) = opt::optimize(&fp.program.insns);
                (insns, Some(stats))
            } else {
                (fp.program.insns.clone(), None)
            };
            // Unchanged program: leave the running data path alone (no
            // verify/load/swap cost, no disturbance). Compared against
            // the *effective* instructions, so flipping the sysctl
            // redeploys on the next controller pass.
            if let Some(current) = self.installed(fp.ifindex) {
                if current.insns() == effective.as_slice() {
                    outcome.installed.push((fp.ifname.clone(), current.len()));
                    continue;
                }
            }
            if let (Some(reg), Some(stats)) = (&self.telemetry, stats) {
                let labels = [("fpm", fp.fpm_label.as_str())];
                reg.counter("linuxfp_opt_insns_before_total", &labels)
                    .add(stats.before as u64);
                reg.counter("linuxfp_opt_insns_after_total", &labels)
                    .add(stats.after as u64);
                reg.gauge("linuxfp_opt_insns_removed", &labels)
                    .set(stats.removed() as i64);
            }
            if let Some(reg) = &self.telemetry {
                reg.gauge(
                    "linuxfp_fp_program_insns",
                    &[("fpm", fp.fpm_label.as_str())],
                )
                .set(effective.len() as i64);
            }
            outcome.opt_removed += stats.map_or(0, |s| s.removed());
            let program = Program::new(fp.program.name.clone(), effective);
            let loaded = match LoadedProgram::load(program) {
                Ok(loaded) => {
                    if let Some(reg) = &self.telemetry {
                        reg.counter("linuxfp_verifier_accepted_total", &[]).inc();
                    }
                    loaded
                }
                Err(error) => {
                    if let Some(reg) = &self.telemetry {
                        reg.counter("linuxfp_verifier_rejected_total", &[]).inc();
                        reg.events()
                            .push("verifier_reject", format!("{}: {error}", fp.ifname));
                    }
                    return Err(DeployError::Rejected {
                        ifname: fp.ifname.clone(),
                        error,
                    });
                }
            };
            let len = loaded.len();
            let dispatcher = match self.dispatchers.get(&fp.ifindex) {
                Some(d) => d,
                None => {
                    let d = Dispatcher::new(self.maps.clone());
                    if let Some(reg) = &self.telemetry {
                        d.enable_telemetry(reg);
                    }
                    d.attach(kernel, fp.ifindex, self.hook)?;
                    self.dispatchers.insert(fp.ifindex, d);
                    self.dispatchers.get(&fp.ifindex).expect("just inserted")
                }
            };
            dispatcher.set_fpm_label(&fp.fpm_label);
            dispatcher.install(loaded);
            outcome.swapped += 1;
            outcome.installed.push((fp.ifname.clone(), len));
        }
        Ok(outcome)
    }

    /// Tears down all data paths (dispatchers stay attached and PASS).
    pub fn uninstall_all(&mut self) {
        for dispatcher in self.dispatchers.values() {
            dispatcher.uninstall();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpm::FpmInstance;
    use crate::synth::synthesize_pipeline;
    use linuxfp_ebpf::insn::Insn;
    use linuxfp_netstack::stack::IfAddr;
    use linuxfp_packet::{builder, MacAddr};
    use std::net::Ipv4Addr;

    fn forwarding_kernel() -> (Kernel, IfIndex, IfIndex) {
        let mut k = Kernel::new(5);
        let eth0 = k.add_physical("eth0").unwrap();
        let eth1 = k.add_physical("eth1").unwrap();
        k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_link_set_up(eth0).unwrap();
        k.ip_link_set_up(eth1).unwrap();
        k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
        k.ip_route_add(
            "10.10.0.0/16".parse().unwrap(),
            Some(Ipv4Addr::new(10, 0, 2, 2)),
            None,
        )
        .unwrap();
        let now = k.now();
        k.neigh.learn(
            Ipv4Addr::new(10, 0, 2, 2),
            MacAddr::from_index(0xBEEF),
            eth1,
            now,
        );
        (k, eth0, eth1)
    }

    fn router_fp(ifindex: IfIndex, name: &str) -> SynthesizedFp {
        synthesize_pipeline(ifindex, name, &[FpmInstance::Router]).unwrap()
    }

    #[test]
    fn deploy_accelerates_forwarding() {
        let (mut k, eth0, eth1) = forwarding_kernel();
        let mut d = Deployer::new(HookPoint::Xdp, MapStore::new());
        let out = d.deploy(&mut k, &[router_fp(eth0, "eth0")]).unwrap();
        assert_eq!(out.installed.len(), 1);
        assert!(out.removed.is_empty());
        assert_eq!(d.active_interfaces(), vec![eth0]);
        // A forwarded packet now takes the fast path: redirected by XDP,
        // no sk_buff, no kernel FIB stage.
        let frame = builder::udp_packet(
            MacAddr::from_index(1),
            k.device(eth0).unwrap().mac,
            Ipv4Addr::new(10, 0, 1, 100),
            Ipv4Addr::new(10, 10, 3, 7),
            1,
            2,
            b"x",
        );
        let out = k.receive(eth0, frame);
        assert_eq!(out.transmissions().len(), 1);
        assert_eq!(out.transmissions()[0].0, eth1);
        assert_eq!(out.cost.stage_count("skb_alloc"), 0);
        assert_eq!(out.cost.stage_count("helper_fib_lookup"), 1);
        assert_eq!(out.cost.stage_count("fib_lookup"), 0);
    }

    #[test]
    fn redeploy_swaps_without_reattach() {
        let (mut k, eth0, _) = forwarding_kernel();
        let mut d = Deployer::new(HookPoint::Xdp, MapStore::new());
        d.deploy(&mut k, &[router_fp(eth0, "eth0")]).unwrap();
        let first = d.installed(eth0).unwrap();
        d.deploy(&mut k, &[router_fp(eth0, "eth0")]).unwrap();
        let second = d.installed(eth0).unwrap();
        assert_eq!(first.name(), second.name());
        // Removing the interface from the set uninstalls its program.
        let out = d.deploy(&mut k, &[]).unwrap();
        assert_eq!(out.removed, vec![eth0]);
        assert!(d.installed(eth0).is_none());
        assert!(d.active_interfaces().is_empty());
        // Traffic still flows through the slow path (dispatcher passes).
        let frame = builder::udp_packet(
            MacAddr::from_index(1),
            k.device(eth0).unwrap().mac,
            Ipv4Addr::new(10, 0, 1, 100),
            Ipv4Addr::new(10, 10, 3, 7),
            1,
            2,
            b"x",
        );
        let out = k.receive(eth0, frame);
        assert_eq!(out.transmissions().len(), 1);
        assert_eq!(out.cost.stage_count("skb_alloc"), 1);
    }

    #[test]
    fn rejected_program_reports_and_keeps_old_path() {
        let (mut k, eth0, _) = forwarding_kernel();
        let mut d = Deployer::new(HookPoint::Xdp, MapStore::new());
        d.deploy(&mut k, &[router_fp(eth0, "eth0")]).unwrap();
        let bogus = SynthesizedFp {
            ifindex: eth0,
            ifname: "eth0".into(),
            program: linuxfp_ebpf::program::Program::new("bogus", vec![Insn::Exit]),
            fpm_count: 1,
            fpm_label: "bogus".into(),
            cacheable: true,
        };
        let err = d.deploy(&mut k, &[bogus]).unwrap_err();
        assert!(matches!(err, DeployError::Rejected { .. }));
        assert!(err.to_string().contains("eth0"));
        // The previous good program is still installed.
        assert!(d.installed(eth0).is_some());
    }

    #[test]
    fn missing_device_is_an_error() {
        let (mut k, _, _) = forwarding_kernel();
        let mut d = Deployer::new(HookPoint::Xdp, MapStore::new());
        let err = d
            .deploy(&mut k, &[router_fp(IfIndex(99), "ghost")])
            .unwrap_err();
        assert!(matches!(err, DeployError::Device(_)));
        assert!(err.to_string().contains("device"));
    }

    #[test]
    fn uninstall_all_clears_everything() {
        let (mut k, eth0, eth1) = forwarding_kernel();
        let mut d = Deployer::new(HookPoint::Xdp, MapStore::new());
        d.deploy(&mut k, &[router_fp(eth0, "eth0"), router_fp(eth1, "eth1")])
            .unwrap();
        assert_eq!(d.active_interfaces().len(), 2);
        d.uninstall_all();
        assert!(d.active_interfaces().is_empty());
        assert_eq!(d.hook(), HookPoint::Xdp);
        assert!(d.maps().len() >= 2); // one prog array per dispatcher
    }
}
