//! Robustness: the synthesizer must never panic on arbitrary (including
//! hostile) JSON processing graphs — it either synthesizes verifiable
//! programs or returns a structured error.

use linuxfp_core::synth::synthesize;
use proptest::prelude::*;
use serde_json::{json, Value};

fn arb_json(depth: u32) -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        any::<i64>().prop_map(Value::from),
        any::<u16>().prop_map(Value::from),
        "[a-z_]{0,12}".prop_map(Value::from),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        4 => leaf,
        1 => prop::collection::vec(arb_json(depth - 1), 0..4).prop_map(Value::from),
        1 => prop::collection::btree_map("[a-z_]{1,8}", arb_json(depth - 1), 0..4)
            .prop_map(|m| Value::Object(m.into_iter().collect())),
    ]
    .boxed()
}

/// Keys the graph actually uses, mixed in so fuzzing reaches deep paths.
fn arb_graph() -> impl Strategy<Value = Value> {
    (
        prop::collection::btree_map("[a-z]{1,6}", arb_json(2), 0..4),
        prop::collection::vec(
            (
                prop_oneof![
                    Just("bridge"),
                    Just("router"),
                    Just("filter"),
                    Just("ipvs"),
                    Just("warp_drive")
                ],
                arb_json(2),
            ),
            0..4,
        ),
        any::<u32>(),
    )
        .prop_map(|(noise, pipeline, ifindex)| {
            let nodes: Vec<Value> = pipeline
                .into_iter()
                .map(|(nf, conf)| json!({"nf": nf, "conf": conf}))
                .collect();
            let mut ifaces = serde_json::Map::new();
            ifaces.insert(
                "fuzzed".to_string(),
                json!({"ifindex": ifindex, "pipeline": nodes}),
            );
            for (k, v) in noise {
                ifaces.insert(k, v);
            }
            json!({"interfaces": Value::Object(ifaces)})
        })
}

fn arb_valid_conf(nf: &'static str) -> BoxedStrategy<Value> {
    match nf {
        "bridge" => (any::<bool>(), any::<bool>(), any::<u16>(), any::<[u8; 6]>(), any::<bool>(), any::<bool>())
            .prop_map(|(stp, vlan, pvid, mac, l3, brnf)| {
                json!({
                    "stp_enabled": stp, "vlan_enabled": vlan, "pvid": pvid,
                    "bridge_mac": mac, "has_l3": l3, "br_nf": brnf,
                })
            })
            .boxed(),
        "filter" => (any::<u16>(), any::<bool>(), any::<bool>())
            .prop_map(|(rules, ipset, ports)| {
                json!({"rules": rules, "ipset": ipset, "match_ports": ports})
            })
            .boxed(),
        "ipvs" => (any::<[u8; 4]>(), any::<u16>())
            .prop_map(|(vip, port)| json!({"vip": vip, "port": port}))
            .boxed(),
        _ => Just(json!({})).boxed(),
    }
}

/// Pipelines whose confs deserialize but whose composition may be
/// structurally invalid (filter without router, trailing bridges, ...).
fn arb_hostile_pipeline() -> impl Strategy<Value = Value> {
    prop::collection::vec(
        prop_oneof![Just("bridge"), Just("router"), Just("filter"), Just("ipvs")],
        0..5,
    )
    .prop_flat_map(|kinds| {
        let confs: Vec<BoxedStrategy<Value>> =
            kinds.iter().map(|k| arb_valid_conf(k)).collect();
        (Just(kinds), confs)
    })
    .prop_map(|(kinds, confs)| {
        let nodes: Vec<Value> = kinds
            .iter()
            .zip(confs)
            .map(|(nf, conf)| json!({"nf": nf, "conf": conf}))
            .collect();
        json!({"interfaces": {"hostile": {"ifindex": 1, "pipeline": nodes}}})
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structurally hostile but well-typed pipelines never panic: they
    /// synthesize verifiable programs or return a structured error.
    #[test]
    fn synthesize_is_total_on_hostile_pipelines(g in arb_hostile_pipeline()) {
        if let Ok(fps) = synthesize(&g) {
            for fp in fps {
                linuxfp_ebpf::program::LoadedProgram::load(fp.program)
                    .expect("synthesized program must verify");
            }
        }
    }

    /// Arbitrary JSON never panics the synthesizer.
    #[test]
    fn synthesize_is_total_on_arbitrary_json(v in arb_json(3)) {
        let _ = synthesize(&v);
    }

    /// Graph-shaped JSON with hostile confs never panics either, and any
    /// programs produced pass the verifier.
    #[test]
    fn synthesize_is_total_on_graph_shaped_json(g in arb_graph()) {
        if let Ok(fps) = synthesize(&g) {
            for fp in fps {
                // Anything the synthesizer accepts must verify: the
                // templates may not emit unverifiable code no matter the
                // configuration values.
                linuxfp_ebpf::program::LoadedProgram::load(fp.program)
                    .expect("synthesized program must verify");
            }
        }
    }
}
