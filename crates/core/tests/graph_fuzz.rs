//! Robustness: the synthesizer must never panic on arbitrary (including
//! hostile) JSON processing graphs — it either synthesizes verifiable
//! programs or returns a structured error.
//!
//! Random graphs are generated with the workspace's seeded [`SimRng`]
//! (the build is fully offline, so no external fuzzing framework).

use linuxfp_core::synth::synthesize;
use linuxfp_json::{json, Map, Value};
use linuxfp_sim::SimRng;

fn rand_key(rng: &mut SimRng, min: usize, max: usize) -> String {
    let len = min + rng.uniform_u64((max - min + 1) as u64) as usize;
    (0..len)
        .map(|_| (b'a' + rng.uniform_u64(26) as u8) as char)
        .collect()
}

/// Arbitrary JSON up to `depth` levels of nesting.
fn rand_json(rng: &mut SimRng, depth: u32) -> Value {
    let pick = if depth == 0 {
        rng.uniform_u64(5)
    } else {
        rng.uniform_u64(7)
    };
    match pick {
        0 => Value::Null,
        1 => Value::from(rng.chance(0.5)),
        2 => Value::from(rng.uniform_u64(u64::MAX) as i64),
        3 => Value::from(rng.uniform_u64(1 << 16) as u16),
        4 => Value::from(rand_key(rng, 0, 12)),
        5 => Value::Array(
            (0..rng.uniform_u64(4))
                .map(|_| rand_json(rng, depth - 1))
                .collect(),
        ),
        _ => {
            let mut m = Map::new();
            for _ in 0..rng.uniform_u64(4) {
                m.insert(rand_key(rng, 1, 8), rand_json(rng, depth - 1));
            }
            Value::Object(m)
        }
    }
}

const NF_KINDS: [&str; 6] = ["bridge", "router", "filter", "ipvs", "nat", "warp_drive"];

/// Keys the graph actually uses, mixed in so fuzzing reaches deep paths.
fn rand_graph(rng: &mut SimRng) -> Value {
    let nodes: Vec<Value> = (0..rng.uniform_u64(4))
        .map(|_| {
            let nf = *rng.choose(&NF_KINDS);
            let conf = rand_json(rng, 2);
            json!({"nf": nf, "conf": conf})
        })
        .collect();
    let mut ifaces = Map::new();
    ifaces.insert(
        "fuzzed".to_string(),
        json!({"ifindex": rng.uniform_u64(1 << 32) as u32, "pipeline": nodes}),
    );
    for _ in 0..rng.uniform_u64(4) {
        let k = rand_key(rng, 1, 6);
        let v = rand_json(rng, 2);
        ifaces.insert(k, v);
    }
    json!({"interfaces": Value::Object(ifaces)})
}

fn rand_valid_conf(rng: &mut SimRng, nf: &str) -> Value {
    match nf {
        "bridge" => {
            let mac: [u8; 6] = std::array::from_fn(|_| rng.uniform_u64(256) as u8);
            json!({
                "stp_enabled": rng.chance(0.5),
                "vlan_enabled": rng.chance(0.5),
                "pvid": rng.uniform_u64(1 << 16) as u16,
                "bridge_mac": mac,
                "has_l3": rng.chance(0.5),
                "br_nf": rng.chance(0.5),
            })
        }
        "filter" => json!({
            "rules": rng.uniform_u64(1 << 16) as u16,
            "ipset": rng.chance(0.5),
            "match_ports": rng.chance(0.5),
        }),
        "ipvs" => {
            let vip: [u8; 4] = std::array::from_fn(|_| rng.uniform_u64(256) as u8);
            json!({"vip": vip, "port": rng.uniform_u64(1 << 16) as u16})
        }
        "nat" => json!({
            "dnat_rules": rng.uniform_u64(1 << 16) as u16,
            "snat_rules": rng.uniform_u64(1 << 16) as u16,
        }),
        _ => json!({}),
    }
}

/// Pipelines whose confs deserialize but whose composition may be
/// structurally invalid (filter without router, trailing bridges, ...).
fn rand_hostile_pipeline(rng: &mut SimRng) -> Value {
    let nodes: Vec<Value> = (0..rng.uniform_u64(5))
        .map(|_| {
            let nf = *rng.choose(&NF_KINDS[..5]);
            let conf = rand_valid_conf(rng, nf);
            json!({"nf": nf, "conf": conf})
        })
        .collect();
    json!({"interfaces": {"hostile": {"ifindex": 1, "pipeline": nodes}}})
}

/// Structurally hostile but well-typed pipelines never panic: they
/// synthesize verifiable programs or return a structured error.
#[test]
fn synthesize_is_total_on_hostile_pipelines() {
    let mut rng = SimRng::seed(0xF022_0001);
    for _ in 0..256 {
        let g = rand_hostile_pipeline(&mut rng);
        if let Ok(fps) = synthesize(&g) {
            for fp in fps {
                linuxfp_ebpf::program::LoadedProgram::load(fp.program)
                    .expect("synthesized program must verify");
            }
        }
    }
}

/// Arbitrary JSON never panics the synthesizer.
#[test]
fn synthesize_is_total_on_arbitrary_json() {
    let mut rng = SimRng::seed(0xF022_0002);
    for _ in 0..256 {
        let v = rand_json(&mut rng, 3);
        let _ = synthesize(&v);
    }
}

/// Graph-shaped JSON with hostile confs never panics either, and any
/// programs produced pass the verifier.
#[test]
fn synthesize_is_total_on_graph_shaped_json() {
    let mut rng = SimRng::seed(0xF022_0003);
    for _ in 0..256 {
        let g = rand_graph(&mut rng);
        if let Ok(fps) = synthesize(&g) {
            for fp in fps {
                // Anything the synthesizer accepts must verify: the
                // templates may not emit unverifiable code no matter the
                // configuration values.
                linuxfp_ebpf::program::LoadedProgram::load(fp.program)
                    .expect("synthesized program must verify");
            }
        }
    }
}
