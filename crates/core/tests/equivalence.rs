//! Fast-path / slow-path equivalence — the paper's central correctness
//! requirement (§IV-B2): "every packet must be able to be processed
//! either by the LinuxFP fast path or by the kernel with the identical
//! result under all circumstances."
//!
//! Strategy: build two kernels with the *same* configuration and the same
//! device MAC seed; attach the LinuxFP controller to one of them; feed
//! both the same packet sequences; require identical externally visible
//! effects (transmissions with identical bytes, local deliveries, drops
//! of forwarded traffic).

use linuxfp_core::controller::{Controller, ControllerConfig};
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::netfilter::{ChainHook, IpSet, IptRule};
use linuxfp_netstack::stack::{Effect, IfAddr, Kernel};
use linuxfp_packet::ipv4::Prefix;
use linuxfp_packet::{builder, EthernetFrame, Ipv4Header, MacAddr};
use linuxfp_sim::SimRng;
use std::net::Ipv4Addr;

/// Builds the virtual-gateway topology from the paper's evaluation:
/// two NICs, forwarding, 50 prefixes, optional iptables rules.
fn build_gateway(seed: u64, rules: usize, use_ipset: bool) -> (Kernel, IfIndex, IfIndex) {
    let mut k = Kernel::new(seed);
    let eth0 = k.add_physical("eth0").unwrap();
    let eth1 = k.add_physical("eth1").unwrap();
    k.ip_addr_add(eth0, "10.0.1.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_addr_add(eth1, "10.0.2.1/24".parse::<IfAddr>().unwrap())
        .unwrap();
    k.ip_link_set_up(eth0).unwrap();
    k.ip_link_set_up(eth1).unwrap();
    k.sysctl_set("net.ipv4.ip_forward", 1).unwrap();
    for i in 0..50u32 {
        k.ip_route_add(
            Prefix::new(Ipv4Addr::new(10, 10, i as u8, 0), 24),
            Some(Ipv4Addr::new(10, 0, 2, 2)),
            None,
        )
        .unwrap();
    }
    if use_ipset {
        let mut set = IpSet::new_hash_net();
        for i in 0..rules as u32 {
            set.add(Prefix::new(
                Ipv4Addr::new(10, 10, (i % 50) as u8, (i / 50) as u8 * 16),
                28,
            ));
        }
        k.ipset_create("blacklist", set);
        k.iptables_append(ChainHook::Forward, IptRule::drop_dst_set("blacklist"));
    } else {
        for i in 0..rules as u32 {
            k.iptables_append(
                ChainHook::Forward,
                IptRule::drop_dst(Prefix::new(
                    Ipv4Addr::new(10, 10, (i % 50) as u8, (i / 50) as u8 * 16),
                    28,
                )),
            );
        }
    }
    let now = k.now();
    k.neigh.learn(
        Ipv4Addr::new(10, 0, 2, 2),
        MacAddr::from_index(0xBEEF),
        eth1,
        now,
    );
    (k, eth0, eth1)
}

/// Normalizes an outcome for comparison: the multiset of externally
/// visible effects.
fn observable(effects: &[Effect]) -> Vec<String> {
    let mut v: Vec<String> = effects
        .iter()
        .filter_map(|e| match e {
            Effect::Transmit { dev, frame } => Some(format!("tx:{}:{}", dev.as_u32(), hex(frame))),
            Effect::Deliver { dev, frame } => Some(format!("rx:{}:{}", dev.as_u32(), hex(frame))),
            // Drop reasons differ textually between paths ("xdp drop" vs
            // "nf forward drop"); what must match is everything else.
            Effect::Drop { .. } => None,
        })
        .collect();
    v.sort();
    v
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn rand_packet(rng: &mut SimRng, eth0_mac: MacAddr) -> Vec<u8> {
    let d3 = rng.uniform_u64(256) as u8;
    let d4 = rng.uniform_u64(256) as u8;
    let ttl = 1 + rng.uniform_u64(254) as u8;
    let sport = rng.uniform_u64(1 << 16) as u16;
    let dport = rng.uniform_u64(1 << 16) as u16;
    let proto_sel = rng.uniform_u64(4) as u8;
    let frag = rng.chance(0.1);
    let payload: Vec<u8> = (0..rng.uniform_u64(64))
        .map(|_| rng.uniform_u64(256) as u8)
        .collect();
    let dst = Ipv4Addr::new(10, 10, d3 % 64, d4); // mostly routed, some misses
    let src = Ipv4Addr::new(10, 0, 1, 100);
    let mut frame = match proto_sel {
        0 | 1 => builder::udp_packet(
            MacAddr::from_index(0xAAAA),
            eth0_mac,
            src,
            dst,
            sport,
            dport,
            &payload,
        ),
        2 => builder::tcp_packet(
            MacAddr::from_index(0xAAAA),
            eth0_mac,
            src,
            dst,
            sport,
            dport,
            linuxfp_packet::tcp::TcpFlags::default(),
            &payload,
        ),
        _ => builder::icmp_echo_request(
            MacAddr::from_index(0xAAAA),
            eth0_mac,
            src,
            dst,
            sport,
            dport,
        ),
    };
    // Rewrite TTL (and fragment bit) then fix the checksum by re-writing
    // the header.
    let eth = EthernetFrame::parse(&frame).unwrap();
    let off = eth.payload_offset;
    let ip = Ipv4Header::parse(&frame[off..]).unwrap();
    Ipv4Header::write(
        &mut frame[off..],
        ip.src,
        ip.dst,
        ip.proto,
        ttl,
        ip.id,
        ip.total_len,
        false,
    );
    if frag {
        // Set the more-fragments bit and refresh the checksum.
        frame[off + 6] = 0x20;
        frame[off + 10] = 0;
        frame[off + 11] = 0;
        let c = linuxfp_packet::checksum::checksum(&frame[off..off + 20]);
        frame[off + 10..off + 12].copy_from_slice(&c.to_be_bytes());
    }
    frame
}

/// Gateway equivalence: for random packets (routed, unrouted,
/// blacklisted, fragments, TTL edge cases, multiple protocols), the
/// accelerated kernel and the plain kernel produce identical observable
/// effects. 64 deterministic seeded cases.
#[test]
fn gateway_fast_path_equals_slow_path() {
    let mut rng = SimRng::seed(0xE001_0001);
    for _ in 0..64 {
        let rules = rng.uniform_u64(60) as usize;
        let use_ipset = rng.chance(0.5);
        let (mut plain, eth0_p, _) = build_gateway(1, rules, use_ipset);
        let (mut fast, eth0_f, _) = build_gateway(1, rules, use_ipset);
        assert_eq!(eth0_p, eth0_f);
        // Device MACs are seed-derived, so both kernels share addressing.
        assert_eq!(
            plain.device(eth0_p).unwrap().mac,
            fast.device(eth0_f).unwrap().mac
        );
        let (mut ctrl, report) =
            Controller::attach(&mut fast, ControllerConfig::default()).unwrap();
        assert!(report.changed);
        assert!(!report.installed.is_empty());

        let eth0_mac = plain.device(eth0_p).unwrap().mac;
        for _ in 0..1 + rng.uniform_u64(23) {
            let frame = rand_packet(&mut rng, eth0_mac);
            let out_plain = plain.receive(eth0_p, frame.clone());
            let out_fast = fast.receive(eth0_f, frame);
            assert_eq!(
                observable(&out_plain.effects),
                observable(&out_fast.effects),
                "fast and slow paths diverged"
            );
            // Config never changed, so no redeploys mid-stream.
            assert!(ctrl.poll(&mut fast).unwrap().is_none());
        }
    }
}

/// Bridge topology: three ports on one bridge, fed L2 traffic between
/// synthetic hosts.
fn build_bridged(seed: u64) -> (Kernel, Vec<IfIndex>) {
    let mut k = Kernel::new(seed);
    let p1 = k.add_physical("p1").unwrap();
    let p2 = k.add_physical("p2").unwrap();
    let p3 = k.add_physical("p3").unwrap();
    let br = k.add_bridge("br0").unwrap();
    for p in [p1, p2, p3] {
        k.brctl_addif(br, p).unwrap();
    }
    for d in [p1, p2, p3, br] {
        k.ip_link_set_up(d).unwrap();
    }
    (k, vec![p1, p2, p3])
}

/// Bridging equivalence under random L2 conversations: learning,
/// flooding, unicast forwarding, broadcasts. 48 deterministic seeded
/// cases.
#[test]
fn bridge_fast_path_equals_slow_path() {
    let mut rng = SimRng::seed(0xE001_0002);
    for _ in 0..48 {
        let (mut plain, ports_p) = build_bridged(2);
        let (mut fast, ports_f) = build_bridged(2);
        let (mut ctrl, report) =
            Controller::attach(&mut fast, ControllerConfig::default()).unwrap();
        assert!(report.changed);
        assert_eq!(report.installed.len(), 3);

        for _ in 0..1 + rng.uniform_u64(31) {
            let port_idx = rng.uniform_u64(3) as usize;
            let src_host = rng.uniform_u64(6);
            let dst_host = rng.uniform_u64(6);
            let broadcast = rng.chance(0.15);
            let src = MacAddr::from_index(0x100 + src_host);
            let dst = if broadcast {
                MacAddr::BROADCAST
            } else {
                MacAddr::from_index(0x100 + dst_host)
            };
            let frame = builder::udp_packet(
                src,
                dst,
                Ipv4Addr::new(192, 168, 0, src_host as u8 + 1),
                Ipv4Addr::new(192, 168, 0, dst_host as u8 + 1),
                1000,
                2000,
                b"l2",
            );
            let out_plain = plain.receive(ports_p[port_idx], frame.clone());
            let out_fast = fast.receive(ports_f[port_idx], frame);
            assert_eq!(
                observable(&out_plain.effects),
                observable(&out_fast.effects),
                "bridge paths diverged"
            );
            assert!(ctrl.poll(&mut fast).unwrap().is_none());
        }
    }
}

#[test]
fn fast_path_is_actually_used_for_common_case() {
    // Sanity: after warm-up, forwarded packets take the XDP path (no
    // sk_buff) in the accelerated kernel — i.e. equivalence above is not
    // trivially comparing two slow paths.
    let (mut fast, eth0, _) = build_gateway(3, 10, false);
    let (_ctrl, _) = Controller::attach(&mut fast, ControllerConfig::default()).unwrap();
    let frame = builder::udp_packet(
        MacAddr::from_index(0xAAAA),
        fast.device(eth0).unwrap().mac,
        Ipv4Addr::new(10, 0, 1, 100),
        Ipv4Addr::new(10, 10, 40, 7), // routed, not blacklisted
        1,
        2,
        b"x",
    );
    let out = fast.receive(eth0, frame);
    assert_eq!(out.transmissions().len(), 1);
    assert_eq!(out.cost.stage_count("skb_alloc"), 0);
    assert_eq!(out.cost.stage_count("helper_fib_lookup"), 1);
    assert_eq!(out.cost.stage_count("helper_ipt_base"), 1);
}

#[test]
fn corner_cases_fall_back_to_slow_path() {
    let (mut fast, eth0, _) = build_gateway(4, 0, false);
    let (_ctrl, _) = Controller::attach(&mut fast, ControllerConfig::default()).unwrap();
    // A fragment: the fast path must PASS it to Linux.
    let mut frame = builder::udp_packet(
        MacAddr::from_index(0xAAAA),
        fast.device(eth0).unwrap().mac,
        Ipv4Addr::new(10, 0, 1, 100),
        Ipv4Addr::new(10, 10, 3, 7),
        1,
        2,
        b"frag",
    );
    frame[20] = 0x20; // MF bit
    frame[24] = 0;
    frame[25] = 0;
    let c = linuxfp_packet::checksum::checksum(&frame[14..34]);
    frame[24..26].copy_from_slice(&c.to_be_bytes());
    let out = fast.receive(eth0, frame);
    // Still forwarded, but through the slow path (sk_buff allocated).
    assert_eq!(out.transmissions().len(), 1);
    assert_eq!(out.cost.stage_count("skb_alloc"), 1);
    assert_eq!(out.cost.stage_count("fib_lookup"), 1);
}
