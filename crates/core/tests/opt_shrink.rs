//! Size regression gates for the synthesis-time bytecode optimizer:
//! every synthesized pipeline must shrink, re-verify and reload, and
//! the plain-router program — the paper's headline minimality example —
//! must lose at least a quarter of its instructions.

use linuxfp_core::fpm::{BridgeConf, FilterConf, FpmInstance, IpvsConf, L7Conf, NatConf};
use linuxfp_core::synth::synthesize_pipeline;
use linuxfp_ebpf::opt;
use linuxfp_ebpf::program::{LoadedProgram, Program};
use linuxfp_netstack::device::IfIndex;

fn pipelines() -> Vec<(&'static str, Vec<FpmInstance>)> {
    let bridge = FpmInstance::Bridge(BridgeConf {
        stp_enabled: false,
        vlan_enabled: false,
        pvid: 1,
        bridge_mac: [2, 0, 0, 0, 0, 1],
        has_l3: false,
        br_nf: false,
    });
    let filter = FpmInstance::Filter(FilterConf {
        rules: 4,
        ipset: false,
        match_ports: true,
    });
    let ipvs = FpmInstance::Ipvs(IpvsConf {
        vip: [10, 0, 0, 1],
        port: 80,
    });
    let nat = FpmInstance::Nat(NatConf {
        dnat_rules: 1,
        snat_rules: 1,
    });
    let l7 = FpmInstance::L7(L7Conf { rules: 2 });
    vec![
        ("router", vec![FpmInstance::Router]),
        ("bridge", vec![bridge]),
        ("filter_router", vec![filter.clone(), FpmInstance::Router]),
        ("ipvs_router", vec![ipvs, FpmInstance::Router]),
        ("nat_router", vec![nat.clone(), FpmInstance::Router]),
        ("l7_router", vec![l7, FpmInstance::Router]),
        ("full_forward", vec![filter, nat, FpmInstance::Router]),
    ]
}

/// Every synthesized pipeline shrinks (strictly) and the optimized
/// program still verifies and loads.
#[test]
fn every_pipeline_shrinks_and_reloads() {
    for (name, fpms) in pipelines() {
        let fp = synthesize_pipeline(IfIndex(1), "eth0", &fpms)
            .unwrap_or_else(|e| panic!("{name}: synthesis failed: {e:?}"));
        let (optimized, stats) = opt::optimize(&fp.program.insns);
        assert!(
            stats.after < stats.before,
            "{name}: no shrink ({} -> {})",
            stats.before,
            stats.after
        );
        LoadedProgram::load(Program::new(format!("opt-{name}"), optimized))
            .unwrap_or_else(|e| panic!("{name}: optimized program rejected: {e:?}"));
    }
}

/// The headline gate from the growth plan: the plain-router fast path
/// loses at least 25% of its instructions to the optimizer.
#[test]
fn plain_router_shrinks_at_least_a_quarter() {
    let fp = synthesize_pipeline(IfIndex(1), "eth0", &[FpmInstance::Router]).unwrap();
    let (_, stats) = opt::optimize(&fp.program.insns);
    assert!(
        stats.after as f64 <= stats.before as f64 * 0.75,
        "router only shrank {} -> {}",
        stats.before,
        stats.after
    );
}
