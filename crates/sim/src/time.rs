//! Virtual time: an integer nanosecond clock.
//!
//! All simulated activity is stamped in [`Nanos`]. Using an integer type
//! keeps event ordering exact and runs reproducible across platforms;
//! fractional per-packet costs live in `f64` inside the cost model and are
//! rounded only when they are turned into events.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `Nanos` is used both as an instant (time since simulation start) and as a
/// duration; the arithmetic impls cover both readings, mirroring how
/// `std::time::Duration` is commonly used in discrete-event simulators.
///
/// # Example
///
/// ```
/// use linuxfp_sim::time::Nanos;
///
/// let t = Nanos::from_micros(3) + Nanos::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// assert_eq!(t.as_secs_f64(), 3.5e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero instant (simulation start).
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a `Nanos` from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a `Nanos` from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a `Nanos` from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a `Nanos` from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a `Nanos` from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Nanos((s.max(0.0) * 1e9).round() as u64)
    }

    /// Creates a `Nanos` from a fractional nanosecond cost, rounding to the
    /// nearest nanosecond. Negative inputs saturate to zero.
    pub fn from_nanos_f64(ns: f64) -> Self {
        Nanos(ns.max(0.0).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (lossy).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in milliseconds (lossy).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in seconds (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; useful when computing elapsed spans.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

/// A monotonically advancing virtual clock.
///
/// The clock only moves forward; [`Clock::advance_to`] ignores attempts to
/// move backwards, which makes it safe to drive from several event sources.
///
/// # Example
///
/// ```
/// use linuxfp_sim::time::{Clock, Nanos};
///
/// let mut clock = Clock::new();
/// clock.advance(Nanos::from_micros(5));
/// clock.advance_to(Nanos::from_micros(3)); // ignored: in the past
/// assert_eq!(clock.now(), Nanos::from_micros(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Nanos,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Clock { now: Nanos::ZERO }
    }

    /// The current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock by `delta`.
    pub fn advance(&mut self, delta: Nanos) {
        self.now += delta;
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise a no-op.
    pub fn advance_to(&mut self, t: Nanos) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Nanos::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Nanos::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Nanos::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(Nanos::from_nanos_f64(12.6).as_nanos(), 13);
        assert_eq!(Nanos::from_nanos_f64(-4.0), Nanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_nanos(100);
        let b = Nanos::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a / 4).as_nanos(), 25);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        let total: Nanos = vec![a, b, b].into_iter().sum();
        assert_eq!(total.as_nanos(), 180);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Nanos::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = Clock::new();
        c.advance_to(Nanos::from_nanos(50));
        c.advance_to(Nanos::from_nanos(20));
        assert_eq!(c.now().as_nanos(), 50);
        c.advance(Nanos::from_nanos(5));
        assert_eq!(c.now().as_nanos(), 55);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(Nanos::MAX.checked_add(Nanos::from_nanos(1)).is_none());
        assert_eq!(
            Nanos::from_nanos(1).checked_add(Nanos::from_nanos(2)),
            Some(Nanos::from_nanos(3))
        );
    }
}
