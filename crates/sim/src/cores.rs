//! Multi-core throughput scaling.
//!
//! The paper's Figures 5 and 7 sweep the number of cores with RSS spreading
//! flows across hardware queues. Scaling is close to linear with a small
//! contention penalty from shared kernel state (route caches, conntrack
//! buckets, device counters). [`CoreModel`] converts a per-packet service
//! time into packets-per-second for `n` cores, capped at the line rate.
//!
//! **Validation.** The model is analytic, but it is no longer
//! unfalsifiable: the sharded datapath (`net.linuxfp.rss_shards`)
//! measures the same quantity directly — each RSS shard accumulates its
//! own virtual time and the wall clock of a burst is its slowest shard
//! (`BatchOutcome::wall_ns`). `sweep_rss_shards` in `linuxfp-traffic`
//! runs the steady-flow router workload at 1/2/4/8/16 shards, and the
//! `core_model_validates_against_measured_shard_sweep` paper-claims test
//! asserts this curve stays within 15% of the measurement over 1..=8
//! cores (the range the paper's figures cover). At 16 shards the
//! measurement scales *better* than the analytic curve — per-queue fixed
//! costs amortize away faster than the `(1 - contention)^(n-1)` term
//! predicts — so treat extrapolations past 8 cores as lower bounds.

use crate::cost::CostModel;
use crate::rate::line_rate_pps;

/// Converts per-packet service times into multi-core throughput.
///
/// # Example
///
/// ```
/// use linuxfp_sim::{CoreModel, CostModel};
///
/// let cost = CostModel::calibrated();
/// let cores = CoreModel::new(&cost);
/// let one = cores.throughput_pps(1000.0, 1);
/// let four = cores.throughput_pps(1000.0, 4);
/// assert!(four > 3.5 * one && four < 4.0 * one); // sublinear but close
/// ```
#[derive(Debug, Clone)]
pub struct CoreModel {
    contention: f64,
    line_rate_gbps: f64,
}

impl CoreModel {
    /// Builds a core model from the cost model's contention and line-rate
    /// parameters.
    pub fn new(cost: &CostModel) -> Self {
        CoreModel {
            contention: cost.core_contention,
            line_rate_gbps: cost.line_rate_gbps,
        }
    }

    /// Packets per second sustained by `cores` cores when one packet costs
    /// `service_ns` nanoseconds, ignoring the line rate.
    ///
    /// # Panics
    ///
    /// Panics if `service_ns` is not positive or `cores` is zero.
    pub fn throughput_pps(&self, service_ns: f64, cores: u32) -> f64 {
        assert!(service_ns > 0.0, "service_ns must be positive");
        assert!(cores > 0, "cores must be positive");
        let per_core = 1e9 / service_ns;
        let eff = (1.0 - self.contention).powi(cores as i32 - 1);
        per_core * cores as f64 * eff
    }

    /// Packets per second capped at the NIC line rate for the given frame
    /// length (including FCS).
    pub fn throughput_pps_capped(&self, service_ns: f64, cores: u32, frame_len: u32) -> f64 {
        let cpu = self.throughput_pps(service_ns, cores);
        let wire = line_rate_pps(self.line_rate_gbps, frame_len);
        cpu.min(wire)
    }

    /// Whether the given configuration is line-rate limited rather than
    /// CPU limited.
    pub fn is_line_rate_limited(&self, service_ns: f64, cores: u32, frame_len: u32) -> bool {
        self.throughput_pps(service_ns, cores) >= line_rate_pps(self.line_rate_gbps, frame_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CoreModel {
        CoreModel::new(&CostModel::calibrated())
    }

    #[test]
    fn single_core_is_inverse_service_time() {
        let m = model();
        assert!((m.throughput_pps(500.0, 1) - 2.0e6).abs() < 1.0);
    }

    #[test]
    fn scaling_is_sublinear_but_monotonic() {
        let m = model();
        let mut prev = 0.0;
        for cores in 1..=6 {
            let pps = m.throughput_pps(1000.0, cores);
            assert!(pps > prev, "not monotonic at {cores} cores");
            assert!(pps <= cores as f64 * 1e6 + 1.0, "superlinear at {cores}");
            prev = pps;
        }
    }

    #[test]
    fn line_rate_caps_large_packets() {
        let m = model();
        // 565 ns/packet at 1518-byte frames: one core delivers ~21.5 of the
        // 25 Gbps wire ("near line rate" in paper Fig. 6) and two cores are
        // fully line-rate limited.
        let one = m.throughput_pps_capped(565.0, 1, 1518);
        let gbps = crate::rate::gbps_from_pps(one, 1518);
        assert!(gbps > 20.0, "gbps {gbps}");
        assert!(m.is_line_rate_limited(565.0, 2, 1518));
        let capped = m.throughput_pps_capped(565.0, 2, 1518);
        let wire = line_rate_pps(25.0, 1518);
        assert!((capped - wire).abs() < 1.0);
        // Minimum-size packets remain CPU limited on one core.
        assert!(!m.is_line_rate_limited(565.0, 1, 64));
    }

    #[test]
    #[should_panic(expected = "cores must be positive")]
    fn zero_cores_panics() {
        model().throughput_pps(100.0, 0);
    }

    #[test]
    #[should_panic(expected = "service_ns must be positive")]
    fn zero_service_panics() {
        model().throughput_pps(0.0, 1);
    }
}
