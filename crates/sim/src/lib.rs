//! Virtual-time simulation substrate for the LinuxFP reproduction.
//!
//! The LinuxFP paper evaluates its system on real hardware (CloudLab
//! c6525-25g hosts with 25 Gbps NICs). This crate provides the deterministic
//! stand-in for that testbed: a virtual clock, a discrete-event engine, a
//! seeded random-number facade, streaming statistics, and — most importantly
//! — the single [`cost::CostModel`] that assigns a nanosecond price to every
//! packet-processing operation performed by the simulated kernel
//! (`linuxfp-netstack`), the simulated eBPF runtime (`linuxfp-ebpf`) and the
//! baseline platforms.
//!
//! Every experiment in the repository derives its throughput and latency
//! numbers from this one model, so relative results (who wins, by what
//! factor, where crossovers fall) are consistent across tables and figures,
//! exactly as they would be on a single physical testbed.
//!
//! # Example
//!
//! ```
//! use linuxfp_sim::cost::CostModel;
//! use linuxfp_sim::cores::CoreModel;
//!
//! let cost = CostModel::calibrated();
//! // A hypothetical data path that costs 800 ns per packet on one core:
//! let cores = CoreModel::new(&cost);
//! let pps = cores.throughput_pps(800.0, 1);
//! assert!(pps > 1.0e6 && pps < 1.3e6);
//! ```

pub mod cores;
pub mod cost;
pub mod events;
pub mod rate;
pub mod rng;
pub mod stats;
pub mod time;

pub use cores::CoreModel;
pub use cost::{CostModel, CostTracker};
pub use events::EventQueue;
pub use rng::SimRng;
pub use stats::Summary;
pub use time::Nanos;
