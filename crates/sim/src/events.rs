//! A minimal discrete-event queue.
//!
//! Latency experiments (netperf-style TCP_RR with 128 parallel sessions,
//! Kubernetes pod pairs) are closed-loop queueing systems; they are driven
//! by popping timestamped events from an [`EventQueue`]. Ties are broken by
//! insertion order, which keeps runs fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// One scheduled entry: fire time, insertion sequence, payload.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An earliest-first event queue over virtual time.
///
/// # Example
///
/// ```
/// use linuxfp_sim::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// q.schedule(Nanos::from_nanos(20), "late");
/// q.schedule(Nanos::from_nanos(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), e), (10, "early"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute virtual time `at`.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The fire time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(30), 3);
        q.schedule(Nanos::from_nanos(10), 1);
        q.schedule(Nanos::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Nanos::from_nanos(5);
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(t, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Nanos::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(7)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}
