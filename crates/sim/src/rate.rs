//! Line-rate arithmetic for Ethernet links.
//!
//! Used by the packet-size sweep (paper Fig. 6) where LinuxFP and Polycube
//! reach 25 Gbps line rate with a single core at 1500-byte packets: the
//! achievable packet rate is the minimum of what the CPU can process and
//! what the wire can carry.

/// Ethernet per-frame overhead on the wire beyond the L2 frame itself:
/// 7-byte preamble + 1-byte SFD + 12-byte inter-frame gap.
pub const WIRE_OVERHEAD_BYTES: u32 = 20;

/// Ethernet frame check sequence appended to every frame.
pub const FCS_BYTES: u32 = 4;

/// Minimum Ethernet frame size (without FCS), i.e. a "64-byte packet" in
/// benchmark parlance includes the FCS: 60 bytes of frame + 4 FCS.
pub const MIN_FRAME_BYTES: u32 = 64;

/// Packets per second achievable on a link of `gbps` gigabits per second
/// for L2 frames of `frame_len` bytes (including FCS).
///
/// # Example
///
/// ```
/// // 64-byte frames on 10G Ethernet: the canonical 14.88 Mpps.
/// let pps = linuxfp_sim::rate::line_rate_pps(10.0, 64);
/// assert!((pps - 14_880_952.0).abs() < 1.0);
/// ```
///
/// # Panics
///
/// Panics if `frame_len` is zero.
pub fn line_rate_pps(gbps: f64, frame_len: u32) -> f64 {
    assert!(frame_len > 0, "frame_len must be positive");
    let bits_per_frame = ((frame_len + WIRE_OVERHEAD_BYTES) as f64) * 8.0;
    gbps * 1e9 / bits_per_frame
}

/// Throughput in gigabits per second of L2 payload for a given packet rate
/// and frame length (including FCS), i.e. what a traffic generator reports.
pub fn gbps_from_pps(pps: f64, frame_len: u32) -> f64 {
    pps * (frame_len as f64) * 8.0 / 1e9
}

/// The wire frame length (including FCS) for an IP packet of `ip_len`
/// bytes: Ethernet header (14) + payload padded to the 60-byte minimum,
/// plus the 4-byte FCS.
pub fn frame_len_for_ip(ip_len: u32) -> u32 {
    (14 + ip_len + FCS_BYTES).max(MIN_FRAME_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_line_rates() {
        // 14.88 Mpps at 10G / 64B, 37.2 Mpps at 25G / 64B.
        assert!((line_rate_pps(10.0, 64) - 14_880_952.38).abs() < 1.0);
        assert!((line_rate_pps(25.0, 64) - 37_202_380.95).abs() < 1.0);
        // 1518-byte frames at 25G ≈ 2.03 Mpps.
        let pps = line_rate_pps(25.0, 1518);
        assert!((2.0e6..2.1e6).contains(&pps), "pps {pps}");
    }

    #[test]
    fn gbps_round_trip() {
        let pps = line_rate_pps(25.0, 1518);
        let gbps = gbps_from_pps(pps, 1518);
        // Payload rate is below the 25G wire rate because of the 20-byte
        // per-frame wire overhead.
        assert!(gbps < 25.0 && gbps > 24.0, "gbps {gbps}");
    }

    #[test]
    fn frame_len_padding() {
        assert_eq!(frame_len_for_ip(20), 64); // tiny IP packet padded
        assert_eq!(frame_len_for_ip(46), 64); // exactly minimum
        assert_eq!(frame_len_for_ip(1500), 1518); // full MTU
    }

    #[test]
    #[should_panic(expected = "frame_len must be positive")]
    fn zero_frame_panics() {
        line_rate_pps(10.0, 0);
    }
}
