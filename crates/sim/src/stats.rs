//! Streaming statistics: mean/stddev (Welford) and exact percentiles.
//!
//! The paper reports average, 99th-percentile, and standard deviation for
//! every latency experiment (Tables III, IV, V); [`Summary`] produces all
//! three from a stream of samples.

use std::fmt;

/// Collects samples and reports mean, standard deviation, min/max and exact
/// percentiles.
///
/// Samples are kept in full (latency experiments here produce at most a few
/// million samples), so percentiles are exact rather than sketched.
///
/// # Example
///
/// ```
/// use linuxfp_sim::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 5);
/// assert!((s.mean() - 22.0).abs() < 1e-9);
/// assert_eq!(s.percentile(50.0), 3.0);
/// assert_eq!(s.max(), 100.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            samples: Vec::new(),
            sorted: true,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.sorted = false;
        self.samples.push(value);
        let n = self.samples.len() as f64;
        let delta = value - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (value - self.mean);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean. Returns 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator). Returns 0.0 for fewer
    /// than two samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            (self.m2 / (self.samples.len() as f64 - 1.0)).sqrt()
        }
    }

    /// Smallest sample. Returns 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample. Returns 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// Exact percentile `p` in `[0, 100]` using nearest-rank interpolation.
    /// Returns 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or NaN.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let n = self.samples.len();
        if n == 1 {
            return self.samples[0];
        }
        let rank = p / 100.0 * (n as f64 - 1.0);
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// 99th percentile (the paper's `P_99` column).
    pub fn p99(&mut self) -> f64 {
        self.percentile(99.0)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        for &v in &other.samples {
            self.record(v);
        }
    }

    /// The raw samples recorded so far (in insertion or sorted order
    /// depending on whether a percentile has been queried).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = self.clone();
        write!(
            f,
            "n={} mean={:.3} p99={:.3} stddev={:.3}",
            s.count(),
            s.mean(),
            s.p99(),
            s.stddev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_safe() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn mean_and_stddev_match_direct_computation() {
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Summary = vals.iter().copied().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is sqrt(32/7).
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s: Summary = (1..=100).map(|v| v as f64).collect();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert!((s.percentile(50.0) - 50.5).abs() < 1e-9);
        assert!((s.p99() - 99.01).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_sample_sets() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let b: Summary = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let mut s: Summary = [1.0].into_iter().collect();
        s.percentile(101.0);
    }

    #[test]
    fn single_sample_percentile() {
        let mut s: Summary = [42.0].into_iter().collect();
        assert_eq!(s.percentile(99.0), 42.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s: Summary = [1.0, 2.0].into_iter().collect();
        assert!(s.to_string().contains("n=2"));
    }
}
