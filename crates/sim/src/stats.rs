//! Streaming statistics: mean/stddev (Welford) and exact percentiles.
//!
//! The paper reports average, 99th-percentile, and standard deviation for
//! every latency experiment (Tables III, IV, V); [`Summary`] produces all
//! three from a stream of samples. The quantile interpolation lives in
//! [`weighted_percentile`] so other consumers (notably the telemetry
//! crate's log2-bucketed histograms) reuse the same math instead of
//! duplicating it.

use std::fmt;
use std::sync::Mutex;

/// Linear-interpolated rank for percentile `p` over `n` ordered points:
/// `(lower index, upper index, fraction of the upper point)`.
fn rank_frac(n: usize, p: f64) -> (usize, usize, f64) {
    let rank = p / 100.0 * (n as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    (lo, hi, rank - lo as f64)
}

/// Exact percentile over an already-sorted slice using the same
/// nearest-rank interpolation as [`Summary::percentile`]. Returns 0.0
/// when empty.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or NaN.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let (lo, hi, frac) = rank_frac(n, p);
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }
}

/// Percentile over value/count pairs (sorted by value ascending), as if
/// each value appeared `count` times — the bucketed-histogram analogue
/// of [`percentile_of_sorted`], sharing its rank interpolation. Pairs
/// with zero count are ignored. Returns 0.0 when the total count is 0.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or NaN.
pub fn weighted_percentile(pairs: &[(f64, u64)], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let total: u64 = pairs.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return 0.0;
    }
    let value_at = |index: usize| -> f64 {
        let mut seen = 0usize;
        for &(v, c) in pairs {
            seen += c as usize;
            if index < seen {
                return v;
            }
        }
        pairs.last().map_or(0.0, |&(v, _)| v)
    };
    let (lo, hi, frac) = rank_frac(total as usize, p);
    if total == 1 {
        return value_at(0);
    }
    value_at(lo) * (1.0 - frac) + value_at(hi) * frac
}

/// Collects samples and reports mean, standard deviation, min/max and exact
/// percentiles.
///
/// Samples are kept in full (latency experiments here produce at most a few
/// million samples), so percentiles are exact rather than sketched. The
/// sorted order is computed lazily on the first percentile query and cached
/// until the next `record`, so queries take `&self`.
///
/// # Example
///
/// ```
/// use linuxfp_sim::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 5);
/// assert!((s.mean() - 22.0).abs() < 1e-9);
/// assert_eq!(s.percentile(50.0), 3.0);
/// assert_eq!(s.max(), 100.0);
/// ```
#[derive(Default)]
pub struct Summary {
    samples: Vec<f64>,
    /// Lazily computed sorted copy of `samples`; `None` when stale.
    /// Interior mutability keeps percentile queries `&self` (and the
    /// type `Send + Sync`) without re-sorting on every call.
    sorted: Mutex<Option<Vec<f64>>>,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            samples: Vec::new(),
            sorted: Mutex::new(None),
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        *self.sorted.get_mut().expect("stats cache lock") = None;
        self.samples.push(value);
        let n = self.samples.len() as f64;
        let delta = value - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (value - self.mean);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean. Returns 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator). Returns 0.0 for fewer
    /// than two samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            (self.m2 / (self.samples.len() as f64 - 1.0)).sqrt()
        }
    }

    /// Smallest sample. Returns 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample. Returns 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// Exact percentile `p` in `[0, 100]` using nearest-rank interpolation.
    /// Returns 0.0 when empty. The sort happens at most once per batch of
    /// `record`s.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or NaN.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut cache = self.sorted.lock().expect("stats cache lock");
        let sorted = cache.get_or_insert_with(|| {
            let mut v = self.samples.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            v
        });
        percentile_of_sorted(sorted, p)
    }

    /// 99th percentile (the paper's `P_99` column).
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        for &v in &other.samples {
            self.record(v);
        }
    }

    /// The raw samples recorded so far, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl Clone for Summary {
    fn clone(&self) -> Self {
        Summary {
            samples: self.samples.clone(),
            sorted: Mutex::new(self.sorted.lock().expect("stats cache lock").clone()),
            mean: self.mean,
            m2: self.m2,
            min: self.min,
            max: self.max,
        }
    }
}

impl fmt::Debug for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Summary")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p99={:.3} stddev={:.3}",
            self.count(),
            self.mean(),
            self.p99(),
            self.stddev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn mean_and_stddev_match_direct_computation() {
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Summary = vals.iter().copied().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is sqrt(32/7).
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s: Summary = (1..=100).map(|v| v as f64).collect();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert!((s.percentile(50.0) - 50.5).abs() < 1e-9);
        assert!((s.p99() - 99.01).abs() < 1e-9);
    }

    #[test]
    fn percentile_takes_shared_reference_and_caches() {
        let mut s: Summary = (1..=10).map(|v| v as f64).collect();
        let by_ref: &Summary = &s;
        assert_eq!(by_ref.percentile(100.0), 10.0);
        assert_eq!(by_ref.percentile(0.0), 1.0);
        // Samples stay in insertion order; the sort lives in the cache.
        assert_eq!(s.samples()[0], 1.0);
        // Recording invalidates the cache and new data is visible.
        s.record(1000.0);
        assert_eq!(s.percentile(100.0), 1000.0);
    }

    #[test]
    fn summary_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Summary>();
    }

    #[test]
    fn weighted_percentile_matches_expanded_samples() {
        // 1×3, 2×1, 10×6 expanded and compared against the plain path.
        let pairs = [(1.0, 3), (2.0, 1), (10.0, 6)];
        let expanded: Vec<f64> = pairs
            .iter()
            .flat_map(|&(v, c)| std::iter::repeat_n(v, c as usize))
            .collect();
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let direct = percentile_of_sorted(&expanded, p);
            let weighted = weighted_percentile(&pairs, p);
            assert!(
                (direct - weighted).abs() < 1e-12,
                "p{p}: {direct} vs {weighted}"
            );
        }
        assert_eq!(weighted_percentile(&[], 50.0), 0.0);
        assert_eq!(weighted_percentile(&[(5.0, 1)], 50.0), 5.0);
    }

    #[test]
    fn merge_combines_sample_sets() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let b: Summary = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let s: Summary = [1.0].into_iter().collect();
        s.percentile(101.0);
    }

    #[test]
    fn single_sample_percentile() {
        let s: Summary = [42.0].into_iter().collect();
        assert_eq!(s.percentile(99.0), 42.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s: Summary = [1.0, 2.0].into_iter().collect();
        assert!(s.to_string().contains("n=2"));
    }
}
