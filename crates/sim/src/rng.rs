//! Deterministic randomness for simulations.
//!
//! All stochastic behaviour (service-time jitter, softirq scheduling delays,
//! flow selection) flows through [`SimRng`], a seeded wrapper around a
//! cryptographically unnecessary but fast and portable PRNG, so that every
//! experiment is exactly reproducible from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source with the distributions the experiments need.
///
/// # Example
///
/// ```
/// use linuxfp_sim::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.uniform_u64(100), b.uniform_u64(100)); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn uniform_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "uniform_u64 bound must be positive");
        self.rng.gen_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// sampling). Returns 0.0 when `mean <= 0`, so disabled jitter knobs
    /// cost nothing.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Lognormal multiplicative jitter with median 1.0 and the given sigma;
    /// multiply a base cost by this to add realistic service-time spread.
    /// Returns 1.0 when `sigma <= 0`.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        // Box-Muller transform.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (sigma * z).exp()
    }

    /// Random boolean with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    /// Chooses a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        let idx = self.rng.gen_range(0..items.len());
        &items[idx]
    }

    /// A fresh child generator, deterministically derived; lets subsystems
    /// own independent streams without sharing a mutable reference.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..32 {
            assert_eq!(a.uniform_u64(1_000_000), b.uniform_u64(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..16)
            .filter(|_| a.uniform_u64(u64::MAX) == b.uniform_u64(u64::MAX))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(50.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn exponential_disabled_for_nonpositive_mean() {
        let mut rng = SimRng::seed(7);
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-3.0), 0.0);
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut rng = SimRng::seed(9);
        let mut vals: Vec<f64> = (0..10_001).map(|_| rng.lognormal_factor(0.25)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert_eq!(rng.lognormal_factor(0.0), 1.0);
    }

    #[test]
    fn chance_respects_probability() {
        let mut rng = SimRng::seed(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fork_is_independent_but_deterministic() {
        let mut a = SimRng::seed(5);
        let mut b = SimRng::seed(5);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.uniform_u64(1000), fb.uniform_u64(1000));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn uniform_zero_bound_panics() {
        SimRng::seed(1).uniform_u64(0);
    }
}
