//! Deterministic randomness for simulations.
//!
//! All stochastic behaviour (service-time jitter, softirq scheduling delays,
//! flow selection) flows through [`SimRng`], a seeded wrapper around a
//! cryptographically unnecessary but fast and portable PRNG, so that every
//! experiment is exactly reproducible from its seed. The generator is
//! self-contained (xoshiro256++ seeded through splitmix64) so the crate
//! builds fully offline with no external dependencies.

/// A seeded random source with the distributions the experiments need.
///
/// # Example
///
/// ```
/// use linuxfp_sim::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.uniform_u64(100), b.uniform_u64(100)); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// splitmix64 step: expands a 64-bit seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state }
    }

    /// The xoshiro256++ next step: full-period 64-bit output.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn uniform_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "uniform_u64 bound must be positive");
        // Rejection sampling over the largest multiple of `bound` keeps
        // the distribution exactly uniform.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// sampling). Returns 0.0 when `mean <= 0`, so disabled jitter knobs
    /// cost nothing.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = self.uniform_f64().max(f64::EPSILON);
        -mean * u.ln()
    }

    /// Lognormal multiplicative jitter with median 1.0 and the given sigma;
    /// multiply a base cost by this to add realistic service-time spread.
    /// Returns 1.0 when `sigma <= 0`.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        // Box-Muller transform.
        let u1 = self.uniform_f64().max(f64::EPSILON);
        let u2 = self.uniform_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (sigma * z).exp()
    }

    /// Random boolean with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// Chooses a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        let idx = self.uniform_u64(items.len() as u64) as usize;
        &items[idx]
    }

    /// A fresh child generator, deterministically derived; lets subsystems
    /// own independent streams without sharing a mutable reference.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..32 {
            assert_eq!(a.uniform_u64(1_000_000), b.uniform_u64(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..16)
            .filter(|_| a.uniform_u64(u64::MAX) == b.uniform_u64(u64::MAX))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_u64_stays_in_bounds() {
        let mut rng = SimRng::seed(3);
        for bound in [1, 2, 3, 7, 1000, u64::MAX] {
            for _ in 0..64 {
                assert!(rng.uniform_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn uniform_f64_stays_in_unit_interval() {
        let mut rng = SimRng::seed(4);
        for _ in 0..4096 {
            let v = rng.uniform_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(50.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn exponential_disabled_for_nonpositive_mean() {
        let mut rng = SimRng::seed(7);
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-3.0), 0.0);
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut rng = SimRng::seed(9);
        let mut vals: Vec<f64> = (0..10_001).map(|_| rng.lognormal_factor(0.25)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert_eq!(rng.lognormal_factor(0.0), 1.0);
    }

    #[test]
    fn chance_respects_probability() {
        let mut rng = SimRng::seed(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fork_is_independent_but_deterministic() {
        let mut a = SimRng::seed(5);
        let mut b = SimRng::seed(5);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.uniform_u64(1000), fb.uniform_u64(1000));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn uniform_zero_bound_panics() {
        SimRng::seed(1).uniform_u64(0);
    }
}
