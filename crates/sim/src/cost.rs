//! The calibrated per-operation cost model.
//!
//! Every simulated packet-processing action in this repository — a driver
//! receive, an `sk_buff` allocation, one eBPF instruction, a FIB lookup, a
//! netfilter rule comparison — charges virtual nanoseconds from a single
//! [`CostModel`]. Centralizing the constants has two purposes:
//!
//! 1. **Consistency.** The same `sk_buff` allocation price is paid by the
//!    Linux slow path, the TC-attached fast path, and the Kubernetes pod
//!    path, so cross-experiment comparisons are coherent, exactly as they
//!    would be on one physical testbed.
//! 2. **Calibration.** [`CostModel::calibrated`] is tuned so that the
//!    *relative* results of the LinuxFP paper hold: LinuxFP ≈ 1.77× Linux
//!    forwarding throughput, LinuxFP ≈ 1.19× Polycube, VPP above all
//!    kernel-resident platforms, XDP ≈ 2× TC, ipset ≫ linear iptables at
//!    high rule counts, and a ~1 % throughput penalty per tail-called
//!    module (paper Fig. 10).
//!
//! # Derivation of the headline constants
//!
//! The paper's Table VII reports the LinuxFP forwarding data plane at
//! 1,768,221 pps on XDP and 850,209 pps on TC (single core), and the text
//! reports LinuxFP 77 % faster than Linux forwarding. Writing
//!
//! ```text
//! XDP   total = driver_rx + xdp_entry          + prog + driver_tx = 565 ns
//! TC    total = driver_rx + skb_alloc + tc_ent + prog + driver_tx = 1176 ns
//! Linux total = driver_rx + skb_alloc + stack         + driver_tx = 1001 ns
//! ```
//!
//! and solving with the 1.77× constraint yields the defaults below
//! (`driver_rx` 124, `skb_alloc` 594, forwarding fast-path program ≈ 334 ns
//! including the `bpf_fib_lookup` helper, Linux forwarding stack beyond the
//! `sk_buff` ≈ 193 ns). The eBPF program cost is *not* a constant here: it
//! emerges from executing the synthesized bytecode at
//! [`CostModel::jit_insn_ns`] per instruction (compiled dispatch — the
//! deployment the paper measured, since production kernels JIT every
//! loaded program) plus per-helper prices, so experiments such as Fig. 10
//! (function calls vs. tail calls) measure the mechanism rather than a
//! hard-coded answer. Forcing `net.linuxfp.jit=0` falls back to the
//! reference interpreter at [`CostModel::ebpf_insn_ns`] per instruction.

use std::collections::BTreeMap;
use std::fmt;

/// Calibrated nanosecond prices for every simulated operation.
///
/// Construct with [`CostModel::calibrated`] for the paper-matched defaults,
/// or mutate individual fields to run ablations (the fields are public and
/// the struct is plain data by design — it plays the role of a lab notebook
/// of constants, not an abstraction boundary).
///
/// # Example
///
/// ```
/// let mut cost = linuxfp_sim::CostModel::calibrated();
/// cost.nf_rule_linear_ns = 0.0; // ablation: free iptables matching
/// assert_eq!(cost.nf_rule_linear_ns, 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // ---- NIC / driver ----
    /// Per-packet receive cost in the NIC driver (DMA completion, descriptor
    /// handling), paid by every path including XDP.
    pub driver_rx_ns: f64,
    /// Per-packet transmit cost in the NIC driver.
    pub driver_tx_ns: f64,
    /// Dispatch cost of entering an attached XDP program.
    pub xdp_entry_ns: f64,
    /// `sk_buff` allocation + initialization (metadata population, GRO
    /// bookkeeping). This is the cost XDP avoids and TC pays — the source of
    /// the XDP-vs-TC gap in paper Table VII.
    pub skb_alloc_ns: f64,
    /// Dispatch cost of entering an attached TC (clsact) program.
    pub tc_entry_ns: f64,
    /// The portion of [`driver_rx_ns`](Self::driver_rx_ns) that is fixed
    /// per receive burst rather than per packet (IRQ entry, NAPI poll
    /// scheduling, ring-doorbell/index reads). Batched injection charges
    /// it once per burst; single-packet injection pays it per frame, so
    /// a batch of 1 costs exactly `driver_rx_ns`.
    pub rx_batch_fixed_ns: f64,
    /// The per-burst-fixed portion of hook dispatch
    /// ([`xdp_entry_ns`](Self::xdp_entry_ns) /
    /// [`tc_entry_ns`](Self::tc_entry_ns)): reading the attached-program
    /// pointer and setting up dispatch state, amortized across a burst
    /// the way a driver's XDP invocation loop hoists `READ_ONCE(prog)`
    /// out of the poll loop.
    pub hook_batch_fixed_ns: f64,

    // ---- Linux slow-path stages (beyond skb alloc) ----
    /// `ip_rcv` style validation: header length, version, checksum verify.
    pub ip_rcv_ns: f64,
    /// Kernel FIB lookup on the slow path (LPM trie walk + flags).
    pub fib_lookup_kernel_ns: f64,
    /// TTL decrement + incremental checksum update on forward.
    pub ip_forward_finish_ns: f64,
    /// Neighbor (ARP) table hit on the output path.
    pub neigh_lookup_ns: f64,
    /// Qdisc enqueue + dequeue + xmit prep.
    pub qdisc_xmit_ns: f64,
    /// Entering a netfilter hook with an empty chain.
    pub nf_hook_base_ns: f64,
    /// Evaluating one iptables rule in a chain (linear search — the
    /// scalability problem in paper Fig. 8).
    pub nf_rule_linear_ns: f64,
    /// One ipset hash lookup (replaces a linear scan over members).
    pub ipset_lookup_ns: f64,
    /// Conntrack tuple hash lookup.
    pub conntrack_lookup_ns: f64,
    /// Creating a new conntrack entry (slow-path only).
    pub conntrack_create_ns: f64,
    /// ipvs backend scheduling (slow-path only; the fast path reuses the
    /// pinned conntrack entry).
    pub ipvs_sched_ns: f64,
    /// Bridge slow-path processing: FDB learn + lookup + forward decision.
    pub bridge_stack_ns: f64,
    /// Flooding one additional bridge port on an FDB miss.
    pub bridge_flood_per_port_ns: f64,
    /// Crossing a veth pair (per crossing).
    pub veth_cross_ns: f64,
    /// VXLAN encapsulation on the slow path (headers + UDP + route to peer).
    pub vxlan_encap_ns: f64,
    /// VXLAN decapsulation on the slow path.
    pub vxlan_decap_ns: f64,
    /// Local socket delivery (TCP/UDP demux + queue to socket).
    pub local_deliver_ns: f64,
    /// Generating an ICMP error (time-exceeded / unreachable): build +
    /// route + transmit of the error packet (slow-path only).
    pub icmp_error_ns: f64,

    // ---- eBPF runtime ----
    /// Interpreting one eBPF instruction (the reference interpreter,
    /// selected by `net.linuxfp.jit=0`). Linux's interpreter runs roughly
    /// 3–5× slower than JITed code, hence the ratio to
    /// [`jit_insn_ns`](Self::jit_insn_ns).
    pub ebpf_insn_ns: f64,
    /// Executing one instruction of a load-time-compiled (direct-threaded)
    /// program — the default dispatch, selected by `net.linuxfp.jit=1`.
    /// Calibrated to the seed's per-instruction price: the paper's deployed
    /// programs ran under the kernel JIT, so the original calibration
    /// already priced compiled dispatch and every paper-matched total is
    /// unchanged by making the compile stage explicit.
    pub jit_insn_ns: f64,
    /// One microflow verdict-cache hit on the dispatcher path: exact-match
    /// flow-key hash lookup plus replay of the recorded header rewrite.
    /// Calibrated well under the synthesized forwarding program (~334 ns
    /// of interpretation + helper time) that a hit elides, and in the
    /// ballpark of an OVS-style exact-match microflow cache probe.
    pub flowcache_hit_ns: f64,
    /// One tail call (program-array dereference + context reset). Calibrated
    /// to ≈ 1 % of the forwarding data path, matching paper Fig. 10's
    /// "about one percent per added function".
    pub tail_call_ns: f64,
    /// `bpf_fib_lookup` helper (kernel FIB access from eBPF).
    pub helper_fib_lookup_ns: f64,
    /// `bpf_fdb_lookup` helper (the paper's new bridge FDB helper).
    pub helper_fdb_lookup_ns: f64,
    /// `bpf_ipt_lookup` helper fixed cost (the paper's new iptables helper).
    pub helper_ipt_base_ns: f64,
    /// Per-rule matching cost inside `bpf_ipt_lookup`. The helper
    /// reimplements matching compactly (prefix + protocol comparisons,
    /// paper §V), so it is cheaper per rule than the slow path's full
    /// xt-entry traversal (`nf_rule_linear_ns`) — but still linear, which
    /// is why LinuxFP "inherits iptables performance issues" until ipset
    /// aggregation is used (paper Fig. 8).
    pub helper_ipt_rule_ns: f64,
    /// `bpf_redirect` / `XDP_REDIRECT` forwarding of the frame.
    pub helper_redirect_ns: f64,
    /// Generic eBPF map lookup (hash). Used by platforms (e.g. Polycube)
    /// that keep custom state in maps instead of kernel helpers.
    pub map_lookup_ns: f64,
    /// Generic eBPF map update.
    pub map_update_ns: f64,
    /// `bpf_ktime_get_ns` and similarly trivial helpers.
    pub helper_trivial_ns: f64,
    /// Copying one frame onto an AF_XDP ring (single copy, no sk_buff —
    /// the point of the XSK path).
    pub xsk_push_ns: f64,
    /// Polycube-style multi-dimensional classifier: fixed cost.
    pub classifier_base_ns: f64,
    /// Polycube-style classifier: additional cost per doubling of the rule
    /// set (logarithmic growth — the efficient algorithm of the paper’s ref. 34).
    pub classifier_log2_ns: f64,

    // ---- VPP-style user-space platform ----
    /// Fixed cost of processing one vector (batch), amortized over packets.
    pub vpp_batch_fixed_ns: f64,
    /// Per-packet cost inside a full vector.
    pub vpp_per_packet_ns: f64,
    /// Maximum vector (batch) size.
    pub vpp_batch_size: u32,
    /// VPP per-packet ACL match cost (vector classifier, ~flat in rules).
    pub vpp_acl_ns: f64,

    // ---- Multi-core scaling ----
    /// Fraction of per-core throughput lost per additional core due to
    /// shared-state contention (locks, cache bouncing). Applied as
    /// `pps(n) = n * pps(1) * (1 - contention)^(n-1)`.
    pub core_contention: f64,
    /// Cross-core coherence penalty: the cost of pulling a cache line of
    /// shared kernel state (FIB, conntrack, NAT bindings, FDB) into a
    /// shard's core after another shard wrote it — an L2→L2 transfer plus
    /// the directory round trip. Charged per touched structure whose
    /// generation advanced since the shard last read it; never charged
    /// when `rss_shards=1` (a single core cannot miss on its own writes).
    pub coherence_miss_ns: f64,
    /// Line rate of the simulated NIC in gigabits per second (25 Gbps on
    /// the paper's c6525-25g testbed).
    pub line_rate_gbps: f64,

    // ---- Latency-experiment parameters ----
    /// One-way propagation + serialization per link in the 3-node topology.
    pub wire_ns: f64,
    /// Application service time at the netperf server per transaction.
    pub server_app_ns: f64,
    /// Mean softirq/NAPI scheduling jitter per DUT crossing for the
    /// interrupt-driven full Linux stack (exponentially distributed).
    pub softirq_jitter_linux_ns: f64,
    /// Mean scheduling jitter per crossing for XDP/TC-resident fast paths.
    pub softirq_jitter_xdp_ns: f64,
    /// Relative service-time jitter (lognormal sigma) for all platforms.
    pub service_jitter_sigma: f64,
    /// Extra DUT CPU consumed per crossing by interrupt/softirq handling
    /// under request/response traffic for the full Linux stack (pktgen
    /// saturation amortizes IRQs via NAPI polling; sparse RR traffic does
    /// not).
    pub irq_service_overhead_linux_ns: f64,
    /// The same for XDP/TC-resident fast paths (IRQs still fire, but the
    /// work per packet is far smaller).
    pub irq_service_overhead_xdp_ns: f64,
    /// Probability that an endpoint (netperf client/server — plain Linux
    /// hosts in every configuration) suffers a scheduling hiccup on a
    /// transaction.
    pub endpoint_hiccup_prob: f64,
    /// Mean of the exponential endpoint hiccup duration.
    pub endpoint_hiccup_ns: f64,

    // ---- Kubernetes pod-path calibration ----
    /// Per-transaction application processing inside the pod pair
    /// (client + server user space, container runtime, TCP stack). The
    /// paper's pod-to-pod RTTs are in *milliseconds* (Table V), dominated by
    /// in-pod processing; this constant substitutes for the container
    /// scheduling and TCP-stack work we do not model cycle-by-cycle.
    pub k8s_app_txn_ns: f64,
    /// Multiplier applied to kernel path costs when traversed in the pod
    /// context (cgroup accounting, softirq steering, scheduler wakeups per
    /// packet — the reasons container RTTs are ~10^3 the raw path cost).
    pub k8s_path_scale: f64,
    /// Extra one-way latency for inter-node transactions beyond the two
    /// kernels' path costs (underlay serialization + TCP stack effects on
    /// the second host; calibrated to paper Table V's inter-node rows).
    pub k8s_internode_extra_ns: f64,
    /// Probability of a pod-side scheduler hiccup per transaction.
    pub k8s_hiccup_prob: f64,
    /// Mean of the exponential pod hiccup duration.
    pub k8s_hiccup_ns: f64,
    /// Lognormal sigma applied to the whole pod transaction.
    pub k8s_rtt_sigma: f64,

    // ---- Controller reaction-time model (paper Table VI) ----
    /// Netlink notification delivery + controller wakeup.
    pub ctrl_detect_ns: f64,
    /// Re-querying link/addr/route state over netlink.
    pub ctrl_requery_route_ns: f64,
    /// Re-querying link state only.
    pub ctrl_requery_link_ns: f64,
    /// Querying iptables state via the libiptc-style interface (the paper
    /// uses libipte; notably slower than netlink dumps).
    pub ctrl_requery_ipt_ns: f64,
    /// Building the JSON processing graph.
    pub ctrl_graph_build_ns: f64,
    /// Rendering the template for one FPM.
    pub ctrl_synth_per_fpm_ns: f64,
    /// Running the synthesis-time bytecode optimizer over one FPM's
    /// program (a few passes over a ~100-instruction buffer; cheap next
    /// to the toolchain invocation it precedes).
    pub ctrl_opt_per_fpm_ns: f64,
    /// Invoking the compiler toolchain (clang in the paper) — fixed cost.
    pub ctrl_compile_base_ns: f64,
    /// Additional compile cost per FPM in the data path.
    pub ctrl_compile_per_fpm_ns: f64,
    /// Kernel verification + load of one program object.
    pub ctrl_verify_load_ns: f64,
    /// Atomic tail-call swap of the installed data path.
    pub ctrl_swap_ns: f64,
}

impl CostModel {
    /// The calibration used throughout the reproduction (see module docs
    /// for the derivation against the paper's reported numbers).
    pub fn calibrated() -> Self {
        CostModel {
            driver_rx_ns: 124.0,
            driver_tx_ns: 90.0,
            xdp_entry_ns: 17.0,
            skb_alloc_ns: 594.0,
            tc_entry_ns: 35.0,
            rx_batch_fixed_ns: 60.0,
            hook_batch_fixed_ns: 12.0,

            ip_rcv_ns: 45.0,
            fib_lookup_kernel_ns: 60.0,
            ip_forward_finish_ns: 25.0,
            neigh_lookup_ns: 18.0,
            qdisc_xmit_ns: 25.0,
            nf_hook_base_ns: 10.0,
            nf_rule_linear_ns: 22.0,
            ipset_lookup_ns: 55.0,
            conntrack_lookup_ns: 70.0,
            conntrack_create_ns: 210.0,
            ipvs_sched_ns: 55.0,
            bridge_stack_ns: 95.0,
            bridge_flood_per_port_ns: 160.0,
            veth_cross_ns: 120.0,
            vxlan_encap_ns: 260.0,
            vxlan_decap_ns: 220.0,
            local_deliver_ns: 180.0,
            icmp_error_ns: 240.0,

            ebpf_insn_ns: 3.0,
            jit_insn_ns: 1.0,
            flowcache_hit_ns: 85.0,
            tail_call_ns: 5.7,
            helper_fib_lookup_ns: 215.0,
            helper_fdb_lookup_ns: 205.0,
            helper_ipt_base_ns: 55.0,
            helper_ipt_rule_ns: 10.0,
            helper_redirect_ns: 40.0,
            map_lookup_ns: 75.0,
            map_update_ns: 45.0,
            helper_trivial_ns: 8.0,
            xsk_push_ns: 95.0,
            classifier_base_ns: 95.0,
            classifier_log2_ns: 14.0,

            vpp_batch_fixed_ns: 4000.0,
            vpp_per_packet_ns: 340.0,
            vpp_batch_size: 256,
            vpp_acl_ns: 60.0,

            core_contention: 0.03,
            coherence_miss_ns: 48.0,
            line_rate_gbps: 25.0,

            wire_ns: 1_000.0,
            server_app_ns: 2_000.0,
            softirq_jitter_linux_ns: 48_000.0,
            softirq_jitter_xdp_ns: 9_000.0,
            service_jitter_sigma: 0.25,
            irq_service_overhead_linux_ns: 280.0,
            irq_service_overhead_xdp_ns: 28.0,
            endpoint_hiccup_prob: 0.06,
            endpoint_hiccup_ns: 70_000.0,

            k8s_app_txn_ns: 4_396_700.0,
            k8s_path_scale: 460.0,
            k8s_internode_extra_ns: 6_679_000.0,
            k8s_hiccup_prob: 0.05,
            k8s_hiccup_ns: 5_000_000.0,
            k8s_rtt_sigma: 0.05,

            ctrl_detect_ns: 20e6,
            ctrl_requery_route_ns: 120e6,
            ctrl_requery_link_ns: 60e6,
            ctrl_requery_ipt_ns: 420e6,
            ctrl_graph_build_ns: 15e6,
            ctrl_synth_per_fpm_ns: 20e6,
            ctrl_opt_per_fpm_ns: 0.3e6,
            ctrl_compile_base_ns: 270e6,
            ctrl_compile_per_fpm_ns: 30e6,
            ctrl_verify_load_ns: 50e6,
            ctrl_swap_ns: 10e6,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

/// Accumulates virtual time charged while processing packets, optionally
/// attributing it to named stages.
///
/// The per-stage attribution is what powers the flame-graph-style profile
/// of the slow path (paper Fig. 1): each kernel stage charges under its own
/// label, and the profile reports where the time went.
///
/// # Example
///
/// ```
/// use linuxfp_sim::CostTracker;
///
/// let mut t = CostTracker::new();
/// t.charge("ip_rcv", 45.0);
/// t.charge("fib_lookup", 60.0);
/// t.charge("ip_rcv", 45.0);
/// assert_eq!(t.total_ns(), 150.0);
/// assert_eq!(t.stage_ns("ip_rcv"), 90.0);
/// assert_eq!(t.stage_count("ip_rcv"), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostTracker {
    total_ns: f64,
    stages: BTreeMap<&'static str, StageCost>,
}

/// Aggregated cost of a single named stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageCost {
    /// Number of times the stage was charged.
    pub count: u64,
    /// Total nanoseconds charged to the stage.
    pub total_ns: f64,
}

impl CostTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        CostTracker::default()
    }

    /// Charges `ns` nanoseconds to `stage`.
    pub fn charge(&mut self, stage: &'static str, ns: f64) {
        self.total_ns += ns;
        let entry = self.stages.entry(stage).or_default();
        entry.count += 1;
        entry.total_ns += ns;
    }

    /// Charges `ns` nanoseconds without stage attribution.
    pub fn charge_untracked(&mut self, ns: f64) {
        self.total_ns += ns;
    }

    /// Total nanoseconds charged so far.
    pub fn total_ns(&self) -> f64 {
        self.total_ns
    }

    /// Nanoseconds charged to `stage` (zero if never charged).
    pub fn stage_ns(&self, stage: &str) -> f64 {
        self.stages.get(stage).map_or(0.0, |s| s.total_ns)
    }

    /// Number of charges recorded for `stage`.
    pub fn stage_count(&self, stage: &str) -> u64 {
        self.stages.get(stage).map_or(0, |s| s.count)
    }

    /// Iterates over `(stage, aggregated cost)` in stage-name order.
    pub fn stages(&self) -> impl Iterator<Item = (&'static str, StageCost)> + '_ {
        self.stages.iter().map(|(k, v)| (*k, *v))
    }

    /// Resets all accumulated costs.
    pub fn reset(&mut self) {
        self.total_ns = 0.0;
        self.stages.clear();
    }

    /// Merges another tracker's charges into this one.
    pub fn merge(&mut self, other: &CostTracker) {
        self.total_ns += other.total_ns;
        for (stage, cost) in other.stages.iter() {
            let entry = self.stages.entry(stage).or_default();
            entry.count += cost.count;
            entry.total_ns += cost.total_ns;
        }
    }
}

impl fmt::Display for CostTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total: {:.1} ns", self.total_ns)?;
        for (stage, cost) in self.stages.iter() {
            writeln!(
                f,
                "  {:<28} {:>10.1} ns  (x{})",
                stage, cost.total_ns, cost.count
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_paper_forwarding_ratios() {
        let c = CostModel::calibrated();
        // Fast-path forwarding program cost implied by the calibration: the
        // synthesized program lands near 334 ns (measured precisely by the
        // ebpf crate's tests); here we check the fixed-path arithmetic.
        let prog = 334.0;
        let xdp = c.driver_rx_ns + c.xdp_entry_ns + prog + c.driver_tx_ns;
        let tc = c.driver_rx_ns + c.skb_alloc_ns + c.tc_entry_ns + prog + c.driver_tx_ns;
        let stack = c.ip_rcv_ns
            + 2.0 * c.nf_hook_base_ns
            + c.fib_lookup_kernel_ns
            + c.ip_forward_finish_ns
            + c.neigh_lookup_ns
            + c.qdisc_xmit_ns;
        let linux = c.driver_rx_ns + c.skb_alloc_ns + stack + c.driver_tx_ns;
        let speedup = linux / xdp;
        assert!(
            (1.70..1.85).contains(&speedup),
            "LinuxFP/Linux speedup {speedup} out of the paper's ~1.77 band"
        );
        let hook_ratio = tc / xdp;
        assert!(
            (1.9..2.2).contains(&hook_ratio),
            "TC/XDP cost ratio {hook_ratio} out of the paper's ~2.08 band"
        );
    }

    #[test]
    fn tail_call_is_about_one_percent_of_forwarding_path() {
        let c = CostModel::calibrated();
        let xdp_fwd_total = 565.0;
        let pct = c.tail_call_ns / xdp_fwd_total;
        assert!((0.008..0.012).contains(&pct), "tail call {pct} not ~1%");
    }

    #[test]
    fn tracker_accumulates_and_merges() {
        let mut a = CostTracker::new();
        a.charge("x", 10.0);
        a.charge_untracked(5.0);
        let mut b = CostTracker::new();
        b.charge("x", 1.0);
        b.charge("y", 2.0);
        a.merge(&b);
        assert_eq!(a.total_ns(), 18.0);
        assert_eq!(a.stage_ns("x"), 11.0);
        assert_eq!(a.stage_count("x"), 2);
        assert_eq!(a.stage_ns("y"), 2.0);
        assert_eq!(a.stage_ns("absent"), 0.0);
        a.reset();
        assert_eq!(a.total_ns(), 0.0);
    }

    #[test]
    fn tracker_display_lists_stages() {
        let mut t = CostTracker::new();
        t.charge("fib", 60.0);
        let s = t.to_string();
        assert!(s.contains("fib"));
        assert!(s.contains("total"));
    }
}
