//! Property-based tests for the packet library: parse/build round-trips
//! and checksum laws over randomly generated inputs.

use linuxfp_packet::checksum::{checksum, fold, incremental_update_u16, sum_words};
use linuxfp_packet::ipv4::Prefix;
use linuxfp_packet::{builder, ArpPacket, EthernetFrame, Ipv4Header, MacAddr, TcpHeader, UdpHeader};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    /// Any data with its own checksum appended folds to 0xFFFF — the
    /// receiver-side verification law of RFC 1071.
    #[test]
    fn checksum_self_verifies(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut with = data.clone();
        // Checksums verify over even-length data (headers are always even).
        if with.len() % 2 == 1 {
            with.push(0);
        }
        let c = checksum(&with);
        with.extend_from_slice(&c.to_be_bytes());
        prop_assert_eq!(fold(sum_words(&with, 0)), 0xFFFF);
    }

    /// Incremental checksum update equals full recomputation for any
    /// single-word change at any even offset.
    #[test]
    fn incremental_update_equals_recompute(
        data in proptest::collection::vec(any::<u8>(), 2..128),
        word_idx in any::<prop::sample::Index>(),
        new_word in any::<u16>(),
    ) {
        let mut data = data;
        if data.len() % 2 == 1 {
            data.push(0);
        }
        let words = data.len() / 2;
        let idx = word_idx.index(words) * 2;
        let before = checksum(&data);
        let old_word = u16::from_be_bytes([data[idx], data[idx + 1]]);
        data[idx..idx + 2].copy_from_slice(&new_word.to_be_bytes());
        let incremental = incremental_update_u16(before, old_word, new_word);
        let full = checksum(&data);
        prop_assert_eq!(incremental, full);
    }

    /// UDP frames built by the builder always parse back to the inputs,
    /// with a valid IPv4 checksum.
    #[test]
    fn udp_build_parse_round_trip(
        src_mac in arb_mac(), dst_mac in arb_mac(),
        src_ip in arb_ip(), dst_ip in arb_ip(),
        src_port in any::<u16>(), dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let frame = builder::udp_packet(src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, &payload);
        let eth = EthernetFrame::parse(&frame).unwrap();
        prop_assert_eq!(eth.src, src_mac);
        prop_assert_eq!(eth.dst, dst_mac);
        let ip = Ipv4Header::parse(&frame[eth.payload_offset..]).unwrap();
        prop_assert_eq!(ip.src, src_ip);
        prop_assert_eq!(ip.dst, dst_ip);
        prop_assert!(ip.verify_checksum(&frame[eth.payload_offset..]));
        let udp = UdpHeader::parse(&frame[eth.payload_offset + ip.header_len..]).unwrap();
        prop_assert_eq!(udp.src_port, src_port);
        prop_assert_eq!(udp.dst_port, dst_port);
        prop_assert_eq!(&frame[eth.payload_offset + ip.header_len + 8..], payload.as_slice());
    }

    /// TTL decrement preserves checksum validity for any starting TTL > 1.
    #[test]
    fn ttl_decrement_keeps_checksums_valid(
        src_ip in arb_ip(), dst_ip in arb_ip(), ttl in 2u8..=255,
    ) {
        let mut buf = vec![0u8; 20];
        Ipv4Header::write(&mut buf, src_ip, dst_ip, linuxfp_packet::IpProto::Udp, ttl, 1, 20, false);
        let new = Ipv4Header::decrement_ttl(&mut buf).unwrap();
        prop_assert_eq!(new, ttl - 1);
        let h = Ipv4Header::parse(&buf).unwrap();
        prop_assert!(h.verify_checksum(&buf));
        prop_assert_eq!(h.ttl, ttl - 1);
    }

    /// Ethernet parsing never panics on arbitrary bytes: it returns either
    /// a header or a structured error.
    #[test]
    fn eth_parse_total(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = EthernetFrame::parse(&data);
    }

    /// IPv4 parsing never panics on arbitrary bytes.
    #[test]
    fn ipv4_parse_total(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Header::parse(&data);
    }

    /// TCP parsing never panics on arbitrary bytes.
    #[test]
    fn tcp_parse_total(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = TcpHeader::parse(&data);
    }

    /// ARP round-trips through bytes.
    #[test]
    fn arp_round_trip(
        sender_mac in arb_mac(), sender_ip in arb_ip(),
        target_mac in arb_mac(), target_ip in arb_ip(),
        is_reply in any::<bool>(),
    ) {
        let arp = ArpPacket {
            op: if is_reply { linuxfp_packet::ArpOp::Reply } else { linuxfp_packet::ArpOp::Request },
            sender_mac, sender_ip, target_mac, target_ip,
        };
        prop_assert_eq!(ArpPacket::parse(&arp.to_bytes()).unwrap(), arp);
    }

    /// VXLAN encapsulation followed by decapsulation returns the inner
    /// frame unchanged for any VNI and inner payload.
    #[test]
    fn vxlan_round_trip(
        vni in 0u32..(1 << 24),
        inner_payload in proptest::collection::vec(any::<u8>(), 0..512),
        src_ip in arb_ip(), dst_ip in arb_ip(),
    ) {
        let inner = builder::udp_packet(
            MacAddr::from_index(1), MacAddr::from_index(2),
            Ipv4Addr::new(10, 244, 0, 1), Ipv4Addr::new(10, 244, 0, 2),
            1, 2, &inner_payload,
        );
        let outer = builder::vxlan_encapsulate(
            &inner, vni, MacAddr::from_index(3), MacAddr::from_index(4),
            src_ip, dst_ip, 40000,
        );
        let (got_vni, got_inner) = builder::vxlan_decapsulate(&outer).unwrap();
        prop_assert_eq!(got_vni, vni);
        prop_assert_eq!(got_inner, inner);
    }

    /// Prefix membership agrees with a bit-twiddling oracle.
    #[test]
    fn prefix_contains_matches_oracle(addr in any::<u32>(), probe in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(Ipv4Addr::from(addr), len);
        let mask: u64 = if len == 0 { 0 } else { (!0u32 << (32 - len)) as u64 };
        let oracle = (u64::from(addr) & mask) == (u64::from(probe) & mask);
        prop_assert_eq!(p.contains(Ipv4Addr::from(probe)), oracle);
    }

    /// VLAN push followed by pop restores the original frame.
    #[test]
    fn vlan_push_pop_identity(vid in 0u16..4096, pcp in 0u8..8, payload in proptest::collection::vec(any::<u8>(), 46..100)) {
        let mut frame = builder::udp_packet(
            MacAddr::from_index(1), MacAddr::from_index(2),
            Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2),
            1, 2, &payload,
        );
        let original = frame.clone();
        EthernetFrame::push_vlan(&mut frame, linuxfp_packet::VlanTag { vid, pcp });
        let parsed = EthernetFrame::parse(&frame).unwrap();
        prop_assert_eq!(parsed.vlan, Some(linuxfp_packet::VlanTag { vid, pcp }));
        let tag = EthernetFrame::pop_vlan(&mut frame).unwrap();
        prop_assert_eq!(tag.vid, vid);
        prop_assert_eq!(frame, original);
    }
}
