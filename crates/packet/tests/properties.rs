//! Property-based tests for the packet library: parse/build round-trips
//! and checksum laws over randomly generated inputs.
//!
//! Inputs are generated with the workspace's own seeded [`SimRng`] (the
//! build is fully offline, so no external property-testing framework);
//! each property is checked over a few hundred deterministic cases.

use linuxfp_packet::checksum::{checksum, fold, incremental_update_u16, sum_words};
use linuxfp_packet::ipv4::Prefix;
use linuxfp_packet::{
    builder, ArpPacket, EthernetFrame, Ipv4Header, MacAddr, TcpHeader, UdpHeader,
};
use linuxfp_sim::SimRng;
use std::net::Ipv4Addr;

fn rand_bytes(rng: &mut SimRng, min: usize, max: usize) -> Vec<u8> {
    let len = min + rng.uniform_u64((max - min) as u64) as usize;
    (0..len).map(|_| rng.uniform_u64(256) as u8).collect()
}

fn rand_mac(rng: &mut SimRng) -> MacAddr {
    MacAddr::new(std::array::from_fn(|_| rng.uniform_u64(256) as u8))
}

fn rand_ip(rng: &mut SimRng) -> Ipv4Addr {
    Ipv4Addr::from(rng.uniform_u64(1 << 32) as u32)
}

/// Any data with its own checksum appended folds to 0xFFFF — the
/// receiver-side verification law of RFC 1071.
#[test]
fn checksum_self_verifies() {
    let mut rng = SimRng::seed(0x5EED_0001);
    for _ in 0..256 {
        let mut with = rand_bytes(&mut rng, 0, 256);
        // Checksums verify over even-length data (headers are always even).
        if with.len() % 2 == 1 {
            with.push(0);
        }
        let c = checksum(&with);
        with.extend_from_slice(&c.to_be_bytes());
        assert_eq!(fold(sum_words(&with, 0)), 0xFFFF);
    }
}

/// Incremental checksum update equals full recomputation for any
/// single-word change at any even offset.
#[test]
fn incremental_update_equals_recompute() {
    let mut rng = SimRng::seed(0x5EED_0002);
    for _ in 0..256 {
        let mut data = rand_bytes(&mut rng, 2, 128);
        if data.len() % 2 == 1 {
            data.push(0);
        }
        let words = data.len() / 2;
        let idx = rng.uniform_u64(words as u64) as usize * 2;
        let new_word = rng.uniform_u64(1 << 16) as u16;
        let before = checksum(&data);
        let old_word = u16::from_be_bytes([data[idx], data[idx + 1]]);
        data[idx..idx + 2].copy_from_slice(&new_word.to_be_bytes());
        let incremental = incremental_update_u16(before, old_word, new_word);
        let full = checksum(&data);
        assert_eq!(incremental, full);
    }
}

/// UDP frames built by the builder always parse back to the inputs, with a
/// valid IPv4 checksum.
#[test]
fn udp_build_parse_round_trip() {
    let mut rng = SimRng::seed(0x5EED_0003);
    for _ in 0..128 {
        let (src_mac, dst_mac) = (rand_mac(&mut rng), rand_mac(&mut rng));
        let (src_ip, dst_ip) = (rand_ip(&mut rng), rand_ip(&mut rng));
        let src_port = rng.uniform_u64(1 << 16) as u16;
        let dst_port = rng.uniform_u64(1 << 16) as u16;
        let payload = rand_bytes(&mut rng, 0, 1024);
        let frame = builder::udp_packet(
            src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, &payload,
        );
        let eth = EthernetFrame::parse(&frame).unwrap();
        assert_eq!(eth.src, src_mac);
        assert_eq!(eth.dst, dst_mac);
        let ip = Ipv4Header::parse(&frame[eth.payload_offset..]).unwrap();
        assert_eq!(ip.src, src_ip);
        assert_eq!(ip.dst, dst_ip);
        assert!(ip.verify_checksum(&frame[eth.payload_offset..]));
        let udp = UdpHeader::parse(&frame[eth.payload_offset + ip.header_len..]).unwrap();
        assert_eq!(udp.src_port, src_port);
        assert_eq!(udp.dst_port, dst_port);
        assert_eq!(
            &frame[eth.payload_offset + ip.header_len + 8..],
            payload.as_slice()
        );
    }
}

/// TTL decrement preserves checksum validity for any starting TTL > 1.
#[test]
fn ttl_decrement_keeps_checksums_valid() {
    let mut rng = SimRng::seed(0x5EED_0004);
    for _ in 0..256 {
        let (src_ip, dst_ip) = (rand_ip(&mut rng), rand_ip(&mut rng));
        let ttl = 2 + rng.uniform_u64(254) as u8;
        let mut buf = vec![0u8; 20];
        Ipv4Header::write(
            &mut buf,
            src_ip,
            dst_ip,
            linuxfp_packet::IpProto::Udp,
            ttl,
            1,
            20,
            false,
        );
        let new = Ipv4Header::decrement_ttl(&mut buf).unwrap();
        assert_eq!(new, ttl - 1);
        let h = Ipv4Header::parse(&buf).unwrap();
        assert!(h.verify_checksum(&buf));
        assert_eq!(h.ttl, ttl - 1);
    }
}

/// Header parsing never panics on arbitrary bytes: it returns either a
/// header or a structured error.
#[test]
fn parsing_is_total_on_arbitrary_bytes() {
    let mut rng = SimRng::seed(0x5EED_0005);
    for _ in 0..512 {
        let data = rand_bytes(&mut rng, 0, 64);
        let _ = EthernetFrame::parse(&data);
        let _ = Ipv4Header::parse(&data);
        let _ = TcpHeader::parse(&data);
    }
}

/// ARP round-trips through bytes.
#[test]
fn arp_round_trip() {
    let mut rng = SimRng::seed(0x5EED_0006);
    for _ in 0..256 {
        let arp = ArpPacket {
            op: if rng.chance(0.5) {
                linuxfp_packet::ArpOp::Reply
            } else {
                linuxfp_packet::ArpOp::Request
            },
            sender_mac: rand_mac(&mut rng),
            sender_ip: rand_ip(&mut rng),
            target_mac: rand_mac(&mut rng),
            target_ip: rand_ip(&mut rng),
        };
        assert_eq!(ArpPacket::parse(&arp.to_bytes()).unwrap(), arp);
    }
}

/// VXLAN encapsulation followed by decapsulation returns the inner frame
/// unchanged for any VNI and inner payload.
#[test]
fn vxlan_round_trip() {
    let mut rng = SimRng::seed(0x5EED_0007);
    for _ in 0..128 {
        let vni = rng.uniform_u64(1 << 24) as u32;
        let inner_payload = rand_bytes(&mut rng, 0, 512);
        let (src_ip, dst_ip) = (rand_ip(&mut rng), rand_ip(&mut rng));
        let inner = builder::udp_packet(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 244, 0, 1),
            Ipv4Addr::new(10, 244, 0, 2),
            1,
            2,
            &inner_payload,
        );
        let outer = builder::vxlan_encapsulate(
            &inner,
            vni,
            MacAddr::from_index(3),
            MacAddr::from_index(4),
            src_ip,
            dst_ip,
            40000,
        );
        let (got_vni, got_inner) = builder::vxlan_decapsulate(&outer).unwrap();
        assert_eq!(got_vni, vni);
        assert_eq!(got_inner, inner);
    }
}

/// Prefix membership agrees with a bit-twiddling oracle.
#[test]
fn prefix_contains_matches_oracle() {
    let mut rng = SimRng::seed(0x5EED_0008);
    for _ in 0..512 {
        let addr = rng.uniform_u64(1 << 32) as u32;
        let probe = rng.uniform_u64(1 << 32) as u32;
        let len = rng.uniform_u64(33) as u8;
        let p = Prefix::new(Ipv4Addr::from(addr), len);
        let mask: u64 = if len == 0 {
            0
        } else {
            (!0u32 << (32 - len)) as u64
        };
        let oracle = (u64::from(addr) & mask) == (u64::from(probe) & mask);
        assert_eq!(p.contains(Ipv4Addr::from(probe)), oracle);
    }
}

/// VLAN push followed by pop restores the original frame.
#[test]
fn vlan_push_pop_identity() {
    let mut rng = SimRng::seed(0x5EED_0009);
    for _ in 0..256 {
        let vid = rng.uniform_u64(4096) as u16;
        let pcp = rng.uniform_u64(8) as u8;
        let payload = rand_bytes(&mut rng, 46, 100);
        let mut frame = builder::udp_packet(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            &payload,
        );
        let original = frame.clone();
        EthernetFrame::push_vlan(&mut frame, linuxfp_packet::VlanTag { vid, pcp });
        let parsed = EthernetFrame::parse(&frame).unwrap();
        assert_eq!(parsed.vlan, Some(linuxfp_packet::VlanTag { vid, pcp }));
        let tag = EthernetFrame::pop_vlan(&mut frame).unwrap();
        assert_eq!(tag.vid, vid);
        assert_eq!(frame, original);
    }
}
