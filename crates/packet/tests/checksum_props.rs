//! Property tests for RFC 1624 incremental checksum updates and the
//! shared NAT rewrite helper: across random header mutations, the
//! delta-updated checksum must equal a full recompute for IPv4 and TCP,
//! and UDP rewrites must follow the zero-checksum rule the fast path
//! emits.

use linuxfp_packet::checksum::{
    checksum, fold, incremental_update_u16, pseudo_header_sum, sum_words,
};
use linuxfp_packet::rewrite::{rewrite_ipv4, FieldRewrite};
use linuxfp_packet::tcp::TcpFlags;
use linuxfp_packet::{builder, MacAddr, ETH_HLEN, IPV4_MIN_HLEN};
use std::net::Ipv4Addr;

const ITERATIONS: u64 = 500;

/// Deterministic xorshift64* PRNG — no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn u16(&mut self) -> u16 {
        (self.next() >> 32) as u16
    }

    fn ip(&mut self) -> Ipv4Addr {
        // Avoid 0.0.0.0 so headers stay plausible.
        Ipv4Addr::from(((self.next() >> 16) as u32) | 0x0100_0000)
    }

    fn maybe_ip(&mut self) -> Option<Ipv4Addr> {
        if self.next() & 1 == 0 {
            Some(self.ip())
        } else {
            None
        }
    }

    fn maybe_port(&mut self) -> Option<u16> {
        if self.next() & 1 == 0 {
            Some(self.u16())
        } else {
            None
        }
    }
}

/// Full recompute of the IPv4 header checksum at `frame[l3..]`.
fn full_ip_checksum(frame: &[u8], l3: usize) -> u16 {
    let mut header = frame[l3..l3 + IPV4_MIN_HLEN].to_vec();
    header[10] = 0;
    header[11] = 0;
    checksum(&header)
}

/// Full recompute of the TCP checksum (pseudo-header + segment).
fn full_tcp_checksum(frame: &[u8], l3: usize) -> u16 {
    let src: [u8; 4] = frame[l3 + 12..l3 + 16].try_into().unwrap();
    let dst: [u8; 4] = frame[l3 + 16..l3 + 20].try_into().unwrap();
    let l4 = l3 + IPV4_MIN_HLEN;
    let mut segment = frame[l4..].to_vec();
    segment[16] = 0;
    segment[17] = 0;
    let pseudo = pseudo_header_sum(src, dst, 6, segment.len() as u16);
    !fold(sum_words(&segment, pseudo))
}

fn macs() -> (MacAddr, MacAddr) {
    (
        MacAddr::new([2, 0, 0, 0, 0, 1]),
        MacAddr::new([2, 0, 0, 0, 0, 2]),
    )
}

#[test]
fn incremental_word_update_matches_full_recompute() {
    let mut rng = Rng(0x1624);
    for _ in 0..ITERATIONS {
        let len = (20 + (rng.next() as usize % 40)) & !1;
        let mut data: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let before = checksum(&data);
        let off = (rng.next() as usize % (len / 2)) * 2;
        let old = u16::from_be_bytes([data[off], data[off + 1]]);
        let new = rng.u16();
        data[off..off + 2].copy_from_slice(&new.to_be_bytes());
        let inc = incremental_update_u16(before, old, new);
        assert_eq!(
            inc,
            checksum(&data),
            "delta update diverged at offset {off} ({old:#06x} -> {new:#06x})"
        );
        // And updating back restores the original checksum.
        assert_eq!(incremental_update_u16(inc, new, old), before);
    }
}

#[test]
fn ipv4_header_rewrites_match_full_recompute() {
    let mut rng = Rng(0xA11CE);
    let (src_mac, dst_mac) = macs();
    for _ in 0..ITERATIONS {
        let mut frame = builder::udp_packet(
            src_mac,
            dst_mac,
            rng.ip(),
            rng.ip(),
            rng.u16(),
            rng.u16(),
            b"payload",
        );
        let rw = FieldRewrite {
            src: rng.maybe_ip(),
            dst: rng.maybe_ip(),
            sport: rng.maybe_port(),
            dport: rng.maybe_port(),
        };
        rewrite_ipv4(&mut frame, ETH_HLEN, &rw);
        let stored = u16::from_be_bytes([frame[ETH_HLEN + 10], frame[ETH_HLEN + 11]]);
        assert_eq!(stored, full_ip_checksum(&frame, ETH_HLEN), "rewrite {rw:?}");
        if let Some(a) = rw.src {
            assert_eq!(&frame[ETH_HLEN + 12..ETH_HLEN + 16], &a.octets());
        }
        if let Some(a) = rw.dst {
            assert_eq!(&frame[ETH_HLEN + 16..ETH_HLEN + 20], &a.octets());
        }
    }
}

#[test]
fn tcp_rewrites_keep_checksum_valid_incrementally() {
    let mut rng = Rng(0x7C9);
    let (src_mac, dst_mac) = macs();
    for _ in 0..ITERATIONS {
        let mut frame = builder::tcp_packet(
            src_mac,
            dst_mac,
            rng.ip(),
            rng.ip(),
            rng.u16(),
            rng.u16(),
            TcpFlags::default(),
            b"GET /",
        );
        // The builder writes checksum 0; install a correct one first so
        // the incremental update starts from a valid state.
        let l4 = ETH_HLEN + IPV4_MIN_HLEN;
        let correct = full_tcp_checksum(&frame, ETH_HLEN);
        frame[l4 + 16..l4 + 18].copy_from_slice(&correct.to_be_bytes());

        let rw = FieldRewrite {
            src: rng.maybe_ip(),
            dst: rng.maybe_ip(),
            sport: rng.maybe_port(),
            dport: rng.maybe_port(),
        };
        rewrite_ipv4(&mut frame, ETH_HLEN, &rw);
        let stored = u16::from_be_bytes([frame[l4 + 16], frame[l4 + 17]]);
        assert_eq!(
            stored,
            full_tcp_checksum(&frame, ETH_HLEN),
            "tcp delta diverged for {rw:?}"
        );
        assert_eq!(
            u16::from_be_bytes([frame[ETH_HLEN + 10], frame[ETH_HLEN + 11]]),
            full_ip_checksum(&frame, ETH_HLEN)
        );
    }
}

#[test]
fn udp_rewrites_follow_zero_checksum_rule() {
    let mut rng = Rng(0x0DD);
    let (src_mac, dst_mac) = macs();
    for _ in 0..ITERATIONS {
        let mut frame = builder::udp_packet(
            src_mac,
            dst_mac,
            rng.ip(),
            rng.ip(),
            rng.u16(),
            rng.u16(),
            b"data",
        );
        let l4 = ETH_HLEN + IPV4_MIN_HLEN;
        let before = frame.clone();
        let rw = FieldRewrite {
            src: rng.maybe_ip(),
            dst: rng.maybe_ip(),
            sport: rng.maybe_port(),
            dport: rng.maybe_port(),
        };
        let changed = rewrite_ipv4(&mut frame, ETH_HLEN, &rw);
        if changed {
            // Any actual change clears the UDP checksum (legal over
            // IPv4, and byte-identical to the synthesized fast path).
            assert_eq!(&frame[l4 + 6..l4 + 8], &[0, 0]);
        } else {
            // No-op rewrites must not perturb a single byte.
            assert_eq!(frame, before, "no-op rewrite modified frame: {rw:?}");
        }
    }
}
