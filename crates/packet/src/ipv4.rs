//! IPv4 header parsing, construction, and the in-place mutations a
//! forwarding path performs (TTL decrement with incremental checksum fix).

use crate::checksum::{checksum, incremental_update_u16, sum_words};
use crate::ParsePacketError;
use std::net::Ipv4Addr;

/// Minimum IPv4 header length (no options).
pub const IPV4_MIN_HLEN: usize = 20;

/// IP protocol numbers the stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProto {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else.
    Other(u8),
}

impl IpProto {
    /// The wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }
}

impl From<u8> for IpProto {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// A parsed IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Header length in bytes (20–60).
    pub header_len: usize,
    /// DSCP/ECN byte.
    pub tos: u8,
    /// Total length (header + payload) per the header field.
    pub total_len: u16,
    /// Identification field.
    pub id: u16,
    /// Don't Fragment flag.
    pub dont_fragment: bool,
    /// More Fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub fragment_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Header checksum as stored.
    pub checksum: u16,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Parses an IPv4 header from the start of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePacketError::Truncated`] for short buffers and
    /// [`ParsePacketError::Malformed`] for a bad version or IHL.
    pub fn parse(data: &[u8]) -> Result<Self, ParsePacketError> {
        if data.len() < IPV4_MIN_HLEN {
            return Err(ParsePacketError::Truncated {
                layer: "ipv4",
                needed: IPV4_MIN_HLEN,
                have: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(ParsePacketError::Malformed {
                layer: "ipv4",
                what: "version is not 4",
            });
        }
        let ihl = (data[0] & 0x0F) as usize;
        let header_len = ihl * 4;
        if header_len < IPV4_MIN_HLEN {
            return Err(ParsePacketError::Malformed {
                layer: "ipv4",
                what: "IHL below minimum",
            });
        }
        if data.len() < header_len {
            return Err(ParsePacketError::Truncated {
                layer: "ipv4",
                needed: header_len,
                have: data.len(),
            });
        }
        let flags_frag = u16::from_be_bytes([data[6], data[7]]);
        Ok(Ipv4Header {
            header_len,
            tos: data[1],
            total_len: u16::from_be_bytes([data[2], data[3]]),
            id: u16::from_be_bytes([data[4], data[5]]),
            dont_fragment: flags_frag & 0x4000 != 0,
            more_fragments: flags_frag & 0x2000 != 0,
            fragment_offset: flags_frag & 0x1FFF,
            ttl: data[8],
            proto: IpProto::from(data[9]),
            checksum: u16::from_be_bytes([data[10], data[11]]),
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
        })
    }

    /// Whether this packet is a fragment (offset non-zero or more-fragments
    /// set) — fragments are corner cases the fast path punts to Linux.
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.fragment_offset != 0
    }

    /// Verifies the stored header checksum against `data` (which must start
    /// at the IPv4 header).
    pub fn verify_checksum(&self, data: &[u8]) -> bool {
        if data.len() < self.header_len {
            return false;
        }
        crate::checksum::fold(sum_words(&data[..self.header_len], 0)) == 0xFFFF
    }

    /// Writes a 20-byte header (no options) into `buf`, computing the
    /// checksum.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`IPV4_MIN_HLEN`].
    #[allow(clippy::too_many_arguments)]
    pub fn write(
        buf: &mut [u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: IpProto,
        ttl: u8,
        id: u16,
        total_len: u16,
        dont_fragment: bool,
    ) {
        assert!(
            buf.len() >= IPV4_MIN_HLEN,
            "buffer too small for ipv4 header"
        );
        buf[0] = 0x45;
        buf[1] = 0;
        buf[2..4].copy_from_slice(&total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&id.to_be_bytes());
        let flags: u16 = if dont_fragment { 0x4000 } else { 0 };
        buf[6..8].copy_from_slice(&flags.to_be_bytes());
        buf[8] = ttl;
        buf[9] = proto.to_u8();
        buf[10..12].copy_from_slice(&[0, 0]);
        buf[12..16].copy_from_slice(&src.octets());
        buf[16..20].copy_from_slice(&dst.octets());
        let c = checksum(&buf[..IPV4_MIN_HLEN]);
        buf[10..12].copy_from_slice(&c.to_be_bytes());
    }

    /// Decrements the TTL in place and fixes the checksum incrementally.
    /// Returns the new TTL, or `None` if the TTL was already ≤ 1 (the
    /// packet must be dropped / ICMP time-exceeded generated — a slow-path
    /// job).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`IPV4_MIN_HLEN`].
    pub fn decrement_ttl(buf: &mut [u8]) -> Option<u8> {
        assert!(
            buf.len() >= IPV4_MIN_HLEN,
            "buffer too small for ipv4 header"
        );
        let ttl = buf[8];
        if ttl <= 1 {
            return None;
        }
        let old_word = u16::from_be_bytes([buf[8], buf[9]]);
        buf[8] = ttl - 1;
        let new_word = u16::from_be_bytes([buf[8], buf[9]]);
        let cur = u16::from_be_bytes([buf[10], buf[11]]);
        let fixed = incremental_update_u16(cur, old_word, new_word);
        buf[10..12].copy_from_slice(&fixed.to_be_bytes());
        Some(ttl - 1)
    }
}

/// A network prefix (address + mask length), used by routes, rules and
/// ipsets.
///
/// # Example
///
/// ```
/// use linuxfp_packet::ipv4::Prefix;
/// use std::net::Ipv4Addr;
///
/// let p: Prefix = "10.1.0.0/16".parse().unwrap();
/// assert!(p.contains(Ipv4Addr::new(10, 1, 2, 3)));
/// assert!(!p.contains(Ipv4Addr::new(10, 2, 0, 1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// Creates a prefix, masking off host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        let mask = Prefix::mask(len);
        Prefix {
            addr: u32::from(addr) & mask,
            len,
        }
    }

    /// A /32 host prefix.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix::new(addr, 32)
    }

    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { addr: 0, len: 0 };

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The (masked) network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// The prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default prefix.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Alias of [`Prefix::is_default`], pairing with [`Prefix::len`].
    pub fn is_empty(&self) -> bool {
        self.is_default()
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Prefix::mask(self.len) == self.addr
    }

    /// Whether `other` is fully contained in `self`.
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && (other.addr & Prefix::mask(self.len)) == self.addr
    }

    /// The `n`-th host address within the prefix (for generating workloads).
    pub fn nth_host(&self, n: u32) -> Ipv4Addr {
        Ipv4Addr::from(self.addr.wrapping_add(n))
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// Error parsing a prefix from `a.b.c.d/len` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(String);

impl std::fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid prefix syntax: {:?}", self.0)
    }
}
impl std::error::Error for ParsePrefixError {}

impl std::str::FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = match s.split_once('/') {
            Some((a, l)) => (
                a.parse::<Ipv4Addr>()
                    .map_err(|_| ParsePrefixError(s.to_string()))?,
                l.parse::<u8>()
                    .map_err(|_| ParsePrefixError(s.to_string()))?,
            ),
            None => (
                s.parse::<Ipv4Addr>()
                    .map_err(|_| ParsePrefixError(s.to_string()))?,
                32,
            ),
        };
        if len > 32 {
            return Err(ParsePrefixError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Vec<u8> {
        let mut buf = vec![0u8; 20];
        Ipv4Header::write(
            &mut buf,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 1, 1),
            IpProto::Udp,
            64,
            0x1234,
            48,
            true,
        );
        buf
    }

    #[test]
    fn write_parse_round_trip() {
        let buf = sample_header();
        let h = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(h.src, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(h.dst, Ipv4Addr::new(192, 168, 1, 1));
        assert_eq!(h.proto, IpProto::Udp);
        assert_eq!(h.ttl, 64);
        assert_eq!(h.id, 0x1234);
        assert_eq!(h.total_len, 48);
        assert!(h.dont_fragment);
        assert!(!h.is_fragment());
        assert!(h.verify_checksum(&buf));
    }

    #[test]
    fn rejects_bad_version_and_ihl() {
        let mut buf = sample_header();
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(ParsePacketError::Malformed {
                what: "version is not 4",
                ..
            })
        ));
        buf[0] = 0x43; // IHL 3 -> 12 bytes
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(ParsePacketError::Malformed {
                what: "IHL below minimum",
                ..
            })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let buf = sample_header();
        assert!(Ipv4Header::parse(&buf[..10]).is_err());
        // Header claiming options beyond the buffer.
        let mut with_opts = sample_header();
        with_opts[0] = 0x46; // IHL 6 -> 24 bytes, buffer only 20
        assert!(matches!(
            Ipv4Header::parse(&with_opts),
            Err(ParsePacketError::Truncated {
                layer: "ipv4",
                needed: 24,
                ..
            })
        ));
    }

    #[test]
    fn corrupt_checksum_detected() {
        let mut buf = sample_header();
        buf[15] ^= 0xFF;
        let h = Ipv4Header::parse(&buf).unwrap();
        assert!(!h.verify_checksum(&buf));
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let mut buf = sample_header();
        let new_ttl = Ipv4Header::decrement_ttl(&mut buf).unwrap();
        assert_eq!(new_ttl, 63);
        let h = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(h.ttl, 63);
        assert!(h.verify_checksum(&buf));
    }

    #[test]
    fn ttl_exhaustion_refused() {
        let mut buf = sample_header();
        buf[8] = 1;
        assert_eq!(Ipv4Header::decrement_ttl(&mut buf), None);
        buf[8] = 0;
        assert_eq!(Ipv4Header::decrement_ttl(&mut buf), None);
    }

    #[test]
    fn fragment_detection() {
        let mut buf = sample_header();
        buf[6..8].copy_from_slice(&0x2000u16.to_be_bytes()); // MF set
        let h = Ipv4Header::parse(&buf).unwrap();
        assert!(h.is_fragment());
        buf[6..8].copy_from_slice(&0x0004u16.to_be_bytes()); // offset 4
        let h = Ipv4Header::parse(&buf).unwrap();
        assert!(h.is_fragment());
        assert_eq!(h.fragment_offset, 4);
    }

    #[test]
    fn prefix_contains_and_covers() {
        let p = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(p.network(), Ipv4Addr::new(10, 1, 0, 0)); // host bits masked
        assert!(p.contains(Ipv4Addr::new(10, 1, 255, 255)));
        assert!(!p.contains(Ipv4Addr::new(10, 2, 0, 0)));
        let sub = Prefix::new(Ipv4Addr::new(10, 1, 2, 0), 24);
        assert!(p.covers(&sub));
        assert!(!sub.covers(&p));
        assert!(Prefix::DEFAULT.covers(&p));
        assert!(Prefix::DEFAULT.contains(Ipv4Addr::new(8, 8, 8, 8)));
    }

    #[test]
    fn prefix_parse_and_display() {
        let p: Prefix = "192.168.0.0/24".parse().unwrap();
        assert_eq!(p.to_string(), "192.168.0.0/24");
        let host: Prefix = "1.2.3.4".parse().unwrap();
        assert_eq!(host.len(), 32);
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("banana/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn prefix_nth_host() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        assert_eq!(p.nth_host(5), Ipv4Addr::new(10, 0, 0, 5));
    }

    #[test]
    fn proto_round_trip() {
        for p in [
            IpProto::Icmp,
            IpProto::Tcp,
            IpProto::Udp,
            IpProto::Other(89),
        ] {
            assert_eq!(IpProto::from(p.to_u8()), p);
        }
    }
}
