//! Convenience builders for complete frames, used by workload generators
//! and tests.

use crate::eth::{EtherType, EthernetFrame, MacAddr, ETH_HLEN};
use crate::icmp::{IcmpHeader, IcmpType};
use crate::ipv4::{IpProto, Ipv4Header, IPV4_MIN_HLEN};
use crate::tcp::{TcpFlags, TcpHeader, TCP_MIN_HLEN};
use crate::udp::{UdpHeader, UDP_HLEN};
use crate::vxlan::{VxlanHeader, VXLAN_HLEN, VXLAN_PORT};
use std::net::Ipv4Addr;

/// Default TTL for generated packets.
pub const DEFAULT_TTL: u8 = 64;

/// Builds `eth / ipv4 / udp / payload`.
pub fn udp_packet(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let ip_len = IPV4_MIN_HLEN + UDP_HLEN + payload.len();
    let mut frame = vec![0u8; ETH_HLEN + ip_len];
    EthernetFrame::write(&mut frame, dst_mac, src_mac, EtherType::Ipv4);
    Ipv4Header::write(
        &mut frame[ETH_HLEN..],
        src_ip,
        dst_ip,
        IpProto::Udp,
        DEFAULT_TTL,
        0,
        ip_len as u16,
        true,
    );
    UdpHeader::write(
        &mut frame[ETH_HLEN + IPV4_MIN_HLEN..],
        src_port,
        dst_port,
        (UDP_HLEN + payload.len()) as u16,
    );
    frame[ETH_HLEN + IPV4_MIN_HLEN + UDP_HLEN..].copy_from_slice(payload);
    frame
}

/// Builds a UDP packet padded (or payload-sized) to a target frame length
/// — the knob the packet-size sweep (paper Fig. 6) turns. The `frame_len`
/// excludes the 4-byte FCS, so a "64-byte packet" benchmark uses 60 here.
///
/// # Panics
///
/// Panics if `frame_len` cannot hold the headers.
#[allow(clippy::too_many_arguments)]
pub fn udp_packet_sized(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    frame_len: usize,
) -> Vec<u8> {
    let min = ETH_HLEN + IPV4_MIN_HLEN + UDP_HLEN;
    assert!(
        frame_len >= min,
        "frame_len {frame_len} below minimum {min}"
    );
    let mut frame = Vec::with_capacity(frame_len);
    udp_packet_sized_into(
        src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, frame_len, &mut frame,
    );
    frame
}

/// Like [`udp_packet_sized`] but writing into a reusable buffer (cleared
/// and resized in place) — the zero-allocation path pooled workload
/// generators use in steady state.
///
/// # Panics
///
/// Panics if `frame_len` cannot hold the headers.
#[allow(clippy::too_many_arguments)]
pub fn udp_packet_sized_into(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    frame_len: usize,
    buf: &mut Vec<u8>,
) {
    let min = ETH_HLEN + IPV4_MIN_HLEN + UDP_HLEN;
    assert!(
        frame_len >= min,
        "frame_len {frame_len} below minimum {min}"
    );
    buf.clear();
    buf.resize(frame_len, 0);
    let ip_len = frame_len - ETH_HLEN;
    EthernetFrame::write(buf, dst_mac, src_mac, EtherType::Ipv4);
    Ipv4Header::write(
        &mut buf[ETH_HLEN..],
        src_ip,
        dst_ip,
        IpProto::Udp,
        DEFAULT_TTL,
        0,
        ip_len as u16,
        true,
    );
    UdpHeader::write(
        &mut buf[ETH_HLEN + IPV4_MIN_HLEN..],
        src_port,
        dst_port,
        (ip_len - IPV4_MIN_HLEN) as u16,
    );
}

/// Builds `eth / ipv4 / tcp / payload`.
#[allow(clippy::too_many_arguments)]
pub fn tcp_packet(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    flags: TcpFlags,
    payload: &[u8],
) -> Vec<u8> {
    let ip_len = IPV4_MIN_HLEN + TCP_MIN_HLEN + payload.len();
    let mut frame = vec![0u8; ETH_HLEN + ip_len];
    EthernetFrame::write(&mut frame, dst_mac, src_mac, EtherType::Ipv4);
    Ipv4Header::write(
        &mut frame[ETH_HLEN..],
        src_ip,
        dst_ip,
        IpProto::Tcp,
        DEFAULT_TTL,
        0,
        ip_len as u16,
        true,
    );
    TcpHeader::write(
        &mut frame[ETH_HLEN + IPV4_MIN_HLEN..],
        src_port,
        dst_port,
        0,
        0,
        flags,
    );
    frame[ETH_HLEN + IPV4_MIN_HLEN + TCP_MIN_HLEN..].copy_from_slice(payload);
    frame
}

/// The in-place variant of [`tcp_packet`] for pooled measurement loops.
#[allow(clippy::too_many_arguments)]
pub fn tcp_packet_into(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    flags: TcpFlags,
    payload: &[u8],
    buf: &mut Vec<u8>,
) {
    let ip_len = IPV4_MIN_HLEN + TCP_MIN_HLEN + payload.len();
    buf.clear();
    buf.resize(ETH_HLEN + ip_len, 0);
    EthernetFrame::write(buf, dst_mac, src_mac, EtherType::Ipv4);
    Ipv4Header::write(
        &mut buf[ETH_HLEN..],
        src_ip,
        dst_ip,
        IpProto::Tcp,
        DEFAULT_TTL,
        0,
        ip_len as u16,
        true,
    );
    TcpHeader::write(
        &mut buf[ETH_HLEN + IPV4_MIN_HLEN..],
        src_port,
        dst_port,
        0,
        0,
        flags,
    );
    buf[ETH_HLEN + IPV4_MIN_HLEN + TCP_MIN_HLEN..].copy_from_slice(payload);
}

/// Builds `eth / ipv4 / icmp-echo-request`.
pub fn icmp_echo_request(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    id: u16,
    seq: u16,
) -> Vec<u8> {
    let icmp = IcmpHeader::build(IcmpType::EchoRequest, id, seq, b"linuxfp-ping");
    let ip_len = IPV4_MIN_HLEN + icmp.len();
    let mut frame = vec![0u8; ETH_HLEN + ip_len];
    EthernetFrame::write(&mut frame, dst_mac, src_mac, EtherType::Ipv4);
    Ipv4Header::write(
        &mut frame[ETH_HLEN..],
        src_ip,
        dst_ip,
        IpProto::Icmp,
        DEFAULT_TTL,
        0,
        ip_len as u16,
        true,
    );
    frame[ETH_HLEN + IPV4_MIN_HLEN..].copy_from_slice(&icmp);
    frame
}

/// Builds an ARP frame (request or reply) ready for the wire.
pub fn arp_frame(arp: &crate::arp::ArpPacket, src_mac: MacAddr, dst_mac: MacAddr) -> Vec<u8> {
    let body = arp.to_bytes();
    let mut frame = vec![0u8; ETH_HLEN + body.len()];
    EthernetFrame::write(&mut frame, dst_mac, src_mac, EtherType::Arp);
    frame[ETH_HLEN..].copy_from_slice(&body);
    frame
}

/// Encapsulates an inner L2 frame in `eth / ipv4 / udp(4789) / vxlan`,
/// the Flannel-style overlay format.
#[allow(clippy::too_many_arguments)]
pub fn vxlan_encapsulate(
    inner: &[u8],
    vni: u32,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
) -> Vec<u8> {
    let vxlan = VxlanHeader { vni }.to_bytes();
    let udp_len = UDP_HLEN + VXLAN_HLEN + inner.len();
    let ip_len = IPV4_MIN_HLEN + udp_len;
    let mut frame = vec![0u8; ETH_HLEN + ip_len];
    EthernetFrame::write(&mut frame, dst_mac, src_mac, EtherType::Ipv4);
    Ipv4Header::write(
        &mut frame[ETH_HLEN..],
        src_ip,
        dst_ip,
        IpProto::Udp,
        DEFAULT_TTL,
        0,
        ip_len as u16,
        true,
    );
    UdpHeader::write(
        &mut frame[ETH_HLEN + IPV4_MIN_HLEN..],
        src_port,
        VXLAN_PORT,
        udp_len as u16,
    );
    let off = ETH_HLEN + IPV4_MIN_HLEN + UDP_HLEN;
    frame[off..off + VXLAN_HLEN].copy_from_slice(&vxlan);
    frame[off + VXLAN_HLEN..].copy_from_slice(inner);
    frame
}

/// Extracts the inner frame from a VXLAN-encapsulated packet, returning
/// `(vni, inner_frame)`.
///
/// # Errors
///
/// Returns a parse error when any layer is truncated, the packet is not
/// UDP/4789, or the VXLAN header is malformed.
pub fn vxlan_decapsulate(frame: &[u8]) -> Result<(u32, Vec<u8>), crate::ParsePacketError> {
    let eth = EthernetFrame::parse(frame)?;
    let ip = Ipv4Header::parse(&frame[eth.payload_offset..])?;
    let l4 = eth.payload_offset + ip.header_len;
    let udp = UdpHeader::parse(&frame[l4..])?;
    if ip.proto != IpProto::Udp || udp.dst_port != VXLAN_PORT {
        return Err(crate::ParsePacketError::Malformed {
            layer: "vxlan",
            what: "not a VXLAN/UDP packet",
        });
    }
    let vx_off = l4 + UDP_HLEN;
    let vx = VxlanHeader::parse(&frame[vx_off..])?;
    Ok((vx.vni, frame[vx_off + VXLAN_HLEN..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arp::ArpPacket;

    fn macs() -> (MacAddr, MacAddr) {
        (MacAddr::from_index(1), MacAddr::from_index(2))
    }

    #[test]
    fn udp_packet_layers_parse() {
        let (s, d) = macs();
        let f = udp_packet(
            s,
            d,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1111,
            2222,
            b"abc",
        );
        let eth = EthernetFrame::parse(&f).unwrap();
        let ip = Ipv4Header::parse(&f[eth.payload_offset..]).unwrap();
        assert!(ip.verify_checksum(&f[eth.payload_offset..]));
        assert_eq!(ip.total_len as usize, f.len() - ETH_HLEN);
        let udp = UdpHeader::parse(&f[eth.payload_offset + ip.header_len..]).unwrap();
        assert_eq!(udp.dst_port, 2222);
        assert_eq!(&f[f.len() - 3..], b"abc");
    }

    #[test]
    fn sized_packet_hits_exact_length() {
        let (s, d) = macs();
        for len in [60usize, 128, 512, 1496] {
            let f = udp_packet_sized(
                s,
                d,
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                1,
                2,
                len,
            );
            assert_eq!(f.len(), len);
            let eth = EthernetFrame::parse(&f).unwrap();
            let ip = Ipv4Header::parse(&f[eth.payload_offset..]).unwrap();
            assert!(ip.verify_checksum(&f[eth.payload_offset..]));
        }
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn sized_packet_too_small_panics() {
        let (s, d) = macs();
        udp_packet_sized(s, d, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, 1, 2, 10);
    }

    #[test]
    fn tcp_packet_parses() {
        let (s, d) = macs();
        let f = tcp_packet(
            s,
            d,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            40000,
            80,
            TcpFlags {
                syn: true,
                ..TcpFlags::default()
            },
            b"",
        );
        let eth = EthernetFrame::parse(&f).unwrap();
        let ip = Ipv4Header::parse(&f[eth.payload_offset..]).unwrap();
        assert_eq!(ip.proto, IpProto::Tcp);
        let tcp = TcpHeader::parse(&f[eth.payload_offset + ip.header_len..]).unwrap();
        assert!(tcp.flags.syn);
    }

    #[test]
    fn icmp_echo_parses() {
        let (s, d) = macs();
        let f = icmp_echo_request(
            s,
            d,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            7,
            3,
        );
        let eth = EthernetFrame::parse(&f).unwrap();
        let ip = Ipv4Header::parse(&f[eth.payload_offset..]).unwrap();
        assert_eq!(ip.proto, IpProto::Icmp);
        let icmp = IcmpHeader::parse(&f[eth.payload_offset + ip.header_len..]).unwrap();
        assert_eq!(icmp.icmp_type, IcmpType::EchoRequest);
        assert_eq!(icmp.seq, 3);
    }

    #[test]
    fn arp_frame_parses() {
        let (s, _d) = macs();
        let req = ArpPacket::request(s, Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(1, 1, 1, 2));
        let f = arp_frame(&req, s, MacAddr::BROADCAST);
        let eth = EthernetFrame::parse(&f).unwrap();
        assert_eq!(eth.ethertype, EtherType::Arp);
        assert!(eth.dst.is_broadcast());
        let parsed = ArpPacket::parse(&f[eth.payload_offset..]).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn vxlan_encap_decap_round_trip() {
        let (s, d) = macs();
        let inner = udp_packet(
            MacAddr::from_index(10),
            MacAddr::from_index(11),
            Ipv4Addr::new(10, 244, 1, 2),
            Ipv4Addr::new(10, 244, 2, 3),
            5000,
            6000,
            b"pod-to-pod",
        );
        let outer = vxlan_encapsulate(
            &inner,
            1,
            s,
            d,
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(192, 168, 0, 2),
            33333,
        );
        let (vni, got) = vxlan_decapsulate(&outer).unwrap();
        assert_eq!(vni, 1);
        assert_eq!(got, inner);
    }

    #[test]
    fn vxlan_decap_rejects_plain_udp() {
        let (s, d) = macs();
        let f = udp_packet(
            s,
            d,
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            80,
            b"x",
        );
        assert!(vxlan_decapsulate(&f).is_err());
    }
}
