//! A burst of frames processed as one unit — the vector the batched
//! datapath passes from the traffic generator through hooks and the
//! stack, mirroring a NAPI poll budget or a VPP vector.

use crate::pool::PacketBuf;

/// An ordered burst of packet buffers.
///
/// Order is significant: batched processing must observe frames in the
/// same sequence as one-at-a-time injection (stateful stages — NAT
/// binding allocation, conntrack, FDB learning — depend on it).
#[derive(Debug, Default)]
pub struct Batch {
    bufs: Vec<PacketBuf>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// An empty batch with room for `n` frames.
    pub fn with_capacity(n: usize) -> Self {
        Batch {
            bufs: Vec::with_capacity(n),
        }
    }

    /// Appends a frame to the burst.
    pub fn push(&mut self, buf: impl Into<PacketBuf>) {
        self.bufs.push(buf.into());
    }

    /// Number of frames in the burst.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// Whether the burst is empty.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Immutable view of the frames.
    pub fn iter(&self) -> std::slice::Iter<'_, PacketBuf> {
        self.bufs.iter()
    }

    /// Mutable view of the frames.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, PacketBuf> {
        self.bufs.iter_mut()
    }

    /// Removes and returns all frames in order, leaving the batch empty
    /// (capacity retained, so a batch can be refilled without realloc).
    pub fn drain(&mut self) -> std::vec::Drain<'_, PacketBuf> {
        self.bufs.drain(..)
    }

    /// Consumes the batch into its frames.
    pub fn into_bufs(self) -> Vec<PacketBuf> {
        self.bufs
    }
}

impl From<Vec<PacketBuf>> for Batch {
    fn from(bufs: Vec<PacketBuf>) -> Self {
        Batch { bufs }
    }
}

impl From<Vec<Vec<u8>>> for Batch {
    fn from(frames: Vec<Vec<u8>>) -> Self {
        Batch {
            bufs: frames.into_iter().map(PacketBuf::from).collect(),
        }
    }
}

impl IntoIterator for Batch {
    type Item = PacketBuf;
    type IntoIter = std::vec::IntoIter<PacketBuf>;
    fn into_iter(self) -> Self::IntoIter {
        self.bufs.into_iter()
    }
}

impl<'a> IntoIterator for &'a mut Batch {
    type Item = &'a mut PacketBuf;
    type IntoIter = std::slice::IterMut<'a, PacketBuf>;
    fn into_iter(self) -> Self::IntoIter {
        self.bufs.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::BufferPool;

    #[test]
    fn batch_preserves_order_and_capacity() {
        let pool = BufferPool::new();
        let mut batch = Batch::with_capacity(4);
        for i in 0..4u8 {
            batch.push(pool.acquire_from(&[i]));
        }
        assert_eq!(batch.len(), 4);
        let seen: Vec<u8> = batch.drain().map(|b| b[0]).collect();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(batch.is_empty());
        // Drained pooled buffers were dropped back to the free list.
        assert_eq!(pool.stats().free, 4);
    }

    #[test]
    fn batch_from_plain_vecs() {
        let batch = Batch::from(vec![vec![1u8], vec![2u8, 2]]);
        assert_eq!(batch.len(), 2);
        let lens: Vec<usize> = batch.iter().map(|b| b.len()).collect();
        assert_eq!(lens, vec![1, 2]);
    }
}
