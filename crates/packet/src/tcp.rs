//! TCP header parsing and construction (the subset a forwarder and a
//! request/response workload need: ports, seq/ack, flags).

use crate::ParsePacketError;

/// Minimum TCP header length (no options).
pub const TCP_MIN_HLEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// FIN.
    pub fin: bool,
    /// RST.
    pub rst: bool,
    /// PSH.
    pub psh: bool,
}

impl TcpFlags {
    /// Encodes the flag byte.
    pub fn to_u8(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    /// Decodes the flag byte.
    pub fn from_u8(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A parsed TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack_no: u32,
    /// Header length in bytes.
    pub header_len: usize,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Parses a TCP header from the start of `data`.
    ///
    /// # Errors
    ///
    /// Returns an error for truncated buffers or a data offset below 5.
    pub fn parse(data: &[u8]) -> Result<Self, ParsePacketError> {
        if data.len() < TCP_MIN_HLEN {
            return Err(ParsePacketError::Truncated {
                layer: "tcp",
                needed: TCP_MIN_HLEN,
                have: data.len(),
            });
        }
        let header_len = ((data[12] >> 4) as usize) * 4;
        if header_len < TCP_MIN_HLEN {
            return Err(ParsePacketError::Malformed {
                layer: "tcp",
                what: "data offset below minimum",
            });
        }
        Ok(TcpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack_no: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            header_len,
            flags: TcpFlags::from_u8(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
        })
    }

    /// Returns the segment payload following this header.
    ///
    /// `segment` must be the same buffer the header was parsed from
    /// (starting at the TCP header). A data offset pointing past the end
    /// of the segment is a distinct, *typed* condition — the caller must
    /// be able to tell "no payload" from "the header claims bytes the
    /// segment does not carry", because an L7 parser that silently
    /// truncated here would read garbage as a request line.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePacketError::Truncated`] when `header_len`
    /// exceeds the segment length.
    pub fn payload<'a>(&self, segment: &'a [u8]) -> Result<&'a [u8], ParsePacketError> {
        if self.header_len > segment.len() {
            return Err(ParsePacketError::Truncated {
                layer: "tcp payload",
                needed: self.header_len,
                have: segment.len(),
            });
        }
        Ok(&segment[self.header_len..])
    }

    /// Writes a 20-byte TCP header (checksum 0) into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`TCP_MIN_HLEN`].
    pub fn write(
        buf: &mut [u8],
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack_no: u32,
        flags: TcpFlags,
    ) {
        assert!(buf.len() >= TCP_MIN_HLEN, "buffer too small for tcp header");
        buf[0..2].copy_from_slice(&src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&seq.to_be_bytes());
        buf[8..12].copy_from_slice(&ack_no.to_be_bytes());
        buf[12] = 5 << 4;
        buf[13] = flags.to_u8();
        buf[14..16].copy_from_slice(&0xFFFFu16.to_be_bytes());
        buf[16..20].copy_from_slice(&[0, 0, 0, 0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = [0u8; 20];
        let flags = TcpFlags {
            syn: true,
            ack: true,
            ..TcpFlags::default()
        };
        TcpHeader::write(&mut buf, 40000, 80, 7, 9, flags);
        let h = TcpHeader::parse(&buf).unwrap();
        assert_eq!(h.src_port, 40000);
        assert_eq!(h.dst_port, 80);
        assert_eq!(h.seq, 7);
        assert_eq!(h.ack_no, 9);
        assert_eq!(h.header_len, 20);
        assert!(h.flags.syn && h.flags.ack && !h.flags.fin);
    }

    #[test]
    fn flag_byte_round_trip() {
        for b in 0u8..32 {
            assert_eq!(TcpFlags::from_u8(b).to_u8(), b);
        }
    }

    #[test]
    fn payload_accessor_handles_short_segments() {
        // 20-byte header, 4-byte payload: the accessor returns exactly
        // the payload bytes.
        let mut seg = vec![0u8; 24];
        TcpHeader::write(&mut seg, 1, 2, 0, 0, TcpFlags::default());
        seg[20..].copy_from_slice(b"GET ");
        let h = TcpHeader::parse(&seg).unwrap();
        assert_eq!(h.payload(&seg).unwrap(), b"GET ");

        // Empty payload is Ok(&[]) — distinct from an error.
        let mut bare = [0u8; 20];
        TcpHeader::write(&mut bare, 1, 2, 0, 0, TcpFlags::default());
        let h = TcpHeader::parse(&bare).unwrap();
        assert_eq!(h.payload(&bare).unwrap(), b"");

        // A data offset past the segment end is a typed error, not a
        // silent truncation: 32-byte header claimed, 20 bytes present.
        let mut short = [0u8; 20];
        TcpHeader::write(&mut short, 1, 2, 0, 0, TcpFlags::default());
        short[12] = 8 << 4;
        let h = TcpHeader::parse(&short).unwrap();
        assert_eq!(h.header_len, 32);
        assert!(matches!(
            h.payload(&short),
            Err(ParsePacketError::Truncated {
                layer: "tcp payload",
                needed: 32,
                have: 20,
            })
        ));

        // Boundary: header_len == segment length is legal (no payload).
        let mut exact = [0u8; 32];
        TcpHeader::write(&mut exact, 1, 2, 0, 0, TcpFlags::default());
        exact[12] = 8 << 4;
        let h = TcpHeader::parse(&exact).unwrap();
        assert_eq!(h.payload(&exact).unwrap(), b"");
    }

    #[test]
    fn rejects_bad_offset_and_truncation() {
        assert!(TcpHeader::parse(&[0u8; 19]).is_err());
        let mut buf = [0u8; 20];
        TcpHeader::write(&mut buf, 1, 2, 0, 0, TcpFlags::default());
        buf[12] = 4 << 4;
        assert!(matches!(
            TcpHeader::parse(&buf),
            Err(ParsePacketError::Malformed { .. })
        ));
    }
}
