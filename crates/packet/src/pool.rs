//! Recyclable packet buffers: a free-list [`BufferPool`] and the
//! [`PacketBuf`] handle the whole datapath passes around.
//!
//! The real systems the paper compares never allocate per packet in
//! steady state: NIC drivers recycle DMA buffers through page pools, and
//! VPP hands vectors of pre-allocated `vlib_buffer_t`s from node to node.
//! `PacketBuf` reproduces that discipline for the simulation: a buffer is
//! checked out of a pool, flows through hooks / the slow path / transmit
//! effects, and is returned to the pool's free list when the last holder
//! drops it — on *every* exit path (transmit, deliver, drop, punt),
//! because the return lives in `Drop`.
//!
//! A `PacketBuf` derefs to `Vec<u8>`, so all existing parsing and
//! rewriting code operates on it unchanged. Detaching (`into_vec`) or
//! cloning yields a plain unpooled buffer.
//!
//! The pool deliberately has **no dependencies** (this crate is the
//! workspace leaf); observability is wired from the outside through
//! [`BufferPool::set_occupancy_observer`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

/// Callback invoked with fresh [`PoolStats`] after every acquire/recycle
/// (how the telemetry crate exports a pool-occupancy gauge without this
/// crate depending on it).
pub type OccupancyObserver = Arc<dyn Fn(&PoolStats) + Send + Sync>;

/// Counters describing a pool's behavior. `allocated` only grows when the
/// free list is empty at acquire time — a warmed-up steady state shows
/// `allocated` constant while `reused` climbs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers ever created by this pool (heap allocations).
    pub allocated: u64,
    /// Acquisitions served from the free list (no allocation).
    pub reused: u64,
    /// Buffers handed back to the free list.
    pub recycled: u64,
    /// Buffers currently checked out (held by live `PacketBuf`s).
    pub outstanding: u64,
    /// Buffers currently sitting in the free list.
    pub free: u64,
}

#[derive(Default)]
struct PoolState {
    free: Vec<Vec<u8>>,
    stats: PoolStats,
}

/// Shared pool internals; `PacketBuf` holds an `Arc` to return itself.
pub struct PoolInner {
    state: Mutex<PoolState>,
    observer: Mutex<Option<OccupancyObserver>>,
}

impl PoolInner {
    fn observe(&self, stats: PoolStats) {
        let observer = self.observer.lock().expect("pool observer poisoned");
        if let Some(f) = observer.as_ref() {
            f(&stats);
        }
    }

    /// A checked-out buffer left the pool for good (`into_vec`).
    fn detach(&self) {
        let stats = {
            let mut state = self.state.lock().expect("pool poisoned");
            state.stats.outstanding = state.stats.outstanding.saturating_sub(1);
            state.stats
        };
        self.observe(stats);
    }

    fn recycle(&self, mut buf: Vec<u8>) {
        buf.clear();
        let stats = {
            let mut state = self.state.lock().expect("pool poisoned");
            state.free.push(buf);
            state.stats.recycled += 1;
            state.stats.outstanding = state.stats.outstanding.saturating_sub(1);
            state.stats.free = state.free.len() as u64;
            state.stats
        };
        self.observe(stats);
    }
}

impl fmt::Debug for PoolInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock().expect("pool poisoned");
        f.debug_struct("PoolInner")
            .field("stats", &state.stats)
            .finish()
    }
}

/// A free-list buffer pool. Cloning is cheap (shared handle).
#[derive(Clone, Debug, Default)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl Default for PoolInner {
    fn default() -> Self {
        PoolInner {
            state: Mutex::new(PoolState::default()),
            observer: Mutex::new(None),
        }
    }
}

impl BufferPool {
    /// An empty pool; buffers are allocated lazily on first acquire.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Checks out an empty buffer, reusing a free one when available.
    pub fn acquire(&self) -> PacketBuf {
        let (data, stats) = {
            let mut state = self.inner.state.lock().expect("pool poisoned");
            let data = match state.free.pop() {
                Some(buf) => {
                    state.stats.reused += 1;
                    buf
                }
                None => {
                    state.stats.allocated += 1;
                    Vec::new()
                }
            };
            state.stats.outstanding += 1;
            state.stats.free = state.free.len() as u64;
            (data, state.stats)
        };
        self.inner.observe(stats);
        PacketBuf {
            data,
            pool: Some(Arc::clone(&self.inner)),
        }
    }

    /// Checks out a buffer pre-filled with a copy of `bytes`.
    pub fn acquire_from(&self, bytes: &[u8]) -> PacketBuf {
        let mut buf = self.acquire();
        buf.extend_from_slice(bytes);
        buf
    }

    /// Current pool counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.state.lock().expect("pool poisoned").stats
    }

    /// Registers (or replaces) the observer called after every
    /// acquire/recycle with the post-operation [`PoolStats`].
    pub fn set_occupancy_observer(&self, observer: OccupancyObserver) {
        *self.inner.observer.lock().expect("pool observer poisoned") = Some(observer);
    }
}

/// Per-shard buffer pools for a multi-queue datapath: one independent
/// [`BufferPool`] free list per RSS shard, so shards never contend on
/// (or share cache lines of) each other's buffer stacks — the same
/// reason real drivers keep one page pool per receive queue.
///
/// Shard 0's pool is the "default" pool a non-sharded caller sees, so a
/// `ShardedPool::new(1)` behaves exactly like one `BufferPool`.
#[derive(Clone, Debug)]
pub struct ShardedPool {
    pools: Vec<BufferPool>,
}

impl ShardedPool {
    /// Creates `shards` independent pools (`shards` is clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedPool {
            pools: (0..shards).map(|_| BufferPool::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.pools.len()
    }

    /// The pool owned by `shard` (indices past the end wrap via modulo,
    /// so callers can pass a raw RSS hash).
    pub fn pool(&self, shard: usize) -> &BufferPool {
        &self.pools[shard % self.pools.len()]
    }

    /// Checks out a buffer from `shard`'s pool, pre-filled with `bytes`.
    pub fn acquire_from(&self, shard: usize, bytes: &[u8]) -> PacketBuf {
        self.pool(shard).acquire_from(bytes)
    }

    /// Per-shard counters, indexed by shard.
    pub fn per_shard_stats(&self) -> Vec<PoolStats> {
        self.pools.iter().map(|p| p.stats()).collect()
    }

    /// Counters summed across every shard.
    pub fn aggregate_stats(&self) -> PoolStats {
        let mut agg = PoolStats::default();
        for p in &self.pools {
            let s = p.stats();
            agg.allocated += s.allocated;
            agg.reused += s.reused;
            agg.recycled += s.recycled;
            agg.outstanding += s.outstanding;
            agg.free += s.free;
        }
        agg
    }
}

impl Default for ShardedPool {
    fn default() -> Self {
        ShardedPool::new(1)
    }
}

/// An owned frame buffer that returns itself to its pool on drop.
///
/// Derefs to `Vec<u8>` so parsing/rewriting code is agnostic to pooling.
/// A `PacketBuf` built from a plain `Vec<u8>` (or by `clone`) has no
/// pool and drops normally.
pub struct PacketBuf {
    data: Vec<u8>,
    pool: Option<Arc<PoolInner>>,
}

impl PacketBuf {
    /// Wraps an unpooled buffer.
    pub fn from_vec(data: Vec<u8>) -> Self {
        PacketBuf { data, pool: None }
    }

    /// Whether this buffer will return to a pool on drop.
    pub fn is_pooled(&self) -> bool {
        self.pool.is_some()
    }

    /// Detaches the bytes, consuming the handle without recycling.
    pub fn into_vec(mut self) -> Vec<u8> {
        if let Some(pool) = self.pool.take() {
            pool.detach();
        }
        std::mem::take(&mut self.data)
    }

    /// The frame bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PacketBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.recycle(std::mem::take(&mut self.data));
        }
    }
}

impl Deref for PacketBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.data
    }
}

impl DerefMut for PacketBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }
}

impl Clone for PacketBuf {
    /// Clones detach from the pool: the copy is a plain heap buffer.
    fn clone(&self) -> Self {
        PacketBuf::from_vec(self.data.clone())
    }
}

impl fmt::Debug for PacketBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Forward to the byte vector so `{:x?}` renders frames the same
        // way they rendered when effects carried plain `Vec<u8>`s.
        fmt::Debug::fmt(&self.data, f)
    }
}

impl PartialEq for PacketBuf {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for PacketBuf {}

impl PartialEq<Vec<u8>> for PacketBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data == other
    }
}

impl PartialEq<[u8]> for PacketBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}

impl From<Vec<u8>> for PacketBuf {
    fn from(data: Vec<u8>) -> Self {
        PacketBuf::from_vec(data)
    }
}

impl From<PacketBuf> for Vec<u8> {
    fn from(buf: PacketBuf) -> Vec<u8> {
        buf.into_vec()
    }
}

impl AsRef<[u8]> for PacketBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn acquire_recycle_round_trip() {
        let pool = BufferPool::new();
        let mut a = pool.acquire();
        a.extend_from_slice(b"hello");
        assert!(a.is_pooled());
        assert_eq!(pool.stats().allocated, 1);
        assert_eq!(pool.stats().outstanding, 1);
        drop(a);
        let s = pool.stats();
        assert_eq!((s.recycled, s.outstanding, s.free), (1, 0, 1));
        // The next acquire reuses the buffer, cleared.
        let b = pool.acquire();
        assert!(b.is_empty());
        let s = pool.stats();
        assert_eq!((s.allocated, s.reused), (1, 1));
    }

    #[test]
    fn steady_state_stops_allocating() {
        let pool = BufferPool::new();
        for _ in 0..4 {
            let _warm = [pool.acquire(), pool.acquire()];
        }
        let before = pool.stats().allocated;
        for _ in 0..100 {
            let a = pool.acquire_from(b"frame");
            assert_eq!(a.as_slice(), b"frame");
            drop(a);
        }
        assert_eq!(pool.stats().allocated, before, "no growth after warm-up");
    }

    #[test]
    fn into_vec_detaches_without_recycling() {
        let pool = BufferPool::new();
        let a = pool.acquire_from(b"xyz");
        let v = a.into_vec();
        assert_eq!(v, b"xyz");
        let s = pool.stats();
        assert_eq!(s.recycled, 0);
        assert_eq!(s.outstanding, 0, "detached buffers leave the pool");
    }

    #[test]
    fn clone_is_unpooled_and_equal() {
        let pool = BufferPool::new();
        let a = pool.acquire_from(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(!b.is_pooled());
        assert_eq!(b, vec![1u8, 2, 3]);
    }

    #[test]
    fn observer_sees_occupancy() {
        let pool = BufferPool::new();
        let peak = Arc::new(AtomicU64::new(0));
        let p = Arc::clone(&peak);
        pool.set_occupancy_observer(Arc::new(move |s: &PoolStats| {
            p.fetch_max(s.outstanding, Ordering::Relaxed);
        }));
        let a = pool.acquire();
        let b = pool.acquire();
        drop(a);
        drop(b);
        assert_eq!(peak.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn sharded_pool_isolates_free_lists() {
        let sharded = ShardedPool::new(4);
        assert_eq!(sharded.shards(), 4);
        // Warm shard 2 only.
        for _ in 0..3 {
            let _b = sharded.acquire_from(2, b"frame");
        }
        let per = sharded.per_shard_stats();
        assert_eq!(per[2].allocated, 1, "shard 2 reuses its own buffer");
        assert_eq!(per[0].allocated + per[1].allocated + per[3].allocated, 0);
        // A different shard cannot see shard 2's free list.
        let _other = sharded.acquire_from(1, b"x");
        assert_eq!(sharded.per_shard_stats()[1].allocated, 1);
        let agg = sharded.aggregate_stats();
        assert_eq!(agg.allocated, 2);
        assert_eq!(agg.recycled, 3);
        // Modulo indexing accepts raw hashes; clamping keeps ≥1 shard.
        assert_eq!(sharded.pool(6).stats().allocated, 1); // 6 % 4 == 2
        assert_eq!(ShardedPool::new(0).shards(), 1);
    }

    #[test]
    fn unpooled_from_vec() {
        let buf = PacketBuf::from(vec![9u8; 4]);
        assert!(!buf.is_pooled());
        assert_eq!(buf.len(), 4);
        let back: Vec<u8> = buf.into();
        assert_eq!(back, vec![9u8; 4]);
    }
}
