//! ARP (IPv4 over Ethernet) packets.
//!
//! ARP is a canonical slow-path protocol in the LinuxFP split: the fast
//! path never answers ARP; it punts such frames to the kernel, which
//! maintains the neighbor table that the fast path then reads via helpers.

use crate::eth::MacAddr;
use crate::ParsePacketError;
use std::net::Ipv4Addr;

/// Length of an Ethernet/IPv4 ARP body.
pub const ARP_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has request (1).
    Request,
    /// Is-at reply (2).
    Reply,
}

impl ArpOp {
    /// The wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }
}

/// A parsed Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Request or reply.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Parses an ARP body (starting after the Ethernet header).
    ///
    /// # Errors
    ///
    /// Returns an error for truncated bodies or non-Ethernet/IPv4 ARP.
    pub fn parse(data: &[u8]) -> Result<Self, ParsePacketError> {
        if data.len() < ARP_LEN {
            return Err(ParsePacketError::Truncated {
                layer: "arp",
                needed: ARP_LEN,
                have: data.len(),
            });
        }
        let htype = u16::from_be_bytes([data[0], data[1]]);
        let ptype = u16::from_be_bytes([data[2], data[3]]);
        if htype != 1 || ptype != 0x0800 || data[4] != 6 || data[5] != 4 {
            return Err(ParsePacketError::Malformed {
                layer: "arp",
                what: "not Ethernet/IPv4 ARP",
            });
        }
        let op = match u16::from_be_bytes([data[6], data[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => {
                return Err(ParsePacketError::Malformed {
                    layer: "arp",
                    what: "unknown operation",
                })
            }
        };
        let mac = |off: usize| {
            MacAddr::new([
                data[off],
                data[off + 1],
                data[off + 2],
                data[off + 3],
                data[off + 4],
                data[off + 5],
            ])
        };
        let ip = |off: usize| Ipv4Addr::new(data[off], data[off + 1], data[off + 2], data[off + 3]);
        Ok(ArpPacket {
            op,
            sender_mac: mac(8),
            sender_ip: ip(14),
            target_mac: mac(18),
            target_ip: ip(24),
        })
    }

    /// Serializes the ARP body (28 bytes, after the Ethernet header).
    pub fn to_bytes(&self) -> [u8; ARP_LEN] {
        let mut b = [0u8; ARP_LEN];
        b[0..2].copy_from_slice(&1u16.to_be_bytes());
        b[2..4].copy_from_slice(&0x0800u16.to_be_bytes());
        b[4] = 6;
        b[5] = 4;
        b[6..8].copy_from_slice(&self.op.to_u16().to_be_bytes());
        b[8..14].copy_from_slice(&self.sender_mac.octets());
        b[14..18].copy_from_slice(&self.sender_ip.octets());
        b[18..24].copy_from_slice(&self.target_mac.octets());
        b[24..28].copy_from_slice(&self.target_ip.octets());
        b
    }

    /// Builds a who-has request body.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Builds the reply to this request from the owner of `target_ip`.
    pub fn reply_to(&self, responder_mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: responder_mac,
            sender_ip: self.target_ip,
            target_mac: self.sender_mac,
            target_ip: self.sender_ip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let req = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let bytes = req.to_bytes();
        let parsed = ArpPacket::parse(&bytes).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn reply_swaps_roles() {
        let req = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let rep = req.reply_to(MacAddr::from_index(2));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(rep.sender_mac, MacAddr::from_index(2));
        assert_eq!(rep.target_ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(rep.target_mac, MacAddr::from_index(1));
    }

    #[test]
    fn rejects_truncated_and_malformed() {
        assert!(ArpPacket::parse(&[0u8; 10]).is_err());
        let mut bytes = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
        )
        .to_bytes();
        bytes[0] = 9; // bad htype
        assert!(matches!(
            ArpPacket::parse(&bytes),
            Err(ParsePacketError::Malformed { .. })
        ));
        let mut bytes2 = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
        )
        .to_bytes();
        bytes2[7] = 9; // bad op
        assert!(ArpPacket::parse(&bytes2).is_err());
    }
}
