//! Ethernet II framing, MAC addresses and 802.1Q VLAN tags.

use crate::ParsePacketError;
use std::fmt;
use std::str::FromStr;

/// Length of an untagged Ethernet header.
pub const ETH_HLEN: usize = 14;
/// Length of one 802.1Q tag.
pub const VLAN_HLEN: usize = 4;

/// A 48-bit IEEE 802 MAC address.
///
/// # Example
///
/// ```
/// use linuxfp_packet::MacAddr;
///
/// let mac: MacAddr = "02:00:00:00:00:2a".parse().unwrap();
/// assert_eq!(mac.octets()[5], 0x2a);
/// assert!(!mac.is_broadcast());
/// assert!(MacAddr::BROADCAST.is_multicast());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address (unset).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates a MAC address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// A deterministic locally administered unicast address derived from an
    /// integer — handy for generating topologies in tests and workloads.
    pub fn from_index(index: u64) -> Self {
        let b = index.to_be_bytes();
        // 0x02 prefix: locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// The raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }

    /// Whether the group (multicast) bit is set; broadcast is multicast.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Whether this is a unicast address.
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error returned when parsing a MAC address from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError(String);

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax: {:?}", self.0)
    }
}
impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in octets.iter_mut() {
            let part = parts.next().ok_or_else(|| ParseMacError(s.to_string()))?;
            *octet = u8::from_str_radix(part, 16).map_err(|_| ParseMacError(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError(s.to_string()));
        }
        Ok(MacAddr(octets))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

/// EtherType values the stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// 802.1Q VLAN tag (0x8100).
    Vlan,
    /// IPv6 (0x86DD) — recognized but handled only by the slow path.
    Ipv6,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl EtherType {
    /// The wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Vlan => 0x8100,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Other(v) => v,
        }
    }
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::Vlan,
            0x86DD => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

/// A parsed 802.1Q tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlanTag {
    /// VLAN identifier (12 bits).
    pub vid: u16,
    /// Priority code point (3 bits).
    pub pcp: u8,
}

/// A parsed Ethernet header (plus optional single 802.1Q tag).
///
/// Parsing is non-destructive: the struct records the `payload_offset` where
/// the next layer begins in the original buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType of the payload (after any VLAN tag).
    pub ethertype: EtherType,
    /// VLAN tag, if the frame is 802.1Q tagged.
    pub vlan: Option<VlanTag>,
    /// Offset of the L3 payload within the frame.
    pub payload_offset: usize,
}

impl EthernetFrame {
    /// Parses the Ethernet header (and at most one VLAN tag) from `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePacketError::Truncated`] if the buffer is too short.
    pub fn parse(data: &[u8]) -> Result<Self, ParsePacketError> {
        if data.len() < ETH_HLEN {
            return Err(ParsePacketError::Truncated {
                layer: "ethernet",
                needed: ETH_HLEN,
                have: data.len(),
            });
        }
        let dst = MacAddr([data[0], data[1], data[2], data[3], data[4], data[5]]);
        let src = MacAddr([data[6], data[7], data[8], data[9], data[10], data[11]]);
        let raw_type = u16::from_be_bytes([data[12], data[13]]);
        let mut ethertype = EtherType::from(raw_type);
        let mut vlan = None;
        let mut payload_offset = ETH_HLEN;
        if ethertype == EtherType::Vlan {
            if data.len() < ETH_HLEN + VLAN_HLEN {
                return Err(ParsePacketError::Truncated {
                    layer: "vlan",
                    needed: ETH_HLEN + VLAN_HLEN,
                    have: data.len(),
                });
            }
            let tci = u16::from_be_bytes([data[14], data[15]]);
            vlan = Some(VlanTag {
                vid: tci & 0x0FFF,
                pcp: (tci >> 13) as u8,
            });
            ethertype = EtherType::from(u16::from_be_bytes([data[16], data[17]]));
            payload_offset = ETH_HLEN + VLAN_HLEN;
        }
        Ok(EthernetFrame {
            dst,
            src,
            ethertype,
            vlan,
            payload_offset,
        })
    }

    /// Writes an untagged Ethernet header into the first 14 bytes of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`ETH_HLEN`].
    pub fn write(buf: &mut [u8], dst: MacAddr, src: MacAddr, ethertype: EtherType) {
        assert!(
            buf.len() >= ETH_HLEN,
            "buffer too small for ethernet header"
        );
        buf[0..6].copy_from_slice(&dst.octets());
        buf[6..12].copy_from_slice(&src.octets());
        buf[12..14].copy_from_slice(&ethertype.to_u16().to_be_bytes());
    }

    /// Rewrites the source and destination MACs in place — the L2 rewrite a
    /// forwarding fast path performs after a FIB lookup.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`ETH_HLEN`].
    pub fn rewrite_macs(buf: &mut [u8], dst: MacAddr, src: MacAddr) {
        assert!(
            buf.len() >= ETH_HLEN,
            "buffer too small for ethernet header"
        );
        buf[0..6].copy_from_slice(&dst.octets());
        buf[6..12].copy_from_slice(&src.octets());
    }

    /// Inserts an 802.1Q tag after the MAC addresses, shifting the payload.
    pub fn push_vlan(frame: &mut Vec<u8>, tag: VlanTag) {
        let mut tagged = Vec::with_capacity(frame.len() + VLAN_HLEN);
        tagged.extend_from_slice(&frame[0..12]);
        tagged.extend_from_slice(&0x8100u16.to_be_bytes());
        let tci = (u16::from(tag.pcp) << 13) | (tag.vid & 0x0FFF);
        tagged.extend_from_slice(&tci.to_be_bytes());
        tagged.extend_from_slice(&frame[12..]);
        *frame = tagged;
    }

    /// Removes the 802.1Q tag if present; returns the removed tag.
    pub fn pop_vlan(frame: &mut Vec<u8>) -> Option<VlanTag> {
        let parsed = EthernetFrame::parse(frame).ok()?;
        let tag = parsed.vlan?;
        frame.drain(12..12 + VLAN_HLEN);
        Some(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let mut f = vec![0u8; 60];
        EthernetFrame::write(
            &mut f,
            MacAddr::from_index(2),
            MacAddr::from_index(1),
            EtherType::Ipv4,
        );
        f
    }

    #[test]
    fn parse_untagged() {
        let f = sample_frame();
        let eth = EthernetFrame::parse(&f).unwrap();
        assert_eq!(eth.dst, MacAddr::from_index(2));
        assert_eq!(eth.src, MacAddr::from_index(1));
        assert_eq!(eth.ethertype, EtherType::Ipv4);
        assert_eq!(eth.vlan, None);
        assert_eq!(eth.payload_offset, ETH_HLEN);
    }

    #[test]
    fn parse_truncated() {
        let err = EthernetFrame::parse(&[0u8; 5]).unwrap_err();
        assert!(matches!(
            err,
            ParsePacketError::Truncated {
                layer: "ethernet",
                ..
            }
        ));
    }

    #[test]
    fn vlan_push_parse_pop_round_trip() {
        let mut f = sample_frame();
        EthernetFrame::push_vlan(&mut f, VlanTag { vid: 42, pcp: 3 });
        let eth = EthernetFrame::parse(&f).unwrap();
        assert_eq!(eth.vlan, Some(VlanTag { vid: 42, pcp: 3 }));
        assert_eq!(eth.ethertype, EtherType::Ipv4);
        assert_eq!(eth.payload_offset, ETH_HLEN + VLAN_HLEN);
        let tag = EthernetFrame::pop_vlan(&mut f).unwrap();
        assert_eq!(tag.vid, 42);
        let eth = EthernetFrame::parse(&f).unwrap();
        assert_eq!(eth.vlan, None);
        assert_eq!(f, sample_frame());
    }

    #[test]
    fn pop_vlan_on_untagged_is_none() {
        let mut f = sample_frame();
        assert_eq!(EthernetFrame::pop_vlan(&mut f), None);
    }

    #[test]
    fn truncated_vlan_tag() {
        let mut f = sample_frame()[..14].to_vec();
        f[12..14].copy_from_slice(&0x8100u16.to_be_bytes());
        let err = EthernetFrame::parse(&f).unwrap_err();
        assert!(matches!(
            err,
            ParsePacketError::Truncated { layer: "vlan", .. }
        ));
    }

    #[test]
    fn rewrite_macs_in_place() {
        let mut f = sample_frame();
        EthernetFrame::rewrite_macs(&mut f, MacAddr::from_index(9), MacAddr::from_index(8));
        let eth = EthernetFrame::parse(&f).unwrap();
        assert_eq!(eth.dst, MacAddr::from_index(9));
        assert_eq!(eth.src, MacAddr::from_index(8));
        assert_eq!(eth.ethertype, EtherType::Ipv4); // type untouched
    }

    #[test]
    fn mac_parsing_and_display() {
        let mac: MacAddr = "aa:bb:cc:dd:ee:ff".parse().unwrap();
        assert_eq!(mac.to_string(), "aa:bb:cc:dd:ee:ff");
        assert!("aa:bb:cc".parse::<MacAddr>().is_err());
        assert!("aa:bb:cc:dd:ee:ff:00".parse::<MacAddr>().is_err());
        assert!("zz:bb:cc:dd:ee:ff".parse::<MacAddr>().is_err());
    }

    #[test]
    fn mac_classification() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::new([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(MacAddr::from_index(5).is_unicast());
        assert_ne!(MacAddr::from_index(5), MacAddr::from_index(6));
    }

    #[test]
    fn ethertype_round_trip() {
        for ty in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Vlan,
            EtherType::Ipv6,
            EtherType::Other(0x1234),
        ] {
            assert_eq!(EtherType::from(ty.to_u16()), ty);
        }
    }
}
