//! VXLAN (RFC 7348) header, used by the Flannel-style overlay in the
//! Kubernetes experiments: inter-node pod traffic is encapsulated in
//! UDP/VXLAN by the sending node and decapsulated by the receiving node.

use crate::ParsePacketError;

/// VXLAN header length.
pub const VXLAN_HLEN: usize = 8;

/// The standard VXLAN UDP destination port.
pub const VXLAN_PORT: u16 = 4789;

/// A parsed VXLAN header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VxlanHeader {
    /// VXLAN network identifier (24 bits).
    pub vni: u32,
}

impl VxlanHeader {
    /// Parses a VXLAN header from the start of `data`.
    ///
    /// # Errors
    ///
    /// Returns an error for truncated buffers or a clear I (valid-VNI) flag.
    pub fn parse(data: &[u8]) -> Result<Self, ParsePacketError> {
        if data.len() < VXLAN_HLEN {
            return Err(ParsePacketError::Truncated {
                layer: "vxlan",
                needed: VXLAN_HLEN,
                have: data.len(),
            });
        }
        if data[0] & 0x08 == 0 {
            return Err(ParsePacketError::Malformed {
                layer: "vxlan",
                what: "I flag not set",
            });
        }
        let vni = u32::from_be_bytes([0, data[4], data[5], data[6]]);
        Ok(VxlanHeader { vni })
    }

    /// Serializes the header.
    ///
    /// # Panics
    ///
    /// Panics if the VNI exceeds 24 bits.
    pub fn to_bytes(&self) -> [u8; VXLAN_HLEN] {
        assert!(self.vni < (1 << 24), "VNI {:#x} exceeds 24 bits", self.vni);
        let vni = self.vni.to_be_bytes();
        [0x08, 0, 0, 0, vni[1], vni[2], vni[3], 0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = VxlanHeader { vni: 0xABCDE };
        let parsed = VxlanHeader::parse(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn rejects_missing_flag_and_truncation() {
        assert!(VxlanHeader::parse(&[0u8; 8]).is_err());
        assert!(VxlanHeader::parse(&[0x08, 0, 0]).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds 24 bits")]
    fn oversized_vni_panics() {
        VxlanHeader { vni: 1 << 24 }.to_bytes();
    }
}
