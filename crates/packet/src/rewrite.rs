//! In-place IPv4/L4 field rewriting with RFC 1624 incremental checksum
//! updates — the one audited implementation shared by the slow path's
//! NAT/ipvs translation and mirrored instruction-for-instruction by the
//! synthesized eBPF rewrite code.
//!
//! Address and port changes patch the IPv4 header checksum (and the TCP
//! checksum, which covers the pseudo-header) by word deltas instead of
//! re-summing. UDP checksums are *cleared* on any change: a zero UDP
//! checksum is legal over IPv4 (RFC 768), and this is exactly what the
//! fast path emits, keeping both paths byte-identical.

use crate::checksum::{fold, incremental_update_u16};
use std::net::Ipv4Addr;

/// One replayable packet edit, recorded by diffing a frame before and
/// after a fast-path run ([`derive_ops`]) and applied verbatim to later
/// packets of the same flow ([`apply_ops`]).
///
/// `Set` stores absolute bytes (correct whenever the covered field is
/// part of the flow key, i.e. identical across packets of the flow);
/// `CsumAdd` stores an RFC 1624 one's-complement delta, which is the
/// *same* for every packet of a flow even though the checksums
/// themselves differ packet to packet (the IPv4 id field varies, but the
/// field rewrites it absorbs are constant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteOp {
    /// Overwrite `frame[off..off + bytes.len()]` with `bytes`.
    Set {
        /// Absolute frame offset.
        off: usize,
        /// Replacement bytes.
        bytes: Vec<u8>,
    },
    /// Incrementally adjust the big-endian checksum word at `off` by a
    /// constant one's-complement delta.
    CsumAdd {
        /// Absolute frame offset of the checksum word.
        off: usize,
        /// One's-complement delta: `new = !fold(!old + delta)`.
        delta: u16,
    },
}

/// The one's-complement delta that turns checksum `old` into `new`
/// under [`RewriteOp::CsumAdd`].
fn csum_delta(old: u16, new: u16) -> u16 {
    // new = !fold(!old + delta)  =>  delta = fold(!new - !old) in
    // one's-complement arithmetic (subtraction = addition of complement).
    fold(u32::from(!new) + u32::from(old))
}

/// Applies `ops` to `frame` in place. Ops whose range falls outside the
/// frame are skipped (callers only replay ops on same-length frames of
/// the recorded flow, so this is purely defensive).
pub fn apply_ops(frame: &mut [u8], ops: &[RewriteOp]) {
    for op in ops {
        match op {
            RewriteOp::Set { off, bytes } => {
                if frame.len() >= off + bytes.len() {
                    frame[*off..off + bytes.len()].copy_from_slice(bytes);
                }
            }
            RewriteOp::CsumAdd { off, delta } => {
                if frame.len() >= off + 2 {
                    let old = word(frame, *off);
                    let new = !fold(u32::from(!old) + u32::from(*delta));
                    frame[*off..off + 2].copy_from_slice(&new.to_be_bytes());
                }
            }
        }
    }
}

/// Derives the replayable op list that transforms `before` into `after`,
/// where both are the same IPv4 frame (L3 at `l3`) observed before and
/// after a fast-path program ran.
///
/// Only edits a synthesized pipeline can legitimately make are accepted:
/// Ethernet MAC rewrites, TTL decrement, source/destination address and
/// port NAT, and the corresponding IPv4/TCP checksum fixups (recorded as
/// deltas) or UDP checksum clear (recorded absolutely — the fast path
/// clears it to zero on any change, per RFC 768). A difference anywhere
/// else, or a length change, means the transformation is not expressible
/// as a per-flow replay and `None` is returned.
pub fn derive_ops(before: &[u8], after: &[u8], l3: usize) -> Option<Vec<RewriteOp>> {
    if before.len() != after.len() || before.len() < l3 + 20 {
        return None;
    }
    let ihl = usize::from(before[l3] & 0x0f) * 4;
    if ihl < 20 {
        return None;
    }
    let l4 = l3 + ihl;
    let proto = before[l3 + 9];
    let is_tcp = proto == 6;
    let is_udp = proto == 17;

    // (start, end, kind) allowed regions; kind: 0 = Set, 1 = CsumAdd.
    let mut regions: Vec<(usize, usize, u8)> = vec![
        (0, 6, 0),             // eth dst
        (6, 12, 0),            // eth src
        (l3 + 8, l3 + 9, 0),   // TTL
        (l3 + 10, l3 + 12, 1), // IPv4 header checksum
        (l3 + 12, l3 + 16, 0), // src addr
        (l3 + 16, l3 + 20, 0), // dst addr
    ];
    if (is_tcp || is_udp) && before.len() >= l4 + 8 {
        regions.push((l4, l4 + 2, 0)); // sport
        regions.push((l4 + 2, l4 + 4, 0)); // dport
        if is_udp {
            regions.push((l4 + 6, l4 + 8, 0)); // UDP checksum (cleared)
        }
    }
    if is_tcp && before.len() >= l4 + 18 {
        regions.push((l4 + 16, l4 + 18, 1)); // TCP checksum
    }

    let mut ops = Vec::new();
    let mut covered = vec![false; before.len()];
    let mut nat_rewrite = false;
    for &(start, end, kind) in &regions {
        for c in &mut covered[start..end] {
            *c = true;
        }
        if before[start..end] == after[start..end] {
            continue;
        }
        if start >= l3 + 12 {
            // An address or port changed (NAT/ipvs rewrite).
            nat_rewrite = true;
        }
        match kind {
            0 => ops.push(RewriteOp::Set {
                off: start,
                bytes: after[start..end].to_vec(),
            }),
            _ => ops.push(RewriteOp::CsumAdd {
                off: start,
                delta: csum_delta(word(before, start), word(after, start)),
            }),
        }
    }
    // Any difference outside the allowed regions is uncacheable.
    for (i, c) in covered.iter().enumerate() {
        if !c && before[i] != after[i] {
            return None;
        }
    }
    // The fast path clears the UDP checksum on any address/port change.
    // If the recorded packet's checksum was already zero the diff shows
    // nothing, but later packets of the flow may carry nonzero checksums
    // (payload varies), so the clear must be recorded unconditionally.
    if is_udp && nat_rewrite && before.len() >= l4 + 8 {
        let clear = RewriteOp::Set {
            off: l4 + 6,
            bytes: vec![0, 0],
        };
        if !ops.contains(&clear) {
            ops.retain(|op| !matches!(op, RewriteOp::Set { off, .. } if *off == l4 + 6));
            ops.push(clear);
        }
    }
    Some(ops)
}

/// Which IPv4/L4 fields to rewrite. `None` fields are left alone; a
/// `Some` equal to the current value is a no-op that still counts as a
/// change for the UDP checksum-clearing rule only if any field actually
/// differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FieldRewrite {
    /// New source address.
    pub src: Option<Ipv4Addr>,
    /// New destination address.
    pub dst: Option<Ipv4Addr>,
    /// New L4 source port.
    pub sport: Option<u16>,
    /// New L4 destination port.
    pub dport: Option<u16>,
}

/// Reads the big-endian word at `off`.
fn word(frame: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([frame[off], frame[off + 1]])
}

/// Replaces the big-endian word at `off`, returning `(old, new)` for
/// checksum deltas.
fn put_word(frame: &mut [u8], off: usize, new: u16) -> (u16, u16) {
    let old = word(frame, off);
    frame[off..off + 2].copy_from_slice(&new.to_be_bytes());
    (old, new)
}

/// Applies `rw` to the IPv4 packet starting at `frame[l3..]`, fixing
/// the IPv4 header checksum and the TCP checksum incrementally and
/// clearing the UDP checksum when anything changed. Ports are only
/// touched for TCP/UDP packets with a complete L4 header in the buffer
/// (unfragmented first fragments — the only thing either path rewrites).
/// Returns whether any byte of the packet changed.
pub fn rewrite_ipv4(frame: &mut [u8], l3: usize, rw: &FieldRewrite) -> bool {
    if frame.len() < l3 + 20 {
        return false;
    }
    let ihl = usize::from(frame[l3] & 0x0f) * 4;
    let l4 = l3 + ihl;
    let proto = frame[l3 + 9];
    let is_tcp = proto == 6;
    let is_udp = proto == 17;
    let has_ports = (is_tcp || is_udp) && frame.len() >= l4 + 8;

    // Collect the (offset-in-header, old, new) word deltas.
    let mut ip_deltas: Vec<(u16, u16)> = Vec::new();
    let mut l4_deltas: Vec<(u16, u16)> = Vec::new();
    for (addr, off) in [(rw.src, l3 + 12), (rw.dst, l3 + 16)] {
        if let Some(a) = addr {
            let o = a.octets();
            let d0 = put_word(frame, off, u16::from_be_bytes([o[0], o[1]]));
            let d1 = put_word(frame, off + 2, u16::from_be_bytes([o[2], o[3]]));
            ip_deltas.push(d0);
            ip_deltas.push(d1);
            // Addresses are in the TCP pseudo-header.
            l4_deltas.push(d0);
            l4_deltas.push(d1);
        }
    }
    if has_ports {
        for (port, off) in [(rw.sport, l4), (rw.dport, l4 + 2)] {
            if let Some(p) = port {
                l4_deltas.push(put_word(frame, off, p));
            }
        }
    }

    let changed = ip_deltas.iter().chain(&l4_deltas).any(|(o, n)| o != n);
    if !changed {
        return false;
    }

    let mut ip_csum = word(frame, l3 + 10);
    for (old, new) in &ip_deltas {
        ip_csum = incremental_update_u16(ip_csum, *old, *new);
    }
    frame[l3 + 10..l3 + 12].copy_from_slice(&ip_csum.to_be_bytes());

    if is_tcp && frame.len() >= l4 + 18 {
        let mut tcp_csum = word(frame, l4 + 16);
        for (old, new) in &l4_deltas {
            tcp_csum = incremental_update_u16(tcp_csum, *old, *new);
        }
        frame[l4 + 16..l4 + 18].copy_from_slice(&tcp_csum.to_be_bytes());
    } else if is_udp && has_ports {
        frame[l4 + 6] = 0;
        frame[l4 + 7] = 0;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::checksum::checksum;
    use crate::{EthernetFrame, Ipv4Header, MacAddr};
    use std::net::Ipv4Addr;

    fn udp_frame() -> (Vec<u8>, usize) {
        let frame = builder::udp_packet(
            MacAddr::new([2, 0, 0, 0, 0, 1]),
            MacAddr::new([2, 0, 0, 0, 0, 2]),
            Ipv4Addr::new(192, 168, 1, 10),
            Ipv4Addr::new(8, 8, 8, 8),
            40000,
            53,
            b"query",
        );
        (frame, crate::ETH_HLEN)
    }

    #[test]
    fn identity_rewrite_changes_nothing() {
        let (mut frame, l3) = udp_frame();
        let before = frame.clone();
        assert!(!rewrite_ipv4(&mut frame, l3, &FieldRewrite::default()));
        assert!(!rewrite_ipv4(
            &mut frame,
            l3,
            &FieldRewrite {
                src: Some(Ipv4Addr::new(192, 168, 1, 10)),
                sport: Some(40000),
                ..FieldRewrite::default()
            }
        ));
        assert_eq!(frame, before);
    }

    #[test]
    fn udp_rewrite_fixes_ip_checksum_and_clears_udp() {
        let (mut frame, l3) = udp_frame();
        assert!(rewrite_ipv4(
            &mut frame,
            l3,
            &FieldRewrite {
                src: Some(Ipv4Addr::new(198, 51, 100, 1)),
                sport: Some(32768),
                ..FieldRewrite::default()
            }
        ));
        let eth = EthernetFrame::parse(&frame).unwrap();
        let ip = Ipv4Header::parse(&frame[eth.payload_offset..]).unwrap();
        assert_eq!(ip.src, Ipv4Addr::new(198, 51, 100, 1));
        assert!(ip.verify_checksum(&frame[eth.payload_offset..]));
        let l4 = l3 + ip.header_len;
        assert_eq!(&frame[l4..l4 + 2], &32768u16.to_be_bytes());
        assert_eq!(&frame[l4 + 6..l4 + 8], &[0, 0]);
    }

    #[test]
    fn incremental_ip_checksum_matches_full_recompute() {
        let (mut frame, l3) = udp_frame();
        rewrite_ipv4(
            &mut frame,
            l3,
            &FieldRewrite {
                dst: Some(Ipv4Addr::new(10, 0, 2, 20)),
                dport: Some(8080),
                ..FieldRewrite::default()
            },
        );
        let mut scratch = frame[l3..l3 + 20].to_vec();
        scratch[10] = 0;
        scratch[11] = 0;
        let full = checksum(&scratch);
        assert_eq!(word(&frame, l3 + 10), full);
    }

    fn udp_frame_with(src: Ipv4Addr, sport: u16, payload: &[u8]) -> Vec<u8> {
        builder::udp_packet(
            MacAddr::new([2, 0, 0, 0, 0, 1]),
            MacAddr::new([2, 0, 0, 0, 0, 2]),
            src,
            Ipv4Addr::new(8, 8, 8, 8),
            sport,
            53,
            payload,
        )
    }

    #[test]
    fn derived_ops_replay_a_nat_rewrite_on_sibling_packets() {
        // Record a source-NAT rewrite on one packet...
        let (before, l3) = udp_frame();
        let mut after = before.clone();
        rewrite_ipv4(
            &mut after,
            l3,
            &FieldRewrite {
                src: Some(Ipv4Addr::new(198, 51, 100, 1)),
                sport: Some(32768),
                ..FieldRewrite::default()
            },
        );
        let ops = derive_ops(&before, &after, l3).expect("nat rewrite is replayable");

        // ...replaying on the recorded packet reproduces it exactly...
        let mut replay = before.clone();
        apply_ops(&mut replay, &ops);
        assert_eq!(replay, after);

        // ...and replaying on a *different* packet of the same flow (same
        // headers, different payload, hence different UDP checksum)
        // matches what the rewrite itself would have produced.
        let mut sibling = udp_frame_with(Ipv4Addr::new(192, 168, 1, 10), 40000, b"other");
        let mut expected = sibling.clone();
        rewrite_ipv4(
            &mut expected,
            l3,
            &FieldRewrite {
                src: Some(Ipv4Addr::new(198, 51, 100, 1)),
                sport: Some(32768),
                ..FieldRewrite::default()
            },
        );
        apply_ops(&mut sibling, &ops);
        assert_eq!(sibling, expected);
    }

    #[test]
    fn derived_csum_delta_is_flow_constant() {
        // A TTL decrement's IP-checksum delta must replay correctly on a
        // packet whose IPv4 id (and therefore checksum) differs.
        let (before, l3) = udp_frame();
        let mut after = before.clone();
        after[l3 + 8] -= 1; // TTL 64 -> 63
        let csum = word(&after, l3 + 10);
        let fixed = incremental_update_u16(csum, word(&before, l3 + 8), word(&after, l3 + 8));
        after[l3 + 10..l3 + 12].copy_from_slice(&fixed.to_be_bytes());
        let ops = derive_ops(&before, &after, l3).unwrap();

        // Sibling: same flow, different IPv4 id -> different base csum.
        let mut sibling = before.clone();
        sibling[l3 + 4..l3 + 6].copy_from_slice(&0x1234u16.to_be_bytes());
        let id_fixed =
            incremental_update_u16(word(&sibling, l3 + 10), word(&before, l3 + 4), 0x1234);
        sibling[l3 + 10..l3 + 12].copy_from_slice(&id_fixed.to_be_bytes());

        let mut expected = sibling.clone();
        expected[l3 + 8] -= 1;
        let ecs = incremental_update_u16(
            word(&sibling, l3 + 10),
            word(&sibling, l3 + 8),
            word(&expected, l3 + 8),
        );
        expected[l3 + 10..l3 + 12].copy_from_slice(&ecs.to_be_bytes());

        apply_ops(&mut sibling, &ops);
        assert_eq!(sibling, expected);
    }

    #[test]
    fn udp_checksum_clear_is_recorded_even_when_already_zero() {
        // The recorded packet happens to carry a zero UDP checksum, so
        // the before/after diff alone would not show the clear; the ops
        // must still zero the checksum of later packets.
        let (mut before, l3) = udp_frame();
        let l4 = l3 + 20;
        before[l4 + 6] = 0;
        before[l4 + 7] = 0;
        let mut after = before.clone();
        rewrite_ipv4(
            &mut after,
            l3,
            &FieldRewrite {
                sport: Some(32768),
                ..FieldRewrite::default()
            },
        );
        let ops = derive_ops(&before, &after, l3).unwrap();
        let mut sibling = udp_frame().0; // nonzero UDP checksum
        apply_ops(&mut sibling, &ops);
        assert_eq!(&sibling[l4 + 6..l4 + 8], &[0, 0]);
        assert_eq!(&sibling[l4..l4 + 2], &32768u16.to_be_bytes());
    }

    #[test]
    fn payload_changes_are_not_replayable() {
        let (before, l3) = udp_frame();
        let mut after = before.clone();
        let last = after.len() - 1;
        after[last] ^= 0xFF;
        assert_eq!(derive_ops(&before, &after, l3), None);
        // Length changes are likewise uncacheable.
        let mut longer = before.clone();
        longer.push(0);
        assert_eq!(derive_ops(&before, &longer, l3), None);
    }

    #[test]
    fn identity_diff_yields_empty_ops() {
        let (frame, l3) = udp_frame();
        assert_eq!(derive_ops(&frame, &frame, l3), Some(Vec::new()));
    }

    #[test]
    fn short_frames_are_left_alone() {
        let mut tiny = vec![0u8; 20];
        assert!(!rewrite_ipv4(
            &mut tiny,
            14,
            &FieldRewrite {
                src: Some(Ipv4Addr::new(1, 2, 3, 4)),
                ..FieldRewrite::default()
            }
        ));
        assert_eq!(tiny, vec![0u8; 20]);
    }
}
