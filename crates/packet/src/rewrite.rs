//! In-place IPv4/L4 field rewriting with RFC 1624 incremental checksum
//! updates — the one audited implementation shared by the slow path's
//! NAT/ipvs translation and mirrored instruction-for-instruction by the
//! synthesized eBPF rewrite code.
//!
//! Address and port changes patch the IPv4 header checksum (and the TCP
//! checksum, which covers the pseudo-header) by word deltas instead of
//! re-summing. UDP checksums are *cleared* on any change: a zero UDP
//! checksum is legal over IPv4 (RFC 768), and this is exactly what the
//! fast path emits, keeping both paths byte-identical.

use crate::checksum::incremental_update_u16;
use std::net::Ipv4Addr;

/// Which IPv4/L4 fields to rewrite. `None` fields are left alone; a
/// `Some` equal to the current value is a no-op that still counts as a
/// change for the UDP checksum-clearing rule only if any field actually
/// differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FieldRewrite {
    /// New source address.
    pub src: Option<Ipv4Addr>,
    /// New destination address.
    pub dst: Option<Ipv4Addr>,
    /// New L4 source port.
    pub sport: Option<u16>,
    /// New L4 destination port.
    pub dport: Option<u16>,
}

/// Reads the big-endian word at `off`.
fn word(frame: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([frame[off], frame[off + 1]])
}

/// Replaces the big-endian word at `off`, returning `(old, new)` for
/// checksum deltas.
fn put_word(frame: &mut [u8], off: usize, new: u16) -> (u16, u16) {
    let old = word(frame, off);
    frame[off..off + 2].copy_from_slice(&new.to_be_bytes());
    (old, new)
}

/// Applies `rw` to the IPv4 packet starting at `frame[l3..]`, fixing
/// the IPv4 header checksum and the TCP checksum incrementally and
/// clearing the UDP checksum when anything changed. Ports are only
/// touched for TCP/UDP packets with a complete L4 header in the buffer
/// (unfragmented first fragments — the only thing either path rewrites).
/// Returns whether any byte of the packet changed.
pub fn rewrite_ipv4(frame: &mut [u8], l3: usize, rw: &FieldRewrite) -> bool {
    if frame.len() < l3 + 20 {
        return false;
    }
    let ihl = usize::from(frame[l3] & 0x0f) * 4;
    let l4 = l3 + ihl;
    let proto = frame[l3 + 9];
    let is_tcp = proto == 6;
    let is_udp = proto == 17;
    let has_ports = (is_tcp || is_udp) && frame.len() >= l4 + 8;

    // Collect the (offset-in-header, old, new) word deltas.
    let mut ip_deltas: Vec<(u16, u16)> = Vec::new();
    let mut l4_deltas: Vec<(u16, u16)> = Vec::new();
    for (addr, off) in [(rw.src, l3 + 12), (rw.dst, l3 + 16)] {
        if let Some(a) = addr {
            let o = a.octets();
            let d0 = put_word(frame, off, u16::from_be_bytes([o[0], o[1]]));
            let d1 = put_word(frame, off + 2, u16::from_be_bytes([o[2], o[3]]));
            ip_deltas.push(d0);
            ip_deltas.push(d1);
            // Addresses are in the TCP pseudo-header.
            l4_deltas.push(d0);
            l4_deltas.push(d1);
        }
    }
    if has_ports {
        for (port, off) in [(rw.sport, l4), (rw.dport, l4 + 2)] {
            if let Some(p) = port {
                l4_deltas.push(put_word(frame, off, p));
            }
        }
    }

    let changed = ip_deltas.iter().chain(&l4_deltas).any(|(o, n)| o != n);
    if !changed {
        return false;
    }

    let mut ip_csum = word(frame, l3 + 10);
    for (old, new) in &ip_deltas {
        ip_csum = incremental_update_u16(ip_csum, *old, *new);
    }
    frame[l3 + 10..l3 + 12].copy_from_slice(&ip_csum.to_be_bytes());

    if is_tcp && frame.len() >= l4 + 18 {
        let mut tcp_csum = word(frame, l4 + 16);
        for (old, new) in &l4_deltas {
            tcp_csum = incremental_update_u16(tcp_csum, *old, *new);
        }
        frame[l4 + 16..l4 + 18].copy_from_slice(&tcp_csum.to_be_bytes());
    } else if is_udp && has_ports {
        frame[l4 + 6] = 0;
        frame[l4 + 7] = 0;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::checksum::checksum;
    use crate::{EthernetFrame, Ipv4Header, MacAddr};
    use std::net::Ipv4Addr;

    fn udp_frame() -> (Vec<u8>, usize) {
        let frame = builder::udp_packet(
            MacAddr::new([2, 0, 0, 0, 0, 1]),
            MacAddr::new([2, 0, 0, 0, 0, 2]),
            Ipv4Addr::new(192, 168, 1, 10),
            Ipv4Addr::new(8, 8, 8, 8),
            40000,
            53,
            b"query",
        );
        (frame, crate::ETH_HLEN)
    }

    #[test]
    fn identity_rewrite_changes_nothing() {
        let (mut frame, l3) = udp_frame();
        let before = frame.clone();
        assert!(!rewrite_ipv4(&mut frame, l3, &FieldRewrite::default()));
        assert!(!rewrite_ipv4(
            &mut frame,
            l3,
            &FieldRewrite {
                src: Some(Ipv4Addr::new(192, 168, 1, 10)),
                sport: Some(40000),
                ..FieldRewrite::default()
            }
        ));
        assert_eq!(frame, before);
    }

    #[test]
    fn udp_rewrite_fixes_ip_checksum_and_clears_udp() {
        let (mut frame, l3) = udp_frame();
        assert!(rewrite_ipv4(
            &mut frame,
            l3,
            &FieldRewrite {
                src: Some(Ipv4Addr::new(198, 51, 100, 1)),
                sport: Some(32768),
                ..FieldRewrite::default()
            }
        ));
        let eth = EthernetFrame::parse(&frame).unwrap();
        let ip = Ipv4Header::parse(&frame[eth.payload_offset..]).unwrap();
        assert_eq!(ip.src, Ipv4Addr::new(198, 51, 100, 1));
        assert!(ip.verify_checksum(&frame[eth.payload_offset..]));
        let l4 = l3 + ip.header_len;
        assert_eq!(&frame[l4..l4 + 2], &32768u16.to_be_bytes());
        assert_eq!(&frame[l4 + 6..l4 + 8], &[0, 0]);
    }

    #[test]
    fn incremental_ip_checksum_matches_full_recompute() {
        let (mut frame, l3) = udp_frame();
        rewrite_ipv4(
            &mut frame,
            l3,
            &FieldRewrite {
                dst: Some(Ipv4Addr::new(10, 0, 2, 20)),
                dport: Some(8080),
                ..FieldRewrite::default()
            },
        );
        let mut scratch = frame[l3..l3 + 20].to_vec();
        scratch[10] = 0;
        scratch[11] = 0;
        let full = checksum(&scratch);
        assert_eq!(word(&frame, l3 + 10), full);
    }

    #[test]
    fn short_frames_are_left_alone() {
        let mut tiny = vec![0u8; 20];
        assert!(!rewrite_ipv4(
            &mut tiny,
            14,
            &FieldRewrite {
                src: Some(Ipv4Addr::new(1, 2, 3, 4)),
                ..FieldRewrite::default()
            }
        ));
        assert_eq!(tiny, vec![0u8; 20]);
    }
}
