//! UDP header parsing and construction.

use crate::ParsePacketError;

/// UDP header length.
pub const UDP_HLEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload per the header field.
    pub len: u16,
    /// Checksum as stored (0 = not computed, legal for IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// Parses a UDP header from the start of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePacketError::Truncated`] for short buffers.
    pub fn parse(data: &[u8]) -> Result<Self, ParsePacketError> {
        if data.len() < UDP_HLEN {
            return Err(ParsePacketError::Truncated {
                layer: "udp",
                needed: UDP_HLEN,
                have: data.len(),
            });
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            len: u16::from_be_bytes([data[4], data[5]]),
            checksum: u16::from_be_bytes([data[6], data[7]]),
        })
    }

    /// Writes a UDP header (checksum 0 — legal for IPv4) into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`UDP_HLEN`].
    pub fn write(buf: &mut [u8], src_port: u16, dst_port: u16, len: u16) {
        assert!(buf.len() >= UDP_HLEN, "buffer too small for udp header");
        buf[0..2].copy_from_slice(&src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&len.to_be_bytes());
        buf[6..8].copy_from_slice(&[0, 0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = [0u8; 8];
        UdpHeader::write(&mut buf, 1234, 4789, 16);
        let h = UdpHeader::parse(&buf).unwrap();
        assert_eq!(h.src_port, 1234);
        assert_eq!(h.dst_port, 4789);
        assert_eq!(h.len, 16);
        assert_eq!(h.checksum, 0);
    }

    #[test]
    fn truncated() {
        assert!(matches!(
            UdpHeader::parse(&[0u8; 7]),
            Err(ParsePacketError::Truncated { layer: "udp", .. })
        ));
    }
}
