//! Packet parsing and construction for the LinuxFP reproduction.
//!
//! Both packet-processing environments of the paper — the Linux slow path
//! (`linuxfp-netstack`) and the eBPF fast path (`linuxfp-ebpf`) — operate on
//! the same raw frames. This crate provides:
//!
//! - typed, bounds-checked **views** over raw bytes ([`EthernetFrame`],
//!   [`Ipv4Header`], [`ArpPacket`], [`UdpHeader`], [`TcpHeader`],
//!   [`IcmpHeader`], [`VxlanHeader`]);
//! - in-place **mutation** (MAC rewrite, TTL decrement, and NAT-style
//!   address/port rewriting with incremental checksum updates — the
//!   operations a forwarding fast path performs, see [`rewrite`]);
//! - **builders** for synthesizing workload traffic;
//! - the RFC 1071 internet [`checksum`] with incremental updates.
//!
//! Frames live in pooled [`PacketBuf`] buffers (recycled through a
//! [`BufferPool`] free list so the steady-state datapath never allocates)
//! wrapped in [`Packet`] together with receive metadata, mirroring how an
//! `xdp_buff` carries little more than the buffer and the ingress
//! interface index. Bursts travel as a [`Batch`].
//!
//! # Example
//!
//! ```
//! use linuxfp_packet::{builder, EthernetFrame, Ipv4Header, MacAddr};
//! use std::net::Ipv4Addr;
//!
//! let frame = builder::udp_packet(
//!     MacAddr::new([2, 0, 0, 0, 0, 1]),
//!     MacAddr::new([2, 0, 0, 0, 0, 2]),
//!     Ipv4Addr::new(10, 0, 0, 1),
//!     Ipv4Addr::new(10, 0, 0, 2),
//!     1234,
//!     5678,
//!     b"hello",
//! );
//! let eth = EthernetFrame::parse(&frame).unwrap();
//! assert_eq!(eth.ethertype, linuxfp_packet::EtherType::Ipv4);
//! let ip = Ipv4Header::parse(&frame[eth.payload_offset..]).unwrap();
//! assert_eq!(ip.dst, Ipv4Addr::new(10, 0, 0, 2));
//! assert!(ip.verify_checksum(&frame[eth.payload_offset..]));
//! ```

pub mod arp;
pub mod batch;
pub mod builder;
pub mod checksum;
pub mod eth;
pub mod icmp;
pub mod ipv4;
pub mod pool;
pub mod rewrite;
pub mod tcp;
pub mod udp;
pub mod vxlan;

pub use arp::{ArpOp, ArpPacket};
pub use batch::Batch;
pub use eth::{EtherType, EthernetFrame, MacAddr, VlanTag, ETH_HLEN};
pub use icmp::{IcmpHeader, IcmpType};
pub use ipv4::{IpProto, Ipv4Header, IPV4_MIN_HLEN};
pub use pool::{BufferPool, PacketBuf, PoolStats, ShardedPool};
pub use rewrite::{rewrite_ipv4, FieldRewrite};
pub use tcp::TcpHeader;
pub use udp::UdpHeader;
pub use vxlan::VxlanHeader;

use std::fmt;

/// Errors produced when parsing packet bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsePacketError {
    /// The buffer is shorter than the header requires.
    Truncated {
        /// Which header could not be read.
        layer: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// A header field has an invalid value (e.g. IPv4 version != 4).
    Malformed {
        /// Which header was malformed.
        layer: &'static str,
        /// Human-readable description of the problem.
        what: &'static str,
    },
}

impl fmt::Display for ParsePacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePacketError::Truncated {
                layer,
                needed,
                have,
            } => {
                write!(
                    f,
                    "truncated {layer} header: need {needed} bytes, have {have}"
                )
            }
            ParsePacketError::Malformed { layer, what } => {
                write!(f, "malformed {layer} header: {what}")
            }
        }
    }
}

impl std::error::Error for ParsePacketError {}

/// A raw frame plus receive metadata — the unit both processing paths
/// operate on, analogous to an `xdp_buff` before any `sk_buff` exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Raw L2 frame bytes (without FCS), possibly pool-backed.
    pub data: PacketBuf,
    /// Interface index the packet arrived on (0 = locally generated).
    pub ingress_ifindex: u32,
    /// Receive queue index (RSS queue), as exposed to XDP programs.
    pub rx_queue: u32,
}

impl Packet {
    /// Wraps raw frame bytes received on interface `ingress_ifindex`.
    pub fn new(data: impl Into<PacketBuf>, ingress_ifindex: u32) -> Self {
        Packet {
            data: data.into(),
            ingress_ifindex,
            rx_queue: 0,
        }
    }

    /// A locally generated packet (no ingress interface).
    pub fn local(data: impl Into<PacketBuf>) -> Self {
        Packet::new(data, 0)
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display() {
        let e = ParsePacketError::Truncated {
            layer: "ipv4",
            needed: 20,
            have: 3,
        };
        assert_eq!(
            e.to_string(),
            "truncated ipv4 header: need 20 bytes, have 3"
        );
        let m = ParsePacketError::Malformed {
            layer: "ipv4",
            what: "version is not 4",
        };
        assert!(m.to_string().contains("version"));
    }

    #[test]
    fn packet_wrapping() {
        let p = Packet::new(vec![0u8; 64], 3);
        assert_eq!(p.len(), 64);
        assert_eq!(p.ingress_ifindex, 3);
        assert!(!p.is_empty());
        let l = Packet::local(vec![]);
        assert!(l.is_empty());
        assert_eq!(l.ingress_ifindex, 0);
    }
}
