//! RFC 1071 internet checksum, including incremental updates (RFC 1624).
//!
//! The forwarding fast path decrements the IPv4 TTL and must fix the header
//! checksum without re-summing the whole header — exactly what
//! [`incremental_update_u16`] provides.

/// Computes the one's-complement internet checksum over `data`.
///
/// The returned value is ready to be stored in a header checksum field
/// (i.e. it is already complemented).
///
/// # Example
///
/// ```
/// // A buffer whose checksum field (bytes 2..4) is zero:
/// let data = [0x45u8, 0x00, 0x00, 0x00];
/// let sum = linuxfp_packet::checksum::checksum(&data);
/// assert_eq!(sum, !0x4500u16);
/// ```
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data, 0))
}

/// Sums 16-bit big-endian words of `data` into a 32-bit accumulator,
/// starting from `initial`. Odd trailing bytes are padded with zero, per
/// RFC 1071.
pub fn sum_words(data: &[u8], initial: u32) -> u32 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds a 32-bit accumulator into 16 bits with end-around carry.
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Incrementally updates a checksum when one 16-bit word of the covered
/// data changes from `old` to `new` (RFC 1624, eqn. 3).
///
/// `current` is the checksum as stored in the header (complemented form);
/// the return value is likewise ready to store.
///
/// # Example
///
/// ```
/// use linuxfp_packet::checksum::{checksum, incremental_update_u16};
///
/// let mut data = [0x45u8, 0x00, 0x40, 0x00];
/// let before = checksum(&data);
/// // Change word at bytes 2..4 from 0x4000 to 0x3F00 (a TTL-like change):
/// data[2] = 0x3F;
/// let after_full = checksum(&data);
/// let after_inc = incremental_update_u16(before, 0x4000, 0x3F00);
/// assert_eq!(after_full, after_inc);
/// ```
pub fn incremental_update_u16(current: u16, old: u16, new: u16) -> u16 {
    // HC' = ~(~HC + ~m + m') per RFC 1624.
    let sum = u32::from(!current) + u32::from(!old) + u32::from(new);
    !fold(sum)
}

/// The IPv4 pseudo-header sum used by TCP/UDP checksums.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], proto: u8, l4_len: u16) -> u32 {
    let mut sum = 0u32;
    sum += u32::from(u16::from_be_bytes([src[0], src[1]]));
    sum += u32::from(u16::from_be_bytes([src[2], src[3]]));
    sum += u32::from(u16::from_be_bytes([dst[0], dst[1]]));
    sum += u32::from(u16::from_be_bytes([dst[2], dst[3]]));
    sum += u32::from(proto);
    sum += u32::from(l4_len);
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The worked example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = fold(sum_words(&data, 0));
        assert_eq!(sum, 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(sum_words(&[0xab], 0), 0xab00);
    }

    #[test]
    fn checksum_of_data_with_own_checksum_is_zero_sum() {
        // Classic property: summing data including a correct checksum
        // yields 0xffff before complement.
        let mut data = vec![0x45, 0x00, 0x01, 0x02, 0x03, 0x04];
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert_eq!(fold(sum_words(&data, 0)), 0xffff);
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let mut data = [
            0x45u8, 0x00, 0x00, 0x54, 0x12, 0x34, 0x40, 0x00, 0x40, 0x01, 0x00, 0x00, 10, 0, 0, 1,
            10, 0, 0, 2,
        ];
        let before = checksum(&data);
        // Decrement TTL (byte 8) as a forwarder would: word 8..10 changes.
        let old_word = u16::from_be_bytes([data[8], data[9]]);
        data[8] -= 1;
        let new_word = u16::from_be_bytes([data[8], data[9]]);
        let inc = incremental_update_u16(before, old_word, new_word);
        let full = checksum(&data);
        assert_eq!(inc, full);
    }

    #[test]
    fn incremental_is_involutive() {
        let c = 0xbeef;
        let up = incremental_update_u16(c, 0x1234, 0x5678);
        let back = incremental_update_u16(up, 0x5678, 0x1234);
        assert_eq!(back, c);
    }

    #[test]
    fn pseudo_header_components() {
        let s = pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], 17, 8);
        assert_eq!(s, 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 17 + 8);
    }
}
