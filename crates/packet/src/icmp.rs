//! ICMP (echo request/reply and error messages used by the slow path).

use crate::checksum::checksum;
use crate::ParsePacketError;

/// ICMP header length (type, code, checksum, rest-of-header).
pub const ICMP_HLEN: usize = 8;

/// ICMP message types the stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3), with code.
    DestUnreachable(u8),
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11) — generated when a forwarder sees TTL expire.
    TimeExceeded,
    /// Anything else.
    Other(u8, u8),
}

impl IcmpType {
    /// The `(type, code)` wire pair.
    pub fn to_wire(self) -> (u8, u8) {
        match self {
            IcmpType::EchoReply => (0, 0),
            IcmpType::DestUnreachable(code) => (3, code),
            IcmpType::EchoRequest => (8, 0),
            IcmpType::TimeExceeded => (11, 0),
            IcmpType::Other(t, c) => (t, c),
        }
    }

    /// Decodes a `(type, code)` pair.
    pub fn from_wire(ty: u8, code: u8) -> Self {
        match (ty, code) {
            (0, 0) => IcmpType::EchoReply,
            (3, c) => IcmpType::DestUnreachable(c),
            (8, 0) => IcmpType::EchoRequest,
            (11, 0) => IcmpType::TimeExceeded,
            (t, c) => IcmpType::Other(t, c),
        }
    }
}

/// A parsed ICMP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpHeader {
    /// Message type and code.
    pub icmp_type: IcmpType,
    /// Stored checksum.
    pub checksum: u16,
    /// Identifier (echo) or unused.
    pub id: u16,
    /// Sequence number (echo) or unused.
    pub seq: u16,
}

impl IcmpHeader {
    /// Parses an ICMP header from the start of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePacketError::Truncated`] for short buffers.
    pub fn parse(data: &[u8]) -> Result<Self, ParsePacketError> {
        if data.len() < ICMP_HLEN {
            return Err(ParsePacketError::Truncated {
                layer: "icmp",
                needed: ICMP_HLEN,
                have: data.len(),
            });
        }
        Ok(IcmpHeader {
            icmp_type: IcmpType::from_wire(data[0], data[1]),
            checksum: u16::from_be_bytes([data[2], data[3]]),
            id: u16::from_be_bytes([data[4], data[5]]),
            seq: u16::from_be_bytes([data[6], data[7]]),
        })
    }

    /// Builds an ICMP message (header + payload) with a valid checksum.
    pub fn build(icmp_type: IcmpType, id: u16, seq: u16, payload: &[u8]) -> Vec<u8> {
        let (ty, code) = icmp_type.to_wire();
        let mut msg = vec![0u8; ICMP_HLEN + payload.len()];
        msg[0] = ty;
        msg[1] = code;
        msg[4..6].copy_from_slice(&id.to_be_bytes());
        msg[6..8].copy_from_slice(&seq.to_be_bytes());
        msg[ICMP_HLEN..].copy_from_slice(payload);
        let c = checksum(&msg);
        msg[2..4].copy_from_slice(&c.to_be_bytes());
        msg
    }

    /// Verifies the checksum over an entire ICMP message.
    pub fn verify_checksum(data: &[u8]) -> bool {
        crate::checksum::fold(crate::checksum::sum_words(data, 0)) == 0xFFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip_with_checksum() {
        let msg = IcmpHeader::build(IcmpType::EchoRequest, 0x42, 7, b"payload");
        assert!(IcmpHeader::verify_checksum(&msg));
        let h = IcmpHeader::parse(&msg).unwrap();
        assert_eq!(h.icmp_type, IcmpType::EchoRequest);
        assert_eq!(h.id, 0x42);
        assert_eq!(h.seq, 7);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut msg = IcmpHeader::build(IcmpType::EchoReply, 1, 1, b"xy");
        msg[9] ^= 0xAA;
        assert!(!IcmpHeader::verify_checksum(&msg));
    }

    #[test]
    fn type_wire_round_trip() {
        for t in [
            IcmpType::EchoReply,
            IcmpType::EchoRequest,
            IcmpType::DestUnreachable(3),
            IcmpType::TimeExceeded,
            IcmpType::Other(42, 1),
        ] {
            let (ty, code) = t.to_wire();
            assert_eq!(IcmpType::from_wire(ty, code), t);
        }
    }

    #[test]
    fn truncated() {
        assert!(IcmpHeader::parse(&[0u8; 7]).is_err());
    }
}
