//! The Flannel-style CNI plugin: node network setup and pod attachment
//! through **standard kernel configuration only**.
//!
//! Nothing in this module knows LinuxFP exists — that is the point. It
//! performs the configuration a real Flannel (VXLAN backend) + kubelet +
//! kube-proxy stack performs: bridge, veth pairs, VXLAN overlay with
//! per-peer FDB/neighbor entries, routes, forwarding sysctls,
//! `bridge-nf-call-iptables`, conntrack, and a pile of service rules.

use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::netfilter::{ChainHook, IptRule};
use linuxfp_netstack::stack::{IfAddr, Kernel};
use linuxfp_packet::ipv4::Prefix;
use linuxfp_packet::MacAddr;
use std::net::Ipv4Addr;

/// The VXLAN network identifier Flannel uses by default.
pub const FLANNEL_VNI: u32 = 1;
/// Number of kube-proxy-style FORWARD rules installed per node (service
/// chains; none of them match plain pod-to-pod traffic, but every bridged
/// packet pays the traversal — the realistic Kubernetes datapath tax).
pub const KUBE_PROXY_RULES: u32 = 180;

/// A peer node's overlay coordinates, as distributed through the Flannel
/// subnet lease (in etcd / the Kubernetes API in the real system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerLease {
    /// The peer's underlay address.
    pub node_ip: Ipv4Addr,
    /// The peer's pod CIDR.
    pub pod_cidr: Prefix,
    /// The peer's `flannel.1` MAC (published in the lease annotations).
    pub flannel_mac: MacAddr,
}

/// Interfaces created by node setup.
#[derive(Debug, Clone, Copy)]
pub struct NodeNet {
    /// Underlay NIC.
    pub eth0: IfIndex,
    /// The pod bridge.
    pub cni0: IfIndex,
    /// The VXLAN overlay device.
    pub flannel: IfIndex,
}

/// Configures a node's networking exactly as Flannel + kubelet do:
/// underlay NIC, `flannel.1` VXLAN, `cni0` bridge with the node's pod
/// subnet gateway address, forwarding + br_netfilter sysctls, conntrack,
/// and kube-proxy's FORWARD chains.
///
/// # Panics
///
/// Panics on a non-fresh kernel (the CNI owns node configuration).
pub fn setup_node(k: &mut Kernel, node_ip: Ipv4Addr, pod_cidr: Prefix) -> NodeNet {
    let eth0 = k.add_physical("eth0").expect("fresh kernel");
    k.ip_addr_add(eth0, IfAddr::new(node_ip, 24))
        .expect("fresh kernel");
    k.ip_link_set_up(eth0).expect("device exists");

    let flannel = k
        .add_vxlan("flannel.1", FLANNEL_VNI, node_ip, 4789)
        .expect("fresh kernel");
    // Flannel assigns flannel.1 the subnet's .0/32 as its overlay address.
    k.ip_addr_add(flannel, IfAddr::new(pod_cidr.nth_host(0), 32))
        .expect("fresh kernel");
    k.ip_link_set_up(flannel).expect("device exists");

    let cni0 = k.add_bridge("cni0").expect("fresh kernel");
    // The bridge owns the pod subnet's gateway address (.1).
    let gw = pod_cidr.nth_host(1);
    k.ip_addr_add(cni0, IfAddr::new(gw, pod_cidr.len()))
        .expect("fresh kernel");
    k.ip_link_set_up(cni0).expect("device exists");

    k.sysctl_set("net.ipv4.ip_forward", 1)
        .expect("known sysctl");
    k.sysctl_set("net.bridge.bridge-nf-call-iptables", 1)
        .expect("known sysctl");
    k.conntrack_forward = true;

    // kube-proxy's service chains: rules that pod-to-pod traffic scans
    // past without matching (service VIPs live in 10.96.0.0/12).
    for i in 0..KUBE_PROXY_RULES {
        k.iptables_append(
            ChainHook::Forward,
            IptRule {
                dst: Some(Prefix::new(
                    Ipv4Addr::new(10, 96, (i / 8) as u8, ((i % 8) * 32) as u8),
                    28,
                )),
                target: linuxfp_netstack::netfilter::RuleTargetField(
                    linuxfp_netstack::netfilter::RuleTarget::Accept,
                ),
                ..IptRule::default()
            },
        );
    }

    NodeNet {
        eth0,
        cni0,
        flannel,
    }
}

/// Installs the overlay state for one peer node, as Flannel does when a
/// subnet lease appears: route to the peer's pod CIDR through
/// `flannel.1`, a permanent neighbor entry for the peer's overlay
/// gateway, and the VXLAN FDB entry pointing at the peer's VTEP.
pub fn add_peer(k: &mut Kernel, net: NodeNet, peer: &PeerLease) {
    let overlay_gw = peer.pod_cidr.nth_host(0);
    k.ip_route_add(peer.pod_cidr, Some(overlay_gw), Some(net.flannel))
        .expect("flannel device exists");
    let now = k.now();
    k.neigh
        .learn(overlay_gw, peer.flannel_mac, net.flannel, now);
    k.vxlan_fdb_add(net.flannel, peer.flannel_mac, peer.node_ip)
        .expect("vxlan device");
    k.vxlan_add_default_remote(net.flannel, peer.node_ip)
        .expect("vxlan device");
}

/// Attaches a pod: veth pair with the host end enslaved to `cni0`, the
/// pod end carrying the pod's address. Returns
/// `(host_ifindex, pod_ifindex, pod_ip, pod_mac)`.
pub fn add_pod(
    k: &mut Kernel,
    net: NodeNet,
    pod_cidr: Prefix,
    pod_index: u32,
) -> (IfIndex, IfIndex, Ipv4Addr, MacAddr) {
    let host_name = format!("veth{pod_index}h");
    let pod_name = format!("veth{pod_index}p");
    let (host_if, pod_if) = k
        .add_veth_pair(&host_name, &pod_name)
        .expect("unique names");
    k.brctl_addif(net.cni0, host_if).expect("cni0 exists");
    let pod_ip = pod_cidr.nth_host(10 + pod_index);
    // The pod's address lives in the pod's own network namespace, not in
    // the node kernel: the pod-side veth is an endpoint.
    k.set_endpoint(pod_if, true).expect("fresh veth");
    k.ip_link_set_up(host_if).expect("device exists");
    k.ip_link_set_up(pod_if).expect("device exists");
    let pod_mac = k.device(pod_if).expect("exists").mac;
    // kubelet's ARP warm-up: the node resolves the pod immediately (the
    // pod answers ARP as soon as it starts in the real system).
    let now = k.now();
    k.neigh.learn(pod_ip, pod_mac, net.cni0, now);
    (host_if, pod_if, pod_ip, pod_mac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_setup_installs_standard_config() {
        let mut k = Kernel::new(21);
        let net = setup_node(
            &mut k,
            Ipv4Addr::new(192, 168, 0, 1),
            "10.244.1.0/24".parse().unwrap(),
        );
        assert!(k.ip_forward_enabled());
        assert!(k.bridge_nf_enabled());
        assert!(k.conntrack_forward);
        assert_eq!(
            k.netfilter.rules(ChainHook::Forward).len(),
            KUBE_PROXY_RULES as usize
        );
        assert!(k
            .device(net.cni0)
            .unwrap()
            .has_addr(Ipv4Addr::new(10, 244, 1, 1)));
        assert_eq!(k.device(net.flannel).unwrap().kind.kind_name(), "vxlan");
        // cni0's connected route covers the pod subnet.
        let routes = k.dump_routes();
        assert!(routes
            .iter()
            .any(|r| r.prefix == "10.244.1.0/24".parse().unwrap() && r.dev == net.cni0));
    }

    #[test]
    fn peer_lease_installs_overlay_route() {
        let mut k = Kernel::new(22);
        let net = setup_node(
            &mut k,
            Ipv4Addr::new(192, 168, 0, 1),
            "10.244.1.0/24".parse().unwrap(),
        );
        let peer = PeerLease {
            node_ip: Ipv4Addr::new(192, 168, 0, 2),
            pod_cidr: "10.244.2.0/24".parse().unwrap(),
            flannel_mac: MacAddr::from_index(0x22),
        };
        add_peer(&mut k, net, &peer);
        let routes = k.dump_routes();
        assert!(routes
            .iter()
            .any(|r| r.prefix == peer.pod_cidr && r.dev == net.flannel));
        let now = k.now();
        assert_eq!(
            k.neigh
                .resolved_mac(Ipv4Addr::new(10, 244, 2, 0), now)
                .map(|(m, _)| m),
            Some(peer.flannel_mac)
        );
    }

    #[test]
    fn pod_attachment_wires_veth_into_bridge() {
        let mut k = Kernel::new(23);
        let cidr: Prefix = "10.244.1.0/24".parse().unwrap();
        let net = setup_node(&mut k, Ipv4Addr::new(192, 168, 0, 1), cidr);
        let (host_if, pod_if, pod_ip, pod_mac) = add_pod(&mut k, net, cidr, 0);
        assert_eq!(pod_ip, Ipv4Addr::new(10, 244, 1, 10));
        assert_eq!(k.device(host_if).unwrap().master, Some(net.cni0));
        assert!(k.device(pod_if).unwrap().endpoint);
        assert_eq!(k.device(pod_if).unwrap().mac, pod_mac);
        let now = k.now();
        assert!(k.neigh.resolved_mac(pod_ip, now).is_some());
    }
}
