//! The multi-node cluster: nodes, the underlay "switch" between them,
//! pod management, and pod-level send/receive plumbing.

use crate::flannel::{self, NodeNet, PeerLease};
use linuxfp_core::controller::{Controller, ControllerConfig};
use linuxfp_core::Capabilities;
use linuxfp_ebpf::hook::HookPoint;
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::stack::{Effect, Kernel};
use linuxfp_packet::ipv4::Prefix;
use linuxfp_packet::{builder, EthernetFrame, Ipv4Header, MacAddr};
use std::net::Ipv4Addr;

/// One pod's identity and attachment points.
#[derive(Debug, Clone, Copy)]
pub struct Pod {
    /// Pod address.
    pub ip: Ipv4Addr,
    /// Pod MAC (the pod-side veth's address).
    pub mac: MacAddr,
    /// Host-side veth (the `cni0` bridge port).
    pub host_if: IfIndex,
    /// Pod-side veth (inside the pod's netns).
    pub pod_if: IfIndex,
}

/// A node: its kernel, overlay coordinates, optional LinuxFP controller.
pub struct Node {
    /// Node name (`node1`, ...).
    pub name: String,
    /// The node's kernel.
    pub kernel: Kernel,
    /// Underlay address.
    pub node_ip: Ipv4Addr,
    /// This node's pod subnet.
    pub pod_cidr: Prefix,
    /// CNI-created interfaces.
    pub net: NodeNet,
    /// Pods scheduled here.
    pub pods: Vec<Pod>,
    controller: Option<Controller>,
}

impl Node {
    /// Polls this node's controller (if attached) after configuration
    /// changes; returns the reaction report when a resync happened.
    pub fn poll_controller(&mut self) -> Option<linuxfp_core::ReactionReport> {
        let Node {
            kernel, controller, ..
        } = self;
        controller
            .as_mut()
            .and_then(|c| c.poll(kernel).expect("redeploy succeeds"))
    }

    /// Whether a LinuxFP controller is attached.
    pub fn is_accelerated(&self) -> bool {
        self.controller.is_some()
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("node_ip", &self.node_ip)
            .field("pods", &self.pods.len())
            .field("accelerated", &self.controller.is_some())
            .finish()
    }
}

/// Identifies a pod in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodRef {
    /// Node index.
    pub node: usize,
    /// Pod index within the node.
    pub pod: usize,
}

/// Outcome of one pod-to-pod packet.
#[derive(Debug, Clone)]
pub struct DeliveryReport {
    /// Whether the payload reached the destination pod.
    pub delivered: bool,
    /// Total processing cost across all traversed nodes (ns).
    pub total_cost_ns: f64,
    /// Number of node kernels traversed.
    pub node_hops: u32,
    /// Whether any `sk_buff`-free (XDP) or TC fast-path redirect
    /// happened (diagnostic).
    pub fast_path_hits: u64,
}

/// The simulated cluster.
#[derive(Debug)]
pub struct Cluster {
    /// The nodes (index 0 is the "primary", as in the paper's 3-node
    /// cluster; pods schedule onto any node here).
    pub nodes: Vec<Node>,
    accelerated: bool,
}

impl Cluster {
    /// Builds an `n_nodes` cluster with Flannel networking; when
    /// `accelerated` is set, a LinuxFP controller (TC hook, per the
    /// paper's Kubernetes setup) attaches to every node.
    pub fn new(n_nodes: usize, accelerated: bool) -> Cluster {
        assert!(n_nodes >= 1, "cluster needs at least one node");
        // Build leases first so every node can learn all peers.
        let leases: Vec<PeerLease> = (0..n_nodes)
            .map(|i| PeerLease {
                node_ip: Ipv4Addr::new(192, 168, 0, (i + 1) as u8),
                pod_cidr: Prefix::new(Ipv4Addr::new(10, 244, (i + 1) as u8, 0), 24),
                // Filled after kernels exist.
                flannel_mac: MacAddr::ZERO,
            })
            .collect();

        let mut kernels: Vec<(Kernel, NodeNet)> = Vec::new();
        let mut real_leases = Vec::new();
        for (i, lease) in leases.iter().enumerate() {
            let mut k = Kernel::new(1000 + i as u64);
            let net = flannel::setup_node(&mut k, lease.node_ip, lease.pod_cidr);
            let flannel_mac = k.device(net.flannel).expect("exists").mac;
            real_leases.push(PeerLease {
                flannel_mac,
                ..*lease
            });
            kernels.push((k, net));
        }

        let mut nodes = Vec::new();
        for (i, (mut kernel, net)) in kernels.into_iter().enumerate() {
            for (j, peer) in real_leases.iter().enumerate() {
                if i != j {
                    flannel::add_peer(&mut kernel, net, peer);
                }
            }
            nodes.push(Node {
                name: format!("node{}", i + 1),
                kernel,
                node_ip: real_leases[i].node_ip,
                pod_cidr: real_leases[i].pod_cidr,
                net,
                pods: Vec::new(),
                controller: None,
            });
        }

        let mut cluster = Cluster { nodes, accelerated };
        // The underlay is a warm L2 segment: every node has resolved its
        // peers (continuous VXLAN keep-alives keep ARP fresh).
        cluster.warm_underlay();
        if accelerated {
            for node in &mut cluster.nodes {
                let cfg = ControllerConfig {
                    hook: HookPoint::Tc, // paper: "attached to the tc hook"
                    capabilities: Capabilities::full(),
                    ..ControllerConfig::default()
                };
                let (ctrl, _) = Controller::attach(&mut node.kernel, cfg).expect("initial deploy");
                node.controller = Some(ctrl);
            }
        }
        cluster
    }

    fn warm_underlay(&mut self) {
        let coords: Vec<(Ipv4Addr, MacAddr)> = self
            .nodes
            .iter()
            .map(|n| (n.node_ip, n.kernel.device(n.net.eth0).expect("exists").mac))
            .collect();
        for node in &mut self.nodes {
            let eth0 = node.net.eth0;
            let now = node.kernel.now();
            for (ip, mac) in &coords {
                if *ip != node.node_ip {
                    node.kernel.neigh.learn(*ip, *mac, eth0, now);
                }
            }
        }
    }

    /// Whether LinuxFP is attached.
    pub fn is_accelerated(&self) -> bool {
        self.accelerated
    }

    /// Schedules a new pod onto `node`; the controller (if any) reacts to
    /// the CNI's configuration changes, exactly as on a real node.
    pub fn add_pod(&mut self, node: usize) -> PodRef {
        let n = &mut self.nodes[node];
        let idx = n.pods.len() as u32;
        let (host_if, pod_if, ip, mac) = flannel::add_pod(&mut n.kernel, n.net, n.pod_cidr, idx);
        n.pods.push(Pod {
            ip,
            mac,
            host_if,
            pod_if,
        });
        n.poll_controller();
        PodRef {
            node,
            pod: n.pods.len() - 1,
        }
    }

    /// A pod's identity.
    pub fn pod(&self, r: PodRef) -> Pod {
        self.nodes[r.node].pods[r.pod]
    }

    /// Creates a ClusterIP-style UDP service balancing across `backends`
    /// (kube-proxy IPVS mode): the virtual service is installed on every
    /// node through the standard `ipvsadm` surface, so any pod can reach
    /// the VIP and the controller (if attached) accelerates pinned flows.
    pub fn add_service(&mut self, vip: Ipv4Addr, port: u16, backends: &[PodRef]) {
        let backend_addrs: Vec<Ipv4Addr> = backends.iter().map(|r| self.pod(*r).ip).collect();
        for node in &mut self.nodes {
            node.kernel.ipvsadm_add_service(
                vip,
                port,
                linuxfp_packet::ipv4::IpProto::Udp,
                linuxfp_netstack::ipvs::Scheduler::RoundRobin,
            );
            for addr in &backend_addrs {
                node.kernel.ipvsadm_add_backend(
                    vip,
                    port,
                    linuxfp_packet::ipv4::IpProto::Udp,
                    *addr,
                    port,
                );
            }
            node.poll_controller();
        }
    }

    /// Sends one UDP packet from `from` to a service VIP; returns the
    /// backend pod that received it, if delivered.
    pub fn pod_send_to_service(
        &mut self,
        from: PodRef,
        vip: Ipv4Addr,
        port: u16,
        sport: u16,
        payload: &[u8],
    ) -> Option<PodRef> {
        let src = self.pod(from);
        // The VIP is never on the pod's subnet: traffic goes through the
        // cni0 gateway.
        let gw_mac = self.nodes[from.node]
            .kernel
            .device(self.nodes[from.node].net.cni0)
            .expect("exists")
            .mac;
        let frame = builder::udp_packet(src.mac, gw_mac, src.ip, vip, sport, port, payload);
        let mut wire: Vec<linuxfp_packet::PacketBuf> = Vec::new();
        let mut receiver: Option<PodRef> = None;
        let mut check_effects = |effects: &[Effect], node_idx: usize, nodes: &[Node]| {
            let mut tx = Vec::new();
            for effect in effects {
                match effect {
                    Effect::Deliver { dev, frame } if frame.ends_with(payload) => {
                        if let Some(p) = nodes[node_idx].pods.iter().position(|p| p.pod_if == *dev)
                        {
                            receiver = Some(PodRef {
                                node: node_idx,
                                pod: p,
                            });
                        }
                    }
                    Effect::Transmit { frame, .. } => tx.push(frame.clone()),
                    _ => {}
                }
            }
            tx
        };
        let out = self.nodes[from.node]
            .kernel
            .transmit_frame(src.pod_if, frame);
        let effects = out.effects.clone();
        wire.extend(check_effects(&effects, from.node, &self.nodes));
        let mut hops = 0;
        while let Some(frame) = wire.pop() {
            hops += 1;
            if hops > 16 {
                break;
            }
            let Some(target) = self.node_for_underlay_frame(&frame) else {
                continue;
            };
            let eth0 = self.nodes[target].net.eth0;
            let out = self.nodes[target].kernel.receive(eth0, frame);
            let effects = out.effects.clone();
            wire.extend(check_effects(&effects, target, &self.nodes));
        }
        receiver
    }

    /// Sends one UDP packet from pod `from` to pod `to`, following every
    /// frame across the underlay until delivery (or a drop).
    pub fn pod_send(&mut self, from: PodRef, to: PodRef, payload: &[u8]) -> DeliveryReport {
        let src = self.pod(from);
        let dst = self.pod(to);
        let same_subnet = self.nodes[from.node].pod_cidr.contains(dst.ip);
        // The pod's own routing decision: same subnet -> direct L2 to the
        // peer pod; otherwise via the cni0 gateway.
        let dst_mac = if same_subnet {
            dst.mac
        } else {
            self.nodes[from.node]
                .kernel
                .device(self.nodes[from.node].net.cni0)
                .expect("exists")
                .mac
        };
        let frame = builder::udp_packet(src.mac, dst_mac, src.ip, dst.ip, 40000, 5201, payload);

        let mut report = DeliveryReport {
            delivered: false,
            total_cost_ns: 0.0,
            node_hops: 0,
            fast_path_hits: 0,
        };

        // Inject at the sending pod's veth; collect cross-node frames.
        let out = self.nodes[from.node]
            .kernel
            .transmit_frame(src.pod_if, frame);
        report.node_hops += 1;
        report.total_cost_ns += out.cost.total_ns();
        report.fast_path_hits +=
            out.cost.stage_count("helper_fdb_lookup") + out.cost.stage_count("helper_fib_lookup");
        let mut wire: Vec<linuxfp_packet::PacketBuf> = Vec::new();
        for effect in &out.effects {
            match effect {
                Effect::Deliver { dev, frame }
                    if *dev == dst.pod_if && from.node == to.node && frame.ends_with(payload) =>
                {
                    report.delivered = true;
                }
                Effect::Transmit { frame, .. } => wire.push(frame.clone()),
                _ => {}
            }
        }

        // Underlay hop: route frames to the node owning the destination
        // underlay MAC/IP.
        let mut hops = 0;
        while let Some(frame) = wire.pop() {
            hops += 1;
            if hops > 16 {
                break;
            }
            let Some(target) = self.node_for_underlay_frame(&frame) else {
                continue;
            };
            let eth0 = self.nodes[target].net.eth0;
            let out = self.nodes[target].kernel.receive(eth0, frame);
            report.node_hops += 1;
            report.total_cost_ns += out.cost.total_ns();
            report.fast_path_hits += out.cost.stage_count("helper_fdb_lookup")
                + out.cost.stage_count("helper_fib_lookup");
            for effect in &out.effects {
                match effect {
                    Effect::Deliver { dev, frame }
                        if *dev == dst.pod_if && target == to.node && frame.ends_with(payload) =>
                    {
                        report.delivered = true;
                    }
                    Effect::Transmit { frame, .. } => wire.push(frame.clone()),
                    _ => {}
                }
            }
        }
        report
    }

    fn node_for_underlay_frame(&self, frame: &[u8]) -> Option<usize> {
        let eth = EthernetFrame::parse(frame).ok()?;
        let ip = Ipv4Header::parse(&frame[eth.payload_offset..]).ok()?;
        self.nodes.iter().position(|n| n.node_ip == ip.dst)
    }

    /// Warm both directions of a pod pair (ARP, FDB learning, conntrack)
    /// so that subsequent measurements see the steady state, as the
    /// paper's discarded first 10 seconds do.
    pub fn warm_pair(&mut self, a: PodRef, b: PodRef) {
        for _ in 0..4 {
            let r1 = self.pod_send(a, b, b"warmup");
            let r2 = self.pod_send(b, a, b"warmup");
            assert!(r1.delivered && r2.delivered, "warm-up path failed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_node_pod_to_pod_delivers() {
        let mut c = Cluster::new(3, false);
        let a = c.add_pod(0);
        let b = c.add_pod(0);
        let r = c.pod_send(a, b, b"hello-intra");
        assert!(r.delivered, "intra delivery failed");
        assert_eq!(r.node_hops, 1);
        // And the reverse direction.
        let r = c.pod_send(b, a, b"back");
        assert!(r.delivered);
    }

    #[test]
    fn inter_node_pod_to_pod_delivers_through_vxlan() {
        let mut c = Cluster::new(3, false);
        let a = c.add_pod(0);
        let b = c.add_pod(1);
        let r = c.pod_send(a, b, b"hello-inter");
        assert!(r.delivered, "inter delivery failed");
        assert_eq!(r.node_hops, 2, "one hop per node kernel");
        let r = c.pod_send(b, a, b"back");
        assert!(r.delivered);
    }

    #[test]
    fn accelerated_cluster_delivers_identically() {
        let mut plain = Cluster::new(2, false);
        let mut fast = Cluster::new(2, true);
        for c in [&mut plain, &mut fast] {
            let a = c.add_pod(0);
            let b = c.add_pod(0);
            let x = c.add_pod(1);
            c.warm_pair(a, b);
            c.warm_pair(a, x);
            assert!(c.pod_send(a, b, b"payload-1").delivered);
            assert!(c.pod_send(b, a, b"payload-2").delivered);
            assert!(c.pod_send(a, x, b"payload-3").delivered);
            assert!(c.pod_send(x, a, b"payload-4").delivered);
        }
        assert!(fast.is_accelerated() && !plain.is_accelerated());
    }

    #[test]
    fn acceleration_reduces_path_cost() {
        let mut plain = Cluster::new(2, false);
        let mut fast = Cluster::new(2, true);
        // Intra-node.
        let (pa, pb) = (plain.add_pod(0), plain.add_pod(0));
        let (fa, fb) = (fast.add_pod(0), fast.add_pod(0));
        plain.warm_pair(pa, pb);
        fast.warm_pair(fa, fb);
        let cp = plain.pod_send(pa, pb, b"x").total_cost_ns;
        let cf = fast.pod_send(fa, fb, b"x").total_cost_ns;
        assert!(
            cf < cp * 0.9,
            "intra fast {cf:.0}ns should be well below slow {cp:.0}ns"
        );
        // Inter-node.
        let (pc, fc) = (plain.add_pod(1), fast.add_pod(1));
        plain.warm_pair(pa, pc);
        fast.warm_pair(fa, fc);
        let cp = plain.pod_send(pa, pc, b"x").total_cost_ns;
        let cf = fast.pod_send(fa, fc, b"x").total_cost_ns;
        assert!(
            cf < cp,
            "inter fast {cf:.0}ns should be below slow {cp:.0}ns"
        );
    }

    #[test]
    fn fast_path_actually_engages_after_warmup() {
        let mut fast = Cluster::new(2, true);
        let a = fast.add_pod(0);
        let b = fast.add_pod(0);
        fast.warm_pair(a, b);
        let r = fast.pod_send(a, b, b"x");
        assert!(r.delivered);
        assert!(r.fast_path_hits > 0, "no helper use on the warm path");
    }

    #[test]
    fn kube_rules_are_enforced_on_bridged_traffic() {
        // br_netfilter means a FORWARD DROP rule affects intra-node
        // bridged pod traffic on BOTH the plain and accelerated clusters.
        for accelerated in [false, true] {
            let mut c = Cluster::new(1, accelerated);
            let a = c.add_pod(0);
            let b = c.add_pod(0);
            c.warm_pair(a, b);
            let b_ip = c.pod(b).ip;
            c.nodes[0].kernel.iptables_append(
                ChainHook::Forward,
                linuxfp_netstack::netfilter::IptRule::drop_dst(linuxfp_packet::ipv4::Prefix::host(
                    b_ip,
                )),
            );
            c.nodes[0].poll_controller();
            let r = c.pod_send(a, b, b"blocked");
            assert!(!r.delivered, "accelerated={accelerated}: rule bypassed!");
            // The reverse direction is unfiltered.
            let r = c.pod_send(b, a, b"allowed");
            assert!(r.delivered, "accelerated={accelerated}");
        }
    }

    use linuxfp_netstack::netfilter::ChainHook;
}
