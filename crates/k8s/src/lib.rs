//! A simulated Kubernetes cluster networked by a Flannel-style CNI.
//!
//! The paper's most demanding transparency test (§VI-A2): a 3-node
//! cluster runs the **unmodified** Flannel network plugin, which
//! configures networking purely through standard Linux facilities —
//! a `cni0` bridge per node, veth pairs into pods, a `flannel.1` VXLAN
//! device for the overlay, routes, and the `bridge-nf-call-iptables` +
//! conntrack setup Kubernetes requires (plus kube-proxy's pile of
//! iptables rules). Because everything is standard, attaching the
//! LinuxFP controller to each node accelerates pod-to-pod traffic with
//! **zero changes** to the plugin or the pods.
//!
//! - [`flannel`]: the CNI — node network setup and pod attachment, all
//!   through `linuxfp-netstack`'s standard configuration surface.
//! - [`cluster`]: multi-node wiring (the underlay switch) and pod-level
//!   send/receive plumbing.
//! - [`workload`]: the pod-to-pod TCP_RR workloads reproducing paper
//!   Fig. 9 and Table V (intra-node and inter-node).

pub mod cluster;
pub mod flannel;
pub mod workload;

pub use cluster::{Cluster, DeliveryReport, PodRef};
pub use workload::{pair_sweep, pod_rr, PairSweepPoint, PodRrResult};
