//! Pod-to-pod TCP_RR workloads: the measurements behind paper Fig. 9
//! (throughput vs. pod pairs) and Table V (single-pair latency).
//!
//! The network path cost is *measured* by driving real packets through
//! the node kernels (including any LinuxFP fast paths); the pod-side
//! application and container-runtime costs — which dominate the paper's
//! millisecond-scale RTTs — come from the calibrated constants in
//! [`linuxfp_sim::CostModel`] (`k8s_app_txn_ns`, `k8s_path_scale`,
//! `k8s_internode_extra_ns`; see DESIGN.md for the derivation).

use crate::cluster::{Cluster, PodRef};
use linuxfp_sim::{CostModel, SimRng, Summary};

/// Result of one pod-pair RR measurement.
#[derive(Debug, Clone)]
pub struct PodRrResult {
    /// Transaction RTT statistics in milliseconds.
    pub rtt_ms: Summary,
    /// Steady-state transactions per second for this pair.
    pub transactions_per_sec: f64,
    /// Measured one-way network path cost, A→B (ns, unscaled).
    pub path_fwd_ns: f64,
    /// Measured one-way network path cost, B→A (ns, unscaled).
    pub path_rev_ns: f64,
    /// Whether the pair spans two nodes.
    pub inter_node: bool,
}

/// Runs a netperf-TCP_RR-style measurement over one pod pair: warms the
/// pair, measures both direction's real path costs, then samples `samples`
/// transaction RTTs with pod-side jitter.
///
/// # Panics
///
/// Panics if the pods cannot reach each other (a cluster wiring bug).
pub fn pod_rr(
    cluster: &mut Cluster,
    a: PodRef,
    b: PodRef,
    samples: usize,
    seed: u64,
) -> PodRrResult {
    cluster.warm_pair(a, b);
    let fwd = cluster.pod_send(a, b, b"rr-request");
    let rev = cluster.pod_send(b, a, b"rr-response");
    assert!(fwd.delivered && rev.delivered, "pod pair unreachable");
    let inter_node = a.node != b.node;

    let cost = CostModel::calibrated();
    let base_ns = cost.k8s_app_txn_ns
        + cost.k8s_path_scale * (fwd.total_cost_ns + rev.total_cost_ns)
        + if inter_node {
            2.0 * cost.k8s_internode_extra_ns
        } else {
            0.0
        };

    let mut rng = SimRng::seed(seed);
    let mut rtt_ms = Summary::new();
    for _ in 0..samples {
        let mut rtt = base_ns * rng.lognormal_factor(cost.k8s_rtt_sigma);
        if rng.chance(cost.k8s_hiccup_prob) {
            rtt += rng.exponential(cost.k8s_hiccup_ns);
        }
        rtt_ms.record(rtt / 1e6);
    }

    PodRrResult {
        rtt_ms,
        transactions_per_sec: 1e9 / base_ns,
        path_fwd_ns: fwd.total_cost_ns,
        path_rev_ns: rev.total_cost_ns,
        inter_node,
    }
}

/// One point of the Fig. 9 sweep.
#[derive(Debug, Clone, Copy)]
pub struct PairSweepPoint {
    /// Simultaneous pod pairs.
    pub pairs: u32,
    /// Aggregate transactions per second.
    pub transactions_per_sec: f64,
}

/// Sweeps 1..=`max_pairs` simultaneous pod pairs (paper Fig. 9). For
/// `inter_node`, clients sit on node 0 and servers on node 1; otherwise
/// both on node 0. Aggregate throughput is the per-pair rate times the
/// pair count, degraded by per-pair node contention.
pub fn pair_sweep(
    cluster: &mut Cluster,
    max_pairs: u32,
    inter_node: bool,
    seed: u64,
) -> Vec<PairSweepPoint> {
    let cost = CostModel::calibrated();
    let mut points = Vec::new();
    let mut pair_rates = Vec::new();
    for p in 0..max_pairs {
        let a = cluster.add_pod(0);
        let b = cluster.add_pod(if inter_node { 1 } else { 0 });
        let r = pod_rr(cluster, a, b, 64, seed + u64::from(p));
        pair_rates.push(r.transactions_per_sec);
        let pairs = p + 1;
        let contention = (1.0 - cost.core_contention).powi(pairs as i32 - 1);
        let total: f64 = pair_rates.iter().sum::<f64>() * contention;
        points.push(PairSweepPoint {
            pairs,
            transactions_per_sec: total,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_intra_node_latency_shape() {
        // Paper Table V: Linux intra 9.68 / 20.1 / 2.02 (avg/p99/std ms);
        // LinuxFP intra 7.918 / 15.9 / 1.53.
        let mut plain = Cluster::new(2, false);
        let (a, b) = (plain.add_pod(0), plain.add_pod(0));
        let r = pod_rr(&mut plain, a, b, 4000, 3);
        assert!(!r.inter_node);
        let mean = r.rtt_ms.mean();
        assert!((9.0..10.4).contains(&mean), "linux intra mean {mean:.2}");
        let p99 = r.rtt_ms.p99();
        assert!((13.0..24.0).contains(&p99), "linux intra p99 {p99:.2}");

        let mut fast = Cluster::new(2, true);
        let (a, b) = (fast.add_pod(0), fast.add_pod(0));
        let rf = pod_rr(&mut fast, a, b, 4000, 3);
        let fmean = rf.rtt_ms.mean();
        assert!((7.3..8.6).contains(&fmean), "linuxfp intra mean {fmean:.2}");
        // The paper's headline: ~18% lower average latency intra-node.
        let improvement = 1.0 - fmean / mean;
        assert!(
            (0.12..0.25).contains(&improvement),
            "intra improvement {improvement:.3}"
        );
        assert!(rf.rtt_ms.p99() < r.rtt_ms.p99());
    }

    #[test]
    fn table5_inter_node_latency_shape() {
        // Paper Table V: Linux inter 29.226 / 34.7; LinuxFP 25.176 / 30.9.
        let mut plain = Cluster::new(2, false);
        let (a, b) = (plain.add_pod(0), plain.add_pod(1));
        let r = pod_rr(&mut plain, a, b, 4000, 5);
        assert!(r.inter_node);
        let mean = r.rtt_ms.mean();
        assert!((27.5..31.0).contains(&mean), "linux inter mean {mean:.2}");

        let mut fast = Cluster::new(2, true);
        let (a, b) = (fast.add_pod(0), fast.add_pod(1));
        let rf = pod_rr(&mut fast, a, b, 4000, 5);
        let fmean = rf.rtt_ms.clone().mean();
        assert!(
            (24.0..27.5).contains(&fmean),
            "linuxfp inter mean {fmean:.2}"
        );
        let improvement = 1.0 - fmean / mean;
        assert!(
            (0.06..0.22).contains(&improvement),
            "inter improvement {improvement:.3}"
        );
    }

    #[test]
    fn fig9_throughput_ratio_and_scaling() {
        // Paper Fig. 9: LinuxFP reaches ~120% (intra) and ~116% (inter)
        // of Linux pod-to-pod throughput, scaling with pod pairs.
        for inter in [false, true] {
            let mut plain = Cluster::new(2, false);
            let mut fast = Cluster::new(2, true);
            let sp = pair_sweep(&mut plain, 4, inter, 11);
            let sf = pair_sweep(&mut fast, 4, inter, 11);
            // Monotonic growth with pairs.
            for w in sp.windows(2) {
                assert!(w[1].transactions_per_sec > w[0].transactions_per_sec);
            }
            let ratio =
                sf.last().unwrap().transactions_per_sec / sp.last().unwrap().transactions_per_sec;
            let band = if inter { 1.05..1.25 } else { 1.10..1.35 };
            assert!(
                band.contains(&ratio),
                "inter={inter}: throughput ratio {ratio:.3}"
            );
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut c = Cluster::new(1, false);
        let (a, b) = (c.add_pod(0), c.add_pod(0));
        let r1 = pod_rr(&mut c, a, b, 100, 9);
        let r2 = pod_rr(&mut c, a, b, 100, 9);
        assert!((r1.rtt_ms.clone().mean() - r2.rtt_ms.clone().mean()).abs() < 1e-12);
        assert!(r1.path_fwd_ns > 0.0 && r1.path_rev_ns > 0.0);
    }
}
