//! Load-time compilation of verified bytecode into a pre-decoded,
//! direct-threaded form — the simulated analogue of the kernel's BPF JIT.
//!
//! The lowering runs once per `BPF_PROG_LOAD` (see
//! [`crate::program::LoadedProgram::load`]) and does the work the
//! interpreter otherwise repeats on every executed instruction:
//!
//! - operand decode: immediates are sign-extended to `u64` once, memory
//!   offsets are pre-widened, register indices become plain `usize`-ready
//!   bytes;
//! - control flow: relative jump offsets are resolved to absolute
//!   instruction indices, so taken branches assign `pc` instead of doing
//!   signed offset arithmetic;
//! - map handles: tail-call program-array ids become [`MapId`]s.
//!
//! Execution then dispatches over the compact [`COp`] enum — one match
//! per instruction with no per-step decoding — and charges the calibrated
//! [`linuxfp_sim::CostModel::jit_insn_ns`] under the `jit_insn` stage
//! (the interpreter charges `ebpf_insn`), so `CostBreakdown` attributes
//! every packet to the engine that served it.
//!
//! The interpreter remains the reference oracle: both engines share the
//! [`vm::Machine`] state, the [`vm::alu`] / [`vm::jump_taken`] /
//! [`vm::call_helper`] building blocks, and the [`vm::finish`] /
//! [`vm::fault`] outcome constructors, and the parity suites
//! (`tests/jit_parity.rs`, `tests/alu_parity.rs`, the difftest `--jit`
//! lane) execute every program through both and assert identical
//! [`VmOutcome`]s — final register file included — and byte-identical
//! frames.

use crate::helpers::HelperEnv;
use crate::insn::{AluOp, HelperId, Insn, JmpCond, MemSize, MAX_TAIL_CALLS};
use crate::maps::{MapId, MapStore};
use crate::program::LoadedProgram;
use crate::vm::{self, VmCtx, VmError, VmOutcome};
use linuxfp_sim::{CostModel, CostTracker};

/// One pre-decoded instruction. Jump targets are absolute indices into
/// the op sequence; immediates and offsets are already widened to the
/// `u64` the machine operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum COp {
    /// `dst = dst <op> imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: u8,
        /// Pre-widened immediate.
        imm: u64,
    },
    /// `dst = dst <op> src`.
    AluReg {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: u8,
        /// Source register.
        src: u8,
    },
    /// Unconditional jump to an absolute target.
    Jump {
        /// Absolute op index.
        target: u32,
    },
    /// Conditional jump against an immediate.
    JmpImm {
        /// Predicate.
        cond: JmpCond,
        /// Left-hand register.
        dst: u8,
        /// Pre-widened right-hand immediate.
        imm: u64,
        /// Absolute op index when taken.
        target: u32,
    },
    /// Conditional jump against a register.
    JmpReg {
        /// Predicate.
        cond: JmpCond,
        /// Left-hand register.
        dst: u8,
        /// Right-hand register.
        src: u8,
        /// Absolute op index when taken.
        target: u32,
    },
    /// `dst = *(size*)(src + off)`.
    Load {
        /// Access width.
        size: MemSize,
        /// Destination register.
        dst: u8,
        /// Base pointer register.
        src: u8,
        /// Pre-sign-extended byte offset.
        off: u64,
    },
    /// `*(size*)(dst + off) = src`.
    Store {
        /// Access width.
        size: MemSize,
        /// Base pointer register.
        dst: u8,
        /// Pre-sign-extended byte offset.
        off: u64,
        /// Value register.
        src: u8,
    },
    /// `*(size*)(dst + off) = imm`.
    StoreImm {
        /// Access width.
        size: MemSize,
        /// Base pointer register.
        dst: u8,
        /// Pre-sign-extended byte offset.
        off: u64,
        /// Pre-widened immediate.
        imm: u64,
    },
    /// Helper call (shared with the interpreter).
    Call {
        /// Which helper.
        helper: HelperId,
    },
    /// Tail call through a program array.
    TailCall {
        /// Pre-decoded program-array handle.
        prog_array: MapId,
        /// Slot index.
        index: u32,
    },
    /// Return with the verdict in `r0`.
    Exit,
}

/// A program lowered to direct-threaded form. Built once at load time;
/// shared via the owning [`LoadedProgram`]'s `Arc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProgram {
    ops: Vec<COp>,
}

impl CompiledProgram {
    /// Lowers verified bytecode. Infallible: the verifier has already
    /// established that every jump lands in bounds, so target resolution
    /// cannot overflow.
    pub fn compile(insns: &[Insn]) -> Self {
        let target = |pc: usize, off: i64| -> u32 { (pc as i64 + 1 + off) as u32 };
        let ops = insns
            .iter()
            .enumerate()
            .map(|(pc, insn)| match *insn {
                Insn::AluImm { op, dst, imm } => COp::AluImm {
                    op,
                    dst,
                    imm: imm as u64,
                },
                Insn::AluReg { op, dst, src } => COp::AluReg { op, dst, src },
                Insn::Ja { off } => COp::Jump {
                    target: target(pc, off as i64),
                },
                Insn::JmpImm {
                    cond,
                    dst,
                    imm,
                    off,
                } => COp::JmpImm {
                    cond,
                    dst,
                    imm: imm as u64,
                    target: target(pc, off as i64),
                },
                Insn::JmpReg {
                    cond,
                    dst,
                    src,
                    off,
                } => COp::JmpReg {
                    cond,
                    dst,
                    src,
                    target: target(pc, off as i64),
                },
                Insn::Load {
                    size,
                    dst,
                    src,
                    off,
                } => COp::Load {
                    size,
                    dst,
                    src,
                    off: off as i64 as u64,
                },
                Insn::Store {
                    size,
                    dst,
                    off,
                    src,
                } => COp::Store {
                    size,
                    dst,
                    off: off as i64 as u64,
                    src,
                },
                Insn::StoreImm {
                    size,
                    dst,
                    off,
                    imm,
                } => COp::StoreImm {
                    size,
                    dst,
                    off: off as i64 as u64,
                    imm: imm as u64,
                },
                Insn::Call { helper } => COp::Call { helper },
                Insn::TailCall { prog_array, index } => COp::TailCall {
                    prog_array: MapId(prog_array),
                    index,
                },
                Insn::Exit => COp::Exit,
            })
            .collect();
        CompiledProgram { ops }
    }

    /// The lowered op sequence.
    pub fn ops(&self) -> &[COp] {
        &self.ops
    }
}

/// Executes a loaded program's compiled form to completion.
///
/// Mirrors [`vm::run`] exactly — same machine, same helpers, same
/// tail-call and budget rules — but dispatches over pre-decoded ops and
/// charges [`linuxfp_sim::CostModel::jit_insn_ns`] per instruction under
/// the `jit_insn` stage. Tail calls continue in the callee's *compiled*
/// form (every loaded program has one).
pub fn run(
    prog: &LoadedProgram,
    ctx: VmCtx<'_>,
    env: &mut dyn HelperEnv,
    maps: &MapStore,
    cost: &CostModel,
    tracker: &mut CostTracker,
) -> VmOutcome {
    let mut m = vm::Machine::new(ctx);
    let mut cur = prog.clone();
    let mut pc = 0usize;
    let mut executed = 0u64;
    let mut tail_calls = 0u64;
    let mut helper_calls = 0u64;

    loop {
        if executed >= vm::INSN_BUDGET {
            return vm::fault(
                VmError::BudgetExhausted,
                &m,
                executed,
                tail_calls,
                helper_calls,
            );
        }
        let op = cur.compiled().ops()[pc];
        executed += 1;
        tracker.charge("jit_insn", cost.jit_insn_ns);
        pc += 1;
        match op {
            COp::AluImm { op, dst, imm } => {
                let d = dst as usize;
                m.regs[d] = vm::alu(op, m.regs[d], imm, &mut m.div_zeros);
            }
            COp::AluReg { op, dst, src } => {
                let (d, s) = (dst as usize, src as usize);
                m.regs[d] = vm::alu(op, m.regs[d], m.regs[s], &mut m.div_zeros);
            }
            COp::Jump { target } => {
                pc = target as usize;
            }
            COp::JmpImm {
                cond,
                dst,
                imm,
                target,
            } => {
                if vm::jump_taken(cond, m.regs[dst as usize], imm) {
                    pc = target as usize;
                }
            }
            COp::JmpReg {
                cond,
                dst,
                src,
                target,
            } => {
                if vm::jump_taken(cond, m.regs[dst as usize], m.regs[src as usize]) {
                    pc = target as usize;
                }
            }
            COp::Load {
                size,
                dst,
                src,
                off,
            } => {
                let addr = m.regs[src as usize].wrapping_add(off);
                match m.read_mem(addr, size) {
                    Ok(v) => m.regs[dst as usize] = v,
                    Err(e) => return vm::fault(e, &m, executed, tail_calls, helper_calls),
                }
            }
            COp::Store {
                size,
                dst,
                off,
                src,
            } => {
                let addr = m.regs[dst as usize].wrapping_add(off);
                let v = m.regs[src as usize];
                if let Err(e) = m.write_mem(addr, size, v) {
                    return vm::fault(e, &m, executed, tail_calls, helper_calls);
                }
            }
            COp::StoreImm {
                size,
                dst,
                off,
                imm,
            } => {
                let addr = m.regs[dst as usize].wrapping_add(off);
                if let Err(e) = m.write_mem(addr, size, imm) {
                    return vm::fault(e, &m, executed, tail_calls, helper_calls);
                }
            }
            COp::Call { helper } => {
                helper_calls += 1;
                if let Err(e) = vm::call_helper(helper, &mut m, env, maps, cost, tracker) {
                    return vm::fault(e, &m, executed, tail_calls, helper_calls);
                }
            }
            COp::TailCall { prog_array, index } => {
                if tail_calls < u64::from(MAX_TAIL_CALLS) {
                    if let Some(next) = maps.prog_array_get(prog_array, index as usize) {
                        tracker.charge("tail_call", cost.tail_call_ns);
                        tail_calls += 1;
                        cur = next;
                        pc = 0;
                        // Same convention as the interpreter: r1 carries
                        // the ctx into the callee; scratch registers are
                        // cleared.
                        m.regs[1] = vm::CTX_BASE;
                        for r in 2..=5 {
                            m.regs[r] = 0;
                        }
                        continue;
                    }
                }
                // Missing slot or depth exceeded: fall through.
            }
            COp::Exit => {
                return vm::finish(&m, executed, tail_calls, helper_calls);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::helpers::NullEnv;
    use crate::insn::Action;
    use crate::program::Program;
    use crate::verifier::ctx_layout;

    fn load(asm: Asm, name: &str) -> LoadedProgram {
        LoadedProgram::load(Program::new(name, asm.finish().unwrap())).unwrap()
    }

    fn run_compiled(prog: &LoadedProgram, packet: &mut Vec<u8>) -> (VmOutcome, CostTracker) {
        let maps = MapStore::new();
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let ctx = VmCtx::xdp(packet, 1, 0);
        let out = run(prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        (out, tracker)
    }

    fn run_interp(prog: &LoadedProgram, packet: &mut Vec<u8>) -> (VmOutcome, CostTracker) {
        let maps = MapStore::new();
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let ctx = VmCtx::xdp(packet, 1, 0);
        let out = vm::run(prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        (out, tracker)
    }

    #[test]
    fn lowering_resolves_jump_targets() {
        let mut a = Asm::new();
        a.mov_imm(0, Action::Pass.code() as i64);
        a.jmp_imm(JmpCond::Eq, 0, 2, "out");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.label("out");
        a.exit();
        let prog = load(a, "jump");
        match prog.compiled().ops()[1] {
            COp::JmpImm { target, .. } => assert_eq!(target, 3),
            ref op => panic!("expected JmpImm, got {op:?}"),
        }
        assert_eq!(prog.compiled().ops().len(), prog.len());
    }

    #[test]
    fn compiled_matches_interpreter_and_charges_jit_stage() {
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16);
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 14);
        a.jmp_reg(JmpCond::Gt, 4, 3, "out");
        a.load(MemSize::B, 5, 2, 12);
        a.alu_imm(AluOp::Add, 5, 1);
        a.store(MemSize::B, 2, 12, 5);
        a.label("out");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        let prog = load(a, "incr");

        let mut pkt_i = vec![0u8; 64];
        pkt_i[12] = 0x41;
        let mut pkt_c = pkt_i.clone();
        let (out_i, t_i) = run_interp(&prog, &mut pkt_i);
        let (out_c, t_c) = run_compiled(&prog, &mut pkt_c);
        assert_eq!(out_i, out_c);
        assert_eq!(pkt_i, pkt_c);
        assert_eq!(t_c.stage_count("jit_insn"), out_c.insns_executed);
        assert_eq!(t_c.stage_count("ebpf_insn"), 0);
        assert_eq!(t_i.stage_count("ebpf_insn"), out_i.insns_executed);
        assert_eq!(t_i.stage_count("jit_insn"), 0);
    }

    #[test]
    fn compiled_div_mod_by_zero_follow_linux_semantics() {
        let mut a = Asm::new();
        a.mov_imm(0, 7);
        a.mov_imm(2, 0);
        a.alu_reg(AluOp::Div, 0, 2); // r0 = 0
        a.alu_imm(AluOp::Add, 0, 5); // r0 = 5
        a.alu_reg(AluOp::Mod, 0, 2); // r0 stays 5
        a.alu_imm(AluOp::Sub, 0, 3); // r0 = 2 = PASS
        a.exit();
        let prog = load(a, "divmod0");
        let mut pkt = vec![0u8; 64];
        let (out, _) = run_compiled(&prog, &mut pkt);
        assert_eq!(out.action, Action::Pass);
        assert!(out.error.is_none());
        assert_eq!(out.div_zeros, 2);
    }

    #[test]
    fn compiled_tail_calls_resolve_callee_compiled_form() {
        let maps = MapStore::new();
        let pa = maps.create_prog_array(4);
        let mut t = Asm::new();
        t.mov_imm(0, Action::Drop.code() as i64);
        t.exit();
        maps.prog_array_set(pa, 2, Some(load(t, "target"))).unwrap();
        let mut c = Asm::new();
        c.mov_imm(0, Action::Pass.code() as i64);
        c.tail_call(pa.0, 2);
        c.exit();
        let caller = load(c, "caller");
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let mut pkt = vec![0u8; 64];
        let ctx = VmCtx::xdp(&mut pkt, 1, 0);
        let out = run(&caller, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        assert_eq!(out.action, Action::Drop);
        assert_eq!(out.tail_calls, 1);
        assert_eq!(tracker.stage_count("tail_call"), 1);
        assert_eq!(tracker.stage_count("jit_insn"), out.insns_executed);
    }

    #[test]
    fn compiled_dispatch_is_cheaper_per_insn() {
        // The whole point: same instruction stream, smaller price.
        let cost = CostModel::calibrated();
        assert!(cost.jit_insn_ns < cost.ebpf_insn_ns);
        let mut a = Asm::new();
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        let prog = load(a, "pass");
        let mut pkt_i = vec![0u8; 64];
        let mut pkt_c = vec![0u8; 64];
        let (_, t_i) = run_interp(&prog, &mut pkt_i);
        let (_, t_c) = run_compiled(&prog, &mut pkt_c);
        assert!(t_c.total_ns() < t_i.total_ns());
    }
}
