//! The instruction set of the simulated eBPF virtual machine.
//!
//! A deliberately faithful subset of real eBPF: eleven 64-bit registers
//! (`r0`–`r10`), a 512-byte stack addressed through the read-only frame
//! pointer `r10`, ALU and conditional-jump instructions, sized loads and
//! stores, helper calls with the standard `r1`–`r5` argument / `r0` return
//! convention, tail calls, and `exit`. Fast-path modules are synthesized
//! into this instruction set, verified by [`crate::verifier`], and
//! executed either by the [`crate::vm`] reference interpreter or by the
//! [`crate::compile`] direct-threaded form built at load time.

/// Number of general-purpose registers (`r0`–`r10`).
pub const NUM_REGS: usize = 11;
/// The read-only frame pointer register.
pub const REG_FP: u8 = 10;
/// eBPF stack size in bytes.
pub const STACK_SIZE: usize = 512;
/// Maximum program length accepted by the verifier.
pub const MAX_INSNS: usize = 4096;
/// Maximum tail-call chain depth, as in the Linux kernel.
pub const MAX_TAIL_CALLS: u32 = 33;

/// ALU operations (64-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Unsigned division (division by zero yields 0, as Linux defines
    /// for `BPF_DIV`).
    Div,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
    /// Logical shift left.
    Lsh,
    /// Logical shift right.
    Rsh,
    /// Unsigned modulo (modulo zero leaves `dst` unchanged, as Linux
    /// defines for `BPF_MOD`).
    Mod,
    /// Bitwise xor.
    Xor,
    /// Move.
    Mov,
    /// Arithmetic shift right.
    Arsh,
}

/// Conditional-jump predicates (64-bit comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JmpCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Signed greater-than.
    Sgt,
    /// Signed less-than.
    Slt,
    /// Bit test (`dst & src != 0`).
    Set,
}

/// Memory access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSize {
    /// 1 byte.
    B,
    /// 2 bytes (big-endian on the wire; loads/stores are host-order —
    /// synthesized code uses explicit byte swaps where needed).
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    DW,
}

impl MemSize {
    /// Access width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            MemSize::B => 1,
            MemSize::H => 2,
            MemSize::W => 4,
            MemSize::DW => 8,
        }
    }
}

/// Helper function identifiers callable from programs.
///
/// `FibLookup`, `FdbLookup` and `IptLookup` mirror the paper's kernel
/// helpers (`bpf_fib_lookup` exists upstream; `bpf_fdb_lookup` and
/// `bpf_ipt_lookup` are the ~260 LoC the authors added). The remaining
/// helpers support the baselines and microbenchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HelperId {
    /// `bpf_fib_lookup`: route + neighbor resolution via kernel state.
    FibLookup,
    /// `bpf_fdb_lookup`: bridge FDB lookup via kernel state (new helper).
    FdbLookup,
    /// `bpf_ipt_lookup`: iptables FORWARD evaluation via kernel state
    /// (new helper).
    IptLookup,
    /// `bpf_redirect`: set the egress interface; the program then returns
    /// `XDP_REDIRECT`.
    Redirect,
    /// `bpf_ktime_get_ns`.
    KtimeGetNs,
    /// `bpf_map_lookup_elem` (copy-out convention; see `crate::maps`).
    MapLookup,
    /// `bpf_map_update_elem`.
    MapUpdate,
    /// Conntrack lookup (ipvs load-balancer extension).
    CtLookup,
    /// `bpf_nat_lookup`: iptables-nat binding lookup via kernel
    /// conntrack state (new helper; NAT44 fast-path extension). Returns
    /// the translated tuple for established flows so the program can
    /// rewrite addresses/ports with incremental checksum updates.
    NatLookup,
    /// `bpf_l7_policy_lookup`: HTTP/1.x request-policy evaluation via
    /// the live kernel policy table (new helper; L7 offload extension).
    /// Takes a bounds-verified packet pointer to the TCP payload plus a
    /// parse-limit, parses the request line in the kernel, and returns
    /// the policy verdict (allow / deny / punt / allow-unpinned).
    L7PolicyLookup,
    /// A deliberately trivial helper used by the function-call-vs-tail-
    /// call microbenchmark (paper Fig. 10).
    TrivialNf,
    /// `bpf_redirect_map` into an XSK map: copy the frame to the bound
    /// AF_XDP user-space socket. Returning [`Action::Redirect`]
    /// afterwards consumes the packet into user space; continuing and
    /// returning another verdict mirrors it instead.
    XskRedirect,
}

/// One VM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `dst = dst <op> imm` (or `dst = imm` for `Mov`).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: u8,
        /// Immediate operand.
        imm: i64,
    },
    /// `dst = dst <op> src` (or `dst = src` for `Mov`).
    AluReg {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: u8,
        /// Source register.
        src: u8,
    },
    /// Unconditional jump by `off` instructions (relative to the next).
    Ja {
        /// Relative offset.
        off: i32,
    },
    /// Conditional jump comparing `dst` to an immediate.
    JmpImm {
        /// Predicate.
        cond: JmpCond,
        /// Left-hand register.
        dst: u8,
        /// Right-hand immediate.
        imm: i64,
        /// Relative offset when taken.
        off: i32,
    },
    /// Conditional jump comparing `dst` to `src`.
    JmpReg {
        /// Predicate.
        cond: JmpCond,
        /// Left-hand register.
        dst: u8,
        /// Right-hand register.
        src: u8,
        /// Relative offset when taken.
        off: i32,
    },
    /// `dst = *(size*)(src + off)`.
    Load {
        /// Access width.
        size: MemSize,
        /// Destination register.
        dst: u8,
        /// Base pointer register.
        src: u8,
        /// Byte offset.
        off: i16,
    },
    /// `*(size*)(dst + off) = src`.
    Store {
        /// Access width.
        size: MemSize,
        /// Base pointer register.
        dst: u8,
        /// Byte offset.
        off: i16,
        /// Value register.
        src: u8,
    },
    /// `*(size*)(dst + off) = imm`.
    StoreImm {
        /// Access width.
        size: MemSize,
        /// Base pointer register.
        dst: u8,
        /// Byte offset.
        off: i16,
        /// Immediate value.
        imm: i64,
    },
    /// Call a helper function (args `r1`–`r5`, result `r0`,
    /// `r1`–`r5` clobbered).
    Call {
        /// Which helper.
        helper: HelperId,
    },
    /// `bpf_tail_call(ctx, prog_array, index)`: jump to another program.
    /// On a missing slot execution falls through to the next instruction,
    /// exactly like the real mechanism.
    TailCall {
        /// Program-array map id.
        prog_array: u32,
        /// Slot index.
        index: u32,
    },
    /// Return from the program with the verdict in `r0`.
    Exit,
}

/// XDP/TC verdict codes returned in `r0` (matching `enum xdp_action`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Internal error (`XDP_ABORTED`).
    Aborted,
    /// Drop the packet.
    Drop,
    /// Continue into the kernel stack.
    Pass,
    /// Bounce out the receiving interface.
    Tx,
    /// Forward out the interface chosen by `bpf_redirect`.
    Redirect,
}

impl Action {
    /// Wire value as stored in `r0`.
    pub fn code(self) -> u64 {
        match self {
            Action::Aborted => 0,
            Action::Drop => 1,
            Action::Pass => 2,
            Action::Tx => 3,
            Action::Redirect => 4,
        }
    }

    /// Decodes an `r0` value; unknown codes read as `Aborted`, matching
    /// the kernel's defensive treatment of bogus verdicts.
    pub fn from_code(code: u64) -> Action {
        match code {
            1 => Action::Drop,
            2 => Action::Pass,
            3 => Action::Tx,
            4 => Action::Redirect,
            _ => Action::Aborted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_sizes() {
        assert_eq!(MemSize::B.bytes(), 1);
        assert_eq!(MemSize::H.bytes(), 2);
        assert_eq!(MemSize::W.bytes(), 4);
        assert_eq!(MemSize::DW.bytes(), 8);
    }

    #[test]
    fn action_codes_round_trip() {
        for a in [
            Action::Aborted,
            Action::Drop,
            Action::Pass,
            Action::Tx,
            Action::Redirect,
        ] {
            assert_eq!(Action::from_code(a.code()), a);
        }
        assert_eq!(Action::from_code(99), Action::Aborted);
    }

    #[test]
    fn insns_are_small_and_copyable() {
        // Keep the interpreter cache-friendly.
        assert!(std::mem::size_of::<Insn>() <= 24);
        let i = Insn::Exit;
        let j = i;
        assert_eq!(i, j);
    }
}
