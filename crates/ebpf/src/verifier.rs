//! The static verifier: programs must be proven safe before loading.
//!
//! Models the essential guarantees of the in-kernel eBPF verifier for the
//! instruction subset we generate:
//!
//! - **Termination**: only forward jumps are allowed (the classic pre-
//!   bounded-loop eBPF rule), so the CFG is a DAG and every execution
//!   terminates.
//! - **Initialized registers**: reads of never-written registers are
//!   rejected along every path.
//! - **Pointer typing**: registers carry abstract types (scalar, ctx
//!   pointer, packet pointer with constant offset, packet-end pointer,
//!   stack pointer); loads and stores must go through a pointer of the
//!   right kind, and pointer arithmetic is restricted to constant offsets.
//! - **Packet bounds**: packet accesses are only allowed once a
//!   `if (pkt + K > data_end) goto reject` guard has proven K bytes
//!   available on that path — the signature eBPF bounds-check idiom.
//! - **Stack bounds**: accesses through `r10` must stay inside the
//!   512-byte frame.
//! - **Helper contracts**: argument registers must be initialized and
//!   struct-pointer arguments must point at sufficiently large, in-bounds
//!   stack buffers.
//!
//! - **Variable-offset packet pointers**: adding a *bounded* scalar (a
//!   byte/halfword load, or the result of masks and shifts over one) to a
//!   constant packet pointer yields a variable packet pointer. Loads
//!   through it are only allowed after a `if (var_ptr + K > data_end)`
//!   guard has proven K bytes available for *that* pointer — the
//!   mechanism behind L7 payload parsing, where the payload offset
//!   depends on the TCP data offset read from the packet itself.
//!
//! Simplifications relative to the real verifier (documented, deliberate):
//! no pointer spilling to the stack (spilled values read back as
//! scalars), no bounded loops, and variable packet pointers track a
//! single definition site rather than full value ranges. The synthesizer
//! only emits code inside this subset.

use crate::insn::{AluOp, HelperId, Insn, JmpCond, MemSize, REG_FP, STACK_SIZE};
use std::collections::BTreeMap;
use std::fmt;

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The program has no instructions.
    Empty,
    /// The program exceeds [`crate::insn::MAX_INSNS`].
    TooLong(usize),
    /// A register number above `r10` was used.
    InvalidReg {
        /// Instruction index.
        pc: usize,
    },
    /// A jump goes backwards (loops are not allowed).
    BackwardJump {
        /// Instruction index.
        pc: usize,
    },
    /// A jump target is outside the program.
    JumpOutOfBounds {
        /// Instruction index.
        pc: usize,
    },
    /// Execution can run past the last instruction.
    FallsOffEnd,
    /// A register was read before ever being written.
    UninitRead {
        /// Instruction index.
        pc: usize,
        /// The offending register.
        reg: u8,
    },
    /// The frame pointer `r10` was used as a destination.
    ReadOnlyFp {
        /// Instruction index.
        pc: usize,
    },
    /// A context field access with a bad offset or size.
    BadCtxAccess {
        /// Instruction index.
        pc: usize,
        /// Byte offset attempted.
        off: i64,
    },
    /// A write through the context pointer.
    WriteToCtx {
        /// Instruction index.
        pc: usize,
    },
    /// A packet access beyond what bounds checks have proven.
    PacketOutOfBounds {
        /// Instruction index.
        pc: usize,
        /// Last byte the access needs.
        needed: i64,
        /// Bytes proven available on this path.
        verified: i64,
    },
    /// A stack access outside the 512-byte frame.
    StackOutOfBounds {
        /// Instruction index.
        pc: usize,
        /// Offset relative to `r10`.
        off: i64,
    },
    /// Disallowed pointer arithmetic.
    InvalidPtrArith {
        /// Instruction index.
        pc: usize,
    },
    /// Comparing a pointer with an incompatible operand.
    BadPtrComparison {
        /// Instruction index.
        pc: usize,
    },
    /// A load through a non-pointer register.
    NonPointerDeref {
        /// Instruction index.
        pc: usize,
        /// The register dereferenced.
        reg: u8,
    },
    /// A helper argument violates the helper's contract.
    BadHelperArg {
        /// Instruction index.
        pc: usize,
        /// The argument register.
        reg: u8,
        /// What was wrong.
        what: &'static str,
    },
    /// A constant shift amount outside `0..64` (Linux's `check_alu_op`
    /// rejects these at load time; the runtime `& 63` mask remains as
    /// defense in depth).
    InvalidShift {
        /// Instruction index.
        pc: usize,
        /// The offending immediate.
        imm: i64,
    },
    /// A constant division or modulo by zero (rejected at load time as
    /// in Linux; *runtime* div/mod by zero has Linux-defined results).
    DivByZeroImm {
        /// Instruction index.
        pc: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Empty => write!(f, "empty program"),
            VerifyError::TooLong(n) => write!(f, "program too long: {n} instructions"),
            VerifyError::InvalidReg { pc } => write!(f, "pc {pc}: invalid register"),
            VerifyError::BackwardJump { pc } => write!(f, "pc {pc}: backward jump"),
            VerifyError::JumpOutOfBounds { pc } => write!(f, "pc {pc}: jump out of bounds"),
            VerifyError::FallsOffEnd => write!(f, "execution falls off the end"),
            VerifyError::UninitRead { pc, reg } => {
                write!(f, "pc {pc}: read of uninitialized r{reg}")
            }
            VerifyError::ReadOnlyFp { pc } => write!(f, "pc {pc}: write to read-only r10"),
            VerifyError::BadCtxAccess { pc, off } => {
                write!(f, "pc {pc}: bad ctx access at offset {off}")
            }
            VerifyError::WriteToCtx { pc } => write!(f, "pc {pc}: write to ctx"),
            VerifyError::PacketOutOfBounds {
                pc,
                needed,
                verified,
            } => write!(
                f,
                "pc {pc}: packet access needs {needed} bytes, only {verified} verified"
            ),
            VerifyError::StackOutOfBounds { pc, off } => {
                write!(f, "pc {pc}: stack access at r10{off:+} out of frame")
            }
            VerifyError::InvalidPtrArith { pc } => {
                write!(f, "pc {pc}: invalid pointer arithmetic")
            }
            VerifyError::BadPtrComparison { pc } => {
                write!(f, "pc {pc}: invalid pointer comparison")
            }
            VerifyError::NonPointerDeref { pc, reg } => {
                write!(f, "pc {pc}: dereference of non-pointer r{reg}")
            }
            VerifyError::BadHelperArg { pc, reg, what } => {
                write!(f, "pc {pc}: helper argument r{reg}: {what}")
            }
            VerifyError::InvalidShift { pc, imm } => {
                write!(f, "pc {pc}: constant shift by {imm} outside 0..64")
            }
            VerifyError::DivByZeroImm { pc } => {
                write!(f, "pc {pc}: constant division or modulo by zero")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Abstract register type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RType {
    Uninit,
    Scalar,
    /// A scalar with a proven unsigned upper bound (from a byte or
    /// halfword load, or masks/shifts over one). Only bounded scalars
    /// may be added to packet pointers.
    ScalarBounded(u64),
    PtrCtx,
    PtrPacket(i64),
    /// A packet pointer at a variable offset: formed by adding a bounded
    /// scalar to a constant packet pointer. `id` names the forming
    /// instruction; `delta` is the constant adjustment applied since.
    /// Loads require bytes proven for that `id` in `var_verified`.
    PtrPacketVar {
        /// Defining instruction index.
        id: usize,
        /// Constant byte offset relative to the formed pointer.
        delta: i64,
    },
    PtrPacketEnd,
    PtrStack(i64),
}

fn is_scalar(t: RType) -> bool {
    matches!(t, RType::Scalar | RType::ScalarBounded(_))
}

fn join_rtype(a: RType, b: RType) -> RType {
    if a == b {
        return a;
    }
    match (a, b) {
        // Widening: the larger bound covers both paths.
        (RType::ScalarBounded(x), RType::ScalarBounded(y)) => RType::ScalarBounded(x.max(y)),
        (RType::Scalar, RType::ScalarBounded(_)) | (RType::ScalarBounded(_), RType::Scalar) => {
            RType::Scalar
        }
        _ => RType::Uninit,
    }
}

#[derive(Debug, Clone, PartialEq)]
struct AbsState {
    regs: [RType; 11],
    pkt_verified: i64,
    /// Bytes proven available per variable packet pointer definition.
    var_verified: BTreeMap<usize, i64>,
}

impl AbsState {
    fn initial() -> Self {
        let mut regs = [RType::Uninit; 11];
        regs[1] = RType::PtrCtx;
        regs[REG_FP as usize] = RType::PtrStack(0);
        AbsState {
            regs,
            pkt_verified: 0,
            var_verified: BTreeMap::new(),
        }
    }

    fn join(&self, other: &AbsState) -> AbsState {
        let mut regs = [RType::Uninit; 11];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = join_rtype(self.regs[i], other.regs[i]);
        }
        // Only windows proven on *both* paths survive, at the smaller of
        // the two proofs.
        let var_verified = self
            .var_verified
            .iter()
            .filter_map(|(id, v)| other.var_verified.get(id).map(|w| (*id, (*v).min(*w))))
            .collect();
        AbsState {
            regs,
            pkt_verified: self.pkt_verified.min(other.pkt_verified),
            var_verified,
        }
    }
}

/// Context field layout shared by the verifier and the VM: `(offset,
/// size, type)` of each readable field.
pub mod ctx_layout {
    /// `data`: pointer to the first packet byte.
    pub const DATA: i64 = 0x00;
    /// `data_end`: pointer one past the last packet byte.
    pub const DATA_END: i64 = 0x08;
    /// Ingress interface index (u32).
    pub const IFINDEX: i64 = 0x10;
    /// Receive queue (u32).
    pub const RX_QUEUE: i64 = 0x14;
    /// Frame length (u32; populated for TC programs, 0 for XDP).
    pub const LEN: i64 = 0x18;
    /// VLAN TCI (u32; TC only).
    pub const VLAN_TCI: i64 = 0x1c;
    /// EtherType (u32; TC only).
    pub const PROTOCOL: i64 = 0x20;
    /// One past the last valid ctx offset.
    pub const SIZE: i64 = 0x24;
}

fn check_reg(pc: usize, r: u8) -> Result<(), VerifyError> {
    if r as usize >= crate::insn::NUM_REGS {
        Err(VerifyError::InvalidReg { pc })
    } else {
        Ok(())
    }
}

fn read_reg(pc: usize, st: &AbsState, r: u8) -> Result<RType, VerifyError> {
    check_reg(pc, r)?;
    let t = st.regs[r as usize];
    if t == RType::Uninit {
        Err(VerifyError::UninitRead { pc, reg: r })
    } else {
        Ok(t)
    }
}

fn write_reg(pc: usize, st: &mut AbsState, r: u8, t: RType) -> Result<(), VerifyError> {
    check_reg(pc, r)?;
    if r == REG_FP {
        return Err(VerifyError::ReadOnlyFp { pc });
    }
    st.regs[r as usize] = t;
    Ok(())
}

fn check_stack_access(pc: usize, off: i64, size: i64) -> Result<(), VerifyError> {
    if off < -(STACK_SIZE as i64) || off + size > 0 {
        Err(VerifyError::StackOutOfBounds { pc, off })
    } else {
        Ok(())
    }
}

/// Per-helper contract: `(argument count, stack-pointer args with their
/// required buffer sizes, packet-pointer args)`. Packet-pointer args
/// must be proven in bounds (`offset <= verified window`) — the helper
/// clamps its reads to `data_end`, but it must never receive a pointer
/// that could sit past the packet.
pub(crate) fn helper_contract(helper: HelperId) -> (u8, &'static [(u8, i64)], &'static [u8]) {
    match helper {
        HelperId::FibLookup => (3, &[(2, 24)], &[]),
        HelperId::FdbLookup => (3, &[(2, 20)], &[]),
        HelperId::IptLookup => (3, &[(2, 24)], &[]),
        HelperId::CtLookup => (3, &[(2, 24)], &[]),
        HelperId::NatLookup => (3, &[(2, 32)], &[]),
        HelperId::L7PolicyLookup => (4, &[], &[2]),
        HelperId::Redirect => (2, &[], &[]),
        HelperId::KtimeGetNs => (0, &[], &[]),
        HelperId::MapLookup => (5, &[(2, 1), (4, 1)], &[]),
        HelperId::MapUpdate => (5, &[(2, 1), (4, 1)], &[]),
        HelperId::TrivialNf => (1, &[], &[]),
        HelperId::XskRedirect => (2, &[], &[]),
    }
}

/// Verifies a program.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered, like the kernel
/// verifier's log-and-reject behavior.
pub fn verify(insns: &[Insn]) -> Result<(), VerifyError> {
    if insns.is_empty() {
        return Err(VerifyError::Empty);
    }
    if insns.len() > crate::insn::MAX_INSNS {
        return Err(VerifyError::TooLong(insns.len()));
    }

    let n = insns.len();
    let mut states: Vec<Option<AbsState>> = vec![None; n];
    states[0] = Some(AbsState::initial());

    for pc in 0..n {
        let Some(st) = states[pc].clone() else {
            continue; // unreachable
        };
        let succs = transfer(pc, insns[pc], st, n)?;
        for (succ, s) in succs {
            if succ == n {
                // Falling past the end is only legal... never.
                return Err(VerifyError::FallsOffEnd);
            }
            states[succ] = Some(match &states[succ] {
                Some(prev) => prev.join(&s),
                None => s,
            });
        }
    }
    Ok(())
}

type Succs = Vec<(usize, AbsState)>;

fn jump_target(pc: usize, off: i32, n: usize) -> Result<usize, VerifyError> {
    if off < 0 {
        return Err(VerifyError::BackwardJump { pc });
    }
    let target = pc + 1 + off as usize;
    if target > n {
        return Err(VerifyError::JumpOutOfBounds { pc });
    }
    Ok(target)
}

fn transfer(pc: usize, insn: Insn, mut st: AbsState, n: usize) -> Result<Succs, VerifyError> {
    match insn {
        Insn::AluImm { op, dst, imm } => {
            check_reg(pc, dst)?;
            // Linux's check_alu_op rejects these statically: constant
            // shift amounts must fit the 64-bit register width, and a
            // constant division or modulo by zero never loads. The
            // runtime keeps the `& 63` mask and the Linux-defined
            // div/mod-zero results as defense in depth.
            match op {
                AluOp::Lsh | AluOp::Rsh | AluOp::Arsh if !(0..64).contains(&imm) => {
                    return Err(VerifyError::InvalidShift { pc, imm });
                }
                AluOp::Div | AluOp::Mod if imm == 0 => {
                    return Err(VerifyError::DivByZeroImm { pc });
                }
                _ => {}
            }
            let t = match op {
                AluOp::Mov => RType::Scalar,
                AluOp::Add | AluOp::Sub => {
                    let cur = read_reg(pc, &st, dst)?;
                    let delta = if op == AluOp::Add { imm } else { -imm };
                    match cur {
                        RType::Scalar => RType::Scalar,
                        RType::ScalarBounded(m) => {
                            if delta >= 0 {
                                m.checked_add(delta as u64)
                                    .map_or(RType::Scalar, RType::ScalarBounded)
                            } else {
                                // Subtraction can wrap below zero; the
                                // unsigned bound no longer holds.
                                RType::Scalar
                            }
                        }
                        RType::PtrPacket(o) => RType::PtrPacket(
                            o.checked_add(delta)
                                .ok_or(VerifyError::InvalidPtrArith { pc })?,
                        ),
                        RType::PtrPacketVar { id, delta: d } => RType::PtrPacketVar {
                            id,
                            delta: d
                                .checked_add(delta)
                                .ok_or(VerifyError::InvalidPtrArith { pc })?,
                        },
                        RType::PtrStack(o) => RType::PtrStack(
                            o.checked_add(delta)
                                .ok_or(VerifyError::InvalidPtrArith { pc })?,
                        ),
                        _ => return Err(VerifyError::InvalidPtrArith { pc }),
                    }
                }
                _ => {
                    let cur = read_reg(pc, &st, dst)?;
                    if !is_scalar(cur) {
                        return Err(VerifyError::InvalidPtrArith { pc });
                    }
                    bounded_alu_imm(op, cur, imm)
                }
            };
            write_reg(pc, &mut st, dst, t)?;
            Ok(vec![(pc + 1, st)])
        }
        Insn::AluReg { op, dst, src } => {
            let src_t = read_reg(pc, &st, src)?;
            match op {
                AluOp::Mov => {
                    write_reg(pc, &mut st, dst, src_t)?;
                }
                AluOp::Add => {
                    let dst_t = read_reg(pc, &st, dst)?;
                    match (dst_t, src_t) {
                        // Forming a variable packet pointer: only a
                        // *bounded* scalar may be added, and the worst
                        // case must stay inside a sane frame size.
                        (RType::PtrPacket(o), RType::ScalarBounded(m)) => {
                            if o < 0 || (o as u64).saturating_add(m) > 0xFFFF {
                                return Err(VerifyError::InvalidPtrArith { pc });
                            }
                            write_reg(pc, &mut st, dst, RType::PtrPacketVar { id: pc, delta: 0 })?;
                        }
                        (a, b) if is_scalar(a) && is_scalar(b) => {
                            let t = match (a, b) {
                                (RType::ScalarBounded(x), RType::ScalarBounded(y)) => {
                                    x.checked_add(y).map_or(RType::Scalar, RType::ScalarBounded)
                                }
                                _ => RType::Scalar,
                            };
                            write_reg(pc, &mut st, dst, t)?;
                        }
                        _ => return Err(VerifyError::InvalidPtrArith { pc }),
                    }
                }
                _ => {
                    let dst_t = read_reg(pc, &st, dst)?;
                    if !is_scalar(dst_t) || !is_scalar(src_t) {
                        return Err(VerifyError::InvalidPtrArith { pc });
                    }
                    write_reg(pc, &mut st, dst, RType::Scalar)?;
                }
            }
            Ok(vec![(pc + 1, st)])
        }
        Insn::Ja { off } => {
            let target = jump_target(pc, off, n)?;
            Ok(vec![(target, st)])
        }
        Insn::JmpImm { dst, off, .. } => {
            read_reg(pc, &st, dst)?;
            let target = jump_target(pc, off, n)?;
            Ok(vec![(pc + 1, st.clone()), (target, st)])
        }
        Insn::JmpReg {
            cond,
            dst,
            src,
            off,
        } => {
            let dst_t = read_reg(pc, &st, dst)?;
            let src_t = read_reg(pc, &st, src)?;
            let target = jump_target(pc, off, n)?;
            let mut taken = st.clone();
            let mut fall = st;
            let bump_var = |s: &mut AbsState, id: usize, delta: i64| {
                let v = s.var_verified.entry(id).or_insert(0);
                *v = (*v).max(delta);
            };
            match (dst_t, src_t) {
                (a, b) if is_scalar(a) && is_scalar(b) => {}
                // The canonical packet guard: `if pkt+K > end goto bad`.
                (RType::PtrPacket(o), RType::PtrPacketEnd) => match cond {
                    JmpCond::Gt | JmpCond::Ge => {
                        fall.pkt_verified = fall.pkt_verified.max(o);
                    }
                    JmpCond::Le | JmpCond::Lt => {
                        taken.pkt_verified = taken.pkt_verified.max(o);
                    }
                    _ => return Err(VerifyError::BadPtrComparison { pc }),
                },
                (RType::PtrPacketEnd, RType::PtrPacket(o)) => match cond {
                    JmpCond::Lt | JmpCond::Le => {
                        fall.pkt_verified = fall.pkt_verified.max(o);
                    }
                    JmpCond::Gt | JmpCond::Ge => {
                        taken.pkt_verified = taken.pkt_verified.max(o);
                    }
                    _ => return Err(VerifyError::BadPtrComparison { pc }),
                },
                // The variable-pointer guard: `if var_ptr+K > end goto
                // bad` proves K bytes for that pointer's definition on
                // the surviving branch.
                (RType::PtrPacketVar { id, delta }, RType::PtrPacketEnd) => match cond {
                    JmpCond::Gt | JmpCond::Ge => bump_var(&mut fall, id, delta),
                    JmpCond::Le | JmpCond::Lt => bump_var(&mut taken, id, delta),
                    _ => return Err(VerifyError::BadPtrComparison { pc }),
                },
                (RType::PtrPacketEnd, RType::PtrPacketVar { id, delta }) => match cond {
                    JmpCond::Lt | JmpCond::Le => bump_var(&mut fall, id, delta),
                    JmpCond::Gt | JmpCond::Ge => bump_var(&mut taken, id, delta),
                    _ => return Err(VerifyError::BadPtrComparison { pc }),
                },
                _ => return Err(VerifyError::BadPtrComparison { pc }),
            }
            Ok(vec![(pc + 1, fall), (target, taken)])
        }
        Insn::Load {
            size,
            dst,
            src,
            off,
        } => {
            let base = read_reg(pc, &st, src)?;
            let bytes = size.bytes() as i64;
            let t = match base {
                RType::PtrCtx => ctx_load_type(pc, off as i64, size)?,
                RType::PtrPacket(o) => {
                    let start = o + off as i64;
                    let end = start + bytes;
                    if start < 0 || end > st.pkt_verified {
                        return Err(VerifyError::PacketOutOfBounds {
                            pc,
                            needed: end,
                            verified: st.pkt_verified,
                        });
                    }
                    load_result_type(size)
                }
                RType::PtrPacketVar { id, delta } => {
                    let start = delta + off as i64;
                    let end = start + bytes;
                    let verified = st.var_verified.get(&id).copied().unwrap_or(0);
                    if start < 0 || end > verified {
                        return Err(VerifyError::PacketOutOfBounds {
                            pc,
                            needed: end,
                            verified,
                        });
                    }
                    load_result_type(size)
                }
                RType::PtrStack(o) => {
                    check_stack_access(pc, o + off as i64, bytes)?;
                    load_result_type(size)
                }
                RType::Scalar | RType::ScalarBounded(_) | RType::Uninit | RType::PtrPacketEnd => {
                    return Err(VerifyError::NonPointerDeref { pc, reg: src })
                }
            };
            write_reg(pc, &mut st, dst, t)?;
            Ok(vec![(pc + 1, st)])
        }
        Insn::Store {
            size,
            dst,
            off,
            src,
        } => {
            read_reg(pc, &st, src)?;
            store_check(pc, &st, dst, off, size)?;
            Ok(vec![(pc + 1, st)])
        }
        Insn::StoreImm { size, dst, off, .. } => {
            store_check(pc, &st, dst, off, size)?;
            Ok(vec![(pc + 1, st)])
        }
        Insn::Call { helper } => {
            let (argc, stack_args, pkt_args) = helper_contract(helper);
            for r in 1..=argc {
                read_reg(pc, &st, r)?;
            }
            for (reg, need) in stack_args {
                match st.regs[*reg as usize] {
                    RType::PtrStack(o) => {
                        if o < -(STACK_SIZE as i64) || o + need > 0 {
                            return Err(VerifyError::BadHelperArg {
                                pc,
                                reg: *reg,
                                what: "stack buffer out of frame or too small",
                            });
                        }
                    }
                    _ => {
                        return Err(VerifyError::BadHelperArg {
                            pc,
                            reg: *reg,
                            what: "expected a stack pointer",
                        })
                    }
                }
            }
            for reg in pkt_args {
                match st.regs[*reg as usize] {
                    RType::PtrPacket(o) => {
                        if o < 0 || o > st.pkt_verified {
                            return Err(VerifyError::BadHelperArg {
                                pc,
                                reg: *reg,
                                what: "packet pointer not proven in bounds",
                            });
                        }
                    }
                    RType::PtrPacketVar { id, delta } => {
                        let ok =
                            delta >= 0 && st.var_verified.get(&id).is_some_and(|v| delta <= *v);
                        if !ok {
                            return Err(VerifyError::BadHelperArg {
                                pc,
                                reg: *reg,
                                what: "packet pointer not proven in bounds",
                            });
                        }
                    }
                    _ => {
                        return Err(VerifyError::BadHelperArg {
                            pc,
                            reg: *reg,
                            what: "expected a packet pointer",
                        })
                    }
                }
            }
            st.regs[0] = RType::Scalar;
            for r in 1..=5 {
                st.regs[r] = RType::Uninit;
            }
            Ok(vec![(pc + 1, st)])
        }
        Insn::TailCall { .. } => {
            // Either transfers control (never returns) or falls through on
            // an empty slot.
            Ok(vec![(pc + 1, st)])
        }
        Insn::Exit => {
            read_reg(pc, &st, 0)?;
            Ok(vec![])
        }
    }
}

/// Result type of a sized load through a data pointer: narrow loads
/// carry their width as a proven bound, enabling variable packet
/// offsets derived from packet contents.
fn load_result_type(size: MemSize) -> RType {
    match size {
        MemSize::B => RType::ScalarBounded(0xFF),
        MemSize::H => RType::ScalarBounded(0xFFFF),
        MemSize::W | MemSize::DW => RType::Scalar,
    }
}

/// Bound propagation for non-Mov/Add/Sub ALU immediates over scalars.
fn bounded_alu_imm(op: AluOp, cur: RType, imm: i64) -> RType {
    let bound = match cur {
        RType::ScalarBounded(m) => Some(m),
        _ => None,
    };
    match op {
        AluOp::And if imm >= 0 => {
            let cap = imm as u64;
            RType::ScalarBounded(bound.map_or(cap, |m| m.min(cap)))
        }
        AluOp::Rsh if (0..64).contains(&imm) => match bound {
            Some(m) => RType::ScalarBounded(m >> imm),
            None => RType::Scalar,
        },
        AluOp::Lsh if (0..64).contains(&imm) => match bound {
            Some(m) if m.leading_zeros() as i64 >= imm => RType::ScalarBounded(m << imm),
            _ => RType::Scalar,
        },
        _ => RType::Scalar,
    }
}

fn ctx_load_type(pc: usize, off: i64, size: MemSize) -> Result<RType, VerifyError> {
    use ctx_layout::*;
    match (off, size) {
        (DATA, MemSize::DW) => Ok(RType::PtrPacket(0)),
        (DATA_END, MemSize::DW) => Ok(RType::PtrPacketEnd),
        (IFINDEX | RX_QUEUE | LEN | VLAN_TCI | PROTOCOL, MemSize::W) => Ok(RType::Scalar),
        _ => Err(VerifyError::BadCtxAccess { pc, off }),
    }
}

fn store_check(
    pc: usize,
    st: &AbsState,
    dst: u8,
    off: i16,
    size: MemSize,
) -> Result<(), VerifyError> {
    let base = read_reg(pc, st, dst)?;
    let bytes = size.bytes() as i64;
    match base {
        RType::PtrStack(o) => check_stack_access(pc, o + off as i64, bytes),
        RType::PtrPacket(o) => {
            let start = o + off as i64;
            let end = start + bytes;
            if start < 0 || end > st.pkt_verified {
                Err(VerifyError::PacketOutOfBounds {
                    pc,
                    needed: end,
                    verified: st.pkt_verified,
                })
            } else {
                Ok(())
            }
        }
        RType::PtrPacketVar { id, delta } => {
            let start = delta + off as i64;
            let end = start + bytes;
            let verified = st.var_verified.get(&id).copied().unwrap_or(0);
            if start < 0 || end > verified {
                Err(VerifyError::PacketOutOfBounds {
                    pc,
                    needed: end,
                    verified,
                })
            } else {
                Ok(())
            }
        }
        RType::PtrCtx => Err(VerifyError::WriteToCtx { pc }),
        _ => Err(VerifyError::NonPointerDeref { pc, reg: dst }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::insn::Action;

    /// `r0 = PASS; exit` — minimal valid program.
    fn pass_prog() -> Vec<Insn> {
        let mut a = Asm::new();
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        a.finish().unwrap()
    }

    /// The canonical guarded packet read: load data/data_end from ctx,
    /// bounds-check 14 bytes, read the ethertype.
    fn guarded_packet_read() -> Vec<Insn> {
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16); // r2 = data
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16); // r3 = end
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 14); // r4 = data + 14
        a.jmp_reg(JmpCond::Gt, 4, 3, "out"); // if r4 > end goto out
        a.load(MemSize::H, 5, 2, 12); // ethertype
        a.label("out");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        a.finish().unwrap()
    }

    #[test]
    fn accepts_minimal_and_guarded_programs() {
        verify(&pass_prog()).unwrap();
        verify(&guarded_packet_read()).unwrap();
    }

    #[test]
    fn rejects_empty_and_too_long() {
        assert_eq!(verify(&[]), Err(VerifyError::Empty));
        let long = vec![Insn::Exit; crate::insn::MAX_INSNS + 1];
        assert!(matches!(verify(&long), Err(VerifyError::TooLong(_))));
    }

    #[test]
    fn rejects_constant_shifts_outside_register_width() {
        for op in [AluOp::Lsh, AluOp::Rsh, AluOp::Arsh] {
            for imm in [64i64, 65, 1000, -1] {
                let mut a = Asm::new();
                a.mov_imm(0, 1);
                a.alu_imm(op, 0, imm);
                a.mov_imm(0, Action::Pass.code() as i64);
                a.exit();
                let err = verify(&a.finish().unwrap()).unwrap_err();
                assert_eq!(err, VerifyError::InvalidShift { pc: 1, imm }, "{op:?}");
            }
            // The maximum legal amount still loads.
            let mut a = Asm::new();
            a.mov_imm(0, 1);
            a.alu_imm(op, 0, 63);
            a.mov_imm(0, Action::Pass.code() as i64);
            a.exit();
            verify(&a.finish().unwrap()).unwrap();
        }
    }

    #[test]
    fn rejects_constant_div_mod_by_zero() {
        for op in [AluOp::Div, AluOp::Mod] {
            let mut a = Asm::new();
            a.mov_imm(0, 7);
            a.alu_imm(op, 0, 0);
            a.exit();
            let err = verify(&a.finish().unwrap()).unwrap_err();
            assert_eq!(err, VerifyError::DivByZeroImm { pc: 1 }, "{op:?}");
            // Nonzero constants are fine.
            let mut a = Asm::new();
            a.mov_imm(0, 7);
            a.alu_imm(op, 0, 3);
            a.mov_imm(0, Action::Pass.code() as i64);
            a.exit();
            verify(&a.finish().unwrap()).unwrap();
        }
    }

    #[test]
    fn rejects_unguarded_packet_access() {
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::B, 0, 2, 0); // no bounds check!
        a.exit();
        let err = verify(&a.finish().unwrap()).unwrap_err();
        assert!(
            matches!(err, VerifyError::PacketOutOfBounds { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_access_beyond_verified_window() {
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16);
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 14);
        a.jmp_reg(JmpCond::Gt, 4, 3, "out");
        a.load(MemSize::W, 5, 2, 12); // bytes 12..16: beyond the 14 proven
        a.label("out");
        a.mov_imm(0, 2);
        a.exit();
        let err = verify(&a.finish().unwrap()).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::PacketOutOfBounds {
                    needed: 16,
                    verified: 14,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn guard_does_not_leak_to_wrong_branch() {
        // The *taken* branch of `if pkt+14 > end` must NOT get the bytes.
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16);
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 14);
        a.jmp_reg(JmpCond::Gt, 4, 3, "short");
        a.mov_imm(0, 2);
        a.exit();
        a.label("short");
        a.load(MemSize::B, 5, 2, 0); // on the too-short path!
        a.mov_imm(0, 1);
        a.exit();
        let err = verify(&a.finish().unwrap()).unwrap_err();
        assert!(
            matches!(err, VerifyError::PacketOutOfBounds { .. }),
            "{err}"
        );
    }

    #[test]
    fn joins_take_the_minimum_verified_window() {
        // One path proves 14 bytes, the other proves nothing; after the
        // join the access must be rejected.
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16);
        a.load(MemSize::W, 5, 1, ctx_layout::IFINDEX as i16);
        a.jmp_imm(JmpCond::Eq, 5, 7, "skip_guard");
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 14);
        a.jmp_reg(JmpCond::Gt, 4, 3, "out");
        a.label("skip_guard");
        a.load(MemSize::B, 5, 2, 0); // only guarded on one path
        a.label("out");
        a.mov_imm(0, 2);
        a.exit();
        let err = verify(&a.finish().unwrap()).unwrap_err();
        assert!(
            matches!(err, VerifyError::PacketOutOfBounds { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_backward_jump() {
        let insns = vec![
            Insn::AluImm {
                op: AluOp::Mov,
                dst: 0,
                imm: 2,
            },
            Insn::Ja { off: -2 },
            Insn::Exit,
        ];
        assert_eq!(verify(&insns), Err(VerifyError::BackwardJump { pc: 1 }));
    }

    #[test]
    fn rejects_jump_out_of_bounds() {
        let insns = vec![
            Insn::AluImm {
                op: AluOp::Mov,
                dst: 0,
                imm: 2,
            },
            Insn::Ja { off: 100 },
            Insn::Exit,
        ];
        assert_eq!(verify(&insns), Err(VerifyError::JumpOutOfBounds { pc: 1 }));
    }

    #[test]
    fn rejects_fall_off_end() {
        let insns = vec![Insn::AluImm {
            op: AluOp::Mov,
            dst: 0,
            imm: 2,
        }];
        assert_eq!(verify(&insns), Err(VerifyError::FallsOffEnd));
    }

    #[test]
    fn rejects_uninitialized_reads() {
        // r0 never written before exit.
        assert_eq!(
            verify(&[Insn::Exit]),
            Err(VerifyError::UninitRead { pc: 0, reg: 0 })
        );
        // r5 never written before use.
        let insns = vec![
            Insn::AluReg {
                op: AluOp::Mov,
                dst: 0,
                src: 5,
            },
            Insn::Exit,
        ];
        assert_eq!(
            verify(&insns),
            Err(VerifyError::UninitRead { pc: 0, reg: 5 })
        );
    }

    #[test]
    fn rejects_uninit_after_divergent_paths() {
        // r5 initialized on only one branch; reading it after the join
        // must fail.
        let mut a = Asm::new();
        a.load(MemSize::W, 2, 1, ctx_layout::IFINDEX as i16);
        a.jmp_imm(JmpCond::Eq, 2, 1, "skip");
        a.mov_imm(5, 7);
        a.label("skip");
        a.mov_reg(0, 5);
        a.exit();
        let err = verify(&a.finish().unwrap()).unwrap_err();
        assert!(
            matches!(err, VerifyError::UninitRead { reg: 5, .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_write_to_fp() {
        let insns = vec![
            Insn::AluImm {
                op: AluOp::Mov,
                dst: 10,
                imm: 0,
            },
            Insn::Exit,
        ];
        assert_eq!(verify(&insns), Err(VerifyError::ReadOnlyFp { pc: 0 }));
    }

    #[test]
    fn rejects_bad_ctx_access() {
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, 0x40); // past ctx end
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::BadCtxAccess { off: 0x40, .. })
        ));
        // Wrong size for a pointer field.
        let mut a = Asm::new();
        a.load(MemSize::W, 2, 1, ctx_layout::DATA as i16);
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::BadCtxAccess { .. })
        ));
    }

    #[test]
    fn rejects_ctx_write() {
        let mut a = Asm::new();
        a.store_imm(MemSize::W, 1, 0x10, 7);
        a.mov_imm(0, 2);
        a.exit();
        assert_eq!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::WriteToCtx { pc: 0 })
        );
    }

    #[test]
    fn stack_bounds_enforced() {
        // In-bounds spill is fine.
        let mut a = Asm::new();
        a.mov_reg(2, 10);
        a.alu_imm(AluOp::Add, 2, -16);
        a.store_imm(MemSize::DW, 2, 0, 42);
        a.load(MemSize::DW, 0, 2, 0);
        a.exit();
        verify(&a.finish().unwrap()).unwrap();
        // Below the frame.
        let mut a = Asm::new();
        a.store_imm(MemSize::DW, 10, -520, 42);
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::StackOutOfBounds { .. })
        ));
        // Above the frame top (positive offsets).
        let mut a = Asm::new();
        a.store_imm(MemSize::DW, 10, 8, 42);
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::StackOutOfBounds { .. })
        ));
    }

    #[test]
    fn rejects_pointer_arithmetic_abuse() {
        // Multiplying a pointer.
        let mut a = Asm::new();
        a.alu_imm(AluOp::Mul, 1, 2);
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::InvalidPtrArith { .. })
        ));
        // Adding to the ctx pointer.
        let mut a = Asm::new();
        a.alu_imm(AluOp::Add, 1, 8);
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::InvalidPtrArith { .. })
        ));
        // Variable-offset packet pointer (reg + reg).
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::W, 3, 1, ctx_layout::IFINDEX as i16);
        a.alu_reg(AluOp::Add, 2, 3);
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::InvalidPtrArith { .. })
        ));
    }

    /// doff-style variable-offset read: load a byte from the packet,
    /// shift it into a bounded offset, add it to a packet pointer, guard
    /// the result against `data_end`, then load through it. `second_guard`
    /// controls whether the var-pointer guard is emitted.
    fn var_offset_prog(second_guard: bool) -> Vec<Insn> {
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16); // r2 = data
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16); // r3 = end
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 15);
        a.jmp_reg(JmpCond::Gt, 4, 3, "out"); // prove 15 constant bytes
        a.load(MemSize::B, 5, 2, 14); // bounded <= 255
        a.alu_imm(AluOp::Rsh, 5, 4); // bounded <= 15
        a.alu_imm(AluOp::Lsh, 5, 2); // bounded <= 60
        a.mov_reg(6, 2);
        a.alu_reg(AluOp::Add, 6, 5); // r6 = data + doff (variable)
        if second_guard {
            a.mov_reg(7, 6);
            a.alu_imm(AluOp::Add, 7, 1);
            a.jmp_reg(JmpCond::Gt, 7, 3, "out"); // prove 1 byte at r6
        }
        a.load(MemSize::B, 8, 6, 0);
        a.label("out");
        a.mov_imm(0, 2);
        a.exit();
        a.finish().unwrap()
    }

    #[test]
    fn accepts_guarded_variable_offset_load() {
        verify(&var_offset_prog(true)).unwrap();
    }

    #[test]
    fn rejects_unguarded_variable_offset_load() {
        // The constant 15-byte guard must NOT cover the variable pointer.
        let err = verify(&var_offset_prog(false)).unwrap_err();
        assert!(
            matches!(err, VerifyError::PacketOutOfBounds { verified: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn variable_guard_covers_only_proven_bytes() {
        // One byte proven at the variable pointer; a halfword load
        // through it must be rejected.
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16);
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 15);
        a.jmp_reg(JmpCond::Gt, 4, 3, "out");
        a.load(MemSize::B, 5, 2, 14);
        a.mov_reg(6, 2);
        a.alu_reg(AluOp::Add, 6, 5);
        a.mov_reg(7, 6);
        a.alu_imm(AluOp::Add, 7, 1);
        a.jmp_reg(JmpCond::Gt, 7, 3, "out");
        a.load(MemSize::H, 8, 6, 0); // needs 2 bytes, only 1 proven
        a.label("out");
        a.mov_imm(0, 2);
        a.exit();
        let err = verify(&a.finish().unwrap()).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::PacketOutOfBounds {
                    needed: 2,
                    verified: 1,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn l7_helper_requires_proven_packet_pointer() {
        // r2 a plain scalar: rejected.
        let mut a = Asm::new();
        a.mov_imm(2, 0);
        a.mov_imm(3, 64);
        a.mov_imm(4, 0x100);
        a.call(HelperId::L7PolicyLookup);
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::BadHelperArg { reg: 2, .. })
        ));
        // r2 a variable packet pointer without a guard: rejected.
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16);
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 15);
        a.jmp_reg(JmpCond::Gt, 4, 3, "out");
        a.load(MemSize::B, 5, 2, 14);
        a.alu_reg(AluOp::Add, 2, 5);
        a.mov_imm(3, 64);
        a.mov_imm(4, 0x100);
        a.call(HelperId::L7PolicyLookup);
        a.label("out");
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::BadHelperArg { reg: 2, .. })
        ));
        // Guarded variable pointer: accepted.
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16);
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 15);
        a.jmp_reg(JmpCond::Gt, 4, 3, "out");
        a.load(MemSize::B, 5, 2, 14);
        a.alu_reg(AluOp::Add, 2, 5);
        a.jmp_reg(JmpCond::Gt, 2, 3, "out"); // prove the pointer itself
        a.mov_imm(3, 64);
        a.mov_imm(4, 0x100);
        a.call(HelperId::L7PolicyLookup);
        a.label("out");
        a.mov_imm(0, 2);
        a.exit();
        verify(&a.finish().unwrap()).unwrap();
    }

    #[test]
    fn rejects_non_pointer_deref() {
        let mut a = Asm::new();
        a.mov_imm(2, 1000);
        a.load(MemSize::B, 0, 2, 0);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::NonPointerDeref { reg: 2, .. })
        ));
    }

    #[test]
    fn rejects_bad_pointer_comparison() {
        // Comparing packet pointer against a scalar.
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.mov_imm(3, 5);
        a.jmp_reg(JmpCond::Gt, 2, 3, "out");
        a.label("out");
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::BadPtrComparison { .. })
        ));
    }

    #[test]
    fn helper_contracts_enforced() {
        // FibLookup with r2 not a stack pointer.
        let mut a = Asm::new();
        a.mov_imm(2, 0);
        a.mov_imm(3, 24);
        a.call(HelperId::FibLookup);
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::BadHelperArg { reg: 2, .. })
        ));
        // FibLookup with a too-small stack buffer.
        let mut a = Asm::new();
        a.mov_reg(2, 10);
        a.alu_imm(AluOp::Add, 2, -8); // only 8 bytes available
        a.mov_imm(3, 24);
        a.call(HelperId::FibLookup);
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::BadHelperArg { reg: 2, .. })
        ));
        // Proper call verifies.
        let mut a = Asm::new();
        a.mov_reg(2, 10);
        a.alu_imm(AluOp::Add, 2, -24);
        a.mov_imm(3, 24);
        a.call(HelperId::FibLookup);
        a.mov_reg(0, 0); // r0 is the result
        a.exit();
        verify(&a.finish().unwrap()).unwrap();
    }

    #[test]
    fn helper_clobbers_caller_saved_registers() {
        // Using r3 after a call must fail (clobbered).
        let mut a = Asm::new();
        a.mov_imm(3, 7);
        a.call(HelperId::KtimeGetNs);
        a.mov_reg(0, 3);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::UninitRead { reg: 3, .. })
        ));
        // r6-r9 are callee-saved and survive.
        let mut a = Asm::new();
        a.mov_imm(6, 7);
        a.call(HelperId::KtimeGetNs);
        a.mov_reg(0, 6);
        a.exit();
        verify(&a.finish().unwrap()).unwrap();
    }

    #[test]
    fn uninit_helper_args_rejected() {
        let mut a = Asm::new();
        a.call(HelperId::Redirect); // r1, r2 never set
        a.mov_imm(0, 2);
        a.exit();
        assert!(matches!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::UninitRead { .. })
        ));
    }

    #[test]
    fn tail_call_fall_through_must_be_covered() {
        // A tail call as the last instruction can fall through -> error.
        let mut a = Asm::new();
        a.mov_imm(0, 2);
        a.tail_call(0, 0);
        assert_eq!(verify(&a.finish().unwrap()), Err(VerifyError::FallsOffEnd));
        // With an exit after it, fine.
        let mut a = Asm::new();
        a.mov_imm(0, 2);
        a.tail_call(0, 0);
        a.exit();
        verify(&a.finish().unwrap()).unwrap();
    }

    #[test]
    fn invalid_register_rejected() {
        assert_eq!(
            verify(&[
                Insn::AluImm {
                    op: AluOp::Mov,
                    dst: 11,
                    imm: 0
                },
                Insn::Exit
            ]),
            Err(VerifyError::InvalidReg { pc: 0 })
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerifyError::PacketOutOfBounds {
            pc: 5,
            needed: 16,
            verified: 14,
        };
        let s = e.to_string();
        assert!(s.contains("pc 5") && s.contains("16") && s.contains("14"));
        assert!(VerifyError::Empty.to_string().contains("empty"));
        assert!(VerifyError::FallsOffEnd.to_string().contains("falls off"));
    }
}
