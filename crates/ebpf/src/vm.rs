//! The eBPF interpreter: executes verified programs with cycle-accurate
//! cost accounting and defense-in-depth runtime bounds checks.
//!
//! Registers are plain `u64`s; pointers are tagged by their upper 32 bits
//! ([`PACKET_BASE`], [`STACK_BASE`], [`CTX_BASE`]), which keeps pointer
//! arithmetic and comparisons honest machine operations exactly as in
//! real eBPF. Every instruction charges
//! [`linuxfp_sim::CostModel::ebpf_insn_ns`]; helpers and tail calls charge
//! their own calibrated prices, so the cost of a synthesized fast path
//! *emerges* from the code the synthesizer produced instead of being a
//! hard-wired constant.
//!
//! This interpreter is the *reference oracle*: [`crate::compile`] lowers
//! the same verified bytecode into a pre-decoded direct-threaded form at
//! load time (the default datapath, `net.linuxfp.jit=1`), and the parity
//! tests execute every program through both engines asserting identical
//! [`VmOutcome`]s — including the final register file — and byte-identical
//! frames. The shared [`Machine`], [`alu`], [`jump_taken`], and
//! [`call_helper`] building blocks make divergence structurally hard.

use crate::helpers::HelperEnv;
use crate::insn::{Action, AluOp, HelperId, Insn, JmpCond, MemSize, MAX_TAIL_CALLS, STACK_SIZE};
use crate::maps::{MapId, MapStore};
use crate::program::LoadedProgram;
use crate::verifier::ctx_layout;
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::netfilter::{NfVerdict, PacketMeta};
use linuxfp_packet::ipv4::IpProto;
use linuxfp_packet::MacAddr;
use linuxfp_sim::{CostModel, CostTracker};
use std::fmt;
use std::net::Ipv4Addr;

/// Base of the packet memory region.
pub const PACKET_BASE: u64 = 0x1_0000_0000;
/// Base of the stack memory region (the frame pointer starts at
/// `STACK_BASE + STACK_SIZE`).
pub const STACK_BASE: u64 = 0x2_0000_0000;
/// Base of the context region.
pub const CTX_BASE: u64 = 0x3_0000_0000;

/// Hard cap on executed instructions per invocation (the verifier already
/// guarantees termination; this is a backstop for tail-call chains).
pub(crate) const INSN_BUDGET: u64 = 1_000_000;

/// Runtime faults. The verifier makes these unreachable for loaded
/// programs; they exist as defense in depth and surface as
/// [`Action::Aborted`]. Division and modulo by zero are *not* faults:
/// Linux's BPF runtime defines `BPF_DIV` by zero as `dst = 0` and
/// `BPF_MOD` by zero as `dst` unchanged, and the [`alu`] unit mirrors
/// that (counted in [`VmOutcome::div_zeros`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// Load/store outside any mapped region.
    BadAccess(u64),
    /// Write to the read-only context region.
    CtxWrite,
    /// Executed-instruction budget exhausted.
    BudgetExhausted,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::BadAccess(addr) => write!(f, "bad memory access at {addr:#x}"),
            VmError::CtxWrite => write!(f, "write to read-only ctx"),
            VmError::BudgetExhausted => write!(f, "instruction budget exhausted"),
        }
    }
}

impl std::error::Error for VmError {}

/// The execution context handed to a program: the packet plus the
/// metadata fields the XDP/TC context structs expose.
#[derive(Debug)]
pub struct VmCtx<'a> {
    /// The raw frame; programs read and rewrite it in place.
    pub packet: &'a mut Vec<u8>,
    /// Ingress interface index.
    pub ingress_ifindex: u32,
    /// RSS queue.
    pub rx_queue: u32,
    /// VLAN TCI (TC hook only; 0 otherwise).
    pub vlan_tci: u32,
    /// EtherType (TC hook only; 0 otherwise).
    pub protocol: u32,
}

impl<'a> VmCtx<'a> {
    /// An XDP-style context: just the packet and receive metadata.
    pub fn xdp(packet: &'a mut Vec<u8>, ingress_ifindex: u32, rx_queue: u32) -> Self {
        VmCtx {
            packet,
            ingress_ifindex,
            rx_queue,
            vlan_tci: 0,
            protocol: 0,
        }
    }
}

/// Result of one program invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmOutcome {
    /// Final verdict.
    pub action: Action,
    /// Target interface when the verdict is [`Action::Redirect`].
    pub redirect: Option<IfIndex>,
    /// Instructions executed (across tail calls).
    pub insns_executed: u64,
    /// Tail calls taken.
    pub tail_calls: u64,
    /// Helper functions invoked (successful or faulting).
    pub helper_calls: u64,
    /// Runtime fault, if any (implies `action == Aborted`).
    pub error: Option<VmError>,
    /// Whether the frame was pushed to an AF_XDP socket (a `Redirect`
    /// verdict then means "consumed into user space").
    pub to_user: bool,
    /// The L7 helper could not parse the request line: a `Pass` verdict
    /// then punts as [`L7Unparseable`] rather than a plain program pass.
    ///
    /// [`L7Unparseable`]: linuxfp_telemetry::trace::PuntReason::L7Unparseable
    pub l7_punt: bool,
    /// The L7 helper answered allow-without-pin: the verdict depends on
    /// this segment's payload, so the flow cache must not record it.
    pub l7_uncacheable: bool,
    /// Division/modulo-by-zero events (Linux-defined results, not faults).
    pub div_zeros: u64,
    /// The final register file — part of the interpreter-vs-compiled
    /// parity oracle, so an engine divergence in any intermediate value
    /// that reaches a register is observable, not just the verdict.
    pub regs: [u64; 11],
}

pub(crate) struct Machine<'r> {
    pub(crate) regs: [u64; 11],
    pub(crate) stack: [u8; STACK_SIZE],
    pub(crate) redirect: Option<IfIndex>,
    pub(crate) to_user: bool,
    pub(crate) l7_punt: bool,
    pub(crate) l7_uncacheable: bool,
    pub(crate) div_zeros: u64,
    pub(crate) ctx: VmCtx<'r>,
}

impl<'r> Machine<'r> {
    /// A fresh machine in the state a program entry expects: r1 = ctx,
    /// r10 = frame pointer, everything else zero.
    pub(crate) fn new(ctx: VmCtx<'r>) -> Self {
        let mut m = Machine {
            regs: [0; 11],
            stack: [0; STACK_SIZE],
            redirect: None,
            to_user: false,
            l7_punt: false,
            l7_uncacheable: false,
            div_zeros: 0,
            ctx,
        };
        m.regs[1] = CTX_BASE;
        m.regs[10] = STACK_BASE + STACK_SIZE as u64;
        m
    }

    pub(crate) fn read_mem(&self, addr: u64, size: MemSize) -> Result<u64, VmError> {
        let n = size.bytes();
        match addr & 0xFFFF_FFFF_0000_0000 {
            PACKET_BASE => {
                let off = (addr - PACKET_BASE) as usize;
                let buf = &self.ctx.packet;
                if off + n > buf.len() {
                    return Err(VmError::BadAccess(addr));
                }
                Ok(read_le(&buf[off..off + n]))
            }
            STACK_BASE => {
                let off = (addr - STACK_BASE) as usize;
                if off + n > STACK_SIZE {
                    return Err(VmError::BadAccess(addr));
                }
                Ok(read_le(&self.stack[off..off + n]))
            }
            CTX_BASE => {
                let off = (addr - CTX_BASE) as i64;
                match (off, size) {
                    (ctx_layout::DATA, MemSize::DW) => Ok(PACKET_BASE),
                    (ctx_layout::DATA_END, MemSize::DW) => {
                        Ok(PACKET_BASE + self.ctx.packet.len() as u64)
                    }
                    (ctx_layout::IFINDEX, MemSize::W) => Ok(u64::from(self.ctx.ingress_ifindex)),
                    (ctx_layout::RX_QUEUE, MemSize::W) => Ok(u64::from(self.ctx.rx_queue)),
                    (ctx_layout::LEN, MemSize::W) => Ok(self.ctx.packet.len() as u64),
                    (ctx_layout::VLAN_TCI, MemSize::W) => Ok(u64::from(self.ctx.vlan_tci)),
                    (ctx_layout::PROTOCOL, MemSize::W) => Ok(u64::from(self.ctx.protocol)),
                    _ => Err(VmError::BadAccess(addr)),
                }
            }
            _ => Err(VmError::BadAccess(addr)),
        }
    }

    pub(crate) fn write_mem(
        &mut self,
        addr: u64,
        size: MemSize,
        value: u64,
    ) -> Result<(), VmError> {
        let n = size.bytes();
        match addr & 0xFFFF_FFFF_0000_0000 {
            PACKET_BASE => {
                let off = (addr - PACKET_BASE) as usize;
                let buf = &mut self.ctx.packet;
                if off + n > buf.len() {
                    return Err(VmError::BadAccess(addr));
                }
                write_le(&mut buf[off..off + n], value);
                Ok(())
            }
            STACK_BASE => {
                let off = (addr - STACK_BASE) as usize;
                if off + n > STACK_SIZE {
                    return Err(VmError::BadAccess(addr));
                }
                write_le(&mut self.stack[off..off + n], value);
                Ok(())
            }
            CTX_BASE => Err(VmError::CtxWrite),
            _ => Err(VmError::BadAccess(addr)),
        }
    }

    /// Borrows `len` bytes of the stack region at a tagged address.
    fn stack_slice(&mut self, addr: u64, len: usize) -> Result<&mut [u8], VmError> {
        if addr & 0xFFFF_FFFF_0000_0000 != STACK_BASE {
            return Err(VmError::BadAccess(addr));
        }
        let off = (addr - STACK_BASE) as usize;
        if off + len > STACK_SIZE {
            return Err(VmError::BadAccess(addr));
        }
        Ok(&mut self.stack[off..off + len])
    }
}

fn read_le(b: &[u8]) -> u64 {
    let mut v = [0u8; 8];
    v[..b.len()].copy_from_slice(b);
    u64::from_le_bytes(v)
}

fn write_le(b: &mut [u8], value: u64) {
    let v = value.to_le_bytes();
    b.copy_from_slice(&v[..b.len()]);
}

/// Executes a loaded program to completion on the reference interpreter.
///
/// `maps` provides tail-call program arrays and data maps; `env` is the
/// kernel (or [`crate::helpers::NullEnv`]); costs are charged to
/// `tracker`. The production datapath normally runs the compiled form
/// instead (see [`execute`] and [`crate::compile`]); this function is the
/// oracle the compiled engine is checked against.
pub fn run(
    prog: &LoadedProgram,
    ctx: VmCtx<'_>,
    env: &mut dyn HelperEnv,
    maps: &MapStore,
    cost: &CostModel,
    tracker: &mut CostTracker,
) -> VmOutcome {
    let mut m = Machine::new(ctx);
    let mut cur = prog.clone();
    let mut pc = 0usize;
    let mut executed = 0u64;
    let mut tail_calls = 0u64;
    let mut helper_calls = 0u64;

    loop {
        if executed >= INSN_BUDGET {
            return fault(
                VmError::BudgetExhausted,
                &m,
                executed,
                tail_calls,
                helper_calls,
            );
        }
        let insn = cur.insns()[pc];
        executed += 1;
        tracker.charge("ebpf_insn", cost.ebpf_insn_ns);
        pc += 1;
        match insn {
            Insn::AluImm { op, dst, imm } => {
                let d = dst as usize;
                m.regs[d] = alu(op, m.regs[d], imm as u64, &mut m.div_zeros);
            }
            Insn::AluReg { op, dst, src } => {
                let (d, s) = (dst as usize, src as usize);
                m.regs[d] = alu(op, m.regs[d], m.regs[s], &mut m.div_zeros);
            }
            Insn::Ja { off } => {
                pc = (pc as i64 + off as i64) as usize;
            }
            Insn::JmpImm {
                cond,
                dst,
                imm,
                off,
            } => {
                if jump_taken(cond, m.regs[dst as usize], imm as u64) {
                    pc = (pc as i64 + off as i64) as usize;
                }
            }
            Insn::JmpReg {
                cond,
                dst,
                src,
                off,
            } => {
                if jump_taken(cond, m.regs[dst as usize], m.regs[src as usize]) {
                    pc = (pc as i64 + off as i64) as usize;
                }
            }
            Insn::Load {
                size,
                dst,
                src,
                off,
            } => {
                let addr = m.regs[src as usize].wrapping_add(off as i64 as u64);
                match m.read_mem(addr, size) {
                    Ok(v) => m.regs[dst as usize] = v,
                    Err(e) => return fault(e, &m, executed, tail_calls, helper_calls),
                }
            }
            Insn::Store {
                size,
                dst,
                off,
                src,
            } => {
                let addr = m.regs[dst as usize].wrapping_add(off as i64 as u64);
                let v = m.regs[src as usize];
                if let Err(e) = m.write_mem(addr, size, v) {
                    return fault(e, &m, executed, tail_calls, helper_calls);
                }
            }
            Insn::StoreImm {
                size,
                dst,
                off,
                imm,
            } => {
                let addr = m.regs[dst as usize].wrapping_add(off as i64 as u64);
                if let Err(e) = m.write_mem(addr, size, imm as u64) {
                    return fault(e, &m, executed, tail_calls, helper_calls);
                }
            }
            Insn::Call { helper } => {
                helper_calls += 1;
                if let Err(e) = call_helper(helper, &mut m, env, maps, cost, tracker) {
                    return fault(e, &m, executed, tail_calls, helper_calls);
                }
            }
            Insn::TailCall { prog_array, index } => {
                if tail_calls < u64::from(MAX_TAIL_CALLS) {
                    if let Some(next) = maps.prog_array_get(MapId(prog_array), index as usize) {
                        tracker.charge("tail_call", cost.tail_call_ns);
                        tail_calls += 1;
                        cur = next;
                        pc = 0;
                        // The callee starts like a fresh invocation: r1
                        // carries the ctx (the first argument of
                        // bpf_tail_call); scratch registers are cleared.
                        m.regs[1] = CTX_BASE;
                        for r in 2..=5 {
                            m.regs[r] = 0;
                        }
                        continue;
                    }
                }
                // Missing slot or depth exceeded: fall through.
            }
            Insn::Exit => {
                return finish(&m, executed, tail_calls, helper_calls);
            }
        }
    }
}

/// Runs one program over a whole burst of frames.
///
/// The program is resolved once for the batch — callers that would
/// otherwise re-fetch a program-array slot per packet (the dispatcher
/// pattern) fetch it once and hand the burst here. Outcome `i` and
/// tracker `i` correspond to `packets[i]`; frames are processed in
/// order, so helper-visible kernel state (conntrack, FDB) evolves
/// exactly as under one-at-a-time execution.
///
/// # Panics
///
/// Panics if `packets` and `trackers` have different lengths.
#[allow(clippy::too_many_arguments)]
pub fn run_batch(
    prog: &LoadedProgram,
    packets: &mut [linuxfp_packet::PacketBuf],
    ingress_ifindex: u32,
    rx_queue: u32,
    env: &mut dyn HelperEnv,
    maps: &MapStore,
    cost: &CostModel,
    trackers: &mut [CostTracker],
) -> Vec<VmOutcome> {
    assert_eq!(packets.len(), trackers.len(), "one tracker per packet");
    packets
        .iter_mut()
        .zip(trackers.iter_mut())
        .map(|(pkt, tracker)| {
            let ctx = VmCtx::xdp(pkt, ingress_ifindex, rx_queue);
            run(prog, ctx, env, maps, cost, tracker)
        })
        .collect()
}

/// Executes a loaded program with the engine selected by `jit`: the
/// load-time-compiled direct-threaded form (the default datapath,
/// `net.linuxfp.jit=1`) or the reference interpreter. Both engines are
/// observationally identical — the parity tests enforce it — but charge
/// different per-instruction prices
/// ([`linuxfp_sim::CostModel::jit_insn_ns`] vs
/// [`linuxfp_sim::CostModel::ebpf_insn_ns`]) under distinct stage names
/// (`jit_insn` vs `ebpf_insn`) so `CostBreakdown` attributes the dispatch
/// mode per packet.
pub fn execute(
    prog: &LoadedProgram,
    ctx: VmCtx<'_>,
    env: &mut dyn HelperEnv,
    maps: &MapStore,
    cost: &CostModel,
    tracker: &mut CostTracker,
    jit: bool,
) -> VmOutcome {
    if jit {
        crate::compile::run(prog, ctx, env, maps, cost, tracker)
    } else {
        run(prog, ctx, env, maps, cost, tracker)
    }
}

pub(crate) fn fault(
    error: VmError,
    m: &Machine<'_>,
    insns_executed: u64,
    tail_calls: u64,
    helper_calls: u64,
) -> VmOutcome {
    VmOutcome {
        action: Action::Aborted,
        redirect: None,
        insns_executed,
        tail_calls,
        helper_calls,
        error: Some(error),
        to_user: false,
        l7_punt: false,
        l7_uncacheable: false,
        div_zeros: m.div_zeros,
        regs: m.regs,
    }
}

/// The normal-exit outcome, shared by both engines so parity holds by
/// construction for everything the machine carries.
pub(crate) fn finish(
    m: &Machine<'_>,
    insns_executed: u64,
    tail_calls: u64,
    helper_calls: u64,
) -> VmOutcome {
    VmOutcome {
        action: Action::from_code(m.regs[0]),
        redirect: m.redirect,
        insns_executed,
        tail_calls,
        helper_calls,
        error: None,
        to_user: m.to_user,
        l7_punt: m.l7_punt,
        l7_uncacheable: m.l7_uncacheable,
        div_zeros: m.div_zeros,
        regs: m.regs,
    }
}

/// One ALU operation with Linux BPF runtime semantics: wrapping
/// arithmetic, shift amounts masked to the register width, and the
/// kernel-defined div/mod-by-zero results (`BPF_DIV` by zero yields 0,
/// `BPF_MOD` by zero leaves `dst` unchanged) rather than a fault.
pub(crate) fn alu(op: AluOp, dst: u64, src: u64, div_zeros: &mut u64) -> u64 {
    match op {
        AluOp::Add => dst.wrapping_add(src),
        AluOp::Sub => dst.wrapping_sub(src),
        AluOp::Mul => dst.wrapping_mul(src),
        AluOp::Div => match dst.checked_div(src) {
            Some(v) => v,
            None => {
                *div_zeros += 1;
                0
            }
        },
        AluOp::Or => dst | src,
        AluOp::And => dst & src,
        AluOp::Lsh => dst.wrapping_shl((src & 63) as u32),
        AluOp::Rsh => dst.wrapping_shr((src & 63) as u32),
        AluOp::Mod => match dst.checked_rem(src) {
            Some(v) => v,
            None => {
                *div_zeros += 1;
                dst
            }
        },
        AluOp::Xor => dst ^ src,
        AluOp::Mov => src,
        AluOp::Arsh => ((dst as i64).wrapping_shr((src & 63) as u32)) as u64,
    }
}

pub(crate) fn jump_taken(cond: JmpCond, dst: u64, src: u64) -> bool {
    match cond {
        JmpCond::Eq => dst == src,
        JmpCond::Ne => dst != src,
        JmpCond::Gt => dst > src,
        JmpCond::Ge => dst >= src,
        JmpCond::Lt => dst < src,
        JmpCond::Le => dst <= src,
        JmpCond::Sgt => (dst as i64) > (src as i64),
        JmpCond::Slt => (dst as i64) < (src as i64),
        JmpCond::Set => dst & src != 0,
    }
}

pub(crate) fn call_helper(
    helper: HelperId,
    m: &mut Machine<'_>,
    env: &mut dyn HelperEnv,
    maps: &MapStore,
    cost: &CostModel,
    tracker: &mut CostTracker,
) -> Result<(), VmError> {
    let r0 = match helper {
        HelperId::FibLookup => {
            tracker.charge("helper_fib_lookup", cost.helper_fib_lookup_ns);
            let buf = m.stack_slice(m.regs[2], 24)?;
            let dst = Ipv4Addr::new(buf[0], buf[1], buf[2], buf[3]);
            match env.env_fib_lookup(dst) {
                Some(res) => {
                    let buf = m.stack_slice(m.regs[2], 24)?;
                    buf[4..8].copy_from_slice(&res.ifindex.as_u32().to_le_bytes());
                    buf[8..14].copy_from_slice(&res.src_mac.octets());
                    buf[14..20].copy_from_slice(&res.dst_mac.octets());
                    0
                }
                None => 1,
            }
        }
        HelperId::FdbLookup => {
            tracker.charge("helper_fdb_lookup", cost.helper_fdb_lookup_ns);
            let ingress = IfIndex(m.ctx.ingress_ifindex);
            let buf = m.stack_slice(m.regs[2], 20)?;
            let src = MacAddr::new([buf[0], buf[1], buf[2], buf[3], buf[4], buf[5]]);
            let dst = MacAddr::new([buf[6], buf[7], buf[8], buf[9], buf[10], buf[11]]);
            let vlan = u16::from_le_bytes([buf[12], buf[13]]);
            match env.env_fdb_lookup(ingress, src, dst, vlan) {
                linuxfp_netstack::stack::FdbLookupOutcome::Hit(egress) => {
                    let buf = m.stack_slice(m.regs[2], 20)?;
                    buf[16..20].copy_from_slice(&egress.as_u32().to_le_bytes());
                    0
                }
                linuxfp_netstack::stack::FdbLookupOutcome::SrcUnknown => 1,
                linuxfp_netstack::stack::FdbLookupOutcome::DstMiss => 2,
            }
        }
        HelperId::IptLookup => {
            tracker.charge("helper_ipt_base", cost.helper_ipt_base_ns);
            let buf = m.stack_slice(m.regs[2], 24)?;
            let meta = PacketMeta {
                src: Ipv4Addr::new(buf[0], buf[1], buf[2], buf[3]),
                dst: Ipv4Addr::new(buf[4], buf[5], buf[6], buf[7]),
                proto: IpProto::from(buf[8]),
                sport: u16::from_le_bytes([buf[10], buf[11]]),
                dport: u16::from_le_bytes([buf[12], buf[13]]),
                in_if: IfIndex(u32::from_le_bytes([buf[16], buf[17], buf[18], buf[19]])),
                out_if: IfIndex(u32::from_le_bytes([buf[20], buf[21], buf[22], buf[23]])),
            };
            match env.env_ipt_lookup(&meta, tracker) {
                NfVerdict::Accept => 0,
                NfVerdict::Drop => 1,
            }
        }
        HelperId::CtLookup => {
            tracker.charge("conntrack", cost.conntrack_lookup_ns);
            let buf = m.stack_slice(m.regs[2], 24)?;
            let src = Ipv4Addr::new(buf[0], buf[1], buf[2], buf[3]);
            let dst = Ipv4Addr::new(buf[4], buf[5], buf[6], buf[7]);
            let proto = buf[8];
            let sport = u16::from_le_bytes([buf[10], buf[11]]);
            let dport = u16::from_le_bytes([buf[12], buf[13]]);
            match env.env_ct_lookup(src, sport, dst, dport, proto) {
                Some((backend, port)) => {
                    let buf = m.stack_slice(m.regs[2], 24)?;
                    buf[16..20].copy_from_slice(&backend.octets());
                    buf[20..22].copy_from_slice(&port.to_le_bytes());
                    0
                }
                None => 1,
            }
        }
        HelperId::NatLookup => {
            // Same price as a conntrack lookup: the helper walks the
            // very same kernel table.
            tracker.charge("nat_lookup", cost.conntrack_lookup_ns);
            let buf = m.stack_slice(m.regs[2], 32)?;
            let src = Ipv4Addr::new(buf[0], buf[1], buf[2], buf[3]);
            let dst = Ipv4Addr::new(buf[4], buf[5], buf[6], buf[7]);
            let proto = buf[8];
            let sport = u16::from_le_bytes([buf[10], buf[11]]);
            let dport = u16::from_le_bytes([buf[12], buf[13]]);
            match env.env_nat_lookup(src, sport, dst, dport, proto) {
                linuxfp_netstack::nat::NatLookupOutcome::Hit(x) => {
                    let buf = m.stack_slice(m.regs[2], 32)?;
                    buf[16..20].copy_from_slice(&x.src.octets());
                    buf[20..24].copy_from_slice(&x.dst.octets());
                    buf[24..26].copy_from_slice(&x.sport.to_le_bytes());
                    buf[26..28].copy_from_slice(&x.dport.to_le_bytes());
                    0
                }
                linuxfp_netstack::nat::NatLookupOutcome::Miss => 1,
                linuxfp_netstack::nat::NatLookupOutcome::NoNat => 2,
            }
        }
        HelperId::L7PolicyLookup => {
            // Same price as a conntrack lookup: the helper walks a small
            // kernel table keyed by the connection tuple.
            tracker.charge("l7_lookup", cost.conntrack_lookup_ns);
            let pkt = &m.ctx.packet;
            // The synthesized program proves 54 bytes (Ethernet + IPv4
            // IHL=5 + minimal TCP) before this call is reachable; the
            // check is defense in depth.
            if pkt.len() < 38 {
                return Err(VmError::BadAccess(m.regs[2]));
            }
            let addr = m.regs[2];
            if addr & 0xFFFF_FFFF_0000_0000 != PACKET_BASE {
                return Err(VmError::BadAccess(addr));
            }
            let off = ((addr - PACKET_BASE) as usize).min(pkt.len());
            let limit = m.regs[3] as usize;
            let payload_end = pkt.len().min(off + limit);
            let src = Ipv4Addr::new(pkt[26], pkt[27], pkt[28], pkt[29]);
            let dst = Ipv4Addr::new(pkt[30], pkt[31], pkt[32], pkt[33]);
            let sport = u16::from_be_bytes([pkt[34], pkt[35]]);
            let dport = u16::from_be_bytes([pkt[36], pkt[37]]);
            let first = if m.regs[4] == 0x100 {
                None
            } else {
                Some(m.regs[4] as u8)
            };
            let outcome = env.env_l7_lookup(src, sport, dst, dport, &pkt[off..payload_end], first);
            match outcome {
                linuxfp_netstack::l7::L7LookupOutcome::Allow => 0,
                linuxfp_netstack::l7::L7LookupOutcome::Deny => 1,
                linuxfp_netstack::l7::L7LookupOutcome::Steer(_) => 2,
                linuxfp_netstack::l7::L7LookupOutcome::Unparseable => {
                    m.l7_punt = true;
                    2
                }
                linuxfp_netstack::l7::L7LookupOutcome::NoRequest => {
                    m.l7_uncacheable = true;
                    3
                }
            }
        }
        HelperId::Redirect => {
            tracker.charge("helper_redirect", cost.helper_redirect_ns);
            m.redirect = Some(IfIndex(m.regs[1] as u32));
            Action::Redirect.code()
        }
        HelperId::KtimeGetNs => {
            tracker.charge("helper_trivial", cost.helper_trivial_ns);
            env.env_now().as_nanos()
        }
        HelperId::MapLookup => {
            tracker.charge("map_lookup", cost.map_lookup_ns);
            let map = MapId(m.regs[1] as u32);
            let key_len = m.regs[3] as usize;
            let val_len = m.regs[5] as usize;
            let key = m.stack_slice(m.regs[2], key_len)?.to_vec();
            match maps.lookup(map, &key) {
                Ok(Some(value)) if value.len() <= val_len => {
                    let out = m.stack_slice(m.regs[4], value.len())?;
                    out.copy_from_slice(&value);
                    0
                }
                _ => 1,
            }
        }
        HelperId::MapUpdate => {
            tracker.charge("map_update", cost.map_update_ns);
            let map = MapId(m.regs[1] as u32);
            let key_len = m.regs[3] as usize;
            let val_len = m.regs[5] as usize;
            let key = m.stack_slice(m.regs[2], key_len)?.to_vec();
            let value = m.stack_slice(m.regs[4], val_len)?.to_vec();
            match maps.update(map, &key, &value) {
                Ok(()) => 0,
                Err(_) => 1,
            }
        }
        HelperId::TrivialNf => {
            tracker.charge("helper_trivial", cost.helper_trivial_ns);
            0
        }
        HelperId::XskRedirect => {
            tracker.charge("xsk_push", cost.xsk_push_ns);
            let map = MapId(m.regs[1] as u32);
            if maps.xsk_push(map, m.ctx.packet.clone()) {
                m.to_user = true;
                Action::Redirect.code()
            } else {
                // Ring full or wrong map: like a failed redirect, the
                // program sees an error verdict and typically PASSes.
                Action::Aborted.code()
            }
        }
    };
    m.regs[0] = r0;
    for r in 1..=5 {
        m.regs[r] = 0;
    }
    // Redirect-style helpers' return value *is* the verdict; restore it
    // after the clobber above.
    if helper == HelperId::Redirect {
        m.regs[0] = Action::Redirect.code();
    }
    if helper == HelperId::XskRedirect {
        m.regs[0] = r0;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::helpers::NullEnv;
    use crate::program::{LoadedProgram, Program};

    fn load(asm: Asm, name: &str) -> LoadedProgram {
        LoadedProgram::load(Program::new(name, asm.finish().unwrap())).unwrap()
    }

    fn run_prog(prog: &LoadedProgram, packet: &mut Vec<u8>) -> (VmOutcome, CostTracker) {
        let maps = MapStore::new();
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let ctx = VmCtx::xdp(packet, 1, 0);
        let out = run(prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        (out, tracker)
    }

    #[test]
    fn returns_verdict_from_r0() {
        let mut a = Asm::new();
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        let prog = load(a, "drop");
        let mut pkt = vec![0u8; 64];
        let (out, t) = run_prog(&prog, &mut pkt);
        assert_eq!(out.action, Action::Drop);
        assert_eq!(out.insns_executed, 2);
        assert_eq!(t.stage_count("ebpf_insn"), 2);
        assert!(out.error.is_none());
    }

    #[test]
    fn alu_operations_compute() {
        // r0 = ((((7 + 5) * 3) - 6) / 2) ^ 1 = 15 ^ 1 = 14; then
        // r0 |= 0x10 -> 0x1e; r0 &= 0xff; r0 <<= 1 -> 0x3c; r0 >>= 2 -> 0xf;
        // r0 %= 4 -> 3.
        let mut a = Asm::new();
        a.mov_imm(0, 7);
        a.alu_imm(AluOp::Add, 0, 5);
        a.alu_imm(AluOp::Mul, 0, 3);
        a.alu_imm(AluOp::Sub, 0, 6);
        a.alu_imm(AluOp::Div, 0, 2);
        a.alu_imm(AluOp::Xor, 0, 1);
        a.alu_imm(AluOp::Or, 0, 0x10);
        a.alu_imm(AluOp::And, 0, 0xff);
        a.alu_imm(AluOp::Lsh, 0, 1);
        a.alu_imm(AluOp::Rsh, 0, 2);
        a.alu_imm(AluOp::Mod, 0, 4);
        a.exit();
        let prog = load(a, "alu");
        let mut pkt = vec![0u8; 64];
        let (out, _) = run_prog(&prog, &mut pkt);
        // Action::from_code(3) == Tx; we only care about the raw value via
        // the action mapping here.
        assert_eq!(out.action, Action::Tx);
    }

    #[test]
    fn arsh_is_signed() {
        let mut a = Asm::new();
        a.mov_imm(0, -8);
        a.alu_imm(AluOp::Arsh, 0, 2);
        // r0 = -2 -> unknown action code -> Aborted (not a fault).
        a.exit();
        let prog = load(a, "arsh");
        let mut pkt = vec![0u8; 64];
        let (out, _) = run_prog(&prog, &mut pkt);
        assert_eq!(out.action, Action::Aborted);
        assert!(out.error.is_none());
    }

    #[test]
    fn div_by_zero_follows_linux_semantics() {
        // BPF_DIV by zero: dst = 0. The program keeps running.
        let mut a = Asm::new();
        a.mov_imm(0, 7);
        a.mov_imm(2, 0);
        a.alu_reg(AluOp::Div, 0, 2); // r0 = 7 / 0 -> 0
        a.alu_imm(AluOp::Add, 0, 2); // r0 = 2 = PASS
        a.exit();
        let prog = load(a, "div0");
        let mut pkt = vec![0u8; 64];
        let (out, _) = run_prog(&prog, &mut pkt);
        assert_eq!(out.action, Action::Pass);
        assert!(out.error.is_none());
        assert_eq!(out.div_zeros, 1);

        // BPF_MOD by zero: dst unchanged.
        let mut a = Asm::new();
        a.mov_imm(0, 2);
        a.mov_imm(2, 0);
        a.alu_reg(AluOp::Mod, 0, 2); // r0 stays 2 = PASS
        a.exit();
        let prog = load(a, "mod0");
        let mut pkt = vec![0u8; 64];
        let (out, _) = run_prog(&prog, &mut pkt);
        assert_eq!(out.action, Action::Pass);
        assert!(out.error.is_none());
        assert_eq!(out.div_zeros, 1);
        assert_eq!(out.regs[0], 2);
    }

    #[test]
    fn packet_reads_and_writes() {
        // Read byte 12, increment it, write it back, return PASS.
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16);
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 14);
        a.jmp_reg(JmpCond::Gt, 4, 3, "out");
        a.load(MemSize::B, 5, 2, 12);
        a.alu_imm(AluOp::Add, 5, 1);
        a.store(MemSize::B, 2, 12, 5);
        a.label("out");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        let prog = load(a, "incr");
        let mut pkt = vec![0u8; 64];
        pkt[12] = 0x41;
        let (out, _) = run_prog(&prog, &mut pkt);
        assert_eq!(out.action, Action::Pass);
        assert_eq!(pkt[12], 0x42);
    }

    #[test]
    fn short_packet_takes_guard_branch() {
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16);
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 14);
        a.jmp_reg(JmpCond::Gt, 4, 3, "short");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        a.label("short");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        let prog = load(a, "guard");
        let mut long = vec![0u8; 64];
        assert_eq!(run_prog(&prog, &mut long).0.action, Action::Drop);
        let mut short = vec![0u8; 8];
        assert_eq!(run_prog(&prog, &mut short).0.action, Action::Pass);
    }

    #[test]
    fn ctx_fields_are_visible() {
        let mut a = Asm::new();
        a.load(MemSize::W, 0, 1, ctx_layout::IFINDEX as i16);
        a.exit();
        let prog = load(a, "ifindex");
        let maps = MapStore::new();
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let mut pkt = vec![0u8; 64];
        let ctx = VmCtx::xdp(&mut pkt, 4, 0); // ifindex 4 -> Action::Redirect code
        let out = run(&prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        assert_eq!(out.action, Action::Redirect);
    }

    #[test]
    fn stack_round_trip() {
        let mut a = Asm::new();
        a.mov_reg(2, 10);
        a.alu_imm(AluOp::Add, 2, -8);
        a.store_imm(MemSize::DW, 2, 0, 0x1122334455);
        a.load(MemSize::DW, 0, 2, 0);
        a.alu_imm(AluOp::And, 0, 0xff);
        a.alu_imm(AluOp::Sub, 0, 0x53); // 0x55 - 0x53 = 2 = PASS
        a.exit();
        let prog = load(a, "stack");
        let mut pkt = vec![0u8; 64];
        assert_eq!(run_prog(&prog, &mut pkt).0.action, Action::Pass);
    }

    #[test]
    fn redirect_helper_sets_target() {
        let mut a = Asm::new();
        a.mov_imm(1, 7); // target ifindex
        a.mov_imm(2, 0); // flags
        a.call(HelperId::Redirect);
        a.exit(); // r0 already holds XDP_REDIRECT
        let prog = load(a, "redir");
        let mut pkt = vec![0u8; 64];
        let (out, t) = run_prog(&prog, &mut pkt);
        assert_eq!(out.action, Action::Redirect);
        assert_eq!(out.redirect, Some(IfIndex(7)));
        assert_eq!(t.stage_count("helper_redirect"), 1);
    }

    #[test]
    fn fib_lookup_misses_in_null_env() {
        let mut a = Asm::new();
        a.mov_reg(2, 10);
        a.alu_imm(AluOp::Add, 2, -24);
        a.store_imm(MemSize::W, 2, 0, 0x0a000001); // some dst ip bytes
        a.mov_imm(3, 24);
        a.call(HelperId::FibLookup);
        a.jmp_imm(JmpCond::Eq, 0, 0, "hit");
        a.mov_imm(0, Action::Pass.code() as i64); // miss -> pass to kernel
        a.exit();
        a.label("hit");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        let prog = load(a, "fib");
        let mut pkt = vec![0u8; 64];
        let (out, t) = run_prog(&prog, &mut pkt);
        assert_eq!(out.action, Action::Pass);
        assert_eq!(t.stage_count("helper_fib_lookup"), 1);
    }

    #[test]
    fn nat_lookup_reports_no_nat_in_null_env() {
        let mut a = Asm::new();
        a.mov_reg(2, 10);
        a.alu_imm(AluOp::Add, 2, -32);
        a.store_imm(MemSize::W, 2, 0, 0x0a000001); // src
        a.store_imm(MemSize::W, 2, 4, 0x0a000002); // dst
        a.store_imm(MemSize::B, 2, 8, 17); // proto
        a.store_imm(MemSize::H, 2, 10, 1234); // sport
        a.store_imm(MemSize::H, 2, 12, 53); // dport
        a.mov_imm(3, 32);
        a.call(HelperId::NatLookup);
        a.jmp_imm(JmpCond::Eq, 0, 2, "nonat");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        a.label("nonat");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        let prog = load(a, "nat");
        let mut pkt = vec![0u8; 64];
        let (out, t) = run_prog(&prog, &mut pkt);
        assert_eq!(out.action, Action::Pass);
        assert_eq!(t.stage_count("nat_lookup"), 1);
    }

    #[test]
    fn map_lookup_and_update_round_trip() {
        let maps = MapStore::new();
        let map = maps.create_hash(8);
        // Store key 0x42 (1 byte) -> value from stack, then read it back.
        let mut a = Asm::new();
        // key at fp-8, value at fp-16
        a.mov_reg(6, 10);
        a.alu_imm(AluOp::Add, 6, -8); // r6 = key ptr (callee-saved)
        a.store_imm(MemSize::B, 6, 0, 0x42);
        a.mov_reg(7, 10);
        a.alu_imm(AluOp::Add, 7, -16); // r7 = value ptr
        a.store_imm(MemSize::W, 7, 0, 1234);
        a.mov_imm(1, map.0 as i64);
        a.mov_reg(2, 6);
        a.mov_imm(3, 1);
        a.mov_reg(4, 7);
        a.mov_imm(5, 4);
        a.call(HelperId::MapUpdate);
        // Zero the value slot, then look the key back up into it.
        a.store_imm(MemSize::W, 7, 0, 0);
        a.mov_imm(1, map.0 as i64);
        a.mov_reg(2, 6);
        a.mov_imm(3, 1);
        a.mov_reg(4, 7);
        a.mov_imm(5, 4);
        a.call(HelperId::MapLookup);
        a.jmp_imm(JmpCond::Eq, 0, 0, "found");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        a.label("found");
        a.load(MemSize::W, 0, 7, 0); // r0 = 1234 -> Aborted mapping is fine
        a.alu_imm(AluOp::Sub, 0, 1232); // -> 2 = PASS
        a.exit();
        let prog = load(a, "maps");
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let mut pkt = vec![0u8; 64];
        let ctx = VmCtx::xdp(&mut pkt, 1, 0);
        let out = run(&prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        assert_eq!(out.action, Action::Pass);
        assert_eq!(tracker.stage_count("map_update"), 1);
        assert_eq!(tracker.stage_count("map_lookup"), 1);
        // The map retains the value for user-space inspection.
        assert_eq!(
            maps.lookup(map, &[0x42]).unwrap(),
            Some(1234u32.to_le_bytes().to_vec())
        );
    }

    #[test]
    fn tail_calls_transfer_control_and_charge() {
        let maps = MapStore::new();
        let pa = maps.create_prog_array(4);
        // Target program: return DROP.
        let mut t = Asm::new();
        t.mov_imm(0, Action::Drop.code() as i64);
        t.exit();
        let target = load(t, "target");
        maps.prog_array_set(pa, 2, Some(target)).unwrap();
        // Caller: tail-call slot 2; if it falls through, PASS.
        let mut c = Asm::new();
        c.mov_imm(0, Action::Pass.code() as i64);
        c.tail_call(pa.0, 2);
        c.exit();
        let caller = load(c, "caller");
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let mut pkt = vec![0u8; 64];
        let ctx = VmCtx::xdp(&mut pkt, 1, 0);
        let out = run(&caller, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        assert_eq!(out.action, Action::Drop);
        assert_eq!(out.tail_calls, 1);
        assert_eq!(tracker.stage_count("tail_call"), 1);
    }

    #[test]
    fn missing_tail_call_slot_falls_through() {
        let maps = MapStore::new();
        let pa = maps.create_prog_array(4);
        let mut c = Asm::new();
        c.mov_imm(0, Action::Pass.code() as i64);
        c.tail_call(pa.0, 0); // empty slot
        c.exit();
        let caller = load(c, "caller");
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let mut pkt = vec![0u8; 64];
        let ctx = VmCtx::xdp(&mut pkt, 1, 0);
        let out = run(&caller, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        assert_eq!(out.action, Action::Pass);
        assert_eq!(out.tail_calls, 0);
    }

    #[test]
    fn tail_call_depth_is_limited() {
        let maps = MapStore::new();
        let pa = maps.create_prog_array(1);
        // A program that tail-calls itself; after 33 calls it falls
        // through and exits with PASS.
        let mut a = Asm::new();
        a.mov_imm(0, Action::Pass.code() as i64);
        a.tail_call(pa.0, 0);
        a.exit();
        let prog = load(a, "selfcall");
        maps.prog_array_set(pa, 0, Some(prog.clone())).unwrap();
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let mut pkt = vec![0u8; 64];
        let ctx = VmCtx::xdp(&mut pkt, 1, 0);
        let out = run(&prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        assert_eq!(out.action, Action::Pass);
        assert_eq!(out.tail_calls, u64::from(MAX_TAIL_CALLS));
    }

    #[test]
    fn jump_conditions() {
        // Exercise Ne / Ge / Lt / Sgt / Slt / Set through a chain that
        // only reaches PASS when all behave correctly.
        let mut a = Asm::new();
        a.mov_imm(2, 5);
        a.jmp_imm(JmpCond::Ne, 2, 5, "fail"); // not taken
        a.jmp_imm(JmpCond::Ge, 2, 6, "fail"); // not taken
        a.jmp_imm(JmpCond::Lt, 2, 5, "fail"); // not taken
        a.mov_imm(3, -1);
        a.jmp_imm(JmpCond::Sgt, 3, 0, "fail"); // -1 > 0 signed? no
        a.jmp_imm(JmpCond::Slt, 2, 0, "fail"); // 5 < 0 signed? no
        a.jmp_imm(JmpCond::Set, 2, 2, "ok"); // 5 & 2 != 0 -> wait, 5&2=0
        a.ja("ok2");
        a.label("ok");
        a.ja("fail"); // Set should NOT be taken (5 & 2 == 0)
        a.label("ok2");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        a.label("fail");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        let prog = load(a, "conds");
        let mut pkt = vec![0u8; 64];
        assert_eq!(run_prog(&prog, &mut pkt).0.action, Action::Pass);
    }

    #[test]
    fn run_batch_matches_per_packet_runs() {
        // A program that drops frames whose first byte is odd.
        let mut a = Asm::new();
        a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
        a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16);
        a.mov_reg(4, 2);
        a.alu_imm(AluOp::Add, 4, 1);
        a.jmp_reg(JmpCond::Gt, 4, 3, "pass");
        a.load(MemSize::B, 5, 2, 0);
        a.alu_imm(AluOp::And, 5, 1);
        a.jmp_imm(JmpCond::Eq, 5, 1, "drop");
        a.label("pass");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        a.label("drop");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        let prog = load(a, "oddrop");
        let maps = MapStore::new();
        let cost = CostModel::calibrated();
        let mut packets: Vec<linuxfp_packet::PacketBuf> =
            (0u8..8).map(|i| vec![i; 64].into()).collect();
        let mut trackers: Vec<CostTracker> = (0..8).map(|_| CostTracker::new()).collect();
        let outs = run_batch(
            &prog,
            &mut packets,
            1,
            0,
            &mut NullEnv,
            &maps,
            &cost,
            &mut trackers,
        );
        for (i, out) in outs.iter().enumerate() {
            let mut single = packets[i].to_vec();
            let (expect, t) = run_prog(&prog, &mut single);
            assert_eq!(out.action, expect.action, "packet {i}");
            assert_eq!(
                trackers[i].total_ns(),
                t.total_ns(),
                "per-packet cost identical"
            );
        }
        assert_eq!(outs[0].action, Action::Pass);
        assert_eq!(outs[1].action, Action::Drop);
    }

    #[test]
    fn vm_error_display() {
        assert!(VmError::BadAccess(0x42).to_string().contains("0x42"));
        assert!(VmError::CtxWrite.to_string().contains("ctx"));
        assert!(VmError::BudgetExhausted.to_string().contains("budget"));
    }
}
