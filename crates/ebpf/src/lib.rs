//! A simulated eBPF runtime: the machinery LinuxFP uses to run
//! synthesized fast paths inside the (simulated) kernel.
//!
//! Mirrors the real eBPF subsystem piece by piece:
//!
//! - [`insn`]: the instruction set — registers `r0`–`r10`, ALU/jump/
//!   load/store instructions, helper calls, tail calls.
//! - [`asm`]: an assembler with symbolic labels; the fast-path
//!   synthesizer's backend.
//! - [`verifier`]: static safety verification (termination, register
//!   initialization, pointer typing, packet/stack bounds, helper
//!   contracts). Programs only become loadable by passing it.
//! - [`opt`]: the synthesis-time optimizer — shrinks synthesized
//!   programs (constant folding, load CSE, dead-store elimination,
//!   jump threading, idiom rewrites) before verification, behind a
//!   re-verify gate.
//! - [`program`]: [`program::LoadedProgram`], the verified artifact —
//!   compiled to direct-threaded form at load time.
//! - [`vm`]: the reference interpreter, with per-instruction and
//!   per-helper cost accounting driven by [`linuxfp_sim::CostModel`].
//! - [`compile`]: the load-time compiler (the simulated kernel JIT);
//!   the default datapath engine, kept observationally identical to the
//!   interpreter by the parity suites.
//! - [`maps`]: hash/array/LPM/program-array maps; program arrays are the
//!   tail-call mechanism behind atomic data-path swaps.
//! - [`helpers`]: the [`helpers::HelperEnv`] boundary through which
//!   programs access *kernel* state (`bpf_fib_lookup`, plus the paper's
//!   new `bpf_fdb_lookup` and `bpf_ipt_lookup`).
//! - [`hook`]: XDP/TC attachment and the [`hook::Dispatcher`] that swaps
//!   data paths via one program-array update (paper Fig. 4).
//!
//! # Example
//!
//! ```
//! use linuxfp_ebpf::asm::Asm;
//! use linuxfp_ebpf::insn::Action;
//! use linuxfp_ebpf::program::{LoadedProgram, Program};
//!
//! let mut a = Asm::new();
//! a.mov_imm(0, Action::Pass.code() as i64);
//! a.exit();
//! let prog = LoadedProgram::load(Program::new("pass", a.finish().unwrap()))?;
//! assert_eq!(prog.len(), 2);
//! # Ok::<(), linuxfp_ebpf::verifier::VerifyError>(())
//! ```

pub mod asm;
pub mod compile;
pub mod flowcache;
pub mod helpers;
pub mod hook;
pub mod insn;
pub mod maps;
pub mod opt;
pub mod program;
pub mod verifier;
pub mod vm;

pub use asm::Asm;
pub use compile::CompiledProgram;
pub use flowcache::{FlowCache, FlowKey};
pub use hook::{Dispatcher, HookPoint};
pub use insn::{Action, HelperId};
pub use maps::{MapId, MapStore};
pub use opt::{optimize, OptStats};
pub use program::{LoadedProgram, Program};
pub use verifier::VerifyError;
pub use vm::{VmCtx, VmOutcome};
