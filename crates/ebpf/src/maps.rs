//! eBPF maps: hash, array, LPM trie, and program arrays.
//!
//! Two roles in the reproduction:
//!
//! 1. **Program arrays** implement the tail-call mechanism LinuxFP uses to
//!    atomically swap data paths (paper Fig. 4): the dispatcher program
//!    tail-calls through slot 0, and installing a new data path is a
//!    single slot update.
//! 2. **Data maps** are what *alternative* platforms (the Polycube-style
//!    baseline) use for custom state instead of kernel helpers — the
//!    design LinuxFP argues against for transparency reasons. Keeping
//!    them here lets the benchmarks compare both designs honestly.
//!
//! Maps use interior mutability (`std::sync::RwLock`) so that programs
//! holding shared references can update them, mirroring how real maps are
//! shared kernel objects.

use crate::program::LoadedProgram;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Identifies a map within a [`MapStore`] (an "fd").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MapId(pub u32);

/// Errors from map operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// No map with that id.
    NoSuchMap(u32),
    /// Operation not supported for this map kind.
    WrongType(&'static str),
    /// The map is full.
    Full,
    /// Key size does not match the map definition.
    BadKey,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::NoSuchMap(id) => write!(f, "no such map: {id}"),
            MapError::WrongType(what) => write!(f, "wrong map type for {what}"),
            MapError::Full => write!(f, "map is full"),
            MapError::BadKey => write!(f, "bad key size"),
        }
    }
}

impl std::error::Error for MapError {}

enum MapKind {
    Hash {
        entries: HashMap<Vec<u8>, Vec<u8>>,
        max_entries: usize,
    },
    Array {
        entries: Vec<Vec<u8>>,
    },
    /// Longest-prefix-match over `(prefix_len, be32 addr)` keys, like
    /// `BPF_MAP_TYPE_LPM_TRIE` with 4-byte data.
    Lpm {
        by_len: BTreeMap<u8, HashMap<u32, Vec<u8>>>,
    },
    ProgArray {
        slots: Vec<Option<LoadedProgram>>,
    },
    /// An AF_XDP socket map (`BPF_MAP_TYPE_XSKMAP`): frames redirected
    /// here surface on the bound user-space socket.
    Xsk {
        queue: Arc<RwLock<VecDeque<Vec<u8>>>>,
        capacity: usize,
    },
}

/// The user-space end of an AF_XDP socket: frames redirected into the
/// bound XSK map are received here, raw, without any kernel stack
/// processing (paper §VIII: "sending raw packets directly from the XDP
/// layer to user space").
#[derive(Clone)]
pub struct XskSocket {
    queue: Arc<RwLock<VecDeque<Vec<u8>>>>,
}

impl fmt::Debug for XskSocket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XskSocket({} pending)",
            self.queue.read().expect("xsk lock").len()
        )
    }
}

impl XskSocket {
    /// Receives the next frame, if any.
    pub fn recv(&self) -> Option<Vec<u8>> {
        self.queue.write().expect("xsk lock").pop_front()
    }

    /// Frames currently queued.
    pub fn pending(&self) -> usize {
        self.queue.read().expect("xsk lock").len()
    }
}

/// A collection of maps shared between user space (the controller /
/// platform control planes) and programs.
#[derive(Clone, Default)]
pub struct MapStore {
    maps: Arc<RwLock<Vec<MapKind>>>,
    /// Bumped on every program-array slot write (install, uninstall,
    /// swap). Shared across clones, like the maps themselves. Hook
    /// dispatchers fold it into their coherence generation so cached
    /// slot resolutions and microflow verdict-cache entries are
    /// invalidated by data-path swaps.
    prog_generation: Arc<AtomicU64>,
}

impl fmt::Debug for MapStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MapStore({} maps)",
            self.maps.read().expect("map lock").len()
        )
    }
}

impl MapStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MapStore::default()
    }

    fn push(&self, kind: MapKind) -> MapId {
        let mut maps = self.maps.write().expect("map lock");
        maps.push(kind);
        MapId(maps.len() as u32 - 1)
    }

    /// Creates a hash map with the given capacity.
    pub fn create_hash(&self, max_entries: usize) -> MapId {
        self.push(MapKind::Hash {
            entries: HashMap::new(),
            max_entries,
        })
    }

    /// Creates an array map of `size` zero-filled `value_size`-byte slots.
    pub fn create_array(&self, size: usize, value_size: usize) -> MapId {
        self.push(MapKind::Array {
            entries: vec![vec![0; value_size]; size],
        })
    }

    /// Creates an LPM-trie map over IPv4 prefixes.
    pub fn create_lpm(&self) -> MapId {
        self.push(MapKind::Lpm {
            by_len: BTreeMap::new(),
        })
    }

    /// Creates a program array with `slots` empty slots.
    pub fn create_prog_array(&self, slots: usize) -> MapId {
        self.push(MapKind::ProgArray {
            slots: vec![None; slots],
        })
    }

    /// Creates an AF_XDP socket map and returns the bound user-space
    /// socket handle. Frames `bpf_redirect_map`-ed into the map are read
    /// with [`XskSocket::recv`]; when the ring is full, new frames are
    /// dropped (as on real XSK rings).
    pub fn create_xsk(&self, capacity: usize) -> (MapId, XskSocket) {
        let queue = Arc::new(RwLock::new(VecDeque::new()));
        let id = self.push(MapKind::Xsk {
            queue: queue.clone(),
            capacity,
        });
        (id, XskSocket { queue })
    }

    /// Pushes a frame into an XSK map's ring (what the redirect helper
    /// does). Returns `false` when the map is not an XSK map or the ring
    /// is full (frame dropped).
    pub fn xsk_push(&self, id: MapId, frame: Vec<u8>) -> bool {
        let maps = self.maps.read().expect("map lock");
        match maps.get(id.0 as usize) {
            Some(MapKind::Xsk { queue, capacity }) => {
                let mut q = queue.write().expect("xsk lock");
                if q.len() >= *capacity {
                    return false;
                }
                q.push_back(frame);
                true
            }
            _ => false,
        }
    }

    fn with<R>(
        &self,
        id: MapId,
        f: impl FnOnce(&mut MapKind) -> Result<R, MapError>,
    ) -> Result<R, MapError> {
        let mut maps = self.maps.write().expect("map lock");
        let kind = maps
            .get_mut(id.0 as usize)
            .ok_or(MapError::NoSuchMap(id.0))?;
        f(kind)
    }

    /// Looks up `key`; returns a copy of the value.
    ///
    /// # Errors
    ///
    /// Fails for unknown map ids or program arrays.
    pub fn lookup(&self, id: MapId, key: &[u8]) -> Result<Option<Vec<u8>>, MapError> {
        self.with(id, |kind| match kind {
            MapKind::Hash { entries, .. } => Ok(entries.get(key).cloned()),
            MapKind::Array { entries } => {
                let idx = key_as_index(key)?;
                Ok(entries.get(idx).cloned())
            }
            MapKind::Lpm { by_len } => {
                if key.len() != 4 {
                    return Err(MapError::BadKey);
                }
                let addr = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
                for (len, table) in by_len.iter().rev() {
                    let masked = if *len == 0 {
                        0
                    } else {
                        addr & (!0u32 << (32 - len))
                    };
                    if let Some(v) = table.get(&masked) {
                        return Ok(Some(v.clone()));
                    }
                }
                Ok(None)
            }
            MapKind::ProgArray { .. } | MapKind::Xsk { .. } => Err(MapError::WrongType("lookup")),
        })
    }

    /// Inserts or updates `key -> value`.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids, full hash maps, bad array indices, or
    /// program arrays.
    pub fn update(&self, id: MapId, key: &[u8], value: &[u8]) -> Result<(), MapError> {
        self.with(id, |kind| match kind {
            MapKind::Hash {
                entries,
                max_entries,
            } => {
                if !entries.contains_key(key) && entries.len() >= *max_entries {
                    return Err(MapError::Full);
                }
                entries.insert(key.to_vec(), value.to_vec());
                Ok(())
            }
            MapKind::Array { entries } => {
                let idx = key_as_index(key)?;
                let slot = entries.get_mut(idx).ok_or(MapError::BadKey)?;
                *slot = value.to_vec();
                Ok(())
            }
            MapKind::Lpm { by_len } => {
                // Key: 1 byte prefix length + 4 bytes big-endian address.
                if key.len() != 5 || key[0] > 32 {
                    return Err(MapError::BadKey);
                }
                let len = key[0];
                let addr = u32::from_be_bytes([key[1], key[2], key[3], key[4]]);
                let masked = if len == 0 {
                    0
                } else {
                    addr & (!0u32 << (32 - len))
                };
                by_len
                    .entry(len)
                    .or_default()
                    .insert(masked, value.to_vec());
                Ok(())
            }
            MapKind::ProgArray { .. } | MapKind::Xsk { .. } => Err(MapError::WrongType("update")),
        })
    }

    /// Deletes `key`; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids and unsupported kinds.
    pub fn delete(&self, id: MapId, key: &[u8]) -> Result<bool, MapError> {
        self.with(id, |kind| match kind {
            MapKind::Hash { entries, .. } => Ok(entries.remove(key).is_some()),
            MapKind::Lpm { by_len } => {
                if key.len() != 5 || key[0] > 32 {
                    return Err(MapError::BadKey);
                }
                let len = key[0];
                let addr = u32::from_be_bytes([key[1], key[2], key[3], key[4]]);
                let masked = if len == 0 {
                    0
                } else {
                    addr & (!0u32 << (32 - len))
                };
                Ok(by_len
                    .get_mut(&len)
                    .is_some_and(|t| t.remove(&masked).is_some()))
            }
            _ => Err(MapError::WrongType("delete")),
        })
    }

    /// Installs a program into a program-array slot. This is the **atomic
    /// data-path swap** primitive: readers either see the old program or
    /// the new one, never a mix.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids, non-program-array maps, or out-of-range
    /// slots.
    pub fn prog_array_set(
        &self,
        id: MapId,
        slot: usize,
        prog: Option<LoadedProgram>,
    ) -> Result<(), MapError> {
        self.with(id, |kind| match kind {
            MapKind::ProgArray { slots } => {
                let s = slots.get_mut(slot).ok_or(MapError::BadKey)?;
                *s = prog;
                self.prog_generation.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            _ => Err(MapError::WrongType("prog_array_set")),
        })
    }

    /// Monotonic count of program-array slot writes (see the field docs).
    pub fn prog_generation(&self) -> u64 {
        self.prog_generation.load(Ordering::Relaxed)
    }

    /// Reads a program-array slot (what a tail call does).
    pub fn prog_array_get(&self, id: MapId, slot: usize) -> Option<LoadedProgram> {
        let maps = self.maps.read().expect("map lock");
        match maps.get(id.0 as usize)? {
            MapKind::ProgArray { slots } => slots.get(slot)?.clone(),
            _ => None,
        }
    }

    /// Number of maps in the store.
    pub fn len(&self) -> usize {
        self.maps.read().expect("map lock").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.maps.read().expect("map lock").is_empty()
    }
}

fn key_as_index(key: &[u8]) -> Result<usize, MapError> {
    if key.len() != 4 {
        return Err(MapError::BadKey);
    }
    Ok(u32::from_le_bytes([key[0], key[1], key[2], key[3]]) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::program::Program;

    fn tiny_prog(name: &str) -> LoadedProgram {
        let mut a = Asm::new();
        a.mov_imm(0, 2);
        a.exit();
        LoadedProgram::load(Program::new(name, a.finish().unwrap())).unwrap()
    }

    #[test]
    fn hash_map_crud() {
        let store = MapStore::new();
        let m = store.create_hash(2);
        assert_eq!(store.lookup(m, b"k1").unwrap(), None);
        store.update(m, b"k1", b"v1").unwrap();
        store.update(m, b"k2", b"v2").unwrap();
        assert_eq!(store.lookup(m, b"k1").unwrap(), Some(b"v1".to_vec()));
        // Capacity enforced for new keys, updates still fine.
        assert_eq!(store.update(m, b"k3", b"v3").unwrap_err(), MapError::Full);
        store.update(m, b"k1", b"v1b").unwrap();
        assert!(store.delete(m, b"k1").unwrap());
        assert!(!store.delete(m, b"k1").unwrap());
    }

    #[test]
    fn array_map_indexing() {
        let store = MapStore::new();
        let m = store.create_array(4, 8);
        assert_eq!(
            store.lookup(m, &2u32.to_le_bytes()).unwrap().unwrap().len(),
            8
        );
        store.update(m, &2u32.to_le_bytes(), &[9; 8]).unwrap();
        assert_eq!(
            store.lookup(m, &2u32.to_le_bytes()).unwrap(),
            Some(vec![9; 8])
        );
        assert_eq!(store.lookup(m, &9u32.to_le_bytes()).unwrap(), None);
        assert!(store.update(m, &9u32.to_le_bytes(), &[0; 8]).is_err());
        assert!(store.lookup(m, b"xx").is_err());
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let store = MapStore::new();
        let m = store.create_lpm();
        let key = |len: u8, addr: [u8; 4]| {
            let mut k = vec![len];
            k.extend_from_slice(&addr);
            k
        };
        store.update(m, &key(8, [10, 0, 0, 0]), b"coarse").unwrap();
        store.update(m, &key(24, [10, 1, 2, 0]), b"fine").unwrap();
        store.update(m, &key(0, [0, 0, 0, 0]), b"default").unwrap();
        assert_eq!(
            store.lookup(m, &[10, 1, 2, 3]).unwrap(),
            Some(b"fine".to_vec())
        );
        assert_eq!(
            store.lookup(m, &[10, 9, 9, 9]).unwrap(),
            Some(b"coarse".to_vec())
        );
        assert_eq!(
            store.lookup(m, &[8, 8, 8, 8]).unwrap(),
            Some(b"default".to_vec())
        );
        assert!(store.delete(m, &key(24, [10, 1, 2, 0])).unwrap());
        assert_eq!(
            store.lookup(m, &[10, 1, 2, 3]).unwrap(),
            Some(b"coarse".to_vec())
        );
        assert!(store.update(m, &key(33, [0; 4]), b"bad").is_err());
        assert!(store.lookup(m, b"xyz").is_err());
    }

    #[test]
    fn prog_array_swap_semantics() {
        let store = MapStore::new();
        let pa = store.create_prog_array(2);
        assert!(store.prog_array_get(pa, 0).is_none());
        let v1 = tiny_prog("v1");
        store.prog_array_set(pa, 0, Some(v1)).unwrap();
        assert_eq!(store.prog_array_get(pa, 0).unwrap().name(), "v1");
        // Atomic replace: subsequent reads see v2.
        let v2 = tiny_prog("v2");
        store.prog_array_set(pa, 0, Some(v2)).unwrap();
        assert_eq!(store.prog_array_get(pa, 0).unwrap().name(), "v2");
        store.prog_array_set(pa, 0, None).unwrap();
        assert!(store.prog_array_get(pa, 0).is_none());
        assert!(store.prog_array_set(pa, 7, None).is_err());
    }

    #[test]
    fn type_confusion_rejected() {
        let store = MapStore::new();
        let h = store.create_hash(4);
        let pa = store.create_prog_array(1);
        assert!(store.prog_array_set(h, 0, None).is_err());
        assert!(store.lookup(pa, b"k").is_err());
        assert!(store.update(pa, b"k", b"v").is_err());
        assert!(store.delete(pa, b"k").is_err());
        assert_eq!(
            store.lookup(MapId(99), b"k").unwrap_err(),
            MapError::NoSuchMap(99)
        );
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
    }

    #[test]
    fn map_error_display() {
        assert!(MapError::NoSuchMap(3).to_string().contains("3"));
        assert!(MapError::WrongType("x").to_string().contains("x"));
        assert!(MapError::Full.to_string().contains("full"));
        assert!(MapError::BadKey.to_string().contains("key"));
    }

    #[test]
    fn xsk_socket_ring_semantics() {
        let store = MapStore::new();
        let (id, socket) = store.create_xsk(2);
        assert_eq!(socket.pending(), 0);
        assert!(store.xsk_push(id, vec![1]));
        assert!(store.xsk_push(id, vec![2]));
        assert!(!store.xsk_push(id, vec![3]), "full ring drops");
        assert_eq!(socket.pending(), 2);
        assert_eq!(socket.recv(), Some(vec![1]));
        assert_eq!(socket.recv(), Some(vec![2]));
        assert_eq!(socket.recv(), None);
        // Data-plane ops are rejected on XSK maps.
        assert!(store.lookup(id, b"k").is_err());
        assert!(store.update(id, b"k", b"v").is_err());
        // And xsk_push on non-XSK maps is refused.
        let h = store.create_hash(1);
        assert!(!store.xsk_push(h, vec![9]));
        assert!(format!("{socket:?}").contains("XskSocket"));
    }

    #[test]
    fn store_is_shared_by_clone() {
        let store = MapStore::new();
        let m = store.create_hash(4);
        let store2 = store.clone();
        store2.update(m, b"k", b"v").unwrap();
        assert_eq!(store.lookup(m, b"k").unwrap(), Some(b"v".to_vec()));
    }
}
