//! The microflow verdict cache: skip the interpreter on steady flows.
//!
//! The dispatcher's fast path still pays interpretation for every packet:
//! entry program, tail call, synthesized program, and one kernel helper
//! per traversed subsystem. For the packets that dominate real traffic —
//! later packets of established flows — all of that work recomputes a
//! verdict that has not changed. This module caches it, OVS-microflow
//! style, as **derived state with explicit invalidation**:
//!
//! * On a cache **miss** the dispatcher runs the program normally while a
//!   [`RecordingEnv`] captures every helper call. Afterwards the net
//!   packet transformation is recovered by diffing the frame
//!   ([`linuxfp_packet::rewrite::derive_ops`]) and the `(flow key →
//!   verdict, rewrite ops, helper touches)` entry is stored — but only if
//!   the recording passes every gate: the program's static cacheability
//!   contract, a replayable diff, a cacheable verdict, and a measured
//!   interpretation cost above the hit price (caching must never
//!   decelerate).
//! * On a **hit** the recorded rewrite ops are applied directly and the
//!   helper touches are **replayed** against the live kernel, so every
//!   side effect interpretation would have had — FDB/NAT timestamp
//!   refreshes, lazy expiries, subsystem telemetry — happens identically.
//!   The packet is charged the flat [`flowcache_hit_ns`] price instead of
//!   the interpretation cost.
//! * **Coherence** comes from one number: the kernel-wide
//!   [`state_generation`] plus the map store's program generation. Every
//!   netlink-driven mutation, conntrack/NAT eviction, virtual-time
//!   advance, and data-path swap changes it; the cache compares the
//!   combined generation on every access and clears itself lazily on
//!   mismatch. There is no per-entry dependency tracking and no shadow
//!   state to reconcile — the cache can always be dropped and rebuilt
//!   from a miss.
//!
//! [`flowcache_hit_ns`]: linuxfp_sim::CostModel::flowcache_hit_ns
//! [`state_generation`]: linuxfp_netstack::stack::Kernel::state_generation

use crate::helpers::HelperEnv;
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::l7::L7LookupOutcome;
use linuxfp_netstack::nat::NatLookupOutcome;
use linuxfp_netstack::netfilter::{NfVerdict, PacketMeta};
use linuxfp_netstack::stack::{FdbLookupOutcome, FibFastResult, HookVerdict, Kernel};
use linuxfp_packet::checksum::checksum;
use linuxfp_packet::rewrite::RewriteOp;
use linuxfp_packet::MacAddr;
use linuxfp_sim::{CostTracker, Nanos};
use linuxfp_telemetry::{Counter, Registry};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Default capacity of a per-hook cache (entries). Beyond it the least-
/// recently-used flow is evicted; 4k microflows comfortably covers the
/// simulated workloads while bounding memory like a real percpu map.
pub const DEFAULT_CAPACITY: usize = 4096;

/// The exact-match flow key.
///
/// It pins **every header byte a synthesized program can read**: the
/// ingress interface, frame length, both MAC addresses, the VLAN tag, and
/// the full IPv4 header *except* the identification and checksum fields
/// (which change per packet without affecting any forwarding decision),
/// plus the L4 ports. Two packets with equal keys are indistinguishable
/// to the fast path, so replaying the recorded verdict is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    ingress: u32,
    /// L3 offset (14 or 18); distinguishes untagged frames from frames
    /// tagged with TCI 0.
    l3: u8,
    vlan_tci: u16,
    frame_len: u32,
    eth_dst: [u8; 6],
    eth_src: [u8; 6],
    vihl: u8,
    tos: u8,
    total_len: u16,
    flags_frag: u16,
    ttl: u8,
    proto: u8,
    src: u32,
    dst: u32,
    sport: u16,
    dport: u16,
}

fn be16(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([b[off], b[off + 1]])
}

impl FlowKey {
    /// Extracts the key from a raw frame, or `None` if the packet is not
    /// **cache-eligible**. Eligible means: IPv4 over Ethernet (optionally
    /// one 802.1Q tag), header length ≥ 20 with a *valid* header checksum
    /// (the checksum is not part of the key, so an entry recorded from a
    /// valid packet must never be served to a corrupt one), not a
    /// fragment, TCP or UDP with a complete L4 header. Everything else —
    /// ARP, ICMP, fragments, truncated frames — takes the interpreter.
    pub fn extract(frame: &[u8], ingress: IfIndex) -> Option<FlowKey> {
        if frame.len() < 14 {
            return None;
        }
        let mut l3 = 14usize;
        let mut vlan_tci = 0u16;
        let mut ethertype = be16(frame, 12);
        if ethertype == 0x8100 {
            if frame.len() < 18 {
                return None;
            }
            vlan_tci = be16(frame, 14);
            ethertype = be16(frame, 16);
            l3 = 18;
        }
        if ethertype != 0x0800 || frame.len() < l3 + 20 {
            return None;
        }
        let vihl = frame[l3];
        let ihl = usize::from(vihl & 0x0F) * 4;
        if vihl >> 4 != 4 || ihl < 20 || frame.len() < l3 + ihl {
            return None;
        }
        if checksum(&frame[l3..l3 + ihl]) != 0 {
            return None;
        }
        let flags_frag = be16(frame, l3 + 6);
        if flags_frag & 0x3FFF != 0 {
            // A fragment (MF set or nonzero offset): L4 offsets would
            // point into payload, so fragments are never cached.
            return None;
        }
        let proto = frame[l3 + 9];
        if proto != 6 && proto != 17 {
            return None;
        }
        let l4 = l3 + ihl;
        let min_l4 = if proto == 6 { 20 } else { 8 };
        if frame.len() < l4 + min_l4 {
            return None;
        }
        Some(FlowKey {
            ingress: ingress.as_u32(),
            l3: l3 as u8,
            vlan_tci,
            frame_len: frame.len() as u32,
            eth_dst: frame[0..6].try_into().expect("6 bytes"),
            eth_src: frame[6..12].try_into().expect("6 bytes"),
            vihl,
            tos: frame[l3 + 1],
            total_len: be16(frame, l3 + 2),
            flags_frag,
            ttl: frame[l3 + 8],
            proto,
            src: u32::from(be16(frame, l3 + 12)) << 16 | u32::from(be16(frame, l3 + 14)),
            dst: u32::from(be16(frame, l3 + 16)) << 16 | u32::from(be16(frame, l3 + 18)),
            sport: be16(frame, l4),
            dport: be16(frame, l4 + 2),
        })
    }

    /// The L3 (IPv4 header) offset within the frame.
    pub fn l3_offset(&self) -> usize {
        usize::from(self.l3)
    }
}

/// One recorded helper call: the helper plus the arguments it was called
/// with. Replaying the sequence against the live kernel reproduces all
/// slow-path-visible side effects of interpretation (timestamp
/// refreshes, lazy expiries, subsystem op counters) exactly — within one
/// coherence generation helper results are deterministic functions of
/// their arguments, so the replayed calls return what was recorded.
#[derive(Debug, Clone)]
pub enum HelperTouch {
    /// `bpf_fib_lookup`.
    Fib {
        /// Destination address looked up.
        dst: Ipv4Addr,
    },
    /// `bpf_fdb_lookup` (refreshes the source MAC's FDB entry).
    Fdb {
        /// Ingress port.
        ingress: IfIndex,
        /// Source MAC (learned/refreshed).
        src: MacAddr,
        /// Destination MAC looked up.
        dst: MacAddr,
        /// VLAN id.
        vlan: u16,
    },
    /// `bpf_ipt_lookup`.
    Ipt {
        /// The metadata the rules were evaluated against.
        meta: PacketMeta,
    },
    /// Conntrack lookup (ipvs backend resolution).
    Ct {
        /// Source address.
        src: Ipv4Addr,
        /// Source port.
        sport: u16,
        /// Destination address.
        dst: Ipv4Addr,
        /// Destination port.
        dport: u16,
        /// IP protocol.
        proto: u8,
    },
    /// `bpf_nat_lookup` (refreshes the NAT binding's last-seen time).
    Nat {
        /// Source address.
        src: Ipv4Addr,
        /// Source port.
        sport: u16,
        /// Destination address.
        dst: Ipv4Addr,
        /// Destination port.
        dport: u16,
        /// IP protocol.
        proto: u8,
    },
    /// `bpf_l7_policy_lookup` (refreshes request/verdict counters and may
    /// pin a connection verdict). The payload window is recorded so a
    /// replayed parse counts exactly like the recorded one.
    L7 {
        /// Source address.
        src: Ipv4Addr,
        /// Source port.
        sport: u16,
        /// Destination address.
        dst: Ipv4Addr,
        /// Destination port.
        dport: u16,
        /// TCP payload window (bounded by the parse limit).
        payload: Vec<u8>,
        /// First payload byte the program loaded, if any.
        first: Option<u8>,
    },
}

/// Replays a recorded helper-call sequence against the live kernel.
///
/// Results are discarded — the cached verdict and rewrite ops already
/// encode them — but the calls' side effects land exactly as they would
/// under interpretation. No virtual time is charged: the hit price
/// ([`linuxfp_sim::CostModel::flowcache_hit_ns`]) covers the whole hit
/// path, which is the very cost the cache exists to elide.
pub fn replay_touches(touches: &[HelperTouch], kernel: &mut Kernel) {
    for touch in touches {
        match *touch {
            HelperTouch::Fib { dst } => {
                let _ = kernel.env_fib_lookup(dst);
            }
            HelperTouch::Fdb {
                ingress,
                src,
                dst,
                vlan,
            } => {
                let _ = kernel.env_fdb_lookup(ingress, src, dst, vlan);
            }
            HelperTouch::Ipt { ref meta } => {
                // The rule walk's virtual cost is covered by the flat hit
                // price; a throwaway tracker absorbs the helper's charge.
                let mut throwaway = CostTracker::new();
                let _ = kernel.env_ipt_lookup(meta, &mut throwaway);
            }
            HelperTouch::Ct {
                src,
                sport,
                dst,
                dport,
                proto,
            } => {
                let _ = kernel.env_ct_lookup(src, sport, dst, dport, proto);
            }
            HelperTouch::Nat {
                src,
                sport,
                dst,
                dport,
                proto,
            } => {
                let _ = kernel.env_nat_lookup(src, sport, dst, dport, proto);
            }
            HelperTouch::L7 {
                src,
                sport,
                dst,
                dport,
                ref payload,
                first,
            } => {
                let _ = kernel.env_l7_lookup(src, sport, dst, dport, payload, first);
            }
        }
    }
}

/// A [`HelperEnv`] that delegates to the kernel while logging every call
/// — the recorder half of the microflow cache.
pub struct RecordingEnv<'a> {
    inner: &'a mut Kernel,
    touches: Vec<HelperTouch>,
}

impl<'a> RecordingEnv<'a> {
    /// Wraps the kernel for one recorded program run.
    pub fn new(inner: &'a mut Kernel) -> Self {
        RecordingEnv {
            inner,
            touches: Vec::new(),
        }
    }

    /// The recorded helper-call log.
    pub fn into_touches(self) -> Vec<HelperTouch> {
        self.touches
    }
}

impl HelperEnv for RecordingEnv<'_> {
    fn env_now(&self) -> Nanos {
        // Not recorded: programs that read the clock fail the static
        // cacheability contract, so a logged `now` could never be used.
        self.inner.env_now()
    }

    fn env_fib_lookup(&mut self, dst: Ipv4Addr) -> Option<FibFastResult> {
        self.touches.push(HelperTouch::Fib { dst });
        self.inner.env_fib_lookup(dst)
    }

    fn env_fdb_lookup(
        &mut self,
        ingress: IfIndex,
        src: MacAddr,
        dst: MacAddr,
        vlan: u16,
    ) -> FdbLookupOutcome {
        self.touches.push(HelperTouch::Fdb {
            ingress,
            src,
            dst,
            vlan,
        });
        self.inner.env_fdb_lookup(ingress, src, dst, vlan)
    }

    fn env_ipt_lookup(&mut self, meta: &PacketMeta, tracker: &mut CostTracker) -> NfVerdict {
        self.touches.push(HelperTouch::Ipt { meta: *meta });
        self.inner.env_ipt_lookup(meta, tracker)
    }

    fn env_ct_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: u8,
    ) -> Option<(Ipv4Addr, u16)> {
        self.touches.push(HelperTouch::Ct {
            src,
            sport,
            dst,
            dport,
            proto,
        });
        self.inner.env_ct_lookup(src, sport, dst, dport, proto)
    }

    fn env_nat_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: u8,
    ) -> NatLookupOutcome {
        self.touches.push(HelperTouch::Nat {
            src,
            sport,
            dst,
            dport,
            proto,
        });
        self.inner.env_nat_lookup(src, sport, dst, dport, proto)
    }

    fn env_l7_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        payload: &[u8],
        first: Option<u8>,
    ) -> L7LookupOutcome {
        self.touches.push(HelperTouch::L7 {
            src,
            sport,
            dst,
            dport,
            payload: payload.to_vec(),
            first,
        });
        self.inner
            .env_l7_lookup(src, sport, dst, dport, payload, first)
    }
}

/// One cached flow: the final hook verdict, the frame transformation, and
/// the helper calls to replay. Shared via `Arc` so a hit clones a pointer,
/// not the op vectors.
#[derive(Debug)]
pub struct FlowEntry {
    /// The verdict interpretation reached.
    pub verdict: HookVerdict,
    /// The net frame rewrite (MAC/IP/port sets + checksum deltas).
    pub ops: Vec<RewriteOp>,
    /// The helper-call log to replay for side-effect fidelity.
    pub touches: Vec<HelperTouch>,
}

#[derive(Debug, Clone, Default)]
struct CacheCounters {
    hits: Option<Counter>,
    misses: Option<Counter>,
    invalidations: Option<Counter>,
    evictions: Option<Counter>,
}

/// The per-hook microflow verdict cache.
///
/// Entries are valid for exactly one combined coherence generation; the
/// first access under a different generation clears the whole map
/// (counted as one invalidation per dropped entry). Capacity is bounded;
/// inserts beyond it evict the least-recently-used flow.
#[derive(Debug)]
pub struct FlowCache {
    entries: HashMap<FlowKey, (u64, Arc<FlowEntry>)>,
    generation: u64,
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
    counters: CacheCounters,
}

impl FlowCache {
    /// Creates an empty cache holding at most `capacity` flows.
    pub fn new(capacity: usize) -> Self {
        FlowCache {
            entries: HashMap::new(),
            generation: 0,
            tick: 0,
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            invalidations: 0,
            evictions: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Resolves the cache's telemetry counters in `registry` (idempotent;
    /// the series carry no labels, so re-resolution is cheap and safe).
    pub fn wire_telemetry(&mut self, registry: &Registry) {
        if self.counters.hits.is_some() {
            return;
        }
        registry.describe(
            "linuxfp_flowcache_hits_total",
            "Packets whose verdict was served by the microflow cache",
        );
        registry.describe(
            "linuxfp_flowcache_misses_total",
            "Packets that took the interpreter (no valid cache entry)",
        );
        registry.describe(
            "linuxfp_flowcache_invalidations_total",
            "Cache entries dropped by a coherence generation change",
        );
        registry.describe(
            "linuxfp_flowcache_evictions_total",
            "Cache entries evicted by the capacity bound (LRU)",
        );
        self.counters = CacheCounters {
            hits: Some(registry.counter("linuxfp_flowcache_hits_total", &[])),
            misses: Some(registry.counter("linuxfp_flowcache_misses_total", &[])),
            invalidations: Some(registry.counter("linuxfp_flowcache_invalidations_total", &[])),
            evictions: Some(registry.counter("linuxfp_flowcache_evictions_total", &[])),
        };
    }

    /// Whether [`FlowCache::wire_telemetry`] has been called.
    pub fn telemetry_wired(&self) -> bool {
        self.counters.hits.is_some()
    }

    fn validate(&mut self, generation: u64) {
        if self.generation != generation {
            let dropped = self.entries.len() as u64;
            if dropped > 0 {
                self.invalidations += dropped;
                if let Some(c) = &self.counters.invalidations {
                    c.add(dropped);
                }
            }
            self.entries.clear();
            self.generation = generation;
        }
    }

    /// Looks up a flow under the given combined generation. Counts a hit
    /// and refreshes the entry's LRU position on success; **does not**
    /// count a miss (the caller counts misses via [`FlowCache::note_miss`]
    /// so ineligible packets are part of the ledger too).
    pub fn lookup(&mut self, generation: u64, key: &FlowKey) -> Option<Arc<FlowEntry>> {
        self.validate(generation);
        self.tick += 1;
        let tick = self.tick;
        let (last_used, entry) = self.entries.get_mut(key)?;
        *last_used = tick;
        self.hits += 1;
        if let Some(c) = &self.counters.hits {
            c.inc();
        }
        Some(Arc::clone(entry))
    }

    /// Counts one cache miss (entry absent, stale, or packet ineligible).
    pub fn note_miss(&mut self) {
        self.misses += 1;
        if let Some(c) = &self.counters.misses {
            c.inc();
        }
    }

    /// Inserts a recorded flow under the given combined generation,
    /// evicting the least-recently-used entry if the cache is full.
    pub fn insert(&mut self, generation: u64, key: FlowKey, entry: FlowEntry) {
        self.validate(generation);
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (last_used, _))| *last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
                if let Some(c) = &self.counters.evictions {
                    c.inc();
                }
            }
        }
        self.tick += 1;
        self.entries.insert(key, (self.tick, Arc::new(entry)));
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The combined coherence generation the current entries are valid
    /// under. A lookup under a different generation will flush first —
    /// comparing this *before* the lookup distinguishes an invalidation
    /// miss from a cold miss.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Lifetime counters: `(hits, misses, invalidations, evictions)`.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.hits, self.misses, self.invalidations, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxfp_packet::builder;

    fn frame(sport: u16) -> Vec<u8> {
        builder::udp_packet(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            sport,
            53,
            b"payload",
        )
    }

    fn entry() -> FlowEntry {
        FlowEntry {
            verdict: HookVerdict::Drop,
            ops: vec![],
            touches: vec![],
        }
    }

    #[test]
    fn key_pins_flow_identity_not_packet_identity() {
        let a = FlowKey::extract(&frame(1000), IfIndex(1)).unwrap();
        // Same flow, different IPv4 id + checksum: identical key.
        let mut sibling = frame(1000);
        sibling[14 + 4] = 0xAB;
        sibling[14 + 5] = 0xCD;
        // Fix the header checksum for the new id.
        sibling[14 + 10] = 0;
        sibling[14 + 11] = 0;
        let csum = checksum(&sibling[14..14 + 20]);
        sibling[14 + 10..14 + 12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(FlowKey::extract(&sibling, IfIndex(1)), Some(a));
        // Different port: different key. Different ingress: different key.
        assert_ne!(FlowKey::extract(&frame(1001), IfIndex(1)), Some(a));
        assert_ne!(FlowKey::extract(&frame(1000), IfIndex(2)), Some(a));
        assert_eq!(a.l3_offset(), 14);
    }

    #[test]
    fn ineligible_packets_have_no_key() {
        // Too short.
        assert!(FlowKey::extract(&[0u8; 10], IfIndex(1)).is_none());
        // Non-IPv4 ethertype (ARP).
        let mut arp = frame(1);
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert!(FlowKey::extract(&arp, IfIndex(1)).is_none());
        // Corrupt IP header checksum.
        let mut bad = frame(1);
        bad[14 + 10] ^= 0xFF;
        assert!(FlowKey::extract(&bad, IfIndex(1)).is_none());
        // Fragment (MF bit).
        let mut frag = frame(1);
        frag[14 + 6] = 0x20;
        frag[14 + 10] = 0;
        frag[14 + 11] = 0;
        let csum = checksum(&frag[14..14 + 20]);
        frag[14 + 10..14 + 12].copy_from_slice(&csum.to_be_bytes());
        assert!(FlowKey::extract(&frag, IfIndex(1)).is_none());
        // Non-TCP/UDP protocol (ICMP).
        let mut icmp = frame(1);
        icmp[14 + 9] = 1;
        icmp[14 + 10] = 0;
        icmp[14 + 11] = 0;
        let csum = checksum(&icmp[14..14 + 20]);
        icmp[14 + 10..14 + 12].copy_from_slice(&csum.to_be_bytes());
        assert!(FlowKey::extract(&icmp, IfIndex(1)).is_none());
    }

    #[test]
    fn generation_change_clears_all_entries() {
        let mut cache = FlowCache::new(16);
        let key = FlowKey::extract(&frame(1), IfIndex(1)).unwrap();
        cache.insert(7, key, entry());
        assert!(cache.lookup(7, &key).is_some());
        // Same generation: still there. New generation: gone.
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(8, &key).is_none());
        assert!(cache.is_empty());
        let (hits, _, invalidations, _) = cache.stats();
        assert_eq!(hits, 1);
        assert_eq!(invalidations, 1);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let mut cache = FlowCache::new(2);
        let k1 = FlowKey::extract(&frame(1), IfIndex(1)).unwrap();
        let k2 = FlowKey::extract(&frame(2), IfIndex(1)).unwrap();
        let k3 = FlowKey::extract(&frame(3), IfIndex(1)).unwrap();
        cache.insert(0, k1, entry());
        cache.insert(0, k2, entry());
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.lookup(0, &k1).is_some());
        cache.insert(0, k3, entry());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(0, &k2).is_none());
        assert!(cache.lookup(0, &k1).is_some());
        assert!(cache.lookup(0, &k3).is_some());
        assert_eq!(cache.stats().3, 1);
    }

    #[test]
    fn recording_env_logs_and_delegates() {
        let mut k = Kernel::new(1);
        let mut env = RecordingEnv::new(&mut k);
        assert!(env.env_fib_lookup(Ipv4Addr::new(10, 0, 0, 9)).is_none());
        assert!(env
            .env_ct_lookup(
                Ipv4Addr::new(1, 1, 1, 1),
                1,
                Ipv4Addr::new(2, 2, 2, 2),
                2,
                17
            )
            .is_none());
        let touches = env.into_touches();
        assert_eq!(touches.len(), 2);
        assert!(matches!(touches[0], HelperTouch::Fib { .. }));
        assert!(matches!(touches[1], HelperTouch::Ct { .. }));
        // Replay is side-effect-equivalent (here: no-ops on an empty
        // kernel) and must not panic.
        replay_touches(&touches, &mut k);
    }
}
