//! Synthesis-time bytecode optimizer: shrinks synthesized programs
//! between synthesis and verification.
//!
//! The controller's emitters produce naive straight-line code — every
//! pipeline stage re-derives pointers, re-loads header bytes, and keeps
//! values alive past their last use. This module runs a deterministic,
//! bounded multi-pass optimizer over the raw instruction sequence and
//! returns a semantically identical, shorter program:
//!
//! - **Constant folding and propagation** of per-config immediates the
//!   synthesizer bakes in (next-hops, bindings, policy ids), including
//!   branch folding when a predicate is decided at synthesis time.
//! - **Copy and pointer tracking**: `mov`s between registers holding
//!   the same value are dropped, and loads/stores through derived
//!   pointers (`r3 = r10 - 24`) are folded into direct
//!   base-plus-displacement accesses so the derivation can die.
//! - **Redundant packet-load elimination**: a sized load of bytes that
//!   are provably already in a register (same base pointer value, same
//!   displacement, no intervening aliasing store or stack-writing
//!   helper call) becomes a register move, then usually dead code.
//! - **Dead-store elimination** on registers never read before exit
//!   (at `exit` only `r0` is observable; `r1`–`r5` are caller-saved by
//!   the helper ABI and dead by the program contract).
//! - **Jump threading / branch straightening**: jumps to jumps are
//!   retargeted, jumps to `exit` become `exit`, decided branches fall
//!   through, and unreachable blocks are deleted.
//! - Two **idiom rewrites** for patterns the emitters are known to
//!   produce (both re-proved in the pass comments and covered by the
//!   opt-parity fuzz, the difftest corpus, and unit tests here):
//!   checksum-verify loops over 16-bit words are widened to 32-bit
//!   loads, and the decrement-TTL incremental-checksum update collapses
//!   to its RFC 1624 constant delta.
//!
//! # Contract
//!
//! The optimized program is observationally identical to the input on
//! every packet: same verdict (`r0` at exit), same rewritten frame
//! bytes, same helper call sequence with the same arguments and
//! results, same side-effect flags, and the same `div_zeros` count.
//! Scratch registers `r1`–`r9` are program-private (no caller reads
//! them after exit), so their final values may differ — that freedom is
//! exactly what dead-store elimination exploits. Instruction count and
//! therefore cost *do* change; that is the point.
//!
//! # Safety net
//!
//! The optimizer refuses to touch anything it cannot prove: the input
//! must verify, and the output is re-verified and must be strictly
//! shorter, otherwise the original instructions are returned unchanged.
//! Every pass is a pure function of the instruction sequence, so the
//! whole pipeline is deterministic.

use crate::insn::{AluOp, Insn, JmpCond, MemSize, NUM_REGS, REG_FP};
use crate::verifier;
use crate::vm;

/// Dead instructions are first replaced by this marker — an
/// unconditional jump to the next instruction, i.e. a semantic no-op —
/// and physically removed (with jump-offset fixup) by [`compact`].
const NOP: Insn = Insn::Ja { off: 0 };

/// Maximum optimizer rounds; each round runs every pass once. The
/// fixpoint is normally reached in two or three rounds — the bound only
/// guarantees termination.
const MAX_ROUNDS: usize = 8;

/// Before/after accounting for one optimized program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptStats {
    /// Instruction count of the input program.
    pub before: usize,
    /// Instruction count of the returned program.
    pub after: usize,
    /// Rounds the pass pipeline ran before reaching its fixpoint.
    pub rounds: usize,
}

impl OptStats {
    /// Instructions removed.
    pub fn removed(&self) -> usize {
        self.before - self.after
    }
}

/// Optimizes a program, returning the new instruction sequence and
/// before/after stats.
///
/// If the input does not verify, or the optimized form fails to
/// re-verify or is not strictly shorter, the input is returned
/// unchanged (with `before == after`). The function is deterministic:
/// identical inputs produce identical outputs.
pub fn optimize(insns: &[Insn]) -> (Vec<Insn>, OptStats) {
    let before = insns.len();
    let unchanged = OptStats {
        before,
        after: before,
        rounds: 0,
    };
    if verifier::verify(insns).is_err() {
        return (insns.to_vec(), unchanged);
    }
    let mut cur = insns.to_vec();
    let mut rounds = 0;
    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        changed |= widen_checksum_loops(&mut cur);
        changed |= collapse_ttl_update(&mut cur);
        changed |= forward_pass(&mut cur);
        changed |= dse(&mut cur);
        changed |= thread_jumps(&mut cur);
        changed |= compact(&mut cur);
        if !changed {
            break;
        }
        rounds += 1;
    }
    if cur.len() < before && verifier::verify(&cur).is_ok() {
        let after = cur.len();
        (
            cur,
            OptStats {
                before,
                after,
                rounds,
            },
        )
    } else {
        (insns.to_vec(), unchanged)
    }
}

// ---------------------------------------------------------------------------
// Shared analyses: successors, uses/defs, liveness, jump targets.
// ---------------------------------------------------------------------------

/// Control-flow successors of `insns[pc]` as `(fallthrough, taken)`.
/// Tail calls fall through on a missing program-array slot and leave
/// the program otherwise, so they only have a fallthrough edge here.
fn successors(insns: &[Insn], pc: usize) -> (Option<usize>, Option<usize>) {
    match insns[pc] {
        Insn::Ja { off } => (None, Some(target(pc, off))),
        Insn::JmpImm { off, .. } | Insn::JmpReg { off, .. } => {
            (Some(pc + 1), Some(target(pc, off)))
        }
        Insn::Exit => (None, None),
        _ => (Some(pc + 1), None),
    }
}

/// Absolute jump target of a relative offset at `pc`.
fn target(pc: usize, off: i32) -> usize {
    (pc as i64 + 1 + i64::from(off)) as usize
}

fn bit(r: u8) -> u16 {
    1 << r
}

/// Registers read / written by one instruction, as bitmasks.
fn uses_defs(insn: Insn) -> (u16, u16) {
    match insn {
        Insn::AluImm {
            op: AluOp::Mov,
            dst,
            ..
        } => (0, bit(dst)),
        Insn::AluImm { dst, .. } => (bit(dst), bit(dst)),
        Insn::AluReg {
            op: AluOp::Mov,
            dst,
            src,
        } => (bit(src), bit(dst)),
        Insn::AluReg { dst, src, .. } => (bit(dst) | bit(src), bit(dst)),
        Insn::Ja { .. } => (0, 0),
        Insn::JmpImm { dst, .. } => (bit(dst), 0),
        Insn::JmpReg { dst, src, .. } => (bit(dst) | bit(src), 0),
        Insn::Load { dst, src, .. } => (bit(src), bit(dst)),
        Insn::Store { dst, src, .. } => (bit(dst) | bit(src), 0),
        Insn::StoreImm { dst, .. } => (bit(dst), 0),
        // Helpers read exactly their declared argument registers (the
        // verifier's per-helper contract, a superset of what the VM
        // actually dereferences) and clobber r0–r5 per the ABI.
        Insn::Call { helper } => {
            let (argc, _, _) = crate::verifier::helper_contract(helper);
            let uses = (1..=u16::from(argc)).fold(0u16, |m, r| m | (1 << r));
            (uses, 0b0011_1111)
        }
        // A tail call is a barrier: the target program observes r0 and
        // the callee-saved registers, so treat every register as read.
        Insn::TailCall { .. } => (0b0111_1111_1111, 0),
        Insn::Exit => (bit(0), 0),
    }
}

/// Live-in register sets (bitmask per instruction), computed in one
/// reverse sweep — sound because verified programs only jump forward,
/// so every successor of `pc` is greater than `pc`.
fn liveness(insns: &[Insn]) -> Vec<u16> {
    let n = insns.len();
    let mut live = vec![0u16; n];
    for pc in (0..n).rev() {
        let out = live_out(insns, &live, pc);
        let (uses, defs) = uses_defs(insns[pc]);
        live[pc] = uses | (out & !defs);
    }
    live
}

/// Union of live-in sets over the successors of `pc`.
fn live_out(insns: &[Insn], live: &[u16], pc: usize) -> u16 {
    let (ft, tk) = successors(insns, pc);
    let mut out = 0u16;
    if let Some(t) = ft {
        if t < live.len() {
            out |= live[t];
        }
    }
    if let Some(t) = tk {
        if t < live.len() {
            out |= live[t];
        }
    }
    out
}

/// Marks every instruction that is the taken-target of some jump.
/// Merge points invalidate straight-line assumptions (the CSE table)
/// and idiom matchers refuse patterns that are jumped into.
fn jump_targets(insns: &[Insn]) -> Vec<bool> {
    let mut tgt = vec![false; insns.len() + 1];
    for pc in 0..insns.len() {
        if let (_, Some(t)) = successors(insns, pc) {
            if t < tgt.len() {
                tgt[t] = true;
            }
        }
    }
    tgt
}

// ---------------------------------------------------------------------------
// Forward dataflow pass: constant/copy/pointer propagation, load CSE,
// branch folding, unreachable-code elimination.
// ---------------------------------------------------------------------------

/// Abstract register value. `Top(id)` is an opaque value with an
/// identity: two registers holding `Top` with the *same* id provably
/// hold the same runtime value (ids flow through `mov`), which is what
/// lets copy elimination and CSE work without knowing the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Unknown value with an equality id.
    Top(u32),
    /// Compile-time constant.
    Const(u64),
    /// The XDP context pointer (`r1` at entry).
    Ctx,
    /// Packet-data pointer plus a byte displacement
    /// (from `*(u64*)(ctx + 0)`).
    PktData(i64),
    /// Packet-end pointer (from `*(u64*)(ctx + 8)`).
    PktEnd,
    /// Frame pointer plus a byte displacement (`r10` is read-only, so
    /// the displacement is exact).
    FpOff(i64),
}

type RegState = [AbsVal; NUM_REGS];

/// One remembered load: `reg` currently holds the `size`-sized value at
/// `base + off`. `base` is an abstract value, not a register, so the
/// entry survives the base register being repointed.
#[derive(Debug, Clone, Copy)]
struct CseEntry {
    base: AbsVal,
    off: i16,
    size: MemSize,
    reg: u8,
}

fn overlaps(a_off: i64, a_len: i64, b_off: i64, b_len: i64) -> bool {
    a_off < b_off + b_len && b_off < a_off + a_len
}

/// The main forward sweep. Verified programs form a DAG (forward jumps
/// only), so one pass in pc order with a join at merge points reaches
/// the same fixpoint iteration would. Rewrites are decided from the
/// in-state of each instruction and applied in place; dead and
/// unreachable instructions become [`NOP`]s for [`compact`].
#[allow(clippy::too_many_lines)]
fn forward_pass(insns: &mut [Insn]) -> bool {
    let n = insns.len();
    let is_target = jump_targets(insns);
    let mut ctr: u32 = 0;
    let mut fresh = |ctr: &mut u32| {
        *ctr += 1;
        AbsVal::Top(*ctr)
    };
    let mut states: Vec<Option<RegState>> = vec![None; n];
    let mut entry = [AbsVal::Top(0); NUM_REGS];
    for slot in entry.iter_mut() {
        *slot = fresh(&mut ctr);
    }
    entry[1] = AbsVal::Ctx;
    entry[REG_FP as usize] = AbsVal::FpOff(0);
    states[0] = Some(entry);

    let mut cse: Vec<CseEntry> = Vec::new();
    let mut changed = false;

    for pc in 0..n {
        let Some(mut st) = states[pc] else {
            // Unreachable: delete. Nothing jumps here (a jump would
            // have seeded the state), so falling through the NOP is
            // never observed.
            if insns[pc] != NOP {
                insns[pc] = NOP;
                changed = true;
            }
            continue;
        };
        if is_target[pc] {
            // Merge point: the straight-line availability table no
            // longer holds on all incoming paths.
            cse.clear();
        }

        let cur = rewrite(insns[pc], &st, &cse);
        if cur != insns[pc] {
            insns[pc] = cur;
            changed = true;
        }

        // Transfer: update the abstract state and the CSE table.
        match cur {
            Insn::AluImm { op, dst, imm } => {
                let d = dst as usize;
                st[d] = transfer_alu(op, st[d], AbsVal::Const(imm as u64), &mut ctr, &mut fresh);
                drop_reg(&mut cse, dst);
            }
            Insn::AluReg { op, dst, src } => {
                let d = dst as usize;
                st[d] = if op == AluOp::Mov {
                    st[src as usize]
                } else {
                    transfer_alu(op, st[d], st[src as usize], &mut ctr, &mut fresh)
                };
                drop_reg(&mut cse, dst);
            }
            Insn::Load {
                size,
                dst,
                src,
                off,
            } => {
                let base = st[src as usize];
                st[dst as usize] = match (base, size, off) {
                    (AbsVal::Ctx, MemSize::DW, 0) => AbsVal::PktData(0),
                    (AbsVal::Ctx, MemSize::DW, 8) => AbsVal::PktEnd,
                    _ => fresh(&mut ctr),
                };
                drop_reg(&mut cse, dst);
                if matches!(base, AbsVal::FpOff(_) | AbsVal::PktData(_) | AbsVal::Ctx) {
                    cse.push(CseEntry {
                        base,
                        off,
                        size,
                        reg: dst,
                    });
                }
            }
            Insn::Store { size, dst, off, .. } | Insn::StoreImm { size, dst, off, .. } => {
                invalidate_stores(&mut cse, st[dst as usize], off, size);
            }
            Insn::Call { .. } => {
                // Helpers may write the stack through pointer arguments
                // (and read anything), but never write the packet — a
                // VM invariant the parity suites pin down. r0–r5 are
                // clobbered by the ABI.
                for r in 0..=5u8 {
                    st[r as usize] = fresh(&mut ctr);
                }
                cse.retain(|e| matches!(e.base, AbsVal::PktData(_)) && e.reg > 5);
            }
            Insn::TailCall { .. } => {
                // Barrier: on a missing slot execution continues with
                // unknown effects from our point of view.
                for r in 0..REG_FP {
                    st[r as usize] = fresh(&mut ctr);
                }
                cse.clear();
            }
            Insn::Ja { .. } | Insn::JmpImm { .. } | Insn::JmpReg { .. } | Insn::Exit => {}
        }

        // Propagate to the successors of the *rewritten* instruction,
        // so decided branches stop seeding their dead edge and
        // newly-unreachable code is found in the same sweep.
        let (ft, tk) = successors(insns, pc);
        for t in [ft, tk].into_iter().flatten() {
            if t < n {
                join(&mut states[t], &st, &mut ctr, &mut fresh);
            }
        }
    }
    changed
}

/// Pointwise join of register states at a merge point: disagreeing
/// registers decay to fresh opaque values.
fn join(
    into: &mut Option<RegState>,
    st: &RegState,
    ctr: &mut u32,
    fresh: &mut impl FnMut(&mut u32) -> AbsVal,
) {
    match into {
        None => *into = Some(*st),
        Some(prev) => {
            for r in 0..NUM_REGS {
                if prev[r] != st[r] {
                    prev[r] = fresh(ctr);
                }
            }
        }
    }
}

/// Abstract ALU transfer. Mirrors [`vm::alu`] exactly on constants;
/// pointer arithmetic tracks displacements; everything else decays.
fn transfer_alu(
    op: AluOp,
    dst: AbsVal,
    src: AbsVal,
    ctr: &mut u32,
    fresh: &mut impl FnMut(&mut u32) -> AbsVal,
) -> AbsVal {
    use AbsVal::{Const, FpOff, PktData};
    match (op, dst, src) {
        (AluOp::Mov, _, v) => v,
        (_, Const(a), Const(b)) => {
            // Division and modulo by a constant zero are rejected by
            // the verifier for the immediate form and deliberately kept
            // in register form by `rewrite`, so the div_zeros counter
            // cannot tick here.
            let mut dz = 0u64;
            let v = vm::alu(op, a, b, &mut dz);
            if dz == 0 {
                Const(v)
            } else {
                fresh(ctr)
            }
        }
        (AluOp::Add, FpOff(o), Const(c)) => FpOff(o.wrapping_add(c as i64)),
        (AluOp::Sub, FpOff(o), Const(c)) => FpOff(o.wrapping_sub(c as i64)),
        (AluOp::Add, Const(c), FpOff(o)) => FpOff(o.wrapping_add(c as i64)),
        (AluOp::Add, PktData(o), Const(c)) => PktData(o.wrapping_add(c as i64)),
        (AluOp::Sub, PktData(o), Const(c)) => PktData(o.wrapping_sub(c as i64)),
        (AluOp::Add, Const(c), PktData(o)) => PktData(o.wrapping_add(c as i64)),
        _ => fresh(ctr),
    }
}

/// Forget availability entries whose value register is redefined.
fn drop_reg(cse: &mut Vec<CseEntry>, reg: u8) {
    cse.retain(|e| e.reg != reg);
}

/// Kill availability entries a store may alias. The three tracked
/// regions (stack, packet, context) are disjoint by construction —
/// tagged pointer bases in the VM — so a store through one region
/// leaves the others available; a store through an untracked pointer
/// kills everything.
fn invalidate_stores(cse: &mut Vec<CseEntry>, base: AbsVal, off: i16, size: MemSize) {
    let len = size.bytes() as i64;
    match base {
        AbsVal::FpOff(b) => cse.retain(|e| match e.base {
            AbsVal::FpOff(eb) => !overlaps(
                b + i64::from(off),
                len,
                eb + i64::from(e.off),
                e.size.bytes() as i64,
            ),
            _ => true,
        }),
        AbsVal::PktData(b) => cse.retain(|e| match e.base {
            AbsVal::PktData(eb) => !overlaps(
                b + i64::from(off),
                len,
                eb + i64::from(e.off),
                e.size.bytes() as i64,
            ),
            _ => true,
        }),
        _ => cse.clear(),
    }
}

/// Decides the rewrite of one instruction from its in-state. Returns
/// the instruction unchanged when nothing is provable.
fn rewrite(insn: Insn, st: &RegState, cse: &[CseEntry]) -> Insn {
    use AbsVal::Const;
    let mut cur = insn;

    // Register-register forms whose source value is known become
    // immediate forms (or disappear).
    if let Insn::AluReg { op, dst, src } = cur {
        let (dv, sv) = (st[dst as usize], st[src as usize]);
        if op == AluOp::Mov && dv == sv {
            return NOP; // dst already holds the value
        }
        cur = if let Const(c) = sv {
            match op {
                // Keep register-form division by a known zero: the
                // immediate form is verifier-rejected, and the runtime
                // result (plus the div_zeros count) must be preserved.
                AluOp::Div | AluOp::Mod if c == 0 => cur,
                // Shift amounts are masked to the register width at
                // runtime; mask here so the immediate stays in the
                // verifier's accepted 0..64 range.
                AluOp::Lsh | AluOp::Rsh | AluOp::Arsh => Insn::AluImm {
                    op,
                    dst,
                    imm: (c & 63) as i64,
                },
                _ => Insn::AluImm {
                    op,
                    dst,
                    imm: c as i64,
                },
            }
        } else if dv == Const(0) && matches!(op, AluOp::Add | AluOp::Or | AluOp::Xor) {
            // 0 + x == 0 | x == 0 ^ x == x.
            Insn::AluReg {
                op: AluOp::Mov,
                dst,
                src,
            }
        } else if dv == sv && matches!(op, AluOp::Sub | AluOp::Xor) {
            // x - x == x ^ x == 0, even when x itself is unknown.
            Insn::AluImm {
                op: AluOp::Mov,
                dst,
                imm: 0,
            }
        } else {
            cur
        };
    }

    // Immediate-form simplification: full fold on a constant register,
    // then algebraic identities.
    if let Insn::AluImm { op, dst, imm } = cur {
        if op != AluOp::Mov {
            if let Const(c) = st[dst as usize] {
                if !(matches!(op, AluOp::Div | AluOp::Mod) && imm == 0) {
                    let mut dz = 0u64;
                    let v = vm::alu(op, c, imm as u64, &mut dz);
                    cur = Insn::AluImm {
                        op: AluOp::Mov,
                        dst,
                        imm: v as i64,
                    };
                }
            }
        }
    }
    if let Insn::AluImm { op, dst, imm } = cur {
        match op {
            AluOp::Mov if st[dst as usize] == Const(imm as u64) => return NOP,
            AluOp::Add
            | AluOp::Sub
            | AluOp::Or
            | AluOp::Xor
            | AluOp::Lsh
            | AluOp::Rsh
            | AluOp::Arsh
                if imm == 0 =>
            {
                return NOP
            }
            AluOp::Mul | AluOp::Div if imm == 1 => return NOP,
            AluOp::And if imm == -1 => return NOP,
            AluOp::Mul | AluOp::And if imm == 0 => {
                cur = Insn::AluImm {
                    op: AluOp::Mov,
                    dst,
                    imm: 0,
                };
            }
            _ => {}
        }
    }

    // Branch folding.
    match cur {
        Insn::JmpImm {
            cond,
            dst,
            imm,
            off,
        } => {
            if off == 0 {
                return NOP; // both edges fall through; predicates are pure
            }
            if let Const(c) = st[dst as usize] {
                return if vm::jump_taken(cond, c, imm as u64) {
                    Insn::Ja { off }
                } else {
                    NOP
                };
            }
        }
        Insn::JmpReg {
            cond,
            dst,
            src,
            off,
        } => {
            if off == 0 {
                return NOP;
            }
            let (dv, sv) = (st[dst as usize], st[src as usize]);
            if let (Const(a), Const(b)) = (dv, sv) {
                return if vm::jump_taken(cond, a, b) {
                    Insn::Ja { off }
                } else {
                    NOP
                };
            }
            if let Const(c) = sv {
                return Insn::JmpImm {
                    cond,
                    dst,
                    imm: c as i64,
                    off,
                };
            }
            if dv == sv {
                // Comparing a value against itself.
                return match cond {
                    JmpCond::Eq | JmpCond::Ge | JmpCond::Le => Insn::Ja { off },
                    JmpCond::Ne | JmpCond::Gt | JmpCond::Lt | JmpCond::Sgt | JmpCond::Slt => NOP,
                    JmpCond::Set => cur, // x & x != 0 depends on x
                };
            }
        }
        _ => {}
    }

    // Loads: CSE first, then pointer-displacement folding.
    if let Insn::Load {
        size,
        dst,
        src,
        off,
    } = cur
    {
        let base = st[src as usize];
        if let Some(e) = cse
            .iter()
            .find(|e| e.base == base && e.off == off && e.size == size)
        {
            return if e.reg == dst {
                NOP
            } else {
                Insn::AluReg {
                    op: AluOp::Mov,
                    dst,
                    src: e.reg,
                }
            };
        }
        if let Some((nsrc, noff)) = fold_base(st, src, off) {
            return Insn::Load {
                size,
                dst,
                src: nsrc,
                off: noff,
            };
        }
    }

    // Stores: a constant source becomes an immediate store (freeing the
    // register), and the base pointer folds like loads.
    if let Insn::Store {
        size,
        dst,
        off,
        src,
    } = cur
    {
        if let Const(c) = st[src as usize] {
            cur = Insn::StoreImm {
                size,
                dst,
                off,
                imm: c as i64,
            };
        }
    }
    match cur {
        Insn::Store {
            size,
            dst,
            off,
            src,
        } => {
            if let Some((ndst, noff)) = fold_base(st, dst, off) {
                return Insn::Store {
                    size,
                    dst: ndst,
                    off: noff,
                    src,
                };
            }
        }
        Insn::StoreImm {
            size,
            dst,
            off,
            imm,
        } => {
            if let Some((ndst, noff)) = fold_base(st, dst, off) {
                return Insn::StoreImm {
                    size,
                    dst: ndst,
                    off: noff,
                    imm,
                };
            }
        }
        _ => {}
    }

    cur
}

/// Folds a derived pointer base into a canonical register plus
/// displacement: stack accesses through copies of `r10` become direct
/// `r10`-relative accesses, and packet accesses through derived
/// pointers re-anchor on the register closest to the start of the
/// packet (usually the root `data` pointer), ties broken by register
/// number. Returns `None` when nothing changes or the displacement
/// would not fit the instruction encoding.
fn fold_base(st: &RegState, base: u8, off: i16) -> Option<(u8, i16)> {
    match st[base as usize] {
        AbsVal::FpOff(c) if base != REG_FP => {
            let noff = c.checked_add(i64::from(off))?;
            let noff = i16::try_from(noff).ok()?;
            Some((REG_FP, noff))
        }
        AbsVal::PktData(c) => {
            let (b, r) = (0..NUM_REGS as u8)
                .filter_map(|r| match st[r as usize] {
                    AbsVal::PktData(b) => Some((b, r)),
                    _ => None,
                })
                .min()?;
            let noff = c.checked_sub(b)?.checked_add(i64::from(off))?;
            let noff = i16::try_from(noff).ok()?;
            if r == base && noff == off {
                return None;
            }
            Some((r, noff))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Dead-store elimination.
// ---------------------------------------------------------------------------

/// Removes side-effect-free instructions whose destination register is
/// dead. ALU ops and loads are pure (loads in a verified program are
/// in-bounds reads); calls, stores and control flow are never touched.
fn dse(insns: &mut [Insn]) -> bool {
    let live = liveness(insns);
    let mut changed = false;
    for pc in 0..insns.len() {
        let dst = match insns[pc] {
            // Division and modulo are only pure when the divisor is
            // provably nonzero: a zero register divisor bumps the
            // observable div_zeros census even when the result is
            // dead. The immediate forms are verifier-guaranteed
            // nonzero divisors, so they stay removable.
            Insn::AluReg {
                op: AluOp::Div | AluOp::Mod,
                ..
            } => continue,
            Insn::AluImm { dst, .. } | Insn::AluReg { dst, .. } | Insn::Load { dst, .. } => dst,
            _ => continue,
        };
        if live_out(insns, &live, pc) & bit(dst) == 0 && insns[pc] != NOP {
            insns[pc] = NOP;
            changed = true;
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// Jump threading.
// ---------------------------------------------------------------------------

/// Follows chains of unconditional jumps from `t` to the first
/// non-jump instruction. Terminates because verified jumps only go
/// forward; the fuel bound is defense in depth.
fn chase(insns: &[Insn], mut t: usize) -> usize {
    let mut fuel = insns.len();
    while fuel > 0 {
        match insns[t] {
            Insn::Ja { off } => t = target(t, off),
            _ => break,
        }
        fuel -= 1;
    }
    t
}

/// Retargets jumps whose destination is another jump, and turns
/// unconditional jumps to `exit` into `exit` so the hot verdict path
/// straightens out.
fn thread_jumps(insns: &mut [Insn]) -> bool {
    let mut changed = false;
    for pc in 0..insns.len() {
        match insns[pc] {
            Insn::Ja { off } if off != 0 => {
                let t = chase(insns, target(pc, off));
                if insns[t] == Insn::Exit {
                    insns[pc] = Insn::Exit;
                    changed = true;
                } else if t != target(pc, off) {
                    insns[pc] = Insn::Ja {
                        off: (t - pc - 1) as i32,
                    };
                    changed = true;
                }
            }
            Insn::JmpImm {
                cond,
                dst,
                imm,
                off,
            } if off != 0 => {
                let t = chase(insns, target(pc, off));
                if t != target(pc, off) {
                    insns[pc] = Insn::JmpImm {
                        cond,
                        dst,
                        imm,
                        off: (t - pc - 1) as i32,
                    };
                    changed = true;
                }
            }
            Insn::JmpReg {
                cond,
                dst,
                src,
                off,
            } if off != 0 => {
                let t = chase(insns, target(pc, off));
                if t != target(pc, off) {
                    insns[pc] = Insn::JmpReg {
                        cond,
                        dst,
                        src,
                        off: (t - pc - 1) as i32,
                    };
                    changed = true;
                }
            }
            _ => {}
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// NOP compaction with jump-offset fixup.
// ---------------------------------------------------------------------------

/// Physically removes [`NOP`] markers and re-encodes every jump offset
/// against the compacted layout. A jump whose target was removed lands
/// on the next surviving instruction — exactly where the fallthrough
/// of the removed marker went.
fn compact(insns: &mut Vec<Insn>) -> bool {
    let n = insns.len();
    let keep: Vec<bool> = insns.iter().map(|i| *i != NOP).collect();
    if keep.iter().all(|&k| k) {
        return false;
    }
    let mut newpos = vec![0usize; n + 1];
    for i in 0..n {
        newpos[i + 1] = newpos[i] + usize::from(keep[i]);
    }
    let mut out = Vec::with_capacity(newpos[n]);
    for pc in 0..n {
        if !keep[pc] {
            continue;
        }
        let fix = |off: i32| (newpos[target(pc, off)] as i64 - newpos[pc] as i64 - 1) as i32;
        out.push(match insns[pc] {
            Insn::Ja { off } => Insn::Ja { off: fix(off) },
            Insn::JmpImm {
                cond,
                dst,
                imm,
                off,
            } => Insn::JmpImm {
                cond,
                dst,
                imm,
                off: fix(off),
            },
            Insn::JmpReg {
                cond,
                dst,
                src,
                off,
            } => Insn::JmpReg {
                cond,
                dst,
                src,
                off: fix(off),
            },
            other => other,
        });
    }
    *insns = out;
    true
}

// ---------------------------------------------------------------------------
// Idiom rewrites.
// ---------------------------------------------------------------------------

/// Disassembles one instruction for the opt-dump tooling.
pub fn disasm(insn: &Insn) -> String {
    fn alu_name(op: AluOp) -> &'static str {
        match op {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Lsh => "lsh",
            AluOp::Rsh => "rsh",
            AluOp::Mod => "mod",
            AluOp::Xor => "xor",
            AluOp::Mov => "mov",
            AluOp::Arsh => "arsh",
        }
    }
    fn cond_name(cond: JmpCond) -> &'static str {
        match cond {
            JmpCond::Eq => "jeq",
            JmpCond::Ne => "jne",
            JmpCond::Gt => "jgt",
            JmpCond::Ge => "jge",
            JmpCond::Lt => "jlt",
            JmpCond::Le => "jle",
            JmpCond::Sgt => "jsgt",
            JmpCond::Slt => "jslt",
            JmpCond::Set => "jset",
        }
    }
    fn size_name(size: MemSize) -> &'static str {
        match size {
            MemSize::B => "u8",
            MemSize::H => "u16",
            MemSize::W => "u32",
            MemSize::DW => "u64",
        }
    }
    match *insn {
        Insn::AluImm { op, dst, imm } => format!("{} r{dst}, {imm:#x}", alu_name(op)),
        Insn::AluReg { op, dst, src } => format!("{} r{dst}, r{src}", alu_name(op)),
        Insn::Ja { off } => format!("ja +{off}"),
        Insn::JmpImm {
            cond,
            dst,
            imm,
            off,
        } => format!("{} r{dst}, {imm:#x}, +{off}", cond_name(cond)),
        Insn::JmpReg {
            cond,
            dst,
            src,
            off,
        } => format!("{} r{dst}, r{src}, +{off}", cond_name(cond)),
        Insn::Load {
            size,
            dst,
            src,
            off,
        } => {
            format!("ld{} r{dst}, [r{src}{off:+}]", size_name(size))
        }
        Insn::Store {
            size,
            dst,
            off,
            src,
        } => format!("st{} [r{dst}{off:+}], r{src}", size_name(size)),
        Insn::StoreImm {
            size,
            dst,
            off,
            imm,
        } => format!("st{} [r{dst}{off:+}], {imm:#x}", size_name(size)),
        Insn::Call { helper } => format!("call {helper:?}"),
        Insn::TailCall { prog_array, index } => format!("tail_call map{prog_array}[{index}]"),
        Insn::Exit => "exit".to_string(),
    }
}

/// Renders a whole program, one instruction per line, for the dump
/// example and debugging.
pub fn disasm_program(insns: &[Insn]) -> String {
    insns
        .iter()
        .enumerate()
        .map(|(i, insn)| format!("{i:4}: {}", disasm(insn)))
        .collect::<Vec<_>>()
        .join("\n")
}

/// A matched checksum-verify loop: `acc = 0`, then `pairs` consecutive
/// `ldu16 t, [base+off0+2k]; add acc, t` pairs over contiguous even
/// displacements, two fold idioms, and a compare against `0xffff`.
struct CsumLoop {
    acc: u8,
    t: u8,
    f: u8,
    base: u8,
    off0: i16,
    pairs: usize,
    /// Length in instructions including the final branch.
    len: usize,
}

/// Matches the emitter's Internet-checksum verification loop at `i`.
fn match_csum_loop(insns: &[Insn], i: usize) -> Option<CsumLoop> {
    let n = insns.len();
    let acc = match insns.get(i)? {
        Insn::AluImm {
            op: AluOp::Mov,
            dst,
            imm: 0,
        } => *dst,
        _ => return None,
    };
    // Load/accumulate pairs over consecutive 16-bit words.
    let (mut t, mut base, mut off0) = (0u8, 0u8, 0i16);
    let mut pairs = 0usize;
    let mut j = i + 1;
    while j + 1 < n {
        let (ld_dst, ld_src, ld_off) = match insns[j] {
            Insn::Load {
                size: MemSize::H,
                dst,
                src,
                off,
            } => (dst, src, off),
            _ => break,
        };
        let add_ok = matches!(
            insns[j + 1],
            Insn::AluReg { op: AluOp::Add, dst, src } if dst == acc && src == ld_dst
        );
        if !add_ok {
            break;
        }
        if pairs == 0 {
            (t, base, off0) = (ld_dst, ld_src, ld_off);
            if t == acc || t == base || acc == base {
                return None;
            }
        } else if ld_dst != t || ld_src != base || ld_off != off0 + 2 * pairs as i16 {
            break;
        }
        pairs += 1;
        j += 2;
    }
    // Need an even number of 16-bit words to widen to 32-bit loads.
    if pairs < 2 || !pairs.is_multiple_of(2) {
        return None;
    }
    // Two fold idioms: f = acc; f >>= 16; acc &= 0xffff; acc += f.
    let mut f = 0u8;
    for fold in 0..2 {
        if j + 3 >= n {
            return None;
        }
        let fd = match insns[j] {
            Insn::AluReg {
                op: AluOp::Mov,
                dst,
                src,
            } if src == acc && dst != acc && dst != base => dst,
            _ => return None,
        };
        if fold == 0 {
            f = fd;
        } else if fd != f {
            return None;
        }
        let ok = insns[j + 1]
            == Insn::AluImm {
                op: AluOp::Rsh,
                dst: f,
                imm: 16,
            }
            && insns[j + 2]
                == Insn::AluImm {
                    op: AluOp::And,
                    dst: acc,
                    imm: 0xffff,
                }
            && insns[j + 3]
                == (Insn::AluReg {
                    op: AluOp::Add,
                    dst: acc,
                    src: f,
                });
        if !ok {
            return None;
        }
        j += 4;
    }
    // The verdict branch on the folded sum.
    match insns.get(j)? {
        Insn::JmpImm {
            cond: JmpCond::Ne | JmpCond::Eq,
            dst,
            imm: 0xffff,
            ..
        } if *dst == acc => {}
        _ => return None,
    }
    Some(CsumLoop {
        acc,
        t,
        f,
        base,
        off0,
        pairs,
        len: j + 1 - i,
    })
}

/// Widens checksum-verify loops from 16-bit to 32-bit loads.
///
/// Soundness: the loop computes `sum16 = Σ` of `2n` 16-bit words and
/// tests `fold²(sum16) == 0xffff`. The widened form computes `sum32 =
/// Σ` of the same bytes as `n` 32-bit words; since `2^16 ≡ 1 (mod
/// 0xffff)`, `sum32 ≡ sum16 (mod 0xffff)`, and both sums are zero
/// exactly when every summed byte is zero. `fold` preserves residue
/// and zero-ness and `fold²(x) == 0xffff` holds iff `x ≢ 0` is false
/// and `x != 0` — i.e. the `== 0xffff` test agrees between the two
/// forms on every input. The accumulator and scratch registers must be
/// dead after the branch (their final values differ), the loads cover
/// exactly the same bytes (no new access for the verifier to reject),
/// and nothing may jump into the pattern's interior.
fn widen_checksum_loops(insns: &mut [Insn]) -> bool {
    let live = liveness(insns);
    let is_target = jump_targets(insns);
    let n = insns.len();
    let mut changed = false;
    let mut i = 0;
    while i < n {
        let Some(m) = match_csum_loop(insns, i) else {
            i += 1;
            continue;
        };
        let end = i + m.len; // one past the branch
        if (i + 1..end).any(|k| is_target[k]) {
            i += 1;
            continue;
        }
        // acc, t and f must be dead on both branch outcomes.
        let bpc = end - 1;
        let dead_mask = bit(m.acc) | bit(m.t) | bit(m.f);
        if live_out(insns, &live, bpc) & dead_mask != 0 {
            i += 1;
            continue;
        }
        // Rewrite: n/2 32-bit load/accumulate pairs (the first pair
        // initializes the accumulator directly, retiring the zero
        // init), the same two folds, NOP padding, and the branch left
        // untouched in place so its offset stays valid.
        let mut body = Vec::with_capacity(m.len - 1);
        for q in 0..m.pairs / 2 {
            if q == 0 {
                // The first load goes straight into the accumulator,
                // retiring both the zero init and the first add.
                body.push(Insn::Load {
                    size: MemSize::W,
                    dst: m.acc,
                    src: m.base,
                    off: m.off0,
                });
                continue;
            }
            body.push(Insn::Load {
                size: MemSize::W,
                dst: m.t,
                src: m.base,
                off: m.off0 + 4 * q as i16,
            });
            body.push(Insn::AluReg {
                op: AluOp::Add,
                dst: m.acc,
                src: m.t,
            });
        }
        for _ in 0..2 {
            body.push(Insn::AluReg {
                op: AluOp::Mov,
                dst: m.f,
                src: m.acc,
            });
            body.push(Insn::AluImm {
                op: AluOp::Rsh,
                dst: m.f,
                imm: 16,
            });
            body.push(Insn::AluImm {
                op: AluOp::And,
                dst: m.acc,
                imm: 0xffff,
            });
            body.push(Insn::AluReg {
                op: AluOp::Add,
                dst: m.acc,
                src: m.f,
            });
        }
        debug_assert!(body.len() < m.len - 1);
        for (k, insn) in body.iter().enumerate() {
            insns[i + k] = *insn;
        }
        for insn in insns.iter_mut().take(bpc).skip(i + body.len()) {
            *insn = NOP;
        }
        changed = true;
        i = end;
    }
    changed
}

/// Collapses the emitter's decrement-TTL incremental-checksum update to
/// its RFC 1624 constant delta.
///
/// The matched idiom rebuilds the 16-bit header word `w_old = ttl<<8 |
/// proto`, decrements the TTL, rebuilds `w_new`, and recomputes the
/// checksum as `~fold²(~hc + ~w_old + w_new)` (16-bit complements via
/// `xor 0xffff` of values ≤ 0xffff). Since `w_new ≡ w_old - 0x100
/// (mod 2^64)` — exactly, including the `ttl == 0` wraparound, because
/// the low 8 bits are untouched — the wrapping sum `~w_old + w_new`
/// is the constant `0xffff - 0x100 = 0xfeff`, independent of the TTL
/// value. The whole update becomes `~fold(~hc + 0xfeff)`: the sum is
/// at most `0x1fefe`, so a single fold already lands in `0..=0xffff`
/// and the second fold of the original is the identity — the stored
/// bytes match bit for bit. Only the TTL scratch register ends with a
/// different value, so it must be dead after the pattern.
fn collapse_ttl_update(insns: &mut [Insn]) -> bool {
    let live = liveness(insns);
    let is_target = jump_targets(insns);
    let n = insns.len();
    let mut changed = false;
    let mut i = 0;
    while i < n {
        let Some((rt, rp, rw, rx, base, off_t, off_c, off_c1)) = match_ttl_update(insns, i) else {
            i += 1;
            continue;
        };
        let end = i + TTL_PATTERN_LEN;
        if end >= n || (i + 1..end).any(|k| is_target[k]) {
            i += 1;
            continue;
        }
        // rt ends as the new TTL byte instead of w_new; rp, rw, rx end
        // with identical values in both forms.
        if live[end] & bit(rt) != 0 {
            i += 1;
            continue;
        }
        let body = [
            Insn::Load {
                size: MemSize::B,
                dst: rt,
                src: base,
                off: off_t,
            },
            Insn::AluImm {
                op: AluOp::Sub,
                dst: rt,
                imm: 1,
            },
            Insn::Store {
                size: MemSize::B,
                dst: base,
                off: off_t,
                src: rt,
            },
            Insn::Load {
                size: MemSize::B,
                dst: rp,
                src: base,
                off: off_c,
            },
            Insn::AluImm {
                op: AluOp::Lsh,
                dst: rp,
                imm: 8,
            },
            Insn::Load {
                size: MemSize::B,
                dst: rx,
                src: base,
                off: off_c1,
            },
            Insn::AluReg {
                op: AluOp::Or,
                dst: rp,
                src: rx,
            },
            Insn::AluImm {
                op: AluOp::Xor,
                dst: rp,
                imm: 0xffff,
            },
            Insn::AluImm {
                op: AluOp::Add,
                dst: rp,
                imm: 0xfeff,
            },
            Insn::AluReg {
                op: AluOp::Mov,
                dst: rw,
                src: rp,
            },
            Insn::AluImm {
                op: AluOp::Rsh,
                dst: rw,
                imm: 16,
            },
            Insn::AluImm {
                op: AluOp::And,
                dst: rp,
                imm: 0xffff,
            },
            Insn::AluReg {
                op: AluOp::Add,
                dst: rp,
                src: rw,
            },
            Insn::AluImm {
                op: AluOp::Xor,
                dst: rp,
                imm: 0xffff,
            },
            Insn::AluReg {
                op: AluOp::Mov,
                dst: rw,
                src: rp,
            },
            Insn::AluImm {
                op: AluOp::Rsh,
                dst: rw,
                imm: 8,
            },
            Insn::Store {
                size: MemSize::B,
                dst: base,
                off: off_c,
                src: rw,
            },
            Insn::Store {
                size: MemSize::B,
                dst: base,
                off: off_c1,
                src: rp,
            },
        ];
        for (k, insn) in body.iter().enumerate() {
            insns[i + k] = *insn;
        }
        for insn in insns.iter_mut().take(end).skip(i + body.len()) {
            *insn = NOP;
        }
        changed = true;
        i = end;
    }
    changed
}

/// Length of the matched TTL-update idiom (post emitter fix).
const TTL_PATTERN_LEN: usize = 30;

/// Matches the exact instruction shape `emit_ttl_decrement` produces,
/// with the registers and displacements as wildcards. Returns
/// `(rt, rp, rw, rx, base, off_ttl, off_csum, off_csum+1)`.
#[allow(clippy::type_complexity)]
fn match_ttl_update(insns: &[Insn], i: usize) -> Option<(u8, u8, u8, u8, u8, i16, i16, i16)> {
    if i + TTL_PATTERN_LEN > insns.len() {
        return None;
    }
    let w = &insns[i..i + TTL_PATTERN_LEN];
    // 0: ldu8 rt, [base+off_t]     1: ldu8 rp, [base+_]
    let (rt, base, off_t) = match w[0] {
        Insn::Load {
            size: MemSize::B,
            dst,
            src,
            off,
        } => (dst, src, off),
        _ => return None,
    };
    let rp = match w[1] {
        Insn::Load {
            size: MemSize::B,
            dst,
            src,
            ..
        } if src == base => dst,
        _ => return None,
    };
    // 2..=4: rw = rt; rw <<= 8; rw |= rp   (w_old)
    let rw = match w[2] {
        Insn::AluReg {
            op: AluOp::Mov,
            dst,
            src,
        } if src == rt => dst,
        _ => return None,
    };
    let lsh8 = |dst: u8| Insn::AluImm {
        op: AluOp::Lsh,
        dst,
        imm: 8,
    };
    let or_reg = |dst: u8, src: u8| Insn::AluReg {
        op: AluOp::Or,
        dst,
        src,
    };
    if w[3] != lsh8(rw) || w[4] != or_reg(rw, rp) {
        return None;
    }
    // 5..=8: rt -= 1; stu8 [base+off_t] = rt; rt <<= 8; rt |= rp (w_new)
    let ok =
        w[5] == Insn::AluImm {
            op: AluOp::Sub,
            dst: rt,
            imm: 1,
        } && w[6]
            == (Insn::Store {
                size: MemSize::B,
                dst: base,
                off: off_t,
                src: rt,
            })
            && w[7] == lsh8(rt)
            && w[8] == or_reg(rt, rp);
    if !ok {
        return None;
    }
    // 9..=12: rp = [base+off_c]; rp <<= 8; rx = [base+off_c1]; rp |= rx
    let off_c = match w[9] {
        Insn::Load {
            size: MemSize::B,
            dst,
            src,
            off,
        } if dst == rp && src == base => off,
        _ => return None,
    };
    if w[10] != lsh8(rp) {
        return None;
    }
    let (rx, off_c1) = match w[11] {
        Insn::Load {
            size: MemSize::B,
            dst,
            src,
            off,
        } if src == base => (dst, off),
        _ => return None,
    };
    if w[12] != or_reg(rp, rx) {
        return None;
    }
    // 13..=16: rp ^= 0xffff; rw ^= 0xffff; rp += rw; rp += rt
    let xor_ffff = |dst: u8| Insn::AluImm {
        op: AluOp::Xor,
        dst,
        imm: 0xffff,
    };
    let add_reg = |dst: u8, src: u8| Insn::AluReg {
        op: AluOp::Add,
        dst,
        src,
    };
    if w[13] != xor_ffff(rp)
        || w[14] != xor_ffff(rw)
        || w[15] != add_reg(rp, rw)
        || w[16] != add_reg(rp, rt)
    {
        return None;
    }
    // 17..=24: two fold idioms with rw as scratch.
    for fold in 0..2 {
        let k = 17 + 4 * fold;
        let ok =
            w[k] == (Insn::AluReg {
                op: AluOp::Mov,
                dst: rw,
                src: rp,
            }) && w[k + 1]
                == Insn::AluImm {
                    op: AluOp::Rsh,
                    dst: rw,
                    imm: 16,
                }
                && w[k + 2]
                    == Insn::AluImm {
                        op: AluOp::And,
                        dst: rp,
                        imm: 0xffff,
                    }
                && w[k + 3] == add_reg(rp, rw);
        if !ok {
            return None;
        }
    }
    // 25..=29: rp ^= 0xffff; rw = rp; rw >>= 8; store hi; store lo.
    let ok = w[25] == xor_ffff(rp)
        && w[26]
            == (Insn::AluReg {
                op: AluOp::Mov,
                dst: rw,
                src: rp,
            })
        && w[27]
            == Insn::AluImm {
                op: AluOp::Rsh,
                dst: rw,
                imm: 8,
            }
        && w[28]
            == (Insn::Store {
                size: MemSize::B,
                dst: base,
                off: off_c,
                src: rw,
            })
        && w[29]
            == (Insn::Store {
                size: MemSize::B,
                dst: base,
                off: off_c1,
                src: rp,
            });
    if !ok {
        return None;
    }
    // Distinct scratch registers, none of them the base pointer, and
    // byte loads guarantee the 16-bit-complement precondition.
    let regs = [rt, rp, rw, rx];
    for (a, ra) in regs.iter().enumerate() {
        if *ra == base || *ra == REG_FP {
            return None;
        }
        for rb in &regs[a + 1..] {
            if ra == rb {
                return None;
            }
        }
    }
    Some((rt, rp, rw, rx, base, off_t, off_c, off_c1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::helpers::NullEnv;
    use crate::insn::Action;
    use crate::maps::MapStore;
    use crate::program::{LoadedProgram, Program};
    use crate::vm::{VmCtx, VmOutcome};
    use linuxfp_sim::{CostModel, CostTracker};

    fn run_insns(insns: &[Insn], packet: &mut Vec<u8>) -> VmOutcome {
        let prog = LoadedProgram::load(Program::new("t", insns.to_vec())).unwrap();
        let maps = MapStore::new();
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let ctx = VmCtx::xdp(packet, 1, 0);
        crate::vm::run(&prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker)
    }

    /// Runs original and optimized on the same frame and asserts the
    /// observable contract: verdict, frame bytes, and div_zeros.
    fn assert_parity(insns: &[Insn], frame: &[u8]) -> (usize, usize) {
        let (opt, stats) = optimize(insns);
        assert_eq!(stats.before, insns.len());
        assert_eq!(stats.after, opt.len());
        let mut f1 = frame.to_vec();
        let mut f2 = frame.to_vec();
        let o1 = run_insns(insns, &mut f1);
        let o2 = run_insns(&opt, &mut f2);
        assert_eq!(o1.action, o2.action, "verdict diverged");
        assert_eq!(o1.regs[0], o2.regs[0], "r0 diverged");
        assert_eq!(o1.div_zeros, o2.div_zeros, "div_zeros diverged");
        assert_eq!(f1, f2, "frame bytes diverged");
        assert!(o1.error.is_none() && o2.error.is_none());
        (insns.len(), opt.len())
    }

    /// Emits the verifier's packet-bounds guard for `len` bytes:
    /// r6 = data, r7 = data_end, punt (Pass) when the frame is short.
    fn guard(a: &mut Asm, len: i64) {
        a.load(MemSize::DW, 6, 1, 0);
        a.load(MemSize::DW, 7, 1, 8);
        a.mov_reg(2, 6);
        a.alu_imm(AluOp::Add, 2, len);
        a.jmp_reg(JmpCond::Gt, 2, 7, "short");
    }

    #[test]
    fn const_fold_decides_branches() {
        let mut a = Asm::new();
        a.mov_imm(1, 5);
        a.alu_imm(AluOp::Add, 1, 3);
        a.alu_imm(AluOp::Mul, 1, 2); // r1 = 16
        a.jmp_imm(JmpCond::Eq, 1, 16, "yes");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        a.label("yes");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        let insns = a.finish().unwrap();
        let (before, after) = assert_parity(&insns, &[0u8; 64]);
        // The whole computation folds away: mov r0, 2; exit.
        assert_eq!(after, 2, "expected full fold, got {after} of {before}");
    }

    #[test]
    fn copy_elimination_and_pointer_folding() {
        let mut a = Asm::new();
        a.mov_reg(8, 1); // ctx save the emitters produce
        a.mov_reg(3, 10);
        a.alu_imm(AluOp::Add, 3, -16);
        a.store_imm(MemSize::DW, 3, 0, 0x1234);
        a.mov_reg(1, 8); // no-op: r1 still holds ctx
        a.load(MemSize::DW, 0, 3, 0); // -> ld [r10-16]; r3 chain dies
        a.alu_imm(AluOp::And, 0, 0); // -> mov r0, 0 -> folded
        a.alu_imm(AluOp::Add, 0, Action::Pass.code() as i64);
        a.exit();
        let insns = a.finish().unwrap();
        let (_, after) = assert_parity(&insns, &[0u8; 64]);
        // Survivors: store, mov r0 2, exit (the load folds to a
        // constant-killed value chain: and-0 makes r0 independent).
        assert!(after <= 4, "pointer/copy chains not folded: {after} insns");
    }

    #[test]
    fn redundant_load_cse() {
        // The reload of the same stack slot becomes a register copy, so
        // the equality branch is decided, the false arm dies, and with
        // it both loads — CSE pays off through the passes behind it.
        let mut a = Asm::new();
        a.store_imm(MemSize::DW, 10, -8, 21);
        a.load(MemSize::DW, 0, 10, -8);
        a.load(MemSize::DW, 3, 10, -8); // same slot, same bytes
        a.jmp_reg(JmpCond::Eq, 0, 3, "same");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        a.label("same");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        let insns = a.finish().unwrap();
        let (before, after) = assert_parity(&insns, &[0u8; 64]);
        assert!(
            after <= 3,
            "CSE + branch folding + DSE should leave store/mov/exit, \
             got {after} of {before}"
        );
        let mut f = vec![0u8; 64];
        assert_eq!(run_insns(&optimize(&insns).0, &mut f).action, Action::Pass);
    }

    #[test]
    fn unreachable_code_and_jump_chains_removed() {
        let mut a = Asm::new();
        a.mov_imm(0, Action::Pass.code() as i64);
        a.ja("hop");
        a.mov_imm(0, Action::Drop.code() as i64); // unreachable
        a.exit(); // unreachable
        a.label("hop");
        a.ja("out"); // jump-to-jump
        a.mov_imm(0, Action::Tx.code() as i64); // unreachable
        a.label("out");
        a.exit();
        let insns = a.finish().unwrap();
        let (_, after) = assert_parity(&insns, &[0u8; 64]);
        assert_eq!(after, 2, "expected mov+exit only");
    }

    #[test]
    fn div_and_mod_by_zero_are_preserved() {
        let mut a = Asm::new();
        a.mov_imm(3, 0);
        a.mov_imm(0, 7);
        a.alu_reg(AluOp::Div, 0, 3); // must NOT fold: r0=0, div_zeros+1
        a.alu_imm(AluOp::Add, 0, Action::Drop.code() as i64);
        a.exit();
        let insns = a.finish().unwrap();
        assert_parity(&insns, &[0u8; 64]);
        let mut f = vec![0u8; 64];
        let out = run_insns(&optimize(&insns).0, &mut f);
        assert_eq!(out.div_zeros, 1);
        assert_eq!(out.action, Action::Drop);
    }

    /// Builds the emitters' checksum-verify loop over `[14, 34)` plus a
    /// guard, mirroring `emit_ipv4_csum_verify`.
    fn csum_program() -> Vec<Insn> {
        let mut a = Asm::new();
        guard(&mut a, 34);
        a.mov_imm(5, 0);
        for k in 0..10 {
            a.load(MemSize::H, 2, 6, 14 + 2 * k);
            a.alu_reg(AluOp::Add, 5, 2);
        }
        for _ in 0..2 {
            a.mov_reg(2, 5);
            a.alu_imm(AluOp::Rsh, 2, 16);
            a.alu_imm(AluOp::And, 5, 0xFFFF);
            a.alu_reg(AluOp::Add, 5, 2);
        }
        a.jmp_imm(JmpCond::Ne, 5, 0xFFFF, "short");
        a.mov_imm(0, Action::Tx.code() as i64);
        a.exit();
        a.label("short");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        a.finish().unwrap()
    }

    #[test]
    fn checksum_loop_widens_to_word_loads() {
        let insns = csum_program();
        let (opt, stats) = optimize(&insns);
        assert!(
            stats.removed() >= 11,
            "widening should retire 11 insns: {stats:?}\n{}",
            disasm_program(&opt)
        );
        // Parity on a frame with a *valid* checksum, an invalid one,
        // and the all-zero edge case (sum 0 must stay "bad").
        let mut valid = vec![0u8; 64];
        valid[14] = 0x45;
        valid[22] = 64; // ttl
        valid[23] = 17; // proto
                        // Compute the Internet checksum over [14, 34) and store it.
        let mut sum: u32 = 0;
        for k in (14..34).step_by(2) {
            if k == 24 {
                continue;
            }
            sum += u32::from(u16::from(valid[k])) + (u32::from(u16::from(valid[k + 1])) << 8);
        }
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        let csum = !(sum as u16);
        valid[24] = (csum & 0xFF) as u8;
        valid[25] = (csum >> 8) as u8;
        let mut invalid = valid.clone();
        invalid[25] ^= 0x5A;
        for frame in [&valid[..], &invalid[..], &[0u8; 64][..], &[0u8; 20][..]] {
            assert_parity(&insns, frame);
        }
        // And the verdicts themselves are as expected on the two cases.
        let mut f = valid.clone();
        assert_eq!(run_insns(&opt, &mut f).action, Action::Tx);
        let mut f = invalid.clone();
        assert_eq!(run_insns(&opt, &mut f).action, Action::Pass);
    }

    /// Builds the `emit_ttl_decrement` idiom (post emitter fix) with a
    /// bounds guard, matching `core`'s emitter byte for byte.
    fn ttl_program() -> Vec<Insn> {
        let mut a = Asm::new();
        guard(&mut a, 34);
        a.load(MemSize::B, 2, 6, 22);
        a.load(MemSize::B, 4, 6, 23);
        a.mov_reg(5, 2);
        a.alu_imm(AluOp::Lsh, 5, 8);
        a.alu_reg(AluOp::Or, 5, 4);
        a.alu_imm(AluOp::Sub, 2, 1);
        a.store(MemSize::B, 6, 22, 2);
        a.alu_imm(AluOp::Lsh, 2, 8);
        a.alu_reg(AluOp::Or, 2, 4);
        a.load(MemSize::B, 4, 6, 24);
        a.alu_imm(AluOp::Lsh, 4, 8);
        a.load(MemSize::B, 9, 6, 25);
        a.alu_reg(AluOp::Or, 4, 9);
        a.alu_imm(AluOp::Xor, 4, 0xFFFF);
        a.alu_imm(AluOp::Xor, 5, 0xFFFF);
        a.alu_reg(AluOp::Add, 4, 5);
        a.alu_reg(AluOp::Add, 4, 2);
        for _ in 0..2 {
            a.mov_reg(5, 4);
            a.alu_imm(AluOp::Rsh, 5, 16);
            a.alu_imm(AluOp::And, 4, 0xFFFF);
            a.alu_reg(AluOp::Add, 4, 5);
        }
        a.alu_imm(AluOp::Xor, 4, 0xFFFF);
        a.mov_reg(5, 4);
        a.alu_imm(AluOp::Rsh, 5, 8);
        a.store(MemSize::B, 6, 24, 5);
        a.store(MemSize::B, 6, 25, 4);
        a.mov_imm(0, Action::Tx.code() as i64);
        a.exit();
        a.label("short");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        a.finish().unwrap()
    }

    #[test]
    fn ttl_update_collapses_to_constant_delta() {
        let insns = ttl_program();
        let (opt, stats) = optimize(&insns);
        assert!(
            stats.removed() >= 12,
            "TTL collapse should retire 12 insns: {stats:?}\n{}",
            disasm_program(&opt)
        );
        // Parity across TTL values including the wraparound edge, and
        // across checksum bytes including 0x0000 and 0xFFFF.
        for ttl in [0u8, 1, 2, 64, 255] {
            for hc in [0x0000u16, 0x1234, 0xFEFF, 0xFFFF] {
                let mut frame = vec![0u8; 64];
                frame[22] = ttl;
                frame[23] = 17;
                frame[24] = (hc >> 8) as u8;
                frame[25] = (hc & 0xFF) as u8;
                assert_parity(&insns, &frame);
            }
        }
    }

    #[test]
    fn rejects_unverifiable_input_unchanged() {
        // Read of an uninitialized register: verifier says no.
        let insns = vec![
            Insn::AluReg {
                op: AluOp::Add,
                dst: 0,
                src: 9,
            },
            Insn::Exit,
        ];
        let (out, stats) = optimize(&insns);
        assert_eq!(out, insns);
        assert_eq!(stats.removed(), 0);
    }

    #[test]
    fn optimizer_is_deterministic_and_idempotent() {
        let insns = csum_program();
        let (o1, s1) = optimize(&insns);
        let (o2, s2) = optimize(&insns);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        // Re-optimizing the output finds nothing else (it would not be
        // strictly shorter twice without new information).
        let (o3, s3) = optimize(&o1);
        assert_eq!(s3.removed(), 0, "not idempotent: {o3:?}");
    }

    #[test]
    fn disassembler_covers_all_forms() {
        let mut a = Asm::new();
        a.mov_imm(0, 2);
        a.exit();
        let insns = a.finish().unwrap();
        let text = disasm_program(&insns);
        assert!(text.contains("mov r0, 0x2"));
        assert!(text.contains("exit"));
        assert!(disasm(&Insn::Call {
            helper: crate::insn::HelperId::FibLookup
        })
        .contains("FibLookup"));
        assert!(disasm(&Insn::TailCall {
            prog_array: 3,
            index: 1
        })
        .contains("map3[1]"));
    }

    #[test]
    fn optimized_programs_reverify_and_reload() {
        for insns in [csum_program(), ttl_program()] {
            let (opt, stats) = optimize(&insns);
            assert!(stats.after < stats.before);
            verifier::verify(&opt).expect("optimized program must re-verify");
            LoadedProgram::load(Program::new("opt", opt)).expect("must reload");
        }
    }
}
