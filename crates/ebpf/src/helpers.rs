//! The helper-function boundary between programs and the kernel.
//!
//! LinuxFP's central design decision ("Unifying State", paper §IV-B2) is
//! that fast paths access *kernel* state through helpers instead of
//! maintaining shadow copies in maps. [`HelperEnv`] is that boundary: the
//! VM dispatches helper calls through it, and the implementation for
//! [`linuxfp_netstack::Kernel`] reads and updates the very tables the
//! slow path uses.

use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::l7::L7LookupOutcome;
use linuxfp_netstack::nat::NatLookupOutcome;
use linuxfp_netstack::netfilter::{NfVerdict, PacketMeta};
use linuxfp_netstack::stack::{FdbLookupOutcome, FibFastResult, Kernel};
use linuxfp_packet::ipv4::IpProto;
use linuxfp_packet::MacAddr;
use linuxfp_sim::{CostTracker, Nanos};
use std::net::Ipv4Addr;

/// Kernel facilities available to helper implementations.
///
/// Implemented for [`Kernel`] (production) and by [`NullEnv`] (tests and
/// standalone microbenchmarks, where every lookup misses).
pub trait HelperEnv {
    /// Current virtual time (`bpf_ktime_get_ns`).
    fn env_now(&self) -> Nanos;

    /// `bpf_fib_lookup`: route + neighbor resolution.
    fn env_fib_lookup(&mut self, dst: Ipv4Addr) -> Option<FibFastResult>;

    /// `bpf_fdb_lookup`: bridge FDB lookup with source refresh.
    fn env_fdb_lookup(
        &mut self,
        ingress: IfIndex,
        src: MacAddr,
        dst: MacAddr,
        vlan: u16,
    ) -> FdbLookupOutcome;

    /// `bpf_ipt_lookup`: FORWARD-chain evaluation over kernel rules.
    fn env_ipt_lookup(&mut self, meta: &PacketMeta, tracker: &mut CostTracker) -> NfVerdict;

    /// Conntrack lookup returning a load-balancer backend if one is
    /// pinned to the flow (ipvs extension).
    fn env_ct_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: u8,
    ) -> Option<(Ipv4Addr, u16)>;

    /// `bpf_nat_lookup`: NAT binding lookup against the kernel's
    /// conntrack NAT state (NAT44 extension). Returns the translated
    /// tuple for established flows, `Miss` for traffic the slow path
    /// must bind first, and `NoNat` when no nat rule could ever apply.
    fn env_nat_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: u8,
    ) -> NatLookupOutcome;

    /// `bpf_l7_policy_lookup`: HTTP/1.x request-policy evaluation over
    /// the kernel's live policy table and connection pins (L7 offload
    /// extension). `payload` is the TCP payload window the program
    /// proved in bounds; `first` is the first payload byte the program
    /// loaded (None when the segment carries no payload).
    #[allow(clippy::too_many_arguments)]
    fn env_l7_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        payload: &[u8],
        first: Option<u8>,
    ) -> L7LookupOutcome;
}

impl HelperEnv for Kernel {
    fn env_now(&self) -> Nanos {
        self.now()
    }

    fn env_fib_lookup(&mut self, dst: Ipv4Addr) -> Option<FibFastResult> {
        self.helper_fib_lookup(dst)
    }

    fn env_fdb_lookup(
        &mut self,
        ingress: IfIndex,
        src: MacAddr,
        dst: MacAddr,
        vlan: u16,
    ) -> FdbLookupOutcome {
        self.helper_fdb_lookup(ingress, src, dst, vlan)
    }

    fn env_ipt_lookup(&mut self, meta: &PacketMeta, tracker: &mut CostTracker) -> NfVerdict {
        self.helper_ipt_lookup(meta, tracker)
    }

    fn env_ct_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: u8,
    ) -> Option<(Ipv4Addr, u16)> {
        let key =
            linuxfp_netstack::conntrack::FlowKey::new(src, sport, dst, dport, IpProto::from(proto));
        let now = self.now();
        self.conntrack.lookup(&key, now).and_then(|e| e.backend)
    }

    fn env_nat_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: u8,
    ) -> NatLookupOutcome {
        self.helper_nat_lookup(src, sport, dst, dport, proto)
    }

    fn env_l7_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        payload: &[u8],
        first: Option<u8>,
    ) -> L7LookupOutcome {
        self.helper_l7_lookup(src, sport, dst, dport, payload, first)
    }
}

/// A helper environment with no kernel behind it: time is zero and every
/// lookup misses. Useful for unit tests and the VM microbenchmarks.
#[derive(Debug, Default)]
pub struct NullEnv;

impl HelperEnv for NullEnv {
    fn env_now(&self) -> Nanos {
        Nanos::ZERO
    }

    fn env_fib_lookup(&mut self, _dst: Ipv4Addr) -> Option<FibFastResult> {
        None
    }

    fn env_fdb_lookup(
        &mut self,
        _ingress: IfIndex,
        _src: MacAddr,
        _dst: MacAddr,
        _vlan: u16,
    ) -> FdbLookupOutcome {
        FdbLookupOutcome::SrcUnknown
    }

    fn env_ipt_lookup(&mut self, _meta: &PacketMeta, _tracker: &mut CostTracker) -> NfVerdict {
        NfVerdict::Accept
    }

    fn env_ct_lookup(
        &mut self,
        _src: Ipv4Addr,
        _sport: u16,
        _dst: Ipv4Addr,
        _dport: u16,
        _proto: u8,
    ) -> Option<(Ipv4Addr, u16)> {
        None
    }

    fn env_nat_lookup(
        &mut self,
        _src: Ipv4Addr,
        _sport: u16,
        _dst: Ipv4Addr,
        _dport: u16,
        _proto: u8,
    ) -> NatLookupOutcome {
        NatLookupOutcome::NoNat
    }

    fn env_l7_lookup(
        &mut self,
        _src: Ipv4Addr,
        _sport: u16,
        _dst: Ipv4Addr,
        _dport: u16,
        _payload: &[u8],
        _first: Option<u8>,
    ) -> L7LookupOutcome {
        L7LookupOutcome::NoRequest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_env_misses_everything() {
        let mut env = NullEnv;
        assert_eq!(env.env_now(), Nanos::ZERO);
        assert!(env.env_fib_lookup(Ipv4Addr::new(1, 1, 1, 1)).is_none());
        assert_eq!(
            env.env_fdb_lookup(IfIndex(1), MacAddr::ZERO, MacAddr::ZERO, 0),
            FdbLookupOutcome::SrcUnknown
        );
        assert!(env
            .env_ct_lookup(
                Ipv4Addr::new(1, 1, 1, 1),
                1,
                Ipv4Addr::new(2, 2, 2, 2),
                2,
                6
            )
            .is_none());
        assert_eq!(
            env.env_nat_lookup(
                Ipv4Addr::new(1, 1, 1, 1),
                1,
                Ipv4Addr::new(2, 2, 2, 2),
                2,
                17
            ),
            NatLookupOutcome::NoNat
        );
        assert_eq!(
            env.env_l7_lookup(
                Ipv4Addr::new(1, 1, 1, 1),
                1,
                Ipv4Addr::new(2, 2, 2, 2),
                80,
                b"GET / HTTP/1.1\r\n",
                Some(b'G')
            ),
            L7LookupOutcome::NoRequest
        );
        let meta = PacketMeta {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            proto: IpProto::Udp,
            sport: 0,
            dport: 0,
            in_if: IfIndex(1),
            out_if: IfIndex::NONE,
        };
        let mut t = CostTracker::new();
        assert_eq!(env.env_ipt_lookup(&meta, &mut t), NfVerdict::Accept);
    }
}
