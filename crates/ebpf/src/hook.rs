//! Attaching programs to kernel hook points, and the tail-call
//! dispatcher that makes data-path replacement atomic.
//!
//! Reloading an XDP program on a live interface can black-hole traffic
//! for seconds; LinuxFP instead attaches a tiny **dispatcher** once and
//! swaps data paths by updating a program-array slot (paper §IV-A2,
//! Fig. 4). [`Dispatcher`] reproduces that mechanism: `install` replaces
//! the active program with one map update, and packets always see either
//! the old or the new program.

use crate::asm::Asm;
use crate::flowcache::{self, FlowCache, FlowEntry, FlowKey};
use crate::helpers::HelperEnv;
use crate::insn::Action;
use crate::maps::{MapId, MapStore};
use crate::program::{LoadedProgram, Program};
use crate::vm::{self, VmCtx, VmOutcome};
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::stack::{HookFn, HookVerdict, Kernel};
use linuxfp_netstack::NetError;
use linuxfp_packet::{rewrite, EthernetFrame};
use linuxfp_sim::CostTracker;
use linuxfp_telemetry::trace::{FlowCacheOutcome, PuntReason, TraceEvent};
use linuxfp_telemetry::{Counter, Registry};
use std::sync::{Arc, Mutex};

/// Which kernel hook to attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HookPoint {
    /// The XDP hook: before `sk_buff` allocation; fastest.
    Xdp,
    /// The TC ingress hook: after `sk_buff` allocation; richer context.
    Tc,
}

/// Telemetry handles for one hook's data path: which verdicts the VM
/// returned, how much work it did, and whether packets were handled in
/// the fast path or fell back to the kernel slow path.
///
/// Counter handles are resolved once (at install/relabel time), so the
/// per-packet cost is a few relaxed atomic increments — no label or map
/// lookups on the data path. The conservation law the metrics support:
/// `linuxfp_fp_hits_total + linuxfp_slowpath_fallbacks_total` equals the
/// number of packets that entered the hook.
#[derive(Debug, Clone)]
pub struct HookStats {
    /// Packets fully handled by the fast path (any verdict except PASS).
    pub hits: Counter,
    /// Packets PASSed to the kernel slow path (including the dispatcher's
    /// empty-slot default).
    pub fallbacks: Counter,
    /// VM instructions executed (across tail calls).
    pub vm_insns: Counter,
    /// Helper calls made by the program.
    pub helper_calls: Counter,
    /// Packets served by the load-time-compiled engine
    /// (`net.linuxfp.jit=1`, the default).
    pub jit_compiled: Counter,
    /// Packets served by the reference interpreter (`net.linuxfp.jit=0`).
    pub jit_fallback: Counter,
    /// Division/modulo-by-zero events observed at runtime (Linux-defined
    /// results, not faults — but worth watching: synthesized code should
    /// never produce them).
    pub div_zeros: Counter,
    verdict_pass: Counter,
    verdict_drop: Counter,
    verdict_redirect: Counter,
    verdict_deliver_user: Counter,
}

impl HookStats {
    /// Creates (or re-resolves) the counters in `registry`, labelling
    /// hit/fallback counters with `fpm` and VM counters with `program`.
    pub fn in_registry(registry: &Registry, program: &str, fpm: &str) -> HookStats {
        registry.describe(
            "linuxfp_fp_hits_total",
            "Packets fully handled by an eBPF fast path (verdict != PASS)",
        );
        registry.describe(
            "linuxfp_slowpath_fallbacks_total",
            "Packets a fast path PASSed to the Linux slow path",
        );
        registry.describe("linuxfp_vm_insns_total", "eBPF VM instructions executed");
        registry.describe("linuxfp_vm_helper_calls_total", "eBPF helper calls made");
        registry.describe("linuxfp_vm_verdicts_total", "eBPF program verdicts by kind");
        registry.describe(
            "linuxfp_jit_compiled_total",
            "Packets served by the load-time-compiled eBPF engine",
        );
        registry.describe(
            "linuxfp_jit_fallback_total",
            "Packets served by the reference eBPF interpreter (net.linuxfp.jit=0)",
        );
        registry.describe(
            "linuxfp_vm_div_zero_total",
            "Runtime BPF_DIV/BPF_MOD by zero events (Linux-defined results)",
        );
        registry.describe(
            "linuxfp_shard_fp_hits_total",
            "Fast-path hits by owning RSS shard (only emitted when rss_shards > 1)",
        );
        registry.describe(
            "linuxfp_shard_fallbacks_total",
            "Slow-path fallbacks by owning RSS shard (only emitted when rss_shards > 1)",
        );
        registry.describe(
            "linuxfp_shard_flowcache_hits_total",
            "Microflow verdict cache hits by owning RSS shard (rss_shards > 1 only)",
        );
        registry.describe(
            "linuxfp_shard_flowcache_misses_total",
            "Microflow verdict cache misses by owning RSS shard (rss_shards > 1 only)",
        );
        HookStats {
            hits: registry.counter("linuxfp_fp_hits_total", &[("fpm", fpm)]),
            fallbacks: registry.counter("linuxfp_slowpath_fallbacks_total", &[("fpm", fpm)]),
            vm_insns: registry.counter("linuxfp_vm_insns_total", &[("program", program)]),
            helper_calls: registry
                .counter("linuxfp_vm_helper_calls_total", &[("program", program)]),
            jit_compiled: registry.counter("linuxfp_jit_compiled_total", &[("program", program)]),
            jit_fallback: registry.counter("linuxfp_jit_fallback_total", &[("program", program)]),
            div_zeros: registry.counter("linuxfp_vm_div_zero_total", &[("program", program)]),
            verdict_pass: registry.counter("linuxfp_vm_verdicts_total", &[("verdict", "pass")]),
            verdict_drop: registry.counter("linuxfp_vm_verdicts_total", &[("verdict", "drop")]),
            verdict_redirect: registry
                .counter("linuxfp_vm_verdicts_total", &[("verdict", "redirect")]),
            verdict_deliver_user: registry
                .counter("linuxfp_vm_verdicts_total", &[("verdict", "deliver_user")]),
        }
    }

    fn record(&self, out: &VmOutcome, verdict: &HookVerdict, jit: bool) {
        self.vm_insns.add(out.insns_executed);
        self.helper_calls.add(out.helper_calls);
        self.div_zeros.add(out.div_zeros);
        if jit {
            self.jit_compiled.inc();
        } else {
            self.jit_fallback.inc();
        }
        self.record_verdict(verdict);
    }

    /// Counts a packet served by the microflow verdict cache: the
    /// hit/fallback ledger and verdict tallies advance exactly as under
    /// interpretation, but no VM instructions or helper calls ran.
    fn record_cached(&self, verdict: &HookVerdict) {
        self.record_verdict(verdict);
    }

    fn record_verdict(&self, verdict: &HookVerdict) {
        match verdict {
            HookVerdict::Pass => {
                self.verdict_pass.inc();
                self.fallbacks.inc();
            }
            HookVerdict::Drop => {
                self.verdict_drop.inc();
                self.hits.inc();
            }
            HookVerdict::Redirect(_) => {
                self.verdict_redirect.inc();
                self.hits.inc();
            }
            HookVerdict::DeliverUser => {
                self.verdict_deliver_user.inc();
                self.hits.inc();
            }
        }
    }
}

/// Telemetry state shared between a dispatcher and its hook closure; the
/// labels are re-resolved on every install so metrics follow the active
/// data path.
#[derive(Debug)]
struct HookTelemetry {
    registry: Registry,
    program: String,
    fpm: String,
    stats: HookStats,
}

type TelemetryCell = Arc<Mutex<Option<HookTelemetry>>>;

/// Cached resolution of a dispatcher's program-array slot.
///
/// The first packet after any coherence change walks the dispatcher
/// (paying the entry insns and the tail-call charge) and records the
/// slot's resolved program here, stamped with the combined generation
/// ([`Kernel::state_generation`] + [`MapStore::prog_generation`]). Later
/// packets run the resolved program directly until the generation moves —
/// a data-path swap bumps the program generation, so a stale resolution
/// can never outlive the program it points to. This is the same (and
/// only) invalidation mechanism the microflow verdict cache uses.
#[derive(Debug)]
struct BatchCache {
    gen: u64,
    resolved: LoadedProgram,
}

type BatchCacheCell = Arc<Mutex<Option<BatchCache>>>;

/// Cache slots kept per hook: one verdict cache + one slot resolution per
/// possible RSS shard, indexed by `Packet::rx_queue`. An unsharded kernel
/// always steers to queue 0, so slot 0 behaves exactly like the single
/// cache it replaced.
const SHARD_SLOTS: usize = 16;

/// Bumps the per-shard hit/fallback ledger. Only called when the datapath
/// is sharded, so single-core runs never grow a shard dimension; the
/// per-shard series sum to the global `linuxfp_fp_hits_total` /
/// `linuxfp_slowpath_fallbacks_total` ledger.
fn record_shard_verdict(telemetry: &TelemetryCell, shard: usize, verdict: &HookVerdict) {
    let series = if matches!(verdict, HookVerdict::Pass) {
        "linuxfp_shard_fallbacks_total"
    } else {
        "linuxfp_shard_fp_hits_total"
    };
    bump_shard(telemetry, series, shard);
}

/// Increments a shard-labelled counter, if telemetry is wired.
fn bump_shard(telemetry: &TelemetryCell, series: &str, shard: usize) {
    if let Some(t) = telemetry.lock().unwrap().as_ref() {
        let label = shard.to_string();
        t.registry
            .counter(series, &[("shard", label.as_str())])
            .inc();
    }
}

/// Builds a [`HookFn`] that executes `prog` in the VM against each
/// packet, translating VM verdicts to kernel hook verdicts.
pub fn hook_fn_for(prog: LoadedProgram, maps: MapStore, hook: HookPoint) -> HookFn {
    hook_fn_with_cell(prog, maps, hook, Arc::new(Mutex::new(None)))
}

/// Like [`hook_fn_for`], recording per-packet telemetry into `registry`.
/// Both the VM counters and the hit/fallback counters are labelled with
/// the program's name (directly-attached programs have no FPM pipeline).
pub fn hook_fn_instrumented(
    prog: LoadedProgram,
    maps: MapStore,
    hook: HookPoint,
    registry: &Registry,
) -> HookFn {
    let stats = HookStats::in_registry(registry, prog.name(), prog.name());
    let cell = Arc::new(Mutex::new(Some(HookTelemetry {
        registry: registry.clone(),
        program: prog.name().to_string(),
        fpm: prog.name().to_string(),
        stats,
    })));
    hook_fn_with_cell(prog, maps, hook, cell)
}

fn hook_fn_with_cell(
    prog: LoadedProgram,
    maps: MapStore,
    hook: HookPoint,
    telemetry: TelemetryCell,
) -> HookFn {
    hook_fn_inner(prog, maps, hook, telemetry, None)
}

fn hook_fn_inner(
    prog: LoadedProgram,
    maps: MapStore,
    hook: HookPoint,
    telemetry: TelemetryCell,
    dispatch: Option<(MapId, usize)>,
) -> HookFn {
    // Both caches shard with the datapath: each RSS queue owns a private
    // verdict cache and slot resolution, so cores never contend on cache
    // lines and a flow's cached state stays wherever RSS steers it.
    let batch_caches: Vec<BatchCacheCell> = (0..SHARD_SLOTS)
        .map(|_| Arc::new(Mutex::new(None)))
        .collect();
    let flow_caches: Vec<Arc<Mutex<FlowCache>>> = (0..SHARD_SLOTS)
        .map(|_| Arc::new(Mutex::new(FlowCache::new(flowcache::DEFAULT_CAPACITY))))
        .collect();
    let hook_name = match hook {
        HookPoint::Xdp => "xdp",
        HookPoint::Tc => "tc",
    };
    Arc::new(move |kernel: &mut Kernel, packet, tracker, trace| {
        let cost = kernel.cost_model_arc();
        // The fast path keys both caches on the combined generation below,
        // which folds in every shared structure: reading it is where a
        // sharded datapath observes other cores' writes, so any stale
        // structure is charged here before the generation is read.
        kernel.coherence_charge_fastpath(tracker, trace);
        // The one coherence number both caches key on: any kernel state
        // mutation, time advance, or data-path swap changes it.
        let gen = kernel
            .state_generation()
            .wrapping_add(maps.prog_generation());
        let ingress = packet.ingress_ifindex;
        let rx_queue = packet.rx_queue;
        // Engine selection: compiled dispatch by default, interpreter
        // when the sysctl forces the reference engine.
        let jit = kernel.jit_enabled();
        let shard = (rx_queue as usize).min(SHARD_SLOTS - 1);
        let sharded = kernel.rss_shards() > 1;
        let batch_cache = &batch_caches[shard];
        let flow_cache = &flow_caches[shard];

        // ---- microflow verdict cache: hit path -----------------------
        // Only dispatcher-driven hooks cache verdicts (directly attached
        // programs bypass the whole mechanism), and only while the
        // net.linuxfp.flow_cache sysctl is on.
        let cache_on = dispatch.is_some() && kernel.flow_cache_enabled();
        let key = if cache_on {
            FlowKey::extract(&packet.data, IfIndex(ingress))
        } else {
            None
        };
        if cache_on {
            let mut fc = flow_cache.lock().unwrap();
            if !fc.telemetry_wired() {
                if let Some(t) = telemetry.lock().unwrap().as_ref() {
                    fc.wire_telemetry(&t.registry);
                }
            }
            // Compared *before* lookup (which flushes lazily on a
            // generation change) to tell an invalidation miss from a
            // cold one; only the sampled path pays the reads.
            let invalidated = trace.enabled() && !fc.is_empty() && fc.generation() != gen;
            if let Some(k) = &key {
                if let Some(entry) = fc.lookup(gen, k) {
                    drop(fc);
                    rewrite::apply_ops(&mut packet.data, &entry.ops);
                    flowcache::replay_touches(&entry.touches, kernel);
                    // The replay wrote shared state on this shard's
                    // behalf: its own writes must not read as remote.
                    kernel.coherence_refresh_fastpath();
                    tracker.charge("flowcache_hit", cost.flowcache_hit_ns);
                    trace.event(|| TraceEvent::FlowCache {
                        outcome: FlowCacheOutcome::Hit,
                    });
                    if matches!(entry.verdict, HookVerdict::Pass) {
                        trace.event(|| TraceEvent::Punt {
                            reason: PuntReason::CachedPass,
                        });
                    }
                    if let Some(t) = telemetry.lock().unwrap().as_ref() {
                        t.stats.record_cached(&entry.verdict);
                    }
                    if sharded {
                        record_shard_verdict(&telemetry, shard, &entry.verdict);
                        bump_shard(&telemetry, "linuxfp_shard_flowcache_hits_total", shard);
                    }
                    return entry.verdict;
                }
            }
            fc.note_miss();
            if sharded {
                bump_shard(&telemetry, "linuxfp_shard_flowcache_misses_total", shard);
            }
            trace.event(|| TraceEvent::FlowCache {
                outcome: if key.is_none() {
                    FlowCacheOutcome::MissIneligible
                } else if invalidated {
                    FlowCacheOutcome::MissInvalidated
                } else {
                    FlowCacheOutcome::MissCold
                },
            });
        } else if dispatch.is_some() {
            trace.event(|| TraceEvent::FlowCache {
                outcome: FlowCacheOutcome::MissDisabled,
            });
        }

        // ---- miss: interpret (recording helper touches) --------------
        let record_candidate = cache_on && key.is_some();
        let before_frame = record_candidate.then(|| packet.data.to_vec());
        let mut ctx = VmCtx::xdp(&mut packet.data, ingress, rx_queue);
        if hook == HookPoint::Tc {
            // TC programs see parsed sk_buff fields.
            if let Ok(eth) = EthernetFrame::parse(ctx.packet) {
                ctx.protocol = u32::from(eth.ethertype.to_u16());
                ctx.vlan_tci = eth.vlan.map(|t| u32::from(t.vid)).unwrap_or(0);
            }
        }
        // A packet under an unchanged generation runs the slot's program
        // directly, skipping the dispatcher walk (see [`BatchCache`]).
        let cached = dispatch.and_then(|_| {
            let cache = batch_cache.lock().unwrap();
            cache
                .as_ref()
                .filter(|c| c.gen == gen)
                .map(|c| c.resolved.clone())
        });
        let interp_start = tracker.total_ns();
        // Resolving a human-readable program name is only worth the
        // String when this packet is sampled.
        let traced = trace.enabled();
        // (outcome, cacheable, traced program name, dispatcher slot empty)
        let run = |env: &mut dyn HelperEnv,
                   tracker: &mut CostTracker|
         -> (VmOutcome, bool, Option<String>, bool) {
            match cached {
                Some(resolved) => {
                    let cacheable = resolved.cacheable();
                    let name = traced.then(|| resolved.name().to_string());
                    (
                        vm::execute(&resolved, ctx, env, &maps, &cost, tracker, jit),
                        cacheable,
                        name,
                        false,
                    )
                }
                None => {
                    let out = vm::execute(&prog, ctx, env, &maps, &cost, tracker, jit);
                    let resolved = dispatch.and_then(|(pa, slot)| maps.prog_array_get(pa, slot));
                    let slot_empty = dispatch.is_some() && resolved.is_none();
                    let name = traced.then(|| match &resolved {
                        Some(r) => r.name().to_string(),
                        None => prog.name().to_string(),
                    });
                    let cacheable =
                        prog.cacheable() && resolved.as_ref().is_none_or(|r| r.cacheable());
                    if dispatch.is_some() {
                        *batch_cache.lock().unwrap() =
                            resolved.map(|resolved| BatchCache { gen, resolved });
                    }
                    (out, cacheable, name, slot_empty)
                }
            }
        };
        let (out, ran_cacheable, prog_name, slot_empty, touches) = if record_candidate {
            let mut rec = flowcache::RecordingEnv::new(kernel);
            let (out, cacheable, name, slot_empty) = run(&mut rec, tracker);
            (out, cacheable, name, slot_empty, rec.into_touches())
        } else {
            let (out, cacheable, name, slot_empty) = run(&mut *kernel, tracker);
            (out, cacheable, name, slot_empty, Vec::new())
        };
        let interp_ns = tracker.total_ns() - interp_start;
        // Helpers may have written shared state (conntrack commits, FDB
        // learning): resync this shard's view so its own writes don't
        // read back as remote on the next packet.
        kernel.coherence_refresh_fastpath();
        let verdict = match out.action {
            Action::Pass => HookVerdict::Pass,
            // Real XDP treats ABORTED like DROP (plus a tracepoint).
            Action::Drop | Action::Aborted => HookVerdict::Drop,
            Action::Tx => HookVerdict::Redirect(IfIndex(ingress)),
            // Like real eBPF, the most recent redirect decision wins: a
            // bpf_redirect after an XSK push overrides the user-space
            // destination (the push was a mirror copy).
            Action::Redirect => match out.redirect {
                Some(target) => HookVerdict::Redirect(target),
                None if out.to_user => HookVerdict::DeliverUser,
                None => HookVerdict::Drop,
            },
        };
        trace.event(|| TraceEvent::Vm {
            program: prog_name.unwrap_or_default(),
            hook: hook_name,
            insns: out.insns_executed,
            helpers: out.helper_calls,
            tail_calls: out.tail_calls,
            verdict: match verdict {
                HookVerdict::Pass => "pass",
                HookVerdict::Drop => "drop",
                HookVerdict::Redirect(_) => "redirect",
                HookVerdict::DeliverUser => "deliver_user",
            },
            ns: interp_ns,
        });
        if matches!(verdict, HookVerdict::Pass) {
            trace.event(|| TraceEvent::Punt {
                reason: if slot_empty {
                    PuntReason::EmptySlot
                } else if out.l7_punt {
                    // The L7 helper could not parse the request line; the
                    // PASS defers the verdict to the slow-path parser.
                    PuntReason::L7Unparseable
                } else {
                    PuntReason::ProgramPass
                },
            });
        }

        // ---- record the flow, if every gate passes -------------------
        // Gates: the programs that ran honor the static cacheability
        // contract; the verdict is replayable (no AF_XDP delivery, no
        // aborted run); interpretation cost exceeded the hit price (the
        // cache must never decelerate a path — trivial programs stay
        // interpreted); and the frame diff reduces to replayable rewrite
        // ops that verifiably reproduce the observed output.
        if let (Some(before), Some(k)) = (before_frame, key) {
            let replayable_verdict =
                !matches!(verdict, HookVerdict::DeliverUser) && out.action != Action::Aborted;
            // An allow-without-pin L7 verdict depends on this segment's
            // payload, which the flow key does not pin — never cache it.
            if ran_cacheable
                && replayable_verdict
                && !out.l7_uncacheable
                && interp_ns > cost.flowcache_hit_ns
            {
                if let Some(ops) = rewrite::derive_ops(&before, &packet.data, k.l3_offset()) {
                    let mut check = before;
                    rewrite::apply_ops(&mut check, &ops);
                    if check[..] == packet.data[..] {
                        flow_cache.lock().unwrap().insert(
                            gen,
                            k,
                            FlowEntry {
                                verdict,
                                ops,
                                touches,
                            },
                        );
                    }
                }
            }
        }

        // Telemetry counters are real atomics with no virtual-time
        // charge: observability must not perturb the modeled costs.
        if let Some(t) = telemetry.lock().unwrap().as_ref() {
            t.stats.record(&out, &verdict, jit);
        }
        if sharded {
            record_shard_verdict(&telemetry, shard, &verdict);
        }
        verdict
    })
}

/// Attaches a program directly to a device hook (without a dispatcher).
///
/// # Errors
///
/// Fails if the device does not exist.
pub fn attach(
    kernel: &mut Kernel,
    dev: IfIndex,
    hook: HookPoint,
    prog: LoadedProgram,
    maps: MapStore,
) -> Result<(), NetError> {
    let f = hook_fn_for(prog, maps, hook);
    match hook {
        HookPoint::Xdp => kernel.attach_xdp(dev, f),
        HookPoint::Tc => kernel.attach_tc_ingress(dev, f),
    }
}

/// The per-interface dispatcher: a constant entry program that tail-calls
/// the active data path through a program-array slot.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    maps: MapStore,
    prog_array: MapId,
    slot: usize,
    telemetry: TelemetryCell,
}

impl Dispatcher {
    /// Creates a dispatcher (and its program array) in `maps`.
    pub fn new(maps: MapStore) -> Self {
        let prog_array = maps.create_prog_array(1);
        Dispatcher {
            maps,
            prog_array,
            slot: 0,
            telemetry: Arc::new(Mutex::new(None)),
        }
    }

    /// Enables telemetry for this dispatcher's hook: per-packet verdict,
    /// instruction and hit/fallback counters land in `registry`. Until a
    /// data path is installed the series carry `fpm="none"`.
    pub fn enable_telemetry(&self, registry: &Registry) {
        let mut cell = self.telemetry.lock().unwrap();
        *cell = Some(HookTelemetry {
            registry: registry.clone(),
            program: "linuxfp_dispatcher".to_string(),
            fpm: "none".to_string(),
            stats: HookStats::in_registry(registry, "linuxfp_dispatcher", "none"),
        });
    }

    /// Whether [`Dispatcher::enable_telemetry`] has been called.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.lock().unwrap().is_some()
    }

    /// Re-labels this dispatcher's hit/fallback counters with the FPM
    /// composition of the installed pipeline (e.g. `router+filter`).
    /// Labels are sticky across uninstall so late packets still count
    /// against the last active data path. No-op without telemetry.
    pub fn set_fpm_label(&self, fpm: &str) {
        let mut cell = self.telemetry.lock().unwrap();
        if let Some(t) = cell.as_mut() {
            if t.fpm != fpm {
                t.fpm = fpm.to_string();
                t.stats = HookStats::in_registry(&t.registry, &t.program, &t.fpm);
            }
        }
    }

    /// The current snapshot of this dispatcher's counters, if telemetry
    /// is enabled.
    pub fn stats(&self) -> Option<HookStats> {
        self.telemetry
            .lock()
            .unwrap()
            .as_ref()
            .map(|t| t.stats.clone())
    }

    /// The dispatcher entry program: `r0 = PASS; tail_call(slot);
    /// exit` — when no data path is installed, packets simply PASS to
    /// the Linux slow path (the safe default).
    pub fn entry_program(&self) -> LoadedProgram {
        let mut a = Asm::new();
        a.mov_imm(0, Action::Pass.code() as i64);
        a.tail_call(self.prog_array.0, self.slot as u32);
        a.exit();
        LoadedProgram::load(Program::new("linuxfp_dispatcher", a.finish().unwrap()))
            .expect("dispatcher is trivially verifiable")
    }

    /// Attaches the dispatcher to a device hook.
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn attach(
        &self,
        kernel: &mut Kernel,
        dev: IfIndex,
        hook: HookPoint,
    ) -> Result<(), NetError> {
        let f = hook_fn_inner(
            self.entry_program(),
            self.maps.clone(),
            hook,
            Arc::clone(&self.telemetry),
            Some((self.prog_array, self.slot)),
        );
        match hook {
            HookPoint::Xdp => kernel.attach_xdp(dev, f),
            HookPoint::Tc => kernel.attach_tc_ingress(dev, f),
        }
    }

    /// Atomically installs (or replaces) the active data path.
    pub fn install(&self, prog: LoadedProgram) {
        {
            let mut cell = self.telemetry.lock().unwrap();
            if let Some(t) = cell.as_mut() {
                t.registry.events().push(
                    "swap",
                    format!("install {} ({} insns)", prog.name(), prog.len()),
                );
                if t.program != prog.name() {
                    t.program = prog.name().to_string();
                    t.stats = HookStats::in_registry(&t.registry, &t.program, &t.fpm);
                }
            }
        }
        self.maps
            .prog_array_set(self.prog_array, self.slot, Some(prog))
            .expect("dispatcher prog array");
    }

    /// Removes the active data path; packets fall back to the slow path.
    pub fn uninstall(&self) {
        if let Some(t) = self.telemetry.lock().unwrap().as_ref() {
            t.registry
                .events()
                .push("swap", "uninstall (slot empty, PASS)");
        }
        self.maps
            .prog_array_set(self.prog_array, self.slot, None)
            .expect("dispatcher prog array");
    }

    /// The currently installed data path, if any.
    pub fn installed(&self) -> Option<LoadedProgram> {
        self.maps.prog_array_get(self.prog_array, self.slot)
    }

    /// The backing map store.
    pub fn maps(&self) -> &MapStore {
        &self.maps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxfp_netstack::stack::IfAddr;
    use linuxfp_packet::{builder, MacAddr};
    use std::net::Ipv4Addr;

    fn kernel_with_nic() -> (Kernel, IfIndex) {
        let mut k = Kernel::new(11);
        let eth0 = k.add_physical("eth0").unwrap();
        k.ip_addr_add(eth0, "10.0.0.1/24".parse::<IfAddr>().unwrap())
            .unwrap();
        k.ip_link_set_up(eth0).unwrap();
        (k, eth0)
    }

    fn drop_prog() -> LoadedProgram {
        let mut a = Asm::new();
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        LoadedProgram::load(Program::new("drop_all", a.finish().unwrap())).unwrap()
    }

    fn frame_for(k: &Kernel, dev: IfIndex) -> Vec<u8> {
        builder::udp_packet(
            MacAddr::from_index(9),
            k.device(dev).unwrap().mac,
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            1,
            2,
            b"x",
        )
    }

    #[test]
    fn direct_attach_drop_program() {
        let (mut k, eth0) = kernel_with_nic();
        attach(&mut k, eth0, HookPoint::Xdp, drop_prog(), MapStore::new()).unwrap();
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.drops(), vec!["xdp drop"]);
    }

    #[test]
    fn dispatcher_empty_slot_passes_to_slow_path() {
        let (mut k, eth0) = kernel_with_nic();
        let d = Dispatcher::new(MapStore::new());
        d.attach(&mut k, eth0, HookPoint::Xdp).unwrap();
        // No data path installed: local UDP is delivered by the slow path.
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.deliveries().len(), 1);
        assert!(d.installed().is_none());
    }

    #[test]
    fn dispatcher_swaps_data_paths_atomically() {
        let (mut k, eth0) = kernel_with_nic();
        let d = Dispatcher::new(MapStore::new());
        d.attach(&mut k, eth0, HookPoint::Xdp).unwrap();
        d.install(drop_prog());
        assert_eq!(d.installed().unwrap().name(), "drop_all");
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.drops(), vec!["xdp drop"]);
        // Swap to a PASS program: traffic flows again, no re-attach.
        let mut a = Asm::new();
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        let pass = LoadedProgram::load(Program::new("pass_all", a.finish().unwrap())).unwrap();
        d.install(pass);
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.deliveries().len(), 1);
        // Uninstall: back to slow-path-only.
        d.uninstall();
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.deliveries().len(), 1);
    }

    #[test]
    fn swap_cycle_conserves_every_packet() {
        // The transparency ledger across install → uninstall → install:
        // every injected packet is decided exactly once — counted either
        // as a fast-path hit or a slow-path fallback, never both, never
        // neither.
        let (mut k, eth0) = kernel_with_nic();
        let registry = Registry::new();
        k.set_telemetry(registry.clone());
        let d = Dispatcher::new(MapStore::new());
        d.enable_telemetry(&registry);
        assert!(d.telemetry_enabled());
        d.attach(&mut k, eth0, HookPoint::Xdp).unwrap();

        // Empty slot: the dispatcher PASSes; the slow path delivers.
        for _ in 0..5 {
            let out = k.receive(eth0, frame_for(&k, eth0));
            assert_eq!(out.deliveries().len(), 1);
        }
        assert_eq!(
            registry.counter_value("linuxfp_slowpath_fallbacks_total", &[("fpm", "none")]),
            Some(5)
        );

        // Install a dropping data path (as a "filter" FPM).
        d.set_fpm_label("filter");
        d.install(drop_prog());
        for _ in 0..7 {
            let out = k.receive(eth0, frame_for(&k, eth0));
            assert_eq!(out.drops(), vec!["xdp drop"]);
        }
        assert_eq!(
            registry.counter_value("linuxfp_fp_hits_total", &[("fpm", "filter")]),
            Some(7)
        );

        // Uninstall: the sticky label keeps attributing fallbacks to the
        // last active pipeline.
        d.uninstall();
        for _ in 0..3 {
            let out = k.receive(eth0, frame_for(&k, eth0));
            assert_eq!(out.deliveries().len(), 1);
        }
        assert_eq!(
            registry.counter_value("linuxfp_slowpath_fallbacks_total", &[("fpm", "filter")]),
            Some(3)
        );

        // Reinstall: hits resume on the same series.
        d.install(drop_prog());
        for _ in 0..4 {
            let out = k.receive(eth0, frame_for(&k, eth0));
            assert_eq!(out.drops(), vec!["xdp drop"]);
        }

        // Conservation: hits + fallbacks == packets injected, across the
        // whole swap cycle. Nothing lost, nothing double-counted.
        let hits = registry.counter_total("linuxfp_fp_hits_total");
        let fallbacks = registry.counter_total("linuxfp_slowpath_fallbacks_total");
        let injected = registry.counter_total("linuxfp_packets_injected_total");
        assert_eq!(hits, 11);
        assert_eq!(fallbacks, 8);
        assert_eq!(hits + fallbacks, injected);
        assert_eq!(injected, 19);

        // Verdict tallies agree with the ledger.
        assert_eq!(
            registry.counter_value("linuxfp_vm_verdicts_total", &[("verdict", "pass")]),
            Some(8)
        );
        assert_eq!(
            registry.counter_value("linuxfp_vm_verdicts_total", &[("verdict", "drop")]),
            Some(11)
        );

        // The swap trail is in the event ring: install, uninstall, install.
        let swaps: Vec<_> = registry
            .events()
            .recent()
            .into_iter()
            .filter(|e| e.kind == "swap")
            .collect();
        assert_eq!(swaps.len(), 3);
        assert!(swaps[0].detail.starts_with("install drop_all"));
        assert!(swaps[1].detail.starts_with("uninstall"));
        assert!(swaps[2].detail.starts_with("install drop_all"));
    }

    #[test]
    fn dispatcher_amortizes_program_fetch_across_generations() {
        use linuxfp_packet::Batch;
        let (mut k, eth0) = kernel_with_nic();
        let d = Dispatcher::new(MapStore::new());
        d.attach(&mut k, eth0, HookPoint::Xdp).unwrap();
        d.install(drop_prog());

        // The first packet after an install walks the dispatcher (entry
        // insns + tail call) and caches the slot resolution under the
        // current coherence generation.
        let cold = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(cold.drops(), vec!["xdp drop"]);
        assert_eq!(cold.cost.stage_count("tail_call"), 1);

        // Until the generation moves, every later packet — across single
        // receives *and* burst boundaries — skips the dispatcher walk.
        let warm = k.receive(eth0, frame_for(&k, eth0));
        let warm_ns = warm.cost.total_ns();
        assert_eq!(warm.cost.stage_count("tail_call"), 0);
        assert!(warm_ns < cold.cost.total_ns());

        let mut batch = Batch::new();
        for _ in 0..8 {
            batch.push(frame_for(&k, eth0));
        }
        let out = k.inject_batch(eth0, &mut batch);
        assert_eq!(out.batch_size, 8);
        for rx in &out.outcomes {
            assert_eq!(rx.drops(), vec!["xdp drop"]);
            assert_eq!(rx.cost.stage_count("tail_call"), 0);
        }
        // Warm burst total is strictly cheaper than 8 cold singles.
        assert!(
            out.total_ns() < 8.0 * cold.cost.total_ns(),
            "burst {} vs 8x cold single {}",
            out.total_ns(),
            8.0 * cold.cost.total_ns()
        );

        // A warm batch of one costs exactly what a warm receive() costs.
        let mut one = Batch::new();
        one.push(frame_for(&k, eth0));
        let out1 = k.inject_batch(eth0, &mut one);
        assert_eq!(out1.total_ns(), warm_ns);

        // A swap bumps the program generation: the next packet re-pays
        // the dispatcher walk exactly once.
        d.install(drop_prog());
        let after_swap = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(after_swap.cost.stage_count("tail_call"), 1);
        let rewarm = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(rewarm.cost.stage_count("tail_call"), 0);
    }

    #[test]
    fn dispatcher_batch_cache_respects_swaps_between_bursts() {
        use linuxfp_packet::Batch;
        let (mut k, eth0) = kernel_with_nic();
        let d = Dispatcher::new(MapStore::new());
        d.attach(&mut k, eth0, HookPoint::Xdp).unwrap();
        d.install(drop_prog());
        let mut batch = Batch::new();
        for _ in 0..4 {
            batch.push(frame_for(&k, eth0));
        }
        let out = k.inject_batch(eth0, &mut batch);
        assert!(out.outcomes.iter().all(|rx| rx.drops() == ["xdp drop"]));

        // Swap to PASS between bursts: the stale cache must not leak.
        let mut a = Asm::new();
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        let pass = LoadedProgram::load(Program::new("pass_all", a.finish().unwrap())).unwrap();
        d.install(pass);
        let mut batch = Batch::new();
        for _ in 0..4 {
            batch.push(frame_for(&k, eth0));
        }
        let out = k.inject_batch(eth0, &mut batch);
        assert!(out.outcomes.iter().all(|rx| rx.deliveries().len() == 1));

        // Uninstall: every frame of the next burst PASSes via the
        // dispatcher default.
        d.uninstall();
        let mut batch = Batch::new();
        for _ in 0..4 {
            batch.push(frame_for(&k, eth0));
        }
        let out = k.inject_batch(eth0, &mut batch);
        assert!(out.outcomes.iter().all(|rx| rx.deliveries().len() == 1));
    }

    #[test]
    fn tc_hook_sees_skb_fields() {
        let (mut k, eth0) = kernel_with_nic();
        // A program that drops IPv4 (protocol 0x0800) based on the TC
        // context's protocol field.
        let mut a = Asm::new();
        a.load(
            crate::insn::MemSize::W,
            2,
            1,
            crate::verifier::ctx_layout::PROTOCOL as i16,
        );
        a.jmp_imm(crate::insn::JmpCond::Eq, 2, 0x0800, "drop");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        a.label("drop");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        let prog = LoadedProgram::load(Program::new("drop_ipv4", a.finish().unwrap())).unwrap();
        attach(&mut k, eth0, HookPoint::Tc, prog, MapStore::new()).unwrap();
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.drops(), vec!["tc drop"]);
        assert_eq!(out.cost.stage_count("skb_alloc"), 1);
    }

    #[test]
    fn redirect_from_program_transmits() {
        let mut k = Kernel::new(12);
        let eth0 = k.add_physical("eth0").unwrap();
        let eth1 = k.add_physical("eth1").unwrap();
        k.ip_link_set_up(eth0).unwrap();
        k.ip_link_set_up(eth1).unwrap();
        let mut a = Asm::new();
        a.mov_imm(1, eth1.as_u32() as i64);
        a.mov_imm(2, 0);
        a.call(crate::insn::HelperId::Redirect);
        a.exit();
        let prog = LoadedProgram::load(Program::new("redir", a.finish().unwrap())).unwrap();
        attach(&mut k, eth0, HookPoint::Xdp, prog, MapStore::new()).unwrap();
        let frame = builder::udp_packet(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            b"",
        );
        let out = k.receive(eth0, frame.clone());
        assert_eq!(out.transmissions().len(), 1);
        assert_eq!(out.transmissions()[0].0, eth1);
        assert_eq!(out.transmissions()[0].1, frame.as_slice());
    }
}
