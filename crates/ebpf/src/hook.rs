//! Attaching programs to kernel hook points, and the tail-call
//! dispatcher that makes data-path replacement atomic.
//!
//! Reloading an XDP program on a live interface can black-hole traffic
//! for seconds; LinuxFP instead attaches a tiny **dispatcher** once and
//! swaps data paths by updating a program-array slot (paper §IV-A2,
//! Fig. 4). [`Dispatcher`] reproduces that mechanism: `install` replaces
//! the active program with one map update, and packets always see either
//! the old or the new program.

use crate::asm::Asm;
use crate::insn::Action;
use crate::maps::{MapId, MapStore};
use crate::program::{LoadedProgram, Program};
use crate::vm::{self, VmCtx};
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::stack::{HookFn, HookVerdict, Kernel};
use linuxfp_netstack::NetError;
use linuxfp_packet::EthernetFrame;
use std::sync::Arc;

/// Which kernel hook to attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HookPoint {
    /// The XDP hook: before `sk_buff` allocation; fastest.
    Xdp,
    /// The TC ingress hook: after `sk_buff` allocation; richer context.
    Tc,
}

/// Builds a [`HookFn`] that executes `prog` in the VM against each
/// packet, translating VM verdicts to kernel hook verdicts.
pub fn hook_fn_for(prog: LoadedProgram, maps: MapStore, hook: HookPoint) -> HookFn {
    Arc::new(move |kernel: &mut Kernel, packet, tracker| {
        let cost = kernel.cost_model().clone();
        let ingress = packet.ingress_ifindex;
        let rx_queue = packet.rx_queue;
        let mut ctx = VmCtx::xdp(&mut packet.data, ingress, rx_queue);
        if hook == HookPoint::Tc {
            // TC programs see parsed sk_buff fields.
            if let Ok(eth) = EthernetFrame::parse(ctx.packet) {
                ctx.protocol = u32::from(eth.ethertype.to_u16());
                ctx.vlan_tci = eth.vlan.map(|t| u32::from(t.vid)).unwrap_or(0);
            }
        }
        let out = vm::run(&prog, ctx, kernel, &maps, &cost, tracker);
        match out.action {
            Action::Pass => HookVerdict::Pass,
            // Real XDP treats ABORTED like DROP (plus a tracepoint).
            Action::Drop | Action::Aborted => HookVerdict::Drop,
            Action::Tx => HookVerdict::Redirect(IfIndex(ingress)),
            // Like real eBPF, the most recent redirect decision wins: a
            // bpf_redirect after an XSK push overrides the user-space
            // destination (the push was a mirror copy).
            Action::Redirect => match out.redirect {
                Some(target) => HookVerdict::Redirect(target),
                None if out.to_user => HookVerdict::DeliverUser,
                None => HookVerdict::Drop,
            },
        }
    })
}

/// Attaches a program directly to a device hook (without a dispatcher).
///
/// # Errors
///
/// Fails if the device does not exist.
pub fn attach(
    kernel: &mut Kernel,
    dev: IfIndex,
    hook: HookPoint,
    prog: LoadedProgram,
    maps: MapStore,
) -> Result<(), NetError> {
    let f = hook_fn_for(prog, maps, hook);
    match hook {
        HookPoint::Xdp => kernel.attach_xdp(dev, f),
        HookPoint::Tc => kernel.attach_tc_ingress(dev, f),
    }
}

/// The per-interface dispatcher: a constant entry program that tail-calls
/// the active data path through a program-array slot.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    maps: MapStore,
    prog_array: MapId,
    slot: usize,
}

impl Dispatcher {
    /// Creates a dispatcher (and its program array) in `maps`.
    pub fn new(maps: MapStore) -> Self {
        let prog_array = maps.create_prog_array(1);
        Dispatcher {
            maps,
            prog_array,
            slot: 0,
        }
    }

    /// The dispatcher entry program: `r0 = PASS; tail_call(slot);
    /// exit` — when no data path is installed, packets simply PASS to
    /// the Linux slow path (the safe default).
    pub fn entry_program(&self) -> LoadedProgram {
        let mut a = Asm::new();
        a.mov_imm(0, Action::Pass.code() as i64);
        a.tail_call(self.prog_array.0, self.slot as u32);
        a.exit();
        LoadedProgram::load(Program::new("linuxfp_dispatcher", a.finish().unwrap()))
            .expect("dispatcher is trivially verifiable")
    }

    /// Attaches the dispatcher to a device hook.
    ///
    /// # Errors
    ///
    /// Fails if the device does not exist.
    pub fn attach(&self, kernel: &mut Kernel, dev: IfIndex, hook: HookPoint) -> Result<(), NetError> {
        attach(kernel, dev, hook, self.entry_program(), self.maps.clone())
    }

    /// Atomically installs (or replaces) the active data path.
    pub fn install(&self, prog: LoadedProgram) {
        self.maps
            .prog_array_set(self.prog_array, self.slot, Some(prog))
            .expect("dispatcher prog array");
    }

    /// Removes the active data path; packets fall back to the slow path.
    pub fn uninstall(&self) {
        self.maps
            .prog_array_set(self.prog_array, self.slot, None)
            .expect("dispatcher prog array");
    }

    /// The currently installed data path, if any.
    pub fn installed(&self) -> Option<LoadedProgram> {
        self.maps.prog_array_get(self.prog_array, self.slot)
    }

    /// The backing map store.
    pub fn maps(&self) -> &MapStore {
        &self.maps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linuxfp_netstack::stack::IfAddr;
    use linuxfp_packet::{builder, MacAddr};
    use std::net::Ipv4Addr;

    fn kernel_with_nic() -> (Kernel, IfIndex) {
        let mut k = Kernel::new(11);
        let eth0 = k.add_physical("eth0").unwrap();
        k.ip_addr_add(eth0, "10.0.0.1/24".parse::<IfAddr>().unwrap()).unwrap();
        k.ip_link_set_up(eth0).unwrap();
        (k, eth0)
    }

    fn drop_prog() -> LoadedProgram {
        let mut a = Asm::new();
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        LoadedProgram::load(Program::new("drop_all", a.finish().unwrap())).unwrap()
    }

    fn frame_for(k: &Kernel, dev: IfIndex) -> Vec<u8> {
        builder::udp_packet(
            MacAddr::from_index(9),
            k.device(dev).unwrap().mac,
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            1,
            2,
            b"x",
        )
    }

    #[test]
    fn direct_attach_drop_program() {
        let (mut k, eth0) = kernel_with_nic();
        attach(&mut k, eth0, HookPoint::Xdp, drop_prog(), MapStore::new()).unwrap();
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.drops(), vec!["xdp drop"]);
    }

    #[test]
    fn dispatcher_empty_slot_passes_to_slow_path() {
        let (mut k, eth0) = kernel_with_nic();
        let d = Dispatcher::new(MapStore::new());
        d.attach(&mut k, eth0, HookPoint::Xdp).unwrap();
        // No data path installed: local UDP is delivered by the slow path.
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.deliveries().len(), 1);
        assert!(d.installed().is_none());
    }

    #[test]
    fn dispatcher_swaps_data_paths_atomically() {
        let (mut k, eth0) = kernel_with_nic();
        let d = Dispatcher::new(MapStore::new());
        d.attach(&mut k, eth0, HookPoint::Xdp).unwrap();
        d.install(drop_prog());
        assert_eq!(d.installed().unwrap().name(), "drop_all");
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.drops(), vec!["xdp drop"]);
        // Swap to a PASS program: traffic flows again, no re-attach.
        let mut a = Asm::new();
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        let pass = LoadedProgram::load(Program::new("pass_all", a.finish().unwrap())).unwrap();
        d.install(pass);
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.deliveries().len(), 1);
        // Uninstall: back to slow-path-only.
        d.uninstall();
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.deliveries().len(), 1);
    }

    #[test]
    fn tc_hook_sees_skb_fields() {
        let (mut k, eth0) = kernel_with_nic();
        // A program that drops IPv4 (protocol 0x0800) based on the TC
        // context's protocol field.
        let mut a = Asm::new();
        a.load(
            crate::insn::MemSize::W,
            2,
            1,
            crate::verifier::ctx_layout::PROTOCOL as i16,
        );
        a.jmp_imm(crate::insn::JmpCond::Eq, 2, 0x0800, "drop");
        a.mov_imm(0, Action::Pass.code() as i64);
        a.exit();
        a.label("drop");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.exit();
        let prog = LoadedProgram::load(Program::new("drop_ipv4", a.finish().unwrap())).unwrap();
        attach(&mut k, eth0, HookPoint::Tc, prog, MapStore::new()).unwrap();
        let out = k.receive(eth0, frame_for(&k, eth0));
        assert_eq!(out.drops(), vec!["tc drop"]);
        assert_eq!(out.cost.stage_count("skb_alloc"), 1);
    }

    #[test]
    fn redirect_from_program_transmits() {
        let mut k = Kernel::new(12);
        let eth0 = k.add_physical("eth0").unwrap();
        let eth1 = k.add_physical("eth1").unwrap();
        k.ip_link_set_up(eth0).unwrap();
        k.ip_link_set_up(eth1).unwrap();
        let mut a = Asm::new();
        a.mov_imm(1, eth1.as_u32() as i64);
        a.mov_imm(2, 0);
        a.call(crate::insn::HelperId::Redirect);
        a.exit();
        let prog = LoadedProgram::load(Program::new("redir", a.finish().unwrap())).unwrap();
        attach(&mut k, eth0, HookPoint::Xdp, prog, MapStore::new()).unwrap();
        let frame = builder::udp_packet(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            b"",
        );
        let out = k.receive(eth0, frame.clone());
        assert_eq!(out.transmissions().len(), 1);
        assert_eq!(out.transmissions()[0].0, eth1);
        assert_eq!(out.transmissions()[0].1, frame.as_slice());
    }
}
