//! A small assembler for building VM programs with symbolic labels.
//!
//! The fast-path synthesizer emits code through this assembler: template
//! snippets append instructions and branch to named labels; `finish`
//! resolves the labels into relative offsets.

use crate::insn::{AluOp, HelperId, Insn, JmpCond, MemSize};
use std::collections::HashMap;
use std::fmt;

/// Error produced when finishing a program with unresolved or duplicate
/// labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A jump referenced a label that was never placed.
    UnknownLabel(String),
    /// The same label was placed twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownLabel(l) => write!(f, "unknown label: {l}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label: {l}"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Ja,
    JmpImm { cond: JmpCond, dst: u8, imm: i64 },
    JmpReg { cond: JmpCond, dst: u8, src: u8 },
}

/// Program assembler with symbolic labels.
///
/// # Example
///
/// ```
/// use linuxfp_ebpf::asm::Asm;
/// use linuxfp_ebpf::insn::{Action, JmpCond};
///
/// let mut a = Asm::new();
/// a.mov_imm(0, Action::Pass.code() as i64);
/// a.jmp_imm(JmpCond::Eq, 1, 0, "out"); // if r1 == 0 goto out
/// a.mov_imm(0, Action::Drop.code() as i64);
/// a.label("out");
/// a.exit();
/// let prog = a.finish().unwrap();
/// assert_eq!(prog.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    insns: Vec<Insn>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String, Pending)>,
    error: Option<AsmError>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Places a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_string(), self.insns.len())
            .is_some()
            && self.error.is_none()
        {
            self.error = Some(AsmError::DuplicateLabel(name.to_string()));
        }
        self
    }

    /// Emits a raw instruction.
    pub fn raw(&mut self, insn: Insn) -> &mut Self {
        self.insns.push(insn);
        self
    }

    /// `dst = imm`.
    pub fn mov_imm(&mut self, dst: u8, imm: i64) -> &mut Self {
        self.raw(Insn::AluImm {
            op: AluOp::Mov,
            dst,
            imm,
        })
    }

    /// `dst = src`.
    pub fn mov_reg(&mut self, dst: u8, src: u8) -> &mut Self {
        self.raw(Insn::AluReg {
            op: AluOp::Mov,
            dst,
            src,
        })
    }

    /// `dst = dst <op> imm`.
    pub fn alu_imm(&mut self, op: AluOp, dst: u8, imm: i64) -> &mut Self {
        self.raw(Insn::AluImm { op, dst, imm })
    }

    /// `dst = dst <op> src`.
    pub fn alu_reg(&mut self, op: AluOp, dst: u8, src: u8) -> &mut Self {
        self.raw(Insn::AluReg { op, dst, src })
    }

    /// `dst = *(size*)(src + off)`.
    pub fn load(&mut self, size: MemSize, dst: u8, src: u8, off: i16) -> &mut Self {
        self.raw(Insn::Load {
            size,
            dst,
            src,
            off,
        })
    }

    /// `*(size*)(dst + off) = src`.
    pub fn store(&mut self, size: MemSize, dst: u8, off: i16, src: u8) -> &mut Self {
        self.raw(Insn::Store {
            size,
            dst,
            off,
            src,
        })
    }

    /// `*(size*)(dst + off) = imm`.
    pub fn store_imm(&mut self, size: MemSize, dst: u8, off: i16, imm: i64) -> &mut Self {
        self.raw(Insn::StoreImm {
            size,
            dst,
            off,
            imm,
        })
    }

    /// Unconditional jump to `label`.
    pub fn ja(&mut self, label: &str) -> &mut Self {
        self.fixups
            .push((self.insns.len(), label.to_string(), Pending::Ja));
        self.raw(Insn::Ja { off: 0 })
    }

    /// Conditional jump to `label` comparing `dst` with an immediate.
    pub fn jmp_imm(&mut self, cond: JmpCond, dst: u8, imm: i64, label: &str) -> &mut Self {
        self.fixups.push((
            self.insns.len(),
            label.to_string(),
            Pending::JmpImm { cond, dst, imm },
        ));
        self.raw(Insn::JmpImm {
            cond,
            dst,
            imm,
            off: 0,
        })
    }

    /// Conditional jump to `label` comparing `dst` with `src`.
    pub fn jmp_reg(&mut self, cond: JmpCond, dst: u8, src: u8, label: &str) -> &mut Self {
        self.fixups.push((
            self.insns.len(),
            label.to_string(),
            Pending::JmpReg { cond, dst, src },
        ));
        self.raw(Insn::JmpReg {
            cond,
            dst,
            src,
            off: 0,
        })
    }

    /// Calls a helper.
    pub fn call(&mut self, helper: HelperId) -> &mut Self {
        self.raw(Insn::Call { helper })
    }

    /// Emits a tail call through `prog_array[index]`.
    pub fn tail_call(&mut self, prog_array: u32, index: u32) -> &mut Self {
        self.raw(Insn::TailCall { prog_array, index })
    }

    /// Emits `exit`.
    pub fn exit(&mut self) -> &mut Self {
        self.raw(Insn::Exit)
    }

    /// Resolves labels and returns the finished instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns an error for duplicate or unresolved labels.
    pub fn finish(self) -> Result<Vec<Insn>, AsmError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut insns = self.insns;
        for (pos, label, pending) in self.fixups {
            let target = *self
                .labels
                .get(&label)
                .ok_or(AsmError::UnknownLabel(label))?;
            let off = target as i64 - (pos as i64 + 1);
            let off = off as i32;
            insns[pos] = match pending {
                Pending::Ja => Insn::Ja { off },
                Pending::JmpImm { cond, dst, imm } => Insn::JmpImm {
                    cond,
                    dst,
                    imm,
                    off,
                },
                Pending::JmpReg { cond, dst, src } => Insn::JmpReg {
                    cond,
                    dst,
                    src,
                    off,
                },
            };
        }
        Ok(insns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Action;

    #[test]
    fn forward_jump_resolves() {
        let mut a = Asm::new();
        a.mov_imm(0, Action::Pass.code() as i64);
        a.jmp_imm(JmpCond::Eq, 1, 0, "out");
        a.mov_imm(0, Action::Drop.code() as i64);
        a.label("out");
        a.exit();
        let prog = a.finish().unwrap();
        match prog[1] {
            Insn::JmpImm { off, .. } => assert_eq!(off, 1),
            other => panic!("unexpected insn {other:?}"),
        }
    }

    #[test]
    fn jump_to_current_position_is_zero_offset() {
        let mut a = Asm::new();
        a.ja("next");
        a.label("next");
        a.exit();
        let prog = a.finish().unwrap();
        match prog[0] {
            Insn::Ja { off } => assert_eq!(off, 0),
            other => panic!("unexpected insn {other:?}"),
        }
    }

    #[test]
    fn unknown_label_errors() {
        let mut a = Asm::new();
        a.ja("nowhere");
        a.exit();
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::UnknownLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new();
        a.label("x");
        a.exit();
        a.label("x");
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn builder_methods_emit_expected_shapes() {
        let mut a = Asm::new();
        a.mov_reg(1, 2)
            .alu_imm(AluOp::Add, 1, 4)
            .alu_reg(AluOp::Xor, 1, 3)
            .load(MemSize::W, 4, 1, 8)
            .store(MemSize::H, 1, 0, 4)
            .store_imm(MemSize::B, 1, 2, 0x7f)
            .call(HelperId::KtimeGetNs)
            .tail_call(0, 3)
            .exit();
        assert_eq!(a.len(), 9);
        assert!(!a.is_empty());
        let prog = a.finish().unwrap();
        assert!(matches!(
            prog[6],
            Insn::Call {
                helper: HelperId::KtimeGetNs
            }
        ));
        assert!(matches!(
            prog[7],
            Insn::TailCall {
                prog_array: 0,
                index: 3
            }
        ));
        assert!(matches!(prog[8], Insn::Exit));
    }

    #[test]
    fn asm_error_display() {
        assert!(AsmError::UnknownLabel("l".into())
            .to_string()
            .contains("unknown"));
        assert!(AsmError::DuplicateLabel("l".into())
            .to_string()
            .contains("duplicate"));
    }
}
