//! Program objects: raw instruction sequences and verified, loadable
//! programs.

use crate::compile::CompiledProgram;
use crate::insn::{HelperId, Insn};
use crate::verifier::{self, VerifyError};
use std::fmt;
use std::sync::Arc;

/// An unverified program: a name plus its instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Human-readable name (shows up in errors and stats).
    pub name: String,
    /// The instruction sequence.
    pub insns: Vec<Insn>,
}

impl Program {
    /// Creates a program.
    pub fn new(name: impl Into<String>, insns: Vec<Insn>) -> Self {
        Program {
            name: name.into(),
            insns,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

/// A program that has passed verification and can be attached or placed
/// in a program array. Cheap to clone (shared).
///
/// This is the moral equivalent of a loaded program fd returned by
/// `bpf(BPF_PROG_LOAD)`: the only way to construct one is through the
/// verifier.
#[derive(Clone)]
pub struct LoadedProgram {
    inner: Arc<Program>,
    cacheable: bool,
    compiled: Arc<CompiledProgram>,
}

impl LoadedProgram {
    /// Verifies and "loads" a program.
    ///
    /// # Errors
    ///
    /// Returns the first verification failure, exactly as the in-kernel
    /// verifier rejects a `BPF_PROG_LOAD`.
    pub fn load(program: Program) -> Result<Self, VerifyError> {
        verifier::verify(&program.insns)?;
        let cacheable = program.insns.iter().all(|i| match i {
            Insn::Call { helper } => helper_is_cacheable(*helper),
            _ => true,
        });
        // Compile eagerly at load time, mirroring the kernel JIT running
        // right after verification: attach/swap never pays compile cost
        // on the datapath, and an uncompiled loaded program cannot exist.
        let compiled = Arc::new(CompiledProgram::compile(&program.insns));
        Ok(LoadedProgram {
            inner: Arc::new(program),
            cacheable,
            compiled,
        })
    }

    /// The load-time-compiled (direct-threaded) form of this program.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// The static cacheability contract: whether every helper this
    /// program calls has a result fully determined by its arguments plus
    /// kernel state covered by the coherence generation. Programs that
    /// read the clock, touch custom maps, or redirect into AF_XDP rings
    /// are not cacheable — their verdicts can change without any
    /// generation bump (or replaying them has side effects the microflow
    /// verdict cache cannot reproduce). Tail calls are fine: the
    /// dispatcher checks the contract on the *resolved* program too.
    pub fn cacheable(&self) -> bool {
        self.cacheable
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The verified instructions.
    pub fn insns(&self) -> &[Insn] {
        &self.inner.insns
    }

    /// Instruction count (a proxy for fast-path code size; the controller
    /// reports it and tests assert that synthesis minimizes it).
    pub fn len(&self) -> usize {
        self.inner.insns.len()
    }

    /// Whether the program is empty (never true for loaded programs —
    /// the verifier rejects empty programs).
    pub fn is_empty(&self) -> bool {
        self.inner.insns.is_empty()
    }
}

/// Whether a helper's result is safe to capture and replay: deterministic
/// given its arguments and generation-covered kernel state, with side
/// effects the slow-path replay reproduces exactly.
fn helper_is_cacheable(helper: HelperId) -> bool {
    !matches!(
        helper,
        HelperId::KtimeGetNs | HelperId::MapLookup | HelperId::MapUpdate | HelperId::XskRedirect
    )
}

impl fmt::Debug for LoadedProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LoadedProgram({}, {} insns)",
            self.inner.name,
            self.inner.insns.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    #[test]
    fn load_accepts_trivial_program() {
        let mut a = Asm::new();
        a.mov_imm(0, 2);
        a.exit();
        let prog = LoadedProgram::load(Program::new("pass", a.finish().unwrap())).unwrap();
        assert_eq!(prog.name(), "pass");
        assert_eq!(prog.len(), 2);
        assert!(!prog.is_empty());
        assert!(format!("{prog:?}").contains("pass"));
    }

    #[test]
    fn load_rejects_empty_program() {
        assert!(LoadedProgram::load(Program::new("empty", vec![])).is_err());
    }

    #[test]
    fn program_accessors() {
        let p = Program::new("x", vec![Insn::Exit]);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert!(Program::new("y", vec![]).is_empty());
    }
}
