//! Interpreter-vs-compiled parity: the interpreter is the reference
//! oracle, and the load-time compiler must be observationally identical
//! to it on every verified program.
//!
//! Each case runs the *same* loaded program through both engines against
//! byte-identical packets and independently-built (but identically
//! initialized) map state, then asserts:
//!
//! - identical [`VmOutcome`]s — verdict, redirect target, instruction
//!   count, tail-call and helper-call counts, fault, div-by-zero count,
//!   and the full final register file;
//! - byte-identical frames after execution;
//! - correct stage attribution — the compiled run charges `jit_insn`
//!   exactly `insns_executed` times and never touches `ebpf_insn` (and
//!   vice versa), while every *other* stage (helpers, tail calls) is
//!   charged identically by both engines.

use linuxfp_ebpf::asm::Asm;
use linuxfp_ebpf::compile;
use linuxfp_ebpf::helpers::NullEnv;
use linuxfp_ebpf::insn::{Action, AluOp, HelperId, Insn, JmpCond, MemSize};
use linuxfp_ebpf::maps::MapStore;
use linuxfp_ebpf::program::{LoadedProgram, Program};
use linuxfp_ebpf::verifier::{ctx_layout, verify};
use linuxfp_ebpf::vm::{self, VmCtx, VmOutcome};
use linuxfp_sim::{CostModel, CostTracker, SimRng};

const ALU_OPS: [AluOp; 12] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Or,
    AluOp::And,
    AluOp::Lsh,
    AluOp::Rsh,
    AluOp::Mod,
    AluOp::Xor,
    AluOp::Mov,
    AluOp::Arsh,
];

const CONDS: [JmpCond; 9] = [
    JmpCond::Eq,
    JmpCond::Ne,
    JmpCond::Gt,
    JmpCond::Ge,
    JmpCond::Lt,
    JmpCond::Le,
    JmpCond::Sgt,
    JmpCond::Slt,
    JmpCond::Set,
];

const SIZES: [MemSize; 4] = [MemSize::B, MemSize::H, MemSize::W, MemSize::DW];

const HELPERS: [HelperId; 10] = [
    HelperId::FibLookup,
    HelperId::FdbLookup,
    HelperId::IptLookup,
    HelperId::Redirect,
    HelperId::KtimeGetNs,
    HelperId::MapLookup,
    HelperId::MapUpdate,
    HelperId::CtLookup,
    HelperId::NatLookup,
    HelperId::TrivialNf,
];

fn rand_reg(rng: &mut SimRng) -> u8 {
    rng.uniform_u64(12) as u8
}

fn rand_jmp_off(rng: &mut SimRng) -> i32 {
    rng.uniform_u64(24) as i32 - 8
}

fn rand_mem_off(rng: &mut SimRng) -> i16 {
    rng.uniform_u64(128) as i16 - 64
}

fn rand_imm32(rng: &mut SimRng) -> i64 {
    rng.uniform_u64(1 << 32) as u32 as i32 as i64
}

/// Arbitrary (mostly invalid) instruction soup, filtered by the verifier.
fn rand_insn(rng: &mut SimRng) -> Insn {
    match rng.uniform_u64(11) {
        0 => Insn::AluImm {
            op: *rng.choose(&ALU_OPS),
            dst: rand_reg(rng),
            imm: rand_imm32(rng),
        },
        1 => Insn::AluReg {
            op: *rng.choose(&ALU_OPS),
            dst: rand_reg(rng),
            src: rand_reg(rng),
        },
        2 => Insn::Ja {
            off: rand_jmp_off(rng),
        },
        3 => Insn::JmpImm {
            cond: *rng.choose(&CONDS),
            dst: rand_reg(rng),
            imm: rng.uniform_u64(1 << 16) as u16 as i16 as i64,
            off: rand_jmp_off(rng),
        },
        4 => Insn::JmpReg {
            cond: *rng.choose(&CONDS),
            dst: rand_reg(rng),
            src: rand_reg(rng),
            off: rand_jmp_off(rng),
        },
        5 => Insn::Load {
            size: *rng.choose(&SIZES),
            dst: rand_reg(rng),
            src: rand_reg(rng),
            off: rand_mem_off(rng),
        },
        6 => Insn::Store {
            size: *rng.choose(&SIZES),
            dst: rand_reg(rng),
            off: rand_mem_off(rng),
            src: rand_reg(rng),
        },
        7 => Insn::StoreImm {
            size: *rng.choose(&SIZES),
            dst: rand_reg(rng),
            off: rand_mem_off(rng),
            imm: rand_imm32(rng),
        },
        8 => Insn::Call {
            helper: *rng.choose(&HELPERS),
        },
        9 => Insn::TailCall {
            prog_array: rng.uniform_u64(4) as u32,
            index: rng.uniform_u64(4) as u32,
        },
        _ => Insn::Exit,
    }
}

/// Accept-biased program shape: initialize `r0` and a few scratch
/// registers, then random soup, then a guaranteed `Exit`. Raw soup has a
/// sub-percent verifier acceptance rate; the prefix/suffix lift it high
/// enough to exercise the oracle thousands of times.
fn rand_program(rng: &mut SimRng) -> Vec<Insn> {
    let mut insns = Vec::new();
    for reg in 0..=7u8 {
        insns.push(Insn::AluImm {
            op: AluOp::Mov,
            dst: reg,
            imm: rand_imm32(rng),
        });
    }
    // Keep r0 a plausible verdict so accepted programs exercise the
    // whole Action range instead of mostly Aborted.
    insns.push(Insn::AluImm {
        op: AluOp::Mov,
        dst: 0,
        imm: rng.uniform_u64(5) as i64,
    });
    let n = rng.uniform_u64(32) as usize;
    insns.extend((0..n).map(|_| rand_insn(rng)));
    insns.push(Insn::Exit);
    insns
}

/// Fresh map state for one engine run; called once per engine so both
/// sides start from the same (but independent) maps.
fn fresh_maps() -> MapStore {
    let maps = MapStore::new();
    maps.create_hash(8);
    maps.create_array(4, 8);
    maps.create_prog_array(4);
    maps
}

struct EngineRun {
    out: VmOutcome,
    tracker: CostTracker,
    packet: Vec<u8>,
}

fn run_engine(prog: &LoadedProgram, maps: &MapStore, packet: &[u8], jit: bool) -> EngineRun {
    let cost = CostModel::calibrated();
    let mut tracker = CostTracker::new();
    let mut pkt = packet.to_vec();
    let ctx = VmCtx::xdp(&mut pkt, 7, 0);
    let out = vm::execute(prog, ctx, &mut NullEnv, maps, &cost, &mut tracker, jit);
    EngineRun {
        out,
        tracker,
        packet: pkt,
    }
}

/// Asserts the two runs are observationally identical and that each
/// engine charged its own dispatch stage — and only its own.
fn assert_parity(interp: &EngineRun, compiled: &EngineRun, what: &str) {
    assert_eq!(interp.out, compiled.out, "outcome diverged: {what}");
    assert_eq!(
        interp.packet, compiled.packet,
        "frame bytes diverged: {what}"
    );

    assert_eq!(
        interp.tracker.stage_count("ebpf_insn"),
        interp.out.insns_executed,
        "interpreter stage attribution: {what}"
    );
    assert_eq!(interp.tracker.stage_count("jit_insn"), 0);
    assert_eq!(
        compiled.tracker.stage_count("jit_insn"),
        compiled.out.insns_executed,
        "compiled stage attribution: {what}"
    );
    assert_eq!(compiled.tracker.stage_count("ebpf_insn"), 0);

    // Every non-dispatch stage (helper charges, tail calls) must be
    // charged identically by both engines.
    for (stage, cost) in interp.tracker.stages() {
        if stage == "ebpf_insn" {
            continue;
        }
        assert_eq!(
            cost.count,
            compiled.tracker.stage_count(stage),
            "stage {stage} count diverged: {what}"
        );
    }
    for (stage, cost) in compiled.tracker.stages() {
        if stage == "jit_insn" {
            continue;
        }
        assert_eq!(
            cost.count,
            interp.tracker.stage_count(stage),
            "stage {stage} count diverged: {what}"
        );
    }
}

/// The core oracle check: every verifier-accepted random program is
/// observationally identical under both engines.
#[test]
fn random_verified_programs_agree() {
    let mut rng = SimRng::seed(0x31D0_0001);
    let mut accepted = 0u32;
    for i in 0..2048 {
        let insns = rand_program(&mut rng);
        if verify(&insns).is_err() {
            continue;
        }
        accepted += 1;
        let prog = LoadedProgram::load(Program::new("fuzz", insns)).unwrap();
        let packet: Vec<u8> = (0..64 + rng.uniform_u64(192))
            .map(|_| rng.uniform_u64(256) as u8)
            .collect();
        let interp = run_engine(&prog, &fresh_maps(), &packet, false);
        let compiled = run_engine(&prog, &fresh_maps(), &packet, true);
        assert_parity(&interp, &compiled, &format!("random program #{i}"));
    }
    assert!(accepted > 50, "verifier accepted only {accepted} programs");
}

/// Packet-mutating programs: both engines must leave byte-identical
/// frames behind, not just agree on the verdict.
#[test]
fn packet_rewrites_are_byte_identical() {
    let mut a = Asm::new();
    a.load(MemSize::DW, 2, 1, ctx_layout::DATA as i16);
    a.load(MemSize::DW, 3, 1, ctx_layout::DATA_END as i16);
    a.mov_reg(4, 2);
    a.alu_imm(AluOp::Add, 4, 34);
    a.jmp_reg(JmpCond::Gt, 4, 3, "out");
    // Swap-ish rewrite across the IP header bytes.
    a.load(MemSize::W, 5, 2, 26);
    a.load(MemSize::W, 6, 2, 30);
    a.store(MemSize::W, 2, 26, 6);
    a.store(MemSize::W, 2, 30, 5);
    a.load(MemSize::H, 7, 2, 24);
    a.alu_imm(AluOp::Xor, 7, 0x55AA);
    a.store(MemSize::H, 2, 24, 7);
    a.label("out");
    a.mov_imm(0, Action::Tx.code() as i64);
    a.exit();
    let prog = LoadedProgram::load(Program::new("rewrite", a.finish().unwrap())).unwrap();

    let mut rng = SimRng::seed(0x31D0_0002);
    for _ in 0..64 {
        let packet: Vec<u8> = (0..64).map(|_| rng.uniform_u64(256) as u8).collect();
        let interp = run_engine(&prog, &fresh_maps(), &packet, false);
        let compiled = run_engine(&prog, &fresh_maps(), &packet, true);
        assert_parity(&interp, &compiled, "packet rewrite");
        assert_ne!(interp.packet, packet, "rewrite should mutate the frame");
    }
}

/// Tail-call chains: both engines walk the same program-array chain and
/// count the same tail calls, helper calls, and instructions.
#[test]
fn tail_call_chains_agree() {
    fn build_maps() -> MapStore {
        let maps = MapStore::new();
        let pa = maps.create_prog_array(4);
        assert_eq!(pa.0, 0);

        let mut leaf = Asm::new();
        leaf.call(HelperId::KtimeGetNs);
        leaf.mov_imm(0, Action::Pass.code() as i64);
        leaf.exit();
        let leaf = LoadedProgram::load(Program::new("leaf", leaf.finish().unwrap())).unwrap();
        maps.prog_array_set(pa, 1, Some(leaf)).unwrap();

        let mut mid = Asm::new();
        mid.mov_imm(0, Action::Drop.code() as i64);
        mid.tail_call(pa.0, 1);
        mid.exit();
        let mid = LoadedProgram::load(Program::new("mid", mid.finish().unwrap())).unwrap();
        maps.prog_array_set(pa, 0, Some(mid)).unwrap();
        maps
    }

    let mut root = Asm::new();
    root.mov_imm(0, Action::Aborted.code() as i64);
    root.tail_call(0, 0);
    root.exit();
    let root = LoadedProgram::load(Program::new("root", root.finish().unwrap())).unwrap();

    let packet = vec![0u8; 64];
    let interp = run_engine(&root, &build_maps(), &packet, false);
    let compiled = run_engine(&root, &build_maps(), &packet, true);
    assert_parity(&interp, &compiled, "tail-call chain");
    assert_eq!(compiled.out.action, Action::Pass);
    assert_eq!(compiled.out.tail_calls, 2);
    assert_eq!(compiled.out.helper_calls, 1);
}

/// A missing tail-call slot falls through identically in both engines.
#[test]
fn missing_tail_call_slot_falls_through_identically() {
    let maps_for = || {
        let maps = MapStore::new();
        maps.create_prog_array(4);
        maps
    };
    let mut a = Asm::new();
    a.mov_imm(0, Action::Drop.code() as i64);
    a.tail_call(0, 3); // empty slot: fall through
    a.exit();
    let prog = LoadedProgram::load(Program::new("fallthrough", a.finish().unwrap())).unwrap();
    let packet = vec![0u8; 64];
    let interp = run_engine(&prog, &maps_for(), &packet, false);
    let compiled = run_engine(&prog, &maps_for(), &packet, true);
    assert_parity(&interp, &compiled, "missing tail-call slot");
    assert_eq!(compiled.out.action, Action::Drop);
    assert_eq!(compiled.out.tail_calls, 0);
}

/// Helper-driven redirect: verdict metadata (redirect target) must
/// survive compilation untouched.
#[test]
fn redirect_verdicts_agree() {
    let mut a = Asm::new();
    a.mov_imm(1, 9); // target ifindex
    a.mov_imm(2, 0); // flags
    a.call(HelperId::Redirect);
    a.exit();
    let prog = LoadedProgram::load(Program::new("redir", a.finish().unwrap())).unwrap();
    let packet = vec![0u8; 64];
    let interp = run_engine(&prog, &fresh_maps(), &packet, false);
    let compiled = run_engine(&prog, &fresh_maps(), &packet, true);
    assert_parity(&interp, &compiled, "redirect");
    assert_eq!(compiled.out.action, Action::Redirect);
    assert_eq!(compiled.out.redirect.map(|i| i.0), Some(9));
}

/// The lowering itself is deterministic: compiling the same bytecode
/// twice yields the same op sequence (the `Arc` in `LoadedProgram` is an
/// optimization, not a correctness requirement).
#[test]
fn compilation_is_deterministic() {
    let mut rng = SimRng::seed(0x31D0_0003);
    for _ in 0..256 {
        let insns = rand_program(&mut rng);
        if verify(&insns).is_err() {
            continue;
        }
        let a = compile::CompiledProgram::compile(&insns);
        let b = compile::CompiledProgram::compile(&insns);
        assert_eq!(a, b);
        assert_eq!(a.ops().len(), insns.len());
    }
}
