//! Seeded ALU edge-case parity fuzz: interpreter vs compiled engine on
//! random straight-line ALU/JMP programs built from sign boundaries,
//! shift-by-63, wrapping multiplies, and register-sourced div/mod by
//! zero. Both engines must produce identical [`VmOutcome`]s — the full
//! final register file included.
//!
//! Any divergence is shrunk greedily (drop one instruction at a time
//! while the divergence persists, difftest-style) and written to
//! `tests/alu_parity_corpus/` as a JSON fixture before the test fails.
//! Checked-in fixtures in that directory are replayed on every run as a
//! regression corpus.

use std::fs;
use std::path::PathBuf;

use linuxfp_ebpf::compile;
use linuxfp_ebpf::helpers::NullEnv;
use linuxfp_ebpf::insn::{AluOp, Insn, JmpCond};
use linuxfp_ebpf::maps::MapStore;
use linuxfp_ebpf::program::{LoadedProgram, Program};
use linuxfp_ebpf::verifier::verify;
use linuxfp_ebpf::vm::{self, VmCtx, VmOutcome};
use linuxfp_json::{json, Value};
use linuxfp_sim::{CostModel, CostTracker, SimRng};

const ALU_OPS: [AluOp; 12] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Or,
    AluOp::And,
    AluOp::Lsh,
    AluOp::Rsh,
    AluOp::Mod,
    AluOp::Xor,
    AluOp::Mov,
    AluOp::Arsh,
];

const CONDS: [JmpCond; 9] = [
    JmpCond::Eq,
    JmpCond::Ne,
    JmpCond::Gt,
    JmpCond::Ge,
    JmpCond::Lt,
    JmpCond::Le,
    JmpCond::Sgt,
    JmpCond::Slt,
    JmpCond::Set,
];

/// Edge immediates: i32 sign boundaries, ±1 around them, shift pivots,
/// and bit patterns that make wrapping multiplies and sign extensions
/// interesting. All fit the instruction set's 32-bit immediate.
const EDGE_IMMS: [i64; 12] = [
    0,
    1,
    -1,
    2,
    63,
    i32::MAX as i64,
    i32::MIN as i64,
    (i32::MAX - 1) as i64,
    (i32::MIN + 1) as i64,
    0x5555_5555,
    -0x5555_5556,
    0x00FF_FF00,
];

/// General-purpose registers the fuzz writes to (`r10` is the read-only
/// frame pointer).
fn rand_reg(rng: &mut SimRng) -> u8 {
    rng.uniform_u64(10) as u8
}

fn edge_imm(rng: &mut SimRng) -> i64 {
    *rng.choose(&EDGE_IMMS)
}

/// An immediate the verifier accepts for `op` (constant shifts must be
/// in `0..64`, constant div/mod must be nonzero — register-sourced zero
/// divisors are the interesting case and stay in via `AluReg`).
fn imm_for(op: AluOp, rng: &mut SimRng) -> i64 {
    match op {
        AluOp::Lsh | AluOp::Rsh | AluOp::Arsh => match rng.uniform_u64(4) {
            0 => 63,
            1 => 0,
            2 => 1,
            _ => rng.uniform_u64(64) as i64,
        },
        AluOp::Div | AluOp::Mod => match rng.uniform_u64(3) {
            0 => 1,
            1 => -1,
            _ => edge_imm(rng).max(1),
        },
        _ => edge_imm(rng),
    }
}

/// One random body instruction. Jumps are forward-only with offsets that
/// stay inside the body (`remaining` instructions follow this one before
/// the terminating `Exit`).
fn rand_body_insn(rng: &mut SimRng, remaining: usize) -> Insn {
    let can_jump = remaining > 0;
    match rng.uniform_u64(if can_jump { 4 } else { 2 }) {
        0 => {
            let op = *rng.choose(&ALU_OPS);
            Insn::AluImm {
                op,
                dst: rand_reg(rng),
                imm: imm_for(op, rng),
            }
        }
        1 => Insn::AluReg {
            op: *rng.choose(&ALU_OPS),
            dst: rand_reg(rng),
            src: rand_reg(rng),
        },
        2 => Insn::JmpImm {
            cond: *rng.choose(&CONDS),
            dst: rand_reg(rng),
            imm: edge_imm(rng),
            off: (1 + rng.uniform_u64(remaining.min(4) as u64)) as i32,
        },
        _ => Insn::JmpReg {
            cond: *rng.choose(&CONDS),
            dst: rand_reg(rng),
            src: rand_reg(rng),
            off: (1 + rng.uniform_u64(remaining.min(4) as u64)) as i32,
        },
    }
}

/// A straight-line(ish) ALU/JMP program: every register seeded with an
/// edge immediate, then random soup, then `Exit`.
fn rand_program(rng: &mut SimRng) -> Vec<Insn> {
    let mut insns = Vec::new();
    for reg in 0..10u8 {
        insns.push(Insn::AluImm {
            op: AluOp::Mov,
            dst: reg,
            imm: edge_imm(rng),
        });
    }
    let n = 1 + rng.uniform_u64(24) as usize;
    for i in 0..n {
        insns.push(rand_body_insn(rng, n - i - 1));
    }
    insns.push(Insn::Exit);
    insns
}

fn run_engine(prog: &LoadedProgram, jit: bool) -> VmOutcome {
    let maps = MapStore::new();
    let cost = CostModel::calibrated();
    let mut tracker = CostTracker::new();
    let mut pkt = vec![0u8; 64];
    let ctx = VmCtx::xdp(&mut pkt, 1, 0);
    if jit {
        compile::run(prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker)
    } else {
        vm::run(prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker)
    }
}

/// `Some((interp, compiled))` when the engines disagree.
fn divergence(insns: &[Insn]) -> Option<(VmOutcome, VmOutcome)> {
    let prog = LoadedProgram::load(Program::new("alu-fuzz", insns.to_vec())).ok()?;
    let interp = run_engine(&prog, false);
    let compiled = run_engine(&prog, true);
    (interp != compiled).then_some((interp, compiled))
}

/// Greedy one-instruction-at-a-time shrink, difftest-style: keep
/// removing instructions as long as the program still verifies and the
/// engines still disagree.
fn shrink(mut insns: Vec<Insn>) -> Vec<Insn> {
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < insns.len() {
            let mut candidate = insns.clone();
            candidate.remove(i);
            if divergence(&candidate).is_some() {
                insns = candidate;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            return insns;
        }
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("alu_parity_corpus")
}

fn insn_json(insn: &Insn) -> Value {
    match *insn {
        Insn::AluImm { op, dst, imm } => {
            json!({"k": "alu_imm", "op": format!("{op:?}"), "dst": dst, "imm": imm})
        }
        Insn::AluReg { op, dst, src } => {
            json!({"k": "alu_reg", "op": format!("{op:?}"), "dst": dst, "src": src})
        }
        Insn::Ja { off } => json!({"k": "ja", "off": off}),
        Insn::JmpImm {
            cond,
            dst,
            imm,
            off,
        } => {
            json!({"k": "jmp_imm", "cond": format!("{cond:?}"), "dst": dst, "imm": imm, "off": off})
        }
        Insn::JmpReg {
            cond,
            dst,
            src,
            off,
        } => {
            json!({"k": "jmp_reg", "cond": format!("{cond:?}"), "dst": dst, "src": src, "off": off})
        }
        Insn::Exit => json!({"k": "exit"}),
        ref other => panic!("ALU fuzz produced unsupported insn {other:?}"),
    }
}

fn parse_alu_op(s: &str) -> AluOp {
    match s {
        "Add" => AluOp::Add,
        "Sub" => AluOp::Sub,
        "Mul" => AluOp::Mul,
        "Div" => AluOp::Div,
        "Or" => AluOp::Or,
        "And" => AluOp::And,
        "Lsh" => AluOp::Lsh,
        "Rsh" => AluOp::Rsh,
        "Mod" => AluOp::Mod,
        "Xor" => AluOp::Xor,
        "Mov" => AluOp::Mov,
        "Arsh" => AluOp::Arsh,
        other => panic!("unknown ALU op {other:?}"),
    }
}

fn parse_cond(s: &str) -> JmpCond {
    match s {
        "Eq" => JmpCond::Eq,
        "Ne" => JmpCond::Ne,
        "Gt" => JmpCond::Gt,
        "Ge" => JmpCond::Ge,
        "Lt" => JmpCond::Lt,
        "Le" => JmpCond::Le,
        "Sgt" => JmpCond::Sgt,
        "Slt" => JmpCond::Slt,
        "Set" => JmpCond::Set,
        other => panic!("unknown jump condition {other:?}"),
    }
}

fn parse_insn(v: &Value) -> Insn {
    let k = v.get("k").and_then(Value::as_str).expect("insn kind");
    let reg = |key: &str| v.get(key).and_then(Value::as_u64).expect(key) as u8;
    let imm = |key: &str| v.get(key).and_then(Value::as_i64).expect(key);
    match k {
        "alu_imm" => Insn::AluImm {
            op: parse_alu_op(v.get("op").and_then(Value::as_str).expect("op")),
            dst: reg("dst"),
            imm: imm("imm"),
        },
        "alu_reg" => Insn::AluReg {
            op: parse_alu_op(v.get("op").and_then(Value::as_str).expect("op")),
            dst: reg("dst"),
            src: reg("src"),
        },
        "ja" => Insn::Ja {
            off: imm("off") as i32,
        },
        "jmp_imm" => Insn::JmpImm {
            cond: parse_cond(v.get("cond").and_then(Value::as_str).expect("cond")),
            dst: reg("dst"),
            imm: imm("imm"),
            off: imm("off") as i32,
        },
        "jmp_reg" => Insn::JmpReg {
            cond: parse_cond(v.get("cond").and_then(Value::as_str).expect("cond")),
            dst: reg("dst"),
            src: reg("src"),
            off: imm("off") as i32,
        },
        "exit" => Insn::Exit,
        other => panic!("unknown insn kind {other:?}"),
    }
}

/// Shrinks a diverging program and persists it as a corpus fixture, then
/// panics with the divergence details.
fn report_divergence(insns: Vec<Insn>, seed: u64, case: usize) -> ! {
    let minimal = shrink(insns);
    let (interp, compiled) = divergence(&minimal).expect("shrunk program still diverges");
    let doc = json!({
        "name": format!("shrunk-{seed:#x}-{case}"),
        "seed": seed,
        "insns": minimal.iter().map(insn_json).collect::<Vec<Value>>(),
    });
    let dir = corpus_dir();
    fs::create_dir_all(&dir).expect("create corpus dir");
    let path = dir.join(format!("shrunk-{seed:x}-{case}.json"));
    fs::write(&path, linuxfp_json::to_string_pretty(&doc)).expect("write fixture");
    panic!(
        "engines diverged (fixture written to {}):\n  interpreted: {interp:?}\n  compiled:    {compiled:?}",
        path.display()
    );
}

/// The fuzz itself: thousands of seeded edge-case programs, each run
/// through both engines.
#[test]
fn alu_edge_cases_have_identical_register_files() {
    let seed = 0xA10_ED6E;
    let mut rng = SimRng::seed(seed);
    let mut accepted = 0u32;
    for case in 0..4096 {
        let insns = rand_program(&mut rng);
        if verify(&insns).is_err() {
            continue;
        }
        accepted += 1;
        if divergence(&insns).is_some() {
            report_divergence(insns, seed, case);
        }
    }
    assert!(
        accepted > 1024,
        "fuzz generator acceptance collapsed: {accepted}/4096"
    );
}

/// Replays every checked-in corpus fixture (including any previously
/// shrunk divergences) through both engines.
#[test]
fn corpus_fixtures_stay_in_parity() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("alu_parity_corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus is empty");
    for path in entries {
        let doc = linuxfp_json::from_str(&fs::read_to_string(&path).expect("read fixture"))
            .expect("parse fixture");
        let insns: Vec<Insn> = doc
            .get("insns")
            .and_then(Value::as_array)
            .expect("insns array")
            .iter()
            .map(parse_insn)
            .collect();
        assert!(
            verify(&insns).is_ok(),
            "fixture {} no longer verifies",
            path.display()
        );
        if let Some((interp, compiled)) = divergence(&insns) {
            panic!(
                "fixture {} diverged:\n  interpreted: {interp:?}\n  compiled:    {compiled:?}",
                path.display()
            );
        }
        // Also pin the Linux div/mod-by-zero semantics: no fixture may
        // abort — zero divisors produce defined results, not faults.
        let prog = LoadedProgram::load(Program::new("fixture", insns)).unwrap();
        let out = run_engine(&prog, true);
        assert!(
            out.error.is_none(),
            "fixture {} faulted: {:?}",
            path.display(),
            out.error
        );
    }
}
