//! Property tests for the eBPF runtime.
//!
//! The key safety property mirrors the real verifier's contract: *any*
//! program the verifier accepts must execute without memory faults on
//! *any* packet. We generate random instruction soup, filter it through
//! the verifier, and execute the survivors against random packets.

use linuxfp_ebpf::helpers::NullEnv;
use linuxfp_ebpf::insn::{AluOp, HelperId, Insn, JmpCond, MemSize};
use linuxfp_ebpf::maps::MapStore;
use linuxfp_ebpf::program::{LoadedProgram, Program};
use linuxfp_ebpf::verifier::verify;
use linuxfp_ebpf::vm::{self, VmCtx, VmError};
use linuxfp_sim::{CostModel, CostTracker};
use proptest::prelude::*;

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Lsh),
        Just(AluOp::Rsh),
        Just(AluOp::Mod),
        Just(AluOp::Xor),
        Just(AluOp::Mov),
        Just(AluOp::Arsh),
    ]
}

fn arb_cond() -> impl Strategy<Value = JmpCond> {
    prop_oneof![
        Just(JmpCond::Eq),
        Just(JmpCond::Ne),
        Just(JmpCond::Gt),
        Just(JmpCond::Ge),
        Just(JmpCond::Lt),
        Just(JmpCond::Le),
        Just(JmpCond::Sgt),
        Just(JmpCond::Slt),
        Just(JmpCond::Set),
    ]
}

fn arb_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![
        Just(MemSize::B),
        Just(MemSize::H),
        Just(MemSize::W),
        Just(MemSize::DW),
    ]
}

fn arb_helper() -> impl Strategy<Value = HelperId> {
    prop_oneof![
        Just(HelperId::FibLookup),
        Just(HelperId::FdbLookup),
        Just(HelperId::IptLookup),
        Just(HelperId::Redirect),
        Just(HelperId::KtimeGetNs),
        Just(HelperId::MapLookup),
        Just(HelperId::MapUpdate),
        Just(HelperId::CtLookup),
        Just(HelperId::TrivialNf),
    ]
}

/// Arbitrary (mostly invalid) instructions — a fuzzer for the verifier.
fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (arb_alu_op(), 0u8..12, any::<i32>())
            .prop_map(|(op, dst, imm)| Insn::AluImm { op, dst, imm: imm as i64 }),
        (arb_alu_op(), 0u8..12, 0u8..12)
            .prop_map(|(op, dst, src)| Insn::AluReg { op, dst, src }),
        (-8i32..16).prop_map(|off| Insn::Ja { off }),
        (arb_cond(), 0u8..12, any::<i16>(), -8i32..16).prop_map(|(cond, dst, imm, off)| {
            Insn::JmpImm { cond, dst, imm: imm as i64, off }
        }),
        (arb_cond(), 0u8..12, 0u8..12, -8i32..16)
            .prop_map(|(cond, dst, src, off)| Insn::JmpReg { cond, dst, src, off }),
        (arb_size(), 0u8..12, 0u8..12, -64i16..64)
            .prop_map(|(size, dst, src, off)| Insn::Load { size, dst, src, off }),
        (arb_size(), 0u8..12, -64i16..64, 0u8..12)
            .prop_map(|(size, dst, off, src)| Insn::Store { size, dst, off, src }),
        (arb_size(), 0u8..12, -64i16..64, any::<i32>()).prop_map(|(size, dst, off, imm)| {
            Insn::StoreImm { size, dst, off, imm: imm as i64 }
        }),
        arb_helper().prop_map(|helper| Insn::Call { helper }),
        (0u32..4, 0u32..4).prop_map(|(prog_array, index)| Insn::TailCall { prog_array, index }),
        Just(Insn::Exit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The verifier never panics on arbitrary instruction sequences.
    #[test]
    fn verifier_is_total(insns in proptest::collection::vec(arb_insn(), 0..64)) {
        let _ = verify(&insns);
    }

    /// Any program the verifier accepts runs to completion on any packet
    /// without a runtime memory fault — the core safety contract.
    #[test]
    fn verified_programs_never_fault(
        insns in proptest::collection::vec(arb_insn(), 1..48),
        packet in proptest::collection::vec(any::<u8>(), 0..256),
        ifindex in 0u32..16,
    ) {
        if verify(&insns).is_err() {
            return Ok(()); // rejected: nothing to check
        }
        let prog = LoadedProgram::load(Program::new("fuzz", insns)).unwrap();
        let maps = MapStore::new();
        // A few maps so random map ids sometimes hit something.
        maps.create_hash(8);
        maps.create_array(4, 8);
        maps.create_prog_array(4);
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let mut pkt = packet;
        let ctx = VmCtx::xdp(&mut pkt, ifindex, 0);
        let out = vm::run(&prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        // Division by zero is a verdict-level abort, not a safety fault;
        // memory violations must be impossible.
        match out.error {
            None | Some(VmError::DivByZero) => {}
            Some(other) => prop_assert!(false, "verified program faulted: {other}"),
        }
    }

    /// Cost accounting: executing N instructions charges exactly N times
    /// the per-instruction price (plus helper charges).
    #[test]
    fn instruction_costs_add_up(n in 1usize..64) {
        let mut insns = Vec::new();
        for i in 0..n {
            insns.push(Insn::AluImm { op: AluOp::Mov, dst: 0, imm: i as i64 });
        }
        insns.push(Insn::AluImm { op: AluOp::Mov, dst: 0, imm: 2 });
        insns.push(Insn::Exit);
        let prog = LoadedProgram::load(Program::new("count", insns)).unwrap();
        let maps = MapStore::new();
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let mut pkt = vec![0u8; 64];
        let ctx = VmCtx::xdp(&mut pkt, 1, 0);
        let out = vm::run(&prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        prop_assert_eq!(out.insns_executed, (n + 2) as u64);
        let expected = (n + 2) as f64 * cost.ebpf_insn_ns;
        prop_assert!((tracker.total_ns() - expected).abs() < 1e-9);
    }
}
