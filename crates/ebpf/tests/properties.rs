//! Property tests for the eBPF runtime.
//!
//! The key safety property mirrors the real verifier's contract: *any*
//! program the verifier accepts must execute without memory faults on
//! *any* packet. We generate random instruction soup with the workspace's
//! seeded [`SimRng`] (the build is fully offline, so no external
//! property-testing framework), filter it through the verifier, and
//! execute the survivors against random packets.

use linuxfp_ebpf::helpers::NullEnv;
use linuxfp_ebpf::insn::{AluOp, HelperId, Insn, JmpCond, MemSize};
use linuxfp_ebpf::maps::MapStore;
use linuxfp_ebpf::program::{LoadedProgram, Program};
use linuxfp_ebpf::verifier::verify;
use linuxfp_ebpf::vm::{self, VmCtx};
use linuxfp_sim::{CostModel, CostTracker, SimRng};

const ALU_OPS: [AluOp; 12] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Or,
    AluOp::And,
    AluOp::Lsh,
    AluOp::Rsh,
    AluOp::Mod,
    AluOp::Xor,
    AluOp::Mov,
    AluOp::Arsh,
];

const CONDS: [JmpCond; 9] = [
    JmpCond::Eq,
    JmpCond::Ne,
    JmpCond::Gt,
    JmpCond::Ge,
    JmpCond::Lt,
    JmpCond::Le,
    JmpCond::Sgt,
    JmpCond::Slt,
    JmpCond::Set,
];

const SIZES: [MemSize; 4] = [MemSize::B, MemSize::H, MemSize::W, MemSize::DW];

const HELPERS: [HelperId; 10] = [
    HelperId::FibLookup,
    HelperId::FdbLookup,
    HelperId::IptLookup,
    HelperId::Redirect,
    HelperId::KtimeGetNs,
    HelperId::MapLookup,
    HelperId::MapUpdate,
    HelperId::CtLookup,
    HelperId::NatLookup,
    HelperId::TrivialNf,
];

fn rand_reg(rng: &mut SimRng) -> u8 {
    rng.uniform_u64(12) as u8
}

fn rand_jmp_off(rng: &mut SimRng) -> i32 {
    rng.uniform_u64(24) as i32 - 8
}

fn rand_mem_off(rng: &mut SimRng) -> i16 {
    rng.uniform_u64(128) as i16 - 64
}

fn rand_imm32(rng: &mut SimRng) -> i64 {
    rng.uniform_u64(1 << 32) as u32 as i32 as i64
}

/// Arbitrary (mostly invalid) instructions — a fuzzer for the verifier.
fn rand_insn(rng: &mut SimRng) -> Insn {
    match rng.uniform_u64(11) {
        0 => Insn::AluImm {
            op: *rng.choose(&ALU_OPS),
            dst: rand_reg(rng),
            imm: rand_imm32(rng),
        },
        1 => Insn::AluReg {
            op: *rng.choose(&ALU_OPS),
            dst: rand_reg(rng),
            src: rand_reg(rng),
        },
        2 => Insn::Ja {
            off: rand_jmp_off(rng),
        },
        3 => Insn::JmpImm {
            cond: *rng.choose(&CONDS),
            dst: rand_reg(rng),
            imm: rng.uniform_u64(1 << 16) as u16 as i16 as i64,
            off: rand_jmp_off(rng),
        },
        4 => Insn::JmpReg {
            cond: *rng.choose(&CONDS),
            dst: rand_reg(rng),
            src: rand_reg(rng),
            off: rand_jmp_off(rng),
        },
        5 => Insn::Load {
            size: *rng.choose(&SIZES),
            dst: rand_reg(rng),
            src: rand_reg(rng),
            off: rand_mem_off(rng),
        },
        6 => Insn::Store {
            size: *rng.choose(&SIZES),
            dst: rand_reg(rng),
            off: rand_mem_off(rng),
            src: rand_reg(rng),
        },
        7 => Insn::StoreImm {
            size: *rng.choose(&SIZES),
            dst: rand_reg(rng),
            off: rand_mem_off(rng),
            imm: rand_imm32(rng),
        },
        8 => Insn::Call {
            helper: *rng.choose(&HELPERS),
        },
        9 => Insn::TailCall {
            prog_array: rng.uniform_u64(4) as u32,
            index: rng.uniform_u64(4) as u32,
        },
        _ => Insn::Exit,
    }
}

fn rand_insns(rng: &mut SimRng, min: usize, max: usize) -> Vec<Insn> {
    let n = min + rng.uniform_u64((max - min) as u64) as usize;
    (0..n).map(|_| rand_insn(rng)).collect()
}

/// The verifier never panics on arbitrary instruction sequences.
#[test]
fn verifier_is_total() {
    let mut rng = SimRng::seed(0xEBBF_0001);
    for _ in 0..512 {
        let insns = rand_insns(&mut rng, 0, 64);
        let _ = verify(&insns);
    }
}

/// Any program the verifier accepts runs to completion on any packet
/// without a runtime memory fault — the core safety contract.
#[test]
fn verified_programs_never_fault() {
    let mut rng = SimRng::seed(0xEBBF_0002);
    for _ in 0..512 {
        let insns = rand_insns(&mut rng, 1, 48);
        if verify(&insns).is_err() {
            continue; // rejected: nothing to check
        }
        let prog = LoadedProgram::load(Program::new("fuzz", insns)).unwrap();
        let maps = MapStore::new();
        // A few maps so random map ids sometimes hit something.
        maps.create_hash(8);
        maps.create_array(4, 8);
        maps.create_prog_array(4);
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let mut pkt: Vec<u8> = (0..rng.uniform_u64(256))
            .map(|_| rng.uniform_u64(256) as u8)
            .collect();
        let ifindex = rng.uniform_u64(16) as u32;
        let ctx = VmCtx::xdp(&mut pkt, ifindex, 0);
        let out = vm::run(&prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        // Division by zero has Linux-defined results and keeps running;
        // memory violations must be impossible.
        if let Some(err) = out.error {
            panic!("verified program faulted: {err}");
        }
    }
}

/// Cost accounting: executing N instructions charges exactly N times the
/// per-instruction price (plus helper charges).
#[test]
fn instruction_costs_add_up() {
    let mut rng = SimRng::seed(0xEBBF_0003);
    for _ in 0..64 {
        let n = 1 + rng.uniform_u64(63) as usize;
        let mut insns = Vec::new();
        for i in 0..n {
            insns.push(Insn::AluImm {
                op: AluOp::Mov,
                dst: 0,
                imm: i as i64,
            });
        }
        insns.push(Insn::AluImm {
            op: AluOp::Mov,
            dst: 0,
            imm: 2,
        });
        insns.push(Insn::Exit);
        let prog = LoadedProgram::load(Program::new("count", insns)).unwrap();
        let maps = MapStore::new();
        let cost = CostModel::calibrated();
        let mut tracker = CostTracker::new();
        let mut pkt = vec![0u8; 64];
        let ctx = VmCtx::xdp(&mut pkt, 1, 0);
        let out = vm::run(&prog, ctx, &mut NullEnv, &maps, &cost, &mut tracker);
        assert_eq!(out.insns_executed, (n + 2) as u64);
        let expected = (n + 2) as f64 * cost.ebpf_insn_ns;
        assert!((tracker.total_ns() - expected).abs() < 1e-9);
    }
}
