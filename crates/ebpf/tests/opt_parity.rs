//! Seeded pre/post-optimization equivalence fuzz: random verifiable
//! packet programs — ALU soup, packet and stack traffic, forward
//! branches, helper calls, plus the checksum-verify and TTL-update
//! idioms the optimizer rewrites wholesale — are run through the
//! interpreter before and after `opt::optimize`, and must agree on the
//! observational contract:
//!
//! - verdict (`r0` / action), redirect target and AF_XDP consumption,
//! - every mutated frame byte,
//! - the helper-call sequence with arguments and results,
//! - the L7 punt flags and the div/mod-by-zero census.
//!
//! Scratch registers `r1`–`r9` are *not* part of the contract — their
//! final values are program-private and dead-store elimination is
//! allowed to change them.
//!
//! Any divergence is shrunk greedily (drop one instruction at a time
//! while the divergence persists) and written to `tests/opt_parity_corpus/`
//! as a JSON fixture before the test fails. Checked-in fixtures are
//! replayed on every run as a regression corpus; the corpus seeds
//! itself with a canonical router-shaped program when empty.

use std::cell::RefCell;
use std::fs;
use std::net::Ipv4Addr;
use std::path::PathBuf;

use linuxfp_ebpf::helpers::{HelperEnv, NullEnv};
use linuxfp_ebpf::insn::{Action, AluOp, HelperId, Insn, JmpCond, MemSize};
use linuxfp_ebpf::maps::MapStore;
use linuxfp_ebpf::opt;
use linuxfp_ebpf::program::{LoadedProgram, Program};
use linuxfp_ebpf::verifier::verify;
use linuxfp_json::{json, Value};
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::l7::L7LookupOutcome;
use linuxfp_netstack::nat::NatLookupOutcome;
use linuxfp_netstack::netfilter::{NfVerdict, PacketMeta};
use linuxfp_netstack::stack::{FdbLookupOutcome, FibFastResult};
use linuxfp_packet::MacAddr;
use linuxfp_sim::{CostModel, CostTracker, Nanos, SimRng};

/// Bytes the generated prologue proves in bounds.
const GUARD: i16 = 34;

// ---------------------------------------------------------------------------
// Recording helper environment.
// ---------------------------------------------------------------------------

/// Wraps [`NullEnv`] and records every helper invocation — name,
/// arguments and result — so the fuzz can compare the full helper-call
/// sequence across the optimization boundary.
#[derive(Default)]
struct RecordingEnv {
    inner: NullEnv,
    log: RefCell<Vec<String>>,
}

impl HelperEnv for RecordingEnv {
    fn env_now(&self) -> Nanos {
        let t = self.inner.env_now();
        self.log.borrow_mut().push(format!("now -> {t:?}"));
        t
    }

    fn env_fib_lookup(&mut self, dst: Ipv4Addr) -> Option<FibFastResult> {
        let r = self.inner.env_fib_lookup(dst);
        self.log.borrow_mut().push(format!("fib({dst}) -> {r:?}"));
        r
    }

    fn env_fdb_lookup(
        &mut self,
        ingress: IfIndex,
        src: MacAddr,
        dst: MacAddr,
        vlan: u16,
    ) -> FdbLookupOutcome {
        let r = self.inner.env_fdb_lookup(ingress, src, dst, vlan);
        self.log
            .borrow_mut()
            .push(format!("fdb({ingress:?}, {src}, {dst}, {vlan}) -> {r:?}"));
        r
    }

    fn env_ipt_lookup(&mut self, meta: &PacketMeta, tracker: &mut CostTracker) -> NfVerdict {
        let r = self.inner.env_ipt_lookup(meta, tracker);
        self.log
            .borrow_mut()
            .push(format!("ipt({}, {}) -> {r:?}", meta.src, meta.dst));
        r
    }

    fn env_ct_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: u8,
    ) -> Option<(Ipv4Addr, u16)> {
        let r = self.inner.env_ct_lookup(src, sport, dst, dport, proto);
        self.log.borrow_mut().push(format!(
            "ct({src}:{sport} -> {dst}:{dport}/{proto}) -> {r:?}"
        ));
        r
    }

    fn env_nat_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        proto: u8,
    ) -> NatLookupOutcome {
        let r = self.inner.env_nat_lookup(src, sport, dst, dport, proto);
        self.log.borrow_mut().push(format!(
            "nat({src}:{sport} -> {dst}:{dport}/{proto}) -> {r:?}"
        ));
        r
    }

    fn env_l7_lookup(
        &mut self,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        payload: &[u8],
        first: Option<u8>,
    ) -> L7LookupOutcome {
        let r = self
            .inner
            .env_l7_lookup(src, sport, dst, dport, payload, first);
        self.log.borrow_mut().push(format!(
            "l7({src}:{sport} -> {dst}:{dport}, {} bytes, {first:?}) -> {r:?}",
            payload.len()
        ));
        r
    }
}

// ---------------------------------------------------------------------------
// The observational contract.
// ---------------------------------------------------------------------------

/// Everything a packet (or the kernel) can observe from one program
/// execution. `r1`–`r9` are deliberately absent.
#[derive(Debug, PartialEq)]
struct Contract {
    action: Action,
    r0: u64,
    redirect: Option<IfIndex>,
    to_user: bool,
    l7_punt: bool,
    l7_uncacheable: bool,
    error: Option<String>,
    helper_calls: u64,
    tail_calls: u64,
    div_zeros: u64,
    frame: Vec<u8>,
    helper_log: Vec<String>,
}

fn run_contract(prog: &LoadedProgram, frame: &[u8]) -> Contract {
    let maps = MapStore::new();
    let cost = CostModel::calibrated();
    let mut tracker = CostTracker::new();
    let mut env = RecordingEnv::default();
    let mut pkt = frame.to_vec();
    let ctx = linuxfp_ebpf::vm::VmCtx::xdp(&mut pkt, 1, 0);
    let out = linuxfp_ebpf::vm::run(prog, ctx, &mut env, &maps, &cost, &mut tracker);
    Contract {
        action: out.action,
        r0: out.regs[0],
        redirect: out.redirect,
        to_user: out.to_user,
        l7_punt: out.l7_punt,
        l7_uncacheable: out.l7_uncacheable,
        error: out.error.map(|e| format!("{e:?}")),
        helper_calls: out.helper_calls,
        tail_calls: out.tail_calls,
        div_zeros: out.div_zeros,
        frame: pkt,
        helper_log: env.log.into_inner(),
    }
}

/// The frame set every program is exercised on: patterned, all-zero
/// (checksum-correct header sums), rng-filled, and one too short for
/// the guard.
fn frames(rng: &mut SimRng) -> Vec<Vec<u8>> {
    let patterned: Vec<u8> = (0..64u32).map(|i| (i * 7 + 13) as u8).collect();
    let random: Vec<u8> = (0..64).map(|_| rng.uniform_u64(256) as u8).collect();
    vec![patterned, vec![0u8; 64], random, vec![0xEE; 20]]
}

/// `Some(description)` when the optimized program's contract differs
/// from the original's on any frame. `None` when the input does not
/// verify (shrink candidates must stay verifiable).
fn divergence(insns: &[Insn], frames: &[Vec<u8>]) -> Option<String> {
    let orig = LoadedProgram::load(Program::new("opt-fuzz", insns.to_vec())).ok()?;
    let (optimized, _) = opt::optimize(insns);
    let opt_prog = match LoadedProgram::load(Program::new("opt-fuzz-opt", optimized)) {
        Ok(p) => p,
        Err(e) => return Some(format!("optimized program no longer loads: {e:?}")),
    };
    for (i, frame) in frames.iter().enumerate() {
        let before = run_contract(&orig, frame);
        let after = run_contract(&opt_prog, frame);
        if before != after {
            return Some(format!(
                "frame {i}:\n  original:  {before:?}\n  optimized: {after:?}"
            ));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Program generator.
// ---------------------------------------------------------------------------

const ALU_OPS: [AluOp; 12] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Or,
    AluOp::And,
    AluOp::Lsh,
    AluOp::Rsh,
    AluOp::Mod,
    AluOp::Xor,
    AluOp::Mov,
    AluOp::Arsh,
];

const CONDS: [JmpCond; 9] = [
    JmpCond::Eq,
    JmpCond::Ne,
    JmpCond::Gt,
    JmpCond::Ge,
    JmpCond::Lt,
    JmpCond::Le,
    JmpCond::Sgt,
    JmpCond::Slt,
    JmpCond::Set,
];

const EDGE_IMMS: [i64; 10] = [
    0,
    1,
    -1,
    2,
    0xff,
    0xffff,
    i32::MAX as i64,
    i32::MIN as i64,
    0x5555_5555,
    0x00FF_FF00,
];

fn edge_imm(rng: &mut SimRng) -> i64 {
    *rng.choose(&EDGE_IMMS)
}

/// A scratch register (`r0`–`r5`; `r6`/`r7` hold the packet pointers).
fn scratch(rng: &mut SimRng) -> u8 {
    rng.uniform_u64(6) as u8
}

/// `n` pairwise-distinct scratch registers.
fn distinct_scratch(rng: &mut SimRng, n: usize) -> Vec<u8> {
    let mut regs: Vec<u8> = Vec::new();
    while regs.len() < n {
        let r = scratch(rng);
        if !regs.contains(&r) {
            regs.push(r);
        }
    }
    regs
}

/// A verifier-legal immediate for `op`.
fn imm_for(op: AluOp, rng: &mut SimRng) -> i64 {
    match op {
        AluOp::Lsh | AluOp::Rsh | AluOp::Arsh => rng.uniform_u64(64) as i64,
        AluOp::Div | AluOp::Mod => 1 + rng.uniform_u64(1 << 16) as i64,
        _ => edge_imm(rng),
    }
}

fn mem_size(rng: &mut SimRng) -> MemSize {
    *rng.choose(&[MemSize::B, MemSize::H, MemSize::W])
}

/// Builds one random program: the standard bounds-check prologue, a
/// random sequence of blocks, and a two-armed epilogue. Branches out of
/// blocks land on the drop tail, recorded in `patches` until the tail's
/// pc is known.
fn rand_program(rng: &mut SimRng) -> Vec<Insn> {
    let mut v: Vec<Insn> = Vec::new();
    let mut patches: Vec<usize> = Vec::new();

    // Prologue: r6 = data, r7 = data_end, prove GUARD bytes, seed the
    // scratch registers.
    v.push(Insn::Load {
        size: MemSize::DW,
        dst: 6,
        src: 1,
        off: 0,
    });
    v.push(Insn::Load {
        size: MemSize::DW,
        dst: 7,
        src: 1,
        off: 8,
    });
    v.push(Insn::AluReg {
        op: AluOp::Mov,
        dst: 2,
        src: 6,
    });
    v.push(Insn::AluImm {
        op: AluOp::Add,
        dst: 2,
        imm: GUARD as i64,
    });
    patches.push(v.len());
    v.push(Insn::JmpReg {
        cond: JmpCond::Gt,
        dst: 2,
        src: 7,
        off: 0, // patched to the drop tail
    });
    for r in 0..6u8 {
        v.push(Insn::AluImm {
            op: AluOp::Mov,
            dst: r,
            imm: edge_imm(rng),
        });
    }

    let blocks = 2 + rng.uniform_u64(5);
    for _ in 0..blocks {
        match rng.uniform_u64(8) {
            // ALU soup.
            0 | 1 => {
                for _ in 0..1 + rng.uniform_u64(4) {
                    let op = *rng.choose(&ALU_OPS);
                    if rng.uniform_u64(2) == 0 {
                        v.push(Insn::AluImm {
                            op,
                            dst: scratch(rng),
                            imm: imm_for(op, rng),
                        });
                    } else {
                        v.push(Insn::AluReg {
                            op,
                            dst: scratch(rng),
                            src: scratch(rng),
                        });
                    }
                }
            }
            // Packet loads.
            2 => {
                let size = mem_size(rng);
                let off = rng.uniform_u64((GUARD as u64) - size.bytes() as u64) as i16;
                v.push(Insn::Load {
                    size,
                    dst: scratch(rng),
                    src: 6,
                    off,
                });
            }
            // Packet stores: observable frame mutations.
            3 => {
                let size = mem_size(rng);
                let off = rng.uniform_u64((GUARD as u64) - size.bytes() as u64) as i16;
                v.push(Insn::Store {
                    size,
                    dst: 6,
                    off,
                    src: scratch(rng),
                });
            }
            // Stack round-trip.
            4 => {
                let slot = -8 * (1 + rng.uniform_u64(4) as i16);
                v.push(Insn::StoreImm {
                    size: MemSize::DW,
                    dst: 10,
                    off: slot,
                    imm: edge_imm(rng),
                });
                v.push(Insn::Load {
                    size: MemSize::DW,
                    dst: scratch(rng),
                    src: 10,
                    off: slot,
                });
            }
            // A forward branch over filler.
            5 => {
                let k = 1 + rng.uniform_u64(3) as i32;
                v.push(Insn::JmpImm {
                    cond: *rng.choose(&CONDS),
                    dst: scratch(rng),
                    imm: edge_imm(rng),
                    off: k,
                });
                for _ in 0..k {
                    v.push(Insn::AluImm {
                        op: AluOp::Add,
                        dst: scratch(rng),
                        imm: 1,
                    });
                }
            }
            // A helper call; r1–r5 are uninitialized afterwards, so
            // re-seed them.
            6 => {
                if rng.uniform_u64(2) == 0 {
                    v.push(Insn::Call {
                        helper: HelperId::KtimeGetNs,
                    });
                } else {
                    v.push(Insn::AluImm {
                        op: AluOp::Mov,
                        dst: 1,
                        imm: edge_imm(rng),
                    });
                    v.push(Insn::Call {
                        helper: HelperId::TrivialNf,
                    });
                }
                for r in 1..6u8 {
                    v.push(Insn::AluImm {
                        op: AluOp::Mov,
                        dst: r,
                        imm: edge_imm(rng),
                    });
                }
            }
            // The checksum-verify idiom the optimizer widens.
            _ => {
                let regs = distinct_scratch(rng, 2);
                let (acc, t) = (regs[0], regs[1]);
                let pairs = 2 * (1 + rng.uniform_u64(3)) as usize;
                let off0 = rng.uniform_u64((GUARD as u64) - 2 * pairs as u64) as i16;
                v.push(Insn::AluImm {
                    op: AluOp::Mov,
                    dst: acc,
                    imm: 0,
                });
                for k in 0..pairs {
                    v.push(Insn::Load {
                        size: MemSize::H,
                        dst: t,
                        src: 6,
                        off: off0 + 2 * k as i16,
                    });
                    v.push(Insn::AluReg {
                        op: AluOp::Add,
                        dst: acc,
                        src: t,
                    });
                }
                for _ in 0..2 {
                    v.push(Insn::AluReg {
                        op: AluOp::Mov,
                        dst: t,
                        src: acc,
                    });
                    v.push(Insn::AluImm {
                        op: AluOp::Rsh,
                        dst: t,
                        imm: 16,
                    });
                    v.push(Insn::AluImm {
                        op: AluOp::And,
                        dst: acc,
                        imm: 0xffff,
                    });
                    v.push(Insn::AluReg {
                        op: AluOp::Add,
                        dst: acc,
                        src: t,
                    });
                }
                patches.push(v.len());
                v.push(Insn::JmpImm {
                    cond: JmpCond::Ne,
                    dst: acc,
                    imm: 0xffff,
                    off: 0, // patched to the drop tail
                });
            }
        }
        // Occasionally splice in the TTL-update idiom the optimizer
        // collapses to its constant delta.
        if rng.uniform_u64(4) == 0 {
            emit_ttl_idiom(rng, &mut v);
        }
    }

    // Epilogue: a verdict, then the shared drop tail every patched
    // branch lands on.
    v.push(Insn::AluImm {
        op: AluOp::Mov,
        dst: 0,
        imm: rng.uniform_u64(3) as i64,
    });
    v.push(Insn::Exit);
    let drop_pc = v.len();
    v.push(Insn::AluImm {
        op: AluOp::Mov,
        dst: 0,
        imm: Action::Drop.code() as i64,
    });
    v.push(Insn::Exit);

    for pc in patches {
        let off = (drop_pc - pc - 1) as i32;
        match &mut v[pc] {
            Insn::JmpImm { off: o, .. } | Insn::JmpReg { off: o, .. } => *o = off,
            _ => unreachable!("patch target is a branch"),
        }
    }
    v
}

/// The exact 30-instruction shape `emit_ttl_decrement` produces, with
/// random registers and displacements.
fn emit_ttl_idiom(rng: &mut SimRng, v: &mut Vec<Insn>) {
    let regs = distinct_scratch(rng, 4);
    let (rt, rp, rw, rx) = (regs[0], regs[1], regs[2], regs[3]);
    let off_t = rng.uniform_u64(GUARD as u64 - 1) as i16;
    let off_c = rng.uniform_u64(GUARD as u64 - 2) as i16;
    let ldb = |dst: u8, off: i16| Insn::Load {
        size: MemSize::B,
        dst,
        src: 6,
        off,
    };
    let stb = |off: i16, src: u8| Insn::Store {
        size: MemSize::B,
        dst: 6,
        off,
        src,
    };
    let alu = |op: AluOp, dst: u8, imm: i64| Insn::AluImm { op, dst, imm };
    let alur = |op: AluOp, dst: u8, src: u8| Insn::AluReg { op, dst, src };
    v.extend([
        ldb(rt, off_t),
        ldb(rp, off_t + 1),
        alur(AluOp::Mov, rw, rt),
        alu(AluOp::Lsh, rw, 8),
        alur(AluOp::Or, rw, rp),
        alu(AluOp::Sub, rt, 1),
        stb(off_t, rt),
        alu(AluOp::Lsh, rt, 8),
        alur(AluOp::Or, rt, rp),
        ldb(rp, off_c),
        alu(AluOp::Lsh, rp, 8),
        ldb(rx, off_c + 1),
        alur(AluOp::Or, rp, rx),
        alu(AluOp::Xor, rp, 0xffff),
        alu(AluOp::Xor, rw, 0xffff),
        alur(AluOp::Add, rp, rw),
        alur(AluOp::Add, rp, rt),
    ]);
    for _ in 0..2 {
        v.extend([
            alur(AluOp::Mov, rw, rp),
            alu(AluOp::Rsh, rw, 16),
            alu(AluOp::And, rp, 0xffff),
            alur(AluOp::Add, rp, rw),
        ]);
    }
    v.extend([
        alu(AluOp::Xor, rp, 0xffff),
        alur(AluOp::Mov, rw, rp),
        alu(AluOp::Rsh, rw, 8),
        stb(off_c, rw),
        stb(off_c + 1, rp),
    ]);
}

// ---------------------------------------------------------------------------
// Shrinking + corpus.
// ---------------------------------------------------------------------------

/// Greedy one-instruction-at-a-time shrink: keep removing instructions
/// while the program still verifies and the divergence persists.
fn shrink(mut insns: Vec<Insn>, frames: &[Vec<u8>]) -> Vec<Insn> {
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < insns.len() {
            let mut candidate = insns.clone();
            candidate.remove(i);
            if divergence(&candidate, frames).is_some() {
                insns = candidate;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            return insns;
        }
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("opt_parity_corpus")
}

fn insn_json(insn: &Insn) -> Value {
    match *insn {
        Insn::AluImm { op, dst, imm } => {
            json!({"k": "alu_imm", "op": format!("{op:?}"), "dst": dst, "imm": imm})
        }
        Insn::AluReg { op, dst, src } => {
            json!({"k": "alu_reg", "op": format!("{op:?}"), "dst": dst, "src": src})
        }
        Insn::Ja { off } => json!({"k": "ja", "off": off}),
        Insn::JmpImm {
            cond,
            dst,
            imm,
            off,
        } => {
            json!({"k": "jmp_imm", "cond": format!("{cond:?}"), "dst": dst, "imm": imm, "off": off})
        }
        Insn::JmpReg {
            cond,
            dst,
            src,
            off,
        } => {
            json!({"k": "jmp_reg", "cond": format!("{cond:?}"), "dst": dst, "src": src, "off": off})
        }
        Insn::Load {
            size,
            dst,
            src,
            off,
        } => {
            json!({"k": "load", "size": format!("{size:?}"), "dst": dst, "src": src, "off": off})
        }
        Insn::Store {
            size,
            dst,
            off,
            src,
        } => {
            json!({"k": "store", "size": format!("{size:?}"), "dst": dst, "off": off, "src": src})
        }
        Insn::StoreImm {
            size,
            dst,
            off,
            imm,
        } => {
            json!({"k": "store_imm", "size": format!("{size:?}"), "dst": dst, "off": off, "imm": imm})
        }
        Insn::Call { helper } => json!({"k": "call", "helper": format!("{helper:?}")}),
        Insn::TailCall { prog_array, index } => {
            json!({"k": "tail_call", "prog_array": prog_array, "index": index})
        }
        Insn::Exit => json!({"k": "exit"}),
    }
}

fn parse_alu_op(s: &str) -> AluOp {
    match s {
        "Add" => AluOp::Add,
        "Sub" => AluOp::Sub,
        "Mul" => AluOp::Mul,
        "Div" => AluOp::Div,
        "Or" => AluOp::Or,
        "And" => AluOp::And,
        "Lsh" => AluOp::Lsh,
        "Rsh" => AluOp::Rsh,
        "Mod" => AluOp::Mod,
        "Xor" => AluOp::Xor,
        "Mov" => AluOp::Mov,
        "Arsh" => AluOp::Arsh,
        other => panic!("unknown ALU op {other:?}"),
    }
}

fn parse_cond(s: &str) -> JmpCond {
    match s {
        "Eq" => JmpCond::Eq,
        "Ne" => JmpCond::Ne,
        "Gt" => JmpCond::Gt,
        "Ge" => JmpCond::Ge,
        "Lt" => JmpCond::Lt,
        "Le" => JmpCond::Le,
        "Sgt" => JmpCond::Sgt,
        "Slt" => JmpCond::Slt,
        "Set" => JmpCond::Set,
        other => panic!("unknown jump condition {other:?}"),
    }
}

fn parse_size(s: &str) -> MemSize {
    match s {
        "B" => MemSize::B,
        "H" => MemSize::H,
        "W" => MemSize::W,
        "DW" => MemSize::DW,
        other => panic!("unknown memory size {other:?}"),
    }
}

fn parse_helper(s: &str) -> HelperId {
    match s {
        "FibLookup" => HelperId::FibLookup,
        "FdbLookup" => HelperId::FdbLookup,
        "IptLookup" => HelperId::IptLookup,
        "Redirect" => HelperId::Redirect,
        "KtimeGetNs" => HelperId::KtimeGetNs,
        "MapLookup" => HelperId::MapLookup,
        "MapUpdate" => HelperId::MapUpdate,
        "CtLookup" => HelperId::CtLookup,
        "NatLookup" => HelperId::NatLookup,
        "L7PolicyLookup" => HelperId::L7PolicyLookup,
        "TrivialNf" => HelperId::TrivialNf,
        "XskRedirect" => HelperId::XskRedirect,
        other => panic!("unknown helper {other:?}"),
    }
}

fn parse_insn(v: &Value) -> Insn {
    let k = v.get("k").and_then(Value::as_str).expect("insn kind");
    let reg = |key: &str| v.get(key).and_then(Value::as_u64).expect(key) as u8;
    let imm = |key: &str| v.get(key).and_then(Value::as_i64).expect(key);
    let s = |key: &str| v.get(key).and_then(Value::as_str).expect(key);
    match k {
        "alu_imm" => Insn::AluImm {
            op: parse_alu_op(s("op")),
            dst: reg("dst"),
            imm: imm("imm"),
        },
        "alu_reg" => Insn::AluReg {
            op: parse_alu_op(s("op")),
            dst: reg("dst"),
            src: reg("src"),
        },
        "ja" => Insn::Ja {
            off: imm("off") as i32,
        },
        "jmp_imm" => Insn::JmpImm {
            cond: parse_cond(s("cond")),
            dst: reg("dst"),
            imm: imm("imm"),
            off: imm("off") as i32,
        },
        "jmp_reg" => Insn::JmpReg {
            cond: parse_cond(s("cond")),
            dst: reg("dst"),
            src: reg("src"),
            off: imm("off") as i32,
        },
        "load" => Insn::Load {
            size: parse_size(s("size")),
            dst: reg("dst"),
            src: reg("src"),
            off: imm("off") as i16,
        },
        "store" => Insn::Store {
            size: parse_size(s("size")),
            dst: reg("dst"),
            off: imm("off") as i16,
            src: reg("src"),
        },
        "store_imm" => Insn::StoreImm {
            size: parse_size(s("size")),
            dst: reg("dst"),
            off: imm("off") as i16,
            imm: imm("imm"),
        },
        "call" => Insn::Call {
            helper: parse_helper(s("helper")),
        },
        "tail_call" => Insn::TailCall {
            prog_array: imm("prog_array") as u32,
            index: imm("index") as u32,
        },
        "exit" => Insn::Exit,
        other => panic!("unknown insn kind {other:?}"),
    }
}

fn write_fixture(name: &str, seed: Option<u64>, insns: &[Insn]) -> PathBuf {
    let doc = json!({
        "name": name,
        "seed": seed.map_or(Value::Null, |s| json!(s)),
        "insns": insns.iter().map(insn_json).collect::<Vec<Value>>(),
    });
    let dir = corpus_dir();
    fs::create_dir_all(&dir).expect("create corpus dir");
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, linuxfp_json::to_string_pretty(&doc)).expect("write fixture");
    path
}

/// Shrinks a diverging program, persists it, and fails the test.
fn report_divergence(insns: Vec<Insn>, frames: &[Vec<u8>], seed: u64, case: usize) -> ! {
    let minimal = shrink(insns, frames);
    let detail = divergence(&minimal, frames).expect("shrunk program still diverges");
    let path = write_fixture(&format!("shrunk-{seed:x}-{case}"), Some(seed), &minimal);
    panic!(
        "optimizer changed observable behavior (fixture written to {}):\n{detail}",
        path.display()
    );
}

/// The canonical seed fixture: a router-shaped program exercising both
/// idiom rewrites plus the generic passes, written the first time the
/// corpus is empty so the replay test always has material.
fn seed_fixture() -> Vec<Insn> {
    let mut rng = SimRng::seed(0x0917_F00D);
    loop {
        let insns = rand_program(&mut rng);
        // Only a program that actually contains both a checksum branch
        // and a TTL store is a worthy canonical fixture.
        let has_csum = insns
            .iter()
            .any(|i| matches!(i, Insn::JmpImm { imm: 0xffff, .. }));
        let has_ttl = insns.iter().any(|i| {
            matches!(
                i,
                Insn::AluImm {
                    op: AluOp::Sub,
                    imm: 1,
                    ..
                }
            )
        });
        if verify(&insns).is_ok() && has_csum && has_ttl {
            return insns;
        }
    }
}

// ---------------------------------------------------------------------------
// The tests.
// ---------------------------------------------------------------------------

#[test]
fn optimizer_preserves_the_observational_contract() {
    let seed = 0x0917_A11E;
    let mut rng = SimRng::seed(seed);
    let mut accepted = 0u32;
    for case in 0..768 {
        let insns = rand_program(&mut rng);
        if verify(&insns).is_err() {
            continue;
        }
        accepted += 1;
        let frames = frames(&mut rng);
        if divergence(&insns, &frames).is_some() {
            report_divergence(insns, &frames, seed, case);
        }
    }
    assert!(
        accepted > 500,
        "fuzz generator acceptance collapsed: {accepted}/768"
    );
}

/// Replays every checked-in corpus fixture (seeding the corpus first if
/// it is empty) through the contract oracle.
#[test]
fn corpus_fixtures_stay_in_parity() {
    let dir = corpus_dir();
    let empty = !dir.exists()
        || fs::read_dir(&dir)
            .map(|mut d| d.next().is_none())
            .unwrap_or(true);
    if empty {
        write_fixture("seed-router-shape", None, &seed_fixture());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("opt_parity_corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus is empty");
    let mut rng = SimRng::seed(0x0917_C05E);
    let frames = frames(&mut rng);
    for path in entries {
        let doc = linuxfp_json::from_str(&fs::read_to_string(&path).expect("read fixture"))
            .expect("parse fixture");
        let insns: Vec<Insn> = doc
            .get("insns")
            .and_then(Value::as_array)
            .expect("insns array")
            .iter()
            .map(parse_insn)
            .collect();
        assert!(
            verify(&insns).is_ok(),
            "fixture {} no longer verifies",
            path.display()
        );
        if let Some(detail) = divergence(&insns, &frames) {
            panic!("fixture {} diverged:\n{detail}", path.display());
        }
    }
}
