//! A minimal, dependency-free JSON document model.
//!
//! The LinuxFP controller models kernel configuration as a JSON
//! *processing graph* (paper §IV-A1), and the telemetry layer renders
//! metric snapshots as JSON. The build environment is fully offline, so
//! instead of `serde_json` this crate provides the small surface the
//! repository actually needs: a [`Value`] enum, the [`json!`]
//! constructor macro, ordered [`Map`]s, indexing/accessor helpers,
//! compact + pretty renderers, and a [`from_str`] parser (used by the
//! differential fuzzer to replay regression fixtures).
//!
//! The model intentionally mirrors `serde_json`'s shape (`Value`,
//! `Map`, `json!`) so code reads the same and a future swap back to the
//! real crate would be mechanical.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered string-keyed map (deterministic iteration order, which
/// keeps graph comparison and rendering stable across runs).
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float.
    F(f64),
}

impl Number {
    /// The value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(_) => None,
        }
    }

    /// The value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(_) => None,
        }
    }

    /// The value as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                // One side integer, other side float (or out-of-range):
                // compare numerically.
            }
        }
        if let (Some(a), Some(b)) = (self.as_u64(), other.as_u64()) {
            return a == b;
        }
        self.as_f64() == other.as_f64()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(u) => write!(f, "{u}"),
            Number::I(i) => write!(f, "{i}"),
            Number::F(x) if x.is_finite() => {
                if x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            // JSON has no NaN/Inf; render as null like serde_json does
            // for non-finite floats behind its arbitrary_precision gate.
            Number::F(_) => write!(f, "null"),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministic key order.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup on objects; `None` for anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an exactly-representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an exactly-representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if any.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Conversions into `Value` (the surface `json!` relies on).
// ---------------------------------------------------------------------

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::F(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Number(Number::F(f64::from(f)))
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::U(v as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v as i64))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------
// Ergonomic comparisons (tests compare nodes against literals).
// ---------------------------------------------------------------------

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => *n == Number::from(*other),
                    _ => false,
                }
            }
        }
    )*};
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        Number::U(v)
    }
}
impl From<i64> for Number {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Number::U(v as u64)
        } else {
            Number::I(v)
        }
    }
}
impl From<u32> for Number {
    fn from(v: u32) -> Self {
        Number::U(u64::from(v))
    }
}
impl From<i32> for Number {
    fn from(v: i32) -> Self {
        Number::from(i64::from(v))
    }
}
impl From<u16> for Number {
    fn from(v: u16) -> Self {
        Number::U(u64::from(v))
    }
}
impl From<usize> for Number {
    fn from(v: usize) -> Self {
        Number::U(v as u64)
    }
}
impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::F(v)
    }
}

eq_num!(u16, u32, u64, usize, i32, i64, f64);

// ---------------------------------------------------------------------
// Indexing: `value["key"]` / `value[0]`, `Null` for any miss.
// ---------------------------------------------------------------------

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(&mut s, self);
        f.write_str(&s)
    }
}

/// Renders a value in compact form (serde_json's `to_string`).
pub fn to_string(v: &Value) -> String {
    v.to_string()
}

/// Renders a value with two-space indentation (serde_json's
/// `to_string_pretty`).
pub fn to_string_pretty(v: &Value) -> String {
    let mut s = String::new();
    write_pretty(&mut s, v, 0);
    s
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (serde_json's `from_str`, but always into
/// [`Value`]). Accepts exactly one top-level value; trailing
/// whitespace is fine, trailing tokens are an error. Used by the
/// differential fuzzer to replay regression fixtures.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // consume '{'
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume opening '"'
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                // Multi-byte UTF-8: the input is a &str, so continuation
                // bytes are guaranteed well-formed — copy them through.
                _ => {
                    let start = self.pos - 1;
                    while self
                        .peek()
                        .is_some_and(|c| c != b'"' && c != b'\\' && c >= 0x20)
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input is valid UTF-8");
                    if chunk.chars().any(|c| (c as u32) < 0x20) {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push_str(chunk);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let unit = self.hex4()?;
        // Surrogate pairs (escaped non-BMP characters).
        if (0xD800..0xDC00).contains(&unit) {
            if !self.eat("\\u") {
                return Err(self.err("unpaired high surrogate"));
            }
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.err("invalid low surrogate"));
            }
            let cp = 0x10000 + ((u32::from(unit) - 0xD800) << 10) + (u32::from(low) - 0xDC00);
            return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        char::from_u32(u32::from(unit)).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            self.pos += 1;
            v = (v << 4) | u16::from(digit);
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.err("expected digit after decimal point"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| ParseError {
                offset: start,
                message: "invalid number".to_string(),
            })
    }
}

// ---------------------------------------------------------------------
// The `json!` constructor macro (subset of serde_json's).
// ---------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-looking literal. Supports nested
/// objects and arrays, `null`, and arbitrary Rust expressions in value
/// position (anything with `Into<Value>`).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Token-muncher behind [`json!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // --- array element munching: accumulate elements into [$elems] ---
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // --- object entry munching: key tokens accumulate in ($key) ---
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // --- leaves ---
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_accepts_multi_token_expressions() {
        let name = "eth0";
        let v = json!({
            "upper": name.to_uppercase(),
            "len": name.len() + 1,
            "list": [name.len(), 1 + 1, "x"],
        });
        assert_eq!(v["upper"], "ETH0");
        assert_eq!(v["len"], 5u64);
        assert_eq!(v["list"][1], 2u64);
    }

    #[test]
    fn macro_builds_nested_structures() {
        let pvid: u16 = 7;
        let v = json!({
            "name": "br0",
            "ifindex": 3u32,
            "stp": false,
            "next": null,
            "pvid": pvid,
            "pipeline": [ {"nf": "bridge"}, {"nf": "router"} ],
            "mac": [1u8, 2u8, 3u8],
        });
        assert_eq!(v["name"], "br0");
        assert_eq!(v["ifindex"].as_u64(), Some(3));
        assert_eq!(v["stp"], false);
        assert_eq!(v["next"], Value::Null);
        assert_eq!(v["pvid"], 7u16);
        assert_eq!(v["pipeline"][1]["nf"], "router");
        assert_eq!(v["pipeline"][2], Value::Null);
        assert_eq!(v["mac"].as_array().unwrap().len(), 3);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn numbers_compare_across_representations() {
        assert_eq!(Value::from(3u64), Value::from(3i32));
        assert_eq!(Value::from(3.0f64), Value::from(3u32));
        assert_ne!(Value::from(-1i64), Value::from(1u64));
        assert_eq!(Value::from(-5i32).as_i64(), Some(-5));
        assert_eq!(Value::from(-5i32).as_u64(), None);
    }

    #[test]
    fn compact_rendering_is_json() {
        let v = json!({"a": [1, "x\"y", null, true], "b": {"c": 2.5}});
        assert_eq!(v.to_string(), r#"{"a":[1,"x\"y",null,true],"b":{"c":2.5}}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = json!({"a": [1], "empty": {}});
        let s = to_string_pretty(&v);
        assert!(s.contains("\n  \"a\": [\n    1\n  ]"));
        assert!(s.contains("\"empty\": {}"));
    }

    #[test]
    fn float_rendering_round_trips_integral_floats() {
        assert_eq!(Value::from(2.0).to_string(), "2.0");
        assert_eq!(Value::from(2.5).to_string(), "2.5");
        assert_eq!(Value::from(f64::NAN).to_string(), "null");
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = json!({"s": "x", "n": 1});
        assert!(v["s"].as_u64().is_none());
        assert!(v["n"].as_str().is_none());
        assert!(v.get("s").is_some());
        assert!(v["s"].get("nested").is_none());
        assert!(v["n"].as_bool().is_none());
        assert!(!v["n"].is_null());
        assert_eq!(v["n"].as_f64(), Some(1.0));
    }

    #[test]
    fn option_and_escape_handling() {
        let some: Option<&str> = Some("a\nb");
        let none: Option<&str> = None;
        let v = json!({"s": some, "n": none});
        assert_eq!(v.to_string(), r#"{"n":null,"s":"a\nb"}"#);
    }

    #[test]
    fn parser_round_trips_compact_and_pretty() {
        let v = json!({
            "name": "fixture",
            "seed": 12648430u64,
            "neg": -7,
            "ratio": 2.5,
            "flags": [true, false, null],
            "nested": {"list": [1, 2, 3], "empty": {}, "none": []},
            "text": "quote \" slash \\ newline \n tab \t",
        });
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        assert_eq!(from_str(r#""a\u0041b""#).unwrap(), "aAb");
        assert_eq!(from_str(r#""\ud83d\ude00""#).unwrap(), "\u{1F600}");
        assert_eq!(from_str(r#""caf\u00e9 naïve""#).unwrap(), "café naïve");
        assert_eq!(from_str("\"\\/\\b\\f\"").unwrap(), "/\u{8}\u{c}");
    }

    #[test]
    fn parser_number_representations() {
        assert_eq!(from_str("42").unwrap(), 42u64);
        assert_eq!(from_str("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(from_str("2.5").unwrap(), 2.5f64);
        assert_eq!(from_str("1e3").unwrap(), 1000.0f64);
        assert_eq!(from_str("-1.5e-1").unwrap(), -0.15f64);
        assert_eq!(
            from_str("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":1,}",
            "{a:1}",
            "\"unterminated",
            "nul",
            "truex",
            "01x",
            "-",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "[] []",
            "\u{1}",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input: {bad:?}");
        }
        let err = from_str("[1, 2, oops]").unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(err.to_string().contains("byte 7"));
    }
}
