//! The baseline platform: plain Linux (the simulated kernel's slow path,
//! no fast paths attached).

use crate::platform::{Platform, PlatformTraits, Scheduling};
use crate::scenario::Scenario;
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::stack::{BatchOutcome, Kernel, RxOutcome};
use linuxfp_packet::Batch;

/// Plain Linux forwarding/filtering through the full kernel stack.
#[derive(Debug)]
pub struct LinuxPlatform {
    kernel: Kernel,
    upstream: IfIndex,
}

impl LinuxPlatform {
    /// Configures a fresh kernel for the scenario.
    pub fn new(scenario: Scenario) -> Self {
        let mut kernel = Kernel::new(100);
        let (upstream, _) = scenario.configure_kernel(&mut kernel);
        LinuxPlatform { kernel, upstream }
    }

    /// The upstream (traffic-source facing) device's MAC, which workload
    /// frames must be addressed to.
    pub fn dut_mac(&self) -> linuxfp_packet::MacAddr {
        self.kernel.device(self.upstream).expect("configured").mac
    }

    /// Access to the underlying kernel (for tests and ablations).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }
}

impl Platform for LinuxPlatform {
    fn traits(&self) -> PlatformTraits {
        PlatformTraits {
            name: "Linux",
            kernel_resident: true,
            standard_linux_api: true,
            transparent_acceleration: false, // nothing is accelerated
            dedicated_cores: false,
            scheduling: Scheduling::InterruptFullStack,
        }
    }

    fn process_batch(&mut self, batch: &mut Batch) -> BatchOutcome {
        self.kernel.inject_batch(self.upstream, batch)
    }

    fn process(&mut self, frame: Vec<u8>) -> RxOutcome {
        self.kernel.receive(self.upstream, frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SINK_MAC;
    use linuxfp_packet::EthernetFrame;

    #[test]
    fn linux_forwards_through_slow_path() {
        let s = Scenario::router();
        let mut p = LinuxPlatform::new(s);
        let frame = s.frame(p.dut_mac(), 1, 60);
        let out = p.process(frame);
        assert_eq!(out.transmissions().len(), 1);
        let eth = EthernetFrame::parse(out.transmissions()[0].1).unwrap();
        assert_eq!(eth.dst, SINK_MAC);
        assert_eq!(out.cost.stage_count("skb_alloc"), 1);
        assert_eq!(out.cost.stage_count("fib_lookup"), 1);
    }

    #[test]
    fn service_time_matches_calibration() {
        // The calibrated model puts plain Linux min-packet forwarding at
        // ~1.0 µs (~1 Mpps single core), per the numbers the paper's
        // Table VII + 77% claim imply.
        let s = Scenario::router();
        let mut p = LinuxPlatform::new(s);
        let mac = p.dut_mac();
        let t = p.service_time_ns(&mut |i, buf| s.fill_frame(mac, i, 60, buf));
        assert!((900.0..1150.0).contains(&t), "service {t} ns");
    }

    #[test]
    fn gateway_rules_make_linux_slower() {
        let sr = Scenario::router();
        let sg = Scenario::gateway();
        let mut router = LinuxPlatform::new(sr);
        let mut gateway = LinuxPlatform::new(sg);
        let rm = router.dut_mac();
        let gm = gateway.dut_mac();
        let tr = router.service_time_ns(&mut |i, buf| sr.fill_frame(rm, i, 60, buf));
        let tg = gateway.service_time_ns(&mut |i, buf| sg.fill_frame(gm, i, 60, buf));
        assert!(
            tg > tr + 1500.0,
            "100-rule linear scan should cost ~2.2us: {tr} vs {tg}"
        );
    }

    #[test]
    fn ipset_restores_most_of_the_gateway_performance() {
        let sg = Scenario::gateway();
        let si = Scenario::gateway_ipset();
        let mut linear = LinuxPlatform::new(sg);
        let mut ipset = LinuxPlatform::new(si);
        let lm = linear.dut_mac();
        let im = ipset.dut_mac();
        let tl = linear.service_time_ns(&mut |i, buf| sg.fill_frame(lm, i, 60, buf));
        let ti = ipset.service_time_ns(&mut |i, buf| si.fill_frame(im, i, 60, buf));
        assert!(ti < tl - 1000.0, "ipset {ti} should beat linear {tl}");
    }

    #[test]
    fn blocked_traffic_is_dropped() {
        let s = Scenario::gateway();
        let mut p = LinuxPlatform::new(s);
        let frame = linuxfp_packet::builder::udp_packet(
            crate::scenario::SOURCE_MAC,
            p.dut_mac(),
            std::net::Ipv4Addr::new(10, 0, 1, 100),
            s.blocked_dst(3),
            1,
            2,
            b"",
        );
        let out = p.process(frame);
        assert!(out.transmissions().is_empty());
        assert_eq!(out.drops(), vec!["nf forward drop"]);
    }
}
