//! Shared evaluation scenarios: the virtual router and virtual gateway
//! of the paper's §VI-A, plus helpers for generating their workloads.
//!
//! Every platform is configured *equivalently* from these descriptions —
//! Linux and LinuxFP through standard kernel APIs, Polycube through its
//! custom control plane, VPP through its own CLI-style API — mirroring
//! "VPP and Polycube are configured with commands equivalent to the
//! Linux configuration".

use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::l7::{L7Action, L7Policy};
use linuxfp_netstack::nat::{NatChain, NatRule, NatTarget};
use linuxfp_netstack::netfilter::{ChainHook, IpSet, IptRule};
use linuxfp_netstack::stack::{IfAddr, Kernel};
use linuxfp_packet::ipv4::Prefix;
use linuxfp_packet::tcp::TcpFlags;
use linuxfp_packet::{builder, MacAddr};
use std::net::Ipv4Addr;

/// MAC used by the upstream traffic generator.
pub const SOURCE_MAC: MacAddr = MacAddr::new([0x02, 0xAA, 0xAA, 0xAA, 0xAA, 0x01]);
/// MAC of the downstream next hop (the sink host).
pub const SINK_MAC: MacAddr = MacAddr::new([0x02, 0xBB, 0xBB, 0xBB, 0xBB, 0x02]);
/// The downstream next-hop address every test route points at.
pub const NEXT_HOP: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 2);

/// The virtual-router / virtual-gateway scenario parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Number of routed prefixes (`ip route add 10.10.<i>.0/24 ...`),
    /// 50 in the paper.
    pub prefixes: u32,
    /// Number of blacklist rules on FORWARD (0 = plain router; 100 in
    /// the paper's gateway).
    pub filter_rules: u32,
    /// Whether the blacklist is aggregated into one ipset.
    pub use_ipset: bool,
    /// Whether inside clients are masqueraded behind the downstream
    /// interface's address (`iptables -t nat -A POSTROUTING -o <down>
    /// -j MASQUERADE`).
    pub masquerade: bool,
    /// Number of L7 deny policies (`/blocked/<i>` URL prefixes); 0 = no
    /// request inspection.
    pub l7_policies: u32,
}

impl Scenario {
    /// The paper's virtual router: 50 prefixes, no filtering.
    pub fn router() -> Self {
        Scenario {
            prefixes: 50,
            filter_rules: 0,
            use_ipset: false,
            masquerade: false,
            l7_policies: 0,
        }
    }

    /// The paper's virtual gateway: 50 prefixes + 100 blacklist rules.
    pub fn gateway() -> Self {
        Scenario {
            filter_rules: 100,
            ..Scenario::router()
        }
    }

    /// An API gateway: the router with L7 request policies denying
    /// `/blocked/*` URL prefixes on otherwise-routable HTTP traffic.
    pub fn api_gateway() -> Self {
        Scenario {
            l7_policies: 20,
            ..Scenario::router()
        }
    }

    /// A NAT gateway: the router with many inside clients sharing the
    /// downstream interface's single public address (home-router style).
    pub fn nat_gateway() -> Self {
        Scenario {
            masquerade: true,
            ..Scenario::router()
        }
    }

    /// The gateway with the blacklist aggregated into an ipset.
    pub fn gateway_ipset() -> Self {
        Scenario {
            use_ipset: true,
            ..Scenario::gateway()
        }
    }

    /// A randomized scenario drawn from `rng`, spanning the full
    /// configuration space the presets cover: 1–50 routed prefixes,
    /// an empty / small / paper-sized blacklist (linear or ipset), and
    /// optional masquerading. Deterministic per seed — the differential
    /// fuzzer uses this to sample kernel configurations.
    pub fn randomized(rng: &mut linuxfp_sim::SimRng) -> Self {
        let filter_rules = match rng.uniform_u64(3) {
            0 => 0,
            1 => 1 + rng.uniform_u64(20) as u32,
            _ => 100,
        };
        Scenario {
            prefixes: 1 + rng.uniform_u64(50) as u32,
            filter_rules,
            use_ipset: filter_rules > 0 && rng.chance(0.5),
            masquerade: rng.chance(0.5),
            l7_policies: if rng.chance(0.35) {
                1 + rng.uniform_u64(20) as u32
            } else {
                0
            },
        }
    }

    /// The `i`-th routed destination prefix.
    pub fn route_prefix(i: u32) -> Prefix {
        Prefix::new(Ipv4Addr::new(10, 10, (i % 256) as u8, 0), 24)
    }

    /// The `i`-th blacklisted prefix (a /28 in the upper half of a routed
    /// /24, so blacklisted traffic is otherwise routable and the
    /// common-case workload — low host numbers — is never blocked).
    pub fn blacklist_prefix(i: u32) -> Prefix {
        Prefix::new(
            Ipv4Addr::new(10, 10, (i % 50) as u8, (((i / 50) * 16) % 128 + 128) as u8),
            28,
        )
    }

    /// A routable, never-blacklisted destination for flow `i` (the
    /// common-case workload).
    pub fn allowed_dst(&self, i: u64) -> Ipv4Addr {
        Ipv4Addr::new(10, 10, (i % u64::from(self.prefixes.max(1))) as u8, 7)
    }

    /// A blacklisted destination for rule `i`.
    pub fn blocked_dst(&self, i: u32) -> Ipv4Addr {
        Scenario::blacklist_prefix(i % self.filter_rules.max(1)).nth_host(1)
    }

    /// The request line of the `i`-th allowed HTTP flow. Paths rotate
    /// through a small API surface; none is under `/blocked/`.
    pub fn http_request(i: u64) -> Vec<u8> {
        format!("GET /api/v1/items/{} HTTP/1.1\r\n", i % 64).into_bytes()
    }

    /// The request line of a request every `api_gateway` policy set
    /// denies.
    pub fn blocked_http_request(&self, i: u64) -> Vec<u8> {
        format!(
            "GET /blocked/{} HTTP/1.1\r\n",
            i % u64::from(self.l7_policies.max(1))
        )
        .into_bytes()
    }

    /// Builds one TCP segment of HTTP flow `i` carrying `payload`,
    /// addressed like [`Scenario::frame`] but to port 80.
    pub fn http_frame(&self, dut_mac: MacAddr, i: u64, payload: &[u8]) -> Vec<u8> {
        builder::tcp_packet(
            SOURCE_MAC,
            dut_mac,
            Ipv4Addr::new(10, 0, 1, 100),
            self.allowed_dst(i),
            (1024 + (i % 512)) as u16,
            80,
            TcpFlags {
                psh: true,
                ack: true,
                ..TcpFlags::default()
            },
            payload,
        )
    }

    /// The in-place variant of [`Scenario::http_frame`].
    pub fn fill_http_frame(&self, dut_mac: MacAddr, i: u64, payload: &[u8], buf: &mut Vec<u8>) {
        builder::tcp_packet_into(
            SOURCE_MAC,
            dut_mac,
            Ipv4Addr::new(10, 0, 1, 100),
            self.allowed_dst(i),
            (1024 + (i % 512)) as u16,
            80,
            TcpFlags {
                psh: true,
                ack: true,
                ..TcpFlags::default()
            },
            payload,
            buf,
        );
    }

    /// Builds the workload frame for flow `i` with the given total frame
    /// length (excluding FCS), addressed to the DUT's upstream MAC.
    pub fn frame(&self, dut_mac: MacAddr, i: u64, frame_len: usize) -> Vec<u8> {
        builder::udp_packet_sized(
            SOURCE_MAC,
            dut_mac,
            Ipv4Addr::new(10, 0, 1, 100),
            self.allowed_dst(i),
            (1024 + (i % 512)) as u16,
            4791,
            frame_len,
        )
    }

    /// The NAT-gateway workload frame: inside client `client` (one of
    /// many sharing the single public address) sending flow `i`.
    pub fn client_frame(&self, dut_mac: MacAddr, client: u8, i: u64, frame_len: usize) -> Vec<u8> {
        builder::udp_packet_sized(
            SOURCE_MAC,
            dut_mac,
            Ipv4Addr::new(10, 0, 1, client),
            self.allowed_dst(i),
            (1024 + (i % 512)) as u16,
            4791,
            frame_len,
        )
    }

    /// Writes the workload frame for flow `i` into a reusable buffer —
    /// the zero-allocation variant of [`Scenario::frame`] that pooled
    /// measurement loops use.
    pub fn fill_frame(&self, dut_mac: MacAddr, i: u64, frame_len: usize, buf: &mut Vec<u8>) {
        builder::udp_packet_sized_into(
            SOURCE_MAC,
            dut_mac,
            Ipv4Addr::new(10, 0, 1, 100),
            self.allowed_dst(i),
            (1024 + (i % 512)) as u16,
            4791,
            frame_len,
            buf,
        );
    }

    /// The in-place variant of [`Scenario::client_frame`].
    pub fn fill_client_frame(
        &self,
        dut_mac: MacAddr,
        client: u8,
        i: u64,
        frame_len: usize,
        buf: &mut Vec<u8>,
    ) {
        builder::udp_packet_sized_into(
            SOURCE_MAC,
            dut_mac,
            Ipv4Addr::new(10, 0, 1, client),
            self.allowed_dst(i),
            (1024 + (i % 512)) as u16,
            4791,
            frame_len,
            buf,
        );
    }

    /// Applies this scenario to a kernel using only standard Linux
    /// configuration (iproute2 / sysctl / iptables / ipset equivalents).
    /// Returns `(upstream, downstream)` interface indices.
    ///
    /// # Panics
    ///
    /// Panics if the kernel already has conflicting configuration — the
    /// scenario owns the kernel it configures.
    pub fn configure_kernel(&self, k: &mut Kernel) -> (IfIndex, IfIndex) {
        let eth0 = k.add_physical("ens1f0").expect("fresh kernel");
        let eth1 = k.add_physical("ens1f1").expect("fresh kernel");
        k.ip_addr_add(eth0, IfAddr::new(Ipv4Addr::new(10, 0, 1, 1), 24))
            .expect("fresh kernel");
        k.ip_addr_add(eth1, IfAddr::new(Ipv4Addr::new(10, 0, 2, 1), 24))
            .expect("fresh kernel");
        k.ip_link_set_up(eth0).expect("device exists");
        k.ip_link_set_up(eth1).expect("device exists");
        k.sysctl_set("net.ipv4.ip_forward", 1)
            .expect("known sysctl");
        for i in 0..self.prefixes {
            k.ip_route_add(Scenario::route_prefix(i), Some(NEXT_HOP), None)
                .expect("gateway on connected subnet");
        }
        if self.filter_rules > 0 {
            if self.use_ipset {
                let mut set = IpSet::new_hash_net();
                for i in 0..self.filter_rules {
                    set.add(Scenario::blacklist_prefix(i));
                }
                assert!(k.ipset_create("blacklist", set));
                k.iptables_append(ChainHook::Forward, IptRule::drop_dst_set("blacklist"));
            } else {
                for i in 0..self.filter_rules {
                    k.iptables_append(
                        ChainHook::Forward,
                        IptRule::drop_dst(Scenario::blacklist_prefix(i)),
                    );
                }
            }
        }
        for i in 0..self.l7_policies {
            k.l7_policy_append(L7Policy::prefix(
                format!("/blocked/{i}").as_bytes(),
                L7Action::Deny,
            ));
        }
        if self.masquerade {
            k.iptables_nat_append(
                NatChain::Postrouting,
                NatRule {
                    out_if: Some(eth1),
                    ..NatRule::any(NatTarget::Masquerade)
                },
            );
        }
        // The testbed pre-resolves both neighbors (pktgen sends
        // continuously, so ARP is always warm).
        let now = k.now();
        k.neigh.learn(NEXT_HOP, SINK_MAC, eth1, now);
        k.neigh
            .learn(Ipv4Addr::new(10, 0, 1, 100), SOURCE_MAC, eth0, now);
        (eth0, eth1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_presets() {
        assert_eq!(Scenario::router().filter_rules, 0);
        assert_eq!(Scenario::gateway().filter_rules, 100);
        assert!(Scenario::gateway_ipset().use_ipset);
    }

    #[test]
    fn randomized_scenarios_are_deterministic_and_configurable() {
        for seed in 0..32 {
            let mut a = linuxfp_sim::SimRng::seed(seed);
            let mut b = linuxfp_sim::SimRng::seed(seed);
            let s = Scenario::randomized(&mut a);
            assert_eq!(s, Scenario::randomized(&mut b), "seed {seed}");
            assert!(s.prefixes >= 1);
            assert!(!s.use_ipset || s.filter_rules > 0);
            // Every sampled scenario must configure a kernel cleanly.
            let mut k = Kernel::new(100);
            s.configure_kernel(&mut k);
        }
    }

    #[test]
    fn blacklist_is_inside_routed_space() {
        for i in 0..100 {
            let b = Scenario::blacklist_prefix(i);
            let covered = (0..50).any(|r| Scenario::route_prefix(r).covers(&b));
            assert!(covered, "blacklist {b} not routable");
        }
    }

    #[test]
    fn allowed_dst_is_never_blacklisted() {
        let s = Scenario::gateway();
        for i in 0..200u64 {
            let dst = s.allowed_dst(i);
            for r in 0..s.filter_rules {
                assert!(
                    !Scenario::blacklist_prefix(r).contains(dst),
                    "allowed {dst} is blacklisted by rule {r}"
                );
            }
        }
    }

    #[test]
    fn kernel_configuration_matches_scenario() {
        let mut k = Kernel::new(42);
        let (eth0, eth1) = Scenario::gateway().configure_kernel(&mut k);
        assert!(k.ip_forward_enabled());
        // 50 static + 2 connected routes.
        assert_eq!(k.dump_routes().len(), 52);
        assert_eq!(k.netfilter.rules(ChainHook::Forward).len(), 100);
        assert_ne!(eth0, eth1);
        let mut k2 = Kernel::new(43);
        Scenario::gateway_ipset().configure_kernel(&mut k2);
        assert_eq!(k2.netfilter.rules(ChainHook::Forward).len(), 1);
        assert_eq!(k2.netfilter.set("blacklist").unwrap().len(), 100);
    }

    #[test]
    fn nat_gateway_masquerades_inside_clients() {
        let mut k = Kernel::new(44);
        let s = Scenario::nat_gateway();
        let (eth0, _) = s.configure_kernel(&mut k);
        assert_eq!(k.nat.snat_rules(), 1);
        let mac = k.device(eth0).unwrap().mac;
        let mut ports = std::collections::HashSet::new();
        for client in 2..5u8 {
            let out = k.receive(eth0, s.client_frame(mac, client, 0, 60));
            let tx = out.transmissions();
            assert_eq!(tx.len(), 1, "client {client} forwarded");
            let ip = linuxfp_packet::Ipv4Header::parse(&tx[0].1[14..]).unwrap();
            assert_eq!(ip.src, Ipv4Addr::new(10, 0, 2, 1), "masqueraded");
            let udp = linuxfp_packet::UdpHeader::parse(&tx[0].1[14 + ip.header_len..]).unwrap();
            ports.insert(udp.src_port);
        }
        // Many inside clients, one public IP, distinct allocated ports.
        assert_eq!(ports.len(), 3);
    }

    #[test]
    fn frames_hit_requested_size() {
        let s = Scenario::router();
        let f = s.frame(MacAddr::from_index(1), 3, 60);
        assert_eq!(f.len(), 60);
        let f = s.frame(MacAddr::from_index(1), 3, 1496);
        assert_eq!(f.len(), 1496);
    }
}
