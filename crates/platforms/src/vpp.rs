//! A VPP-style baseline: user-space kernel-bypass with vector (batch)
//! processing and dedicated busy-poll cores.
//!
//! VPP takes over the NIC (DPDK), so the kernel never sees its packets:
//! there are no hooks, no `sk_buff`s, and no kernel state — and also no
//! iproute2/netlink compatibility. Batching amortizes fixed per-vector
//! costs across up to 256 packets, giving VPP the highest throughput in
//! the paper's figures, at the price of dedicating 100 %-utilized cores
//! (paper §VI-A: "the use of busy polling ... requires it to dedicate
//! the configured number of cores").

use crate::platform::{Platform, PlatformTraits, Scheduling};
use crate::scenario::{Scenario, NEXT_HOP, SINK_MAC};
use linuxfp_netstack::device::IfIndex;
use linuxfp_netstack::fib::{Fib, Route};
use linuxfp_netstack::stack::{BatchOutcome, DropReason, Effect, RxOutcome};
use linuxfp_packet::ipv4::Prefix;
use linuxfp_packet::{Batch, PacketBuf};
use linuxfp_packet::{EthernetFrame, Ipv4Header, MacAddr};
use linuxfp_sim::CostModel;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// The egress "port" identifier VPP reports transmissions on.
pub const VPP_EGRESS_PORT: IfIndex = IfIndex(2);

/// The VPP-style user-space platform.
#[derive(Debug)]
pub struct VppPlatform {
    cost: CostModel,
    fib: Fib,
    /// ACL entries grouped by prefix length (vector classifier).
    acl: BTreeMap<u8, Vec<u32>>,
    acl_rules: usize,
    own_mac: MacAddr,
    next_hop_mac: MacAddr,
}

impl VppPlatform {
    /// Builds and configures the platform for a scenario through its
    /// CLI-style API (`vppctl`-equivalent calls below).
    pub fn new(scenario: Scenario) -> Self {
        let mut vpp = VppPlatform {
            cost: CostModel::calibrated(),
            fib: Fib::new(),
            acl: BTreeMap::new(),
            acl_rules: 0,
            // VPP owns the NIC; it inherits the hardware address the
            // Linux scenarios expose, so workloads are identical.
            own_mac: MacAddr::from_index(100 * 0x10000 + 1),
            next_hop_mac: SINK_MAC,
        };
        for i in 0..scenario.prefixes {
            vpp.vppctl_route_add(Scenario::route_prefix(i));
        }
        vpp.vppctl_route_add(Prefix::new(NEXT_HOP, 24));
        for i in 0..scenario.filter_rules {
            vpp.vppctl_acl_add(Scenario::blacklist_prefix(i));
        }
        vpp
    }

    /// `vppctl ip route add <prefix> via <next-hop>`.
    pub fn vppctl_route_add(&mut self, prefix: Prefix) {
        self.fib
            .insert(Route::via_gateway(prefix, NEXT_HOP, VPP_EGRESS_PORT));
    }

    /// `vppctl acl-add-replace ... deny dst <prefix>`.
    pub fn vppctl_acl_add(&mut self, prefix: Prefix) {
        self.acl
            .entry(prefix.len())
            .or_default()
            .push(u32::from(prefix.network()));
        self.acl_rules += 1;
    }

    /// The MAC the workload generator addresses (VPP forwards regardless,
    /// but the shared scenario workload targets the DUT like a router).
    pub fn dut_mac(&self) -> MacAddr {
        self.own_mac
    }

    fn acl_denies(&self, dst: Ipv4Addr) -> bool {
        self.acl.iter().any(|(len, nets)| {
            let masked = u32::from(Prefix::new(dst, *len).network());
            nets.contains(&masked)
        })
    }

    /// The fixed per-vector cost amortized at full vector size — VPP
    /// busy-polls a NIC ring that refills faster than packets drain, so
    /// its vectors run full in steady state regardless of how large a
    /// burst the harness injects.
    fn amortized_vector_ns(&self) -> f64 {
        self.cost.vpp_batch_fixed_ns / f64::from(self.cost.vpp_batch_size.max(1))
    }

    /// One packet through the graph-node walk: parse, ACL, FIB, TTL,
    /// MAC rewrite. Per-packet costs only — vector-fixed cost is charged
    /// by the caller.
    fn forward_one(&mut self, mut frame: PacketBuf, out: &mut RxOutcome) {
        out.cost.charge("vpp_node", self.cost.vpp_per_packet_ns);

        let Ok(eth) = EthernetFrame::parse(&frame) else {
            out.effects.push(Effect::Drop {
                reason: DropReason::MalformedEthernet,
            });
            return;
        };
        if eth.ethertype != linuxfp_packet::EtherType::Ipv4 {
            out.effects.push(Effect::Drop {
                reason: DropReason::VppNonIpPunted,
            });
            return;
        }
        let l3 = eth.payload_offset;
        let Ok(ip) = Ipv4Header::parse(&frame[l3..]) else {
            out.effects.push(Effect::Drop {
                reason: DropReason::MalformedIpv4,
            });
            return;
        };
        if self.acl_rules > 0 {
            out.cost.charge("vpp_acl", self.cost.vpp_acl_ns);
            if self.acl_denies(ip.dst) {
                out.effects.push(Effect::Drop {
                    reason: DropReason::VppAclDeny,
                });
                return;
            }
        }
        if self.fib.lookup(ip.dst).is_none() {
            out.effects.push(Effect::Drop {
                reason: DropReason::NoRoute,
            });
            return;
        }
        if Ipv4Header::decrement_ttl(&mut frame[l3..]).is_none() {
            out.effects.push(Effect::Drop {
                reason: DropReason::TtlExceeded,
            });
            return;
        }
        EthernetFrame::rewrite_macs(&mut frame, self.next_hop_mac, self.own_mac);
        out.effects.push(Effect::Transmit {
            dev: VPP_EGRESS_PORT,
            frame,
        });
    }
}

impl Platform for VppPlatform {
    fn traits(&self) -> PlatformTraits {
        PlatformTraits {
            name: "VPP",
            kernel_resident: false,
            standard_linux_api: false,
            transparent_acceleration: false,
            dedicated_cores: true,
            scheduling: Scheduling::BusyPoll,
        }
    }

    fn process_batch(&mut self, batch: &mut Batch) -> BatchOutcome {
        let mut out = BatchOutcome {
            batch_size: batch.len(),
            ..BatchOutcome::default()
        };
        // Steady-state amortized vector cost: fixed per-vector work
        // spread over a full 256-packet vector (see
        // `amortized_vector_ns`), charged for the burst as a whole.
        out.batch_cost.charge(
            "vpp_vector",
            self.amortized_vector_ns() * out.batch_size as f64,
        );
        let bufs: Vec<PacketBuf> = batch.drain().collect();
        for frame in bufs {
            let mut rx = RxOutcome::default();
            self.forward_one(frame, &mut rx);
            out.outcomes.push(rx);
        }
        out
    }

    fn process(&mut self, frame: Vec<u8>) -> RxOutcome {
        let mut out = RxOutcome::default();
        out.cost.charge("vpp_vector", self.amortized_vector_ns());
        self.forward_one(frame.into(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linux::LinuxPlatform;
    use crate::linuxfp::LinuxFpPlatform;

    #[test]
    fn vpp_forwards_with_rewrite() {
        let s = Scenario::router();
        let mut vpp = VppPlatform::new(s);
        let out = vpp.process(s.frame(vpp.dut_mac(), 3, 60));
        let tx = out.transmissions();
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].0, VPP_EGRESS_PORT);
        let eth = EthernetFrame::parse(tx[0].1).unwrap();
        assert_eq!(eth.dst, SINK_MAC);
        let ip = Ipv4Header::parse(&tx[0].1[14..]).unwrap();
        assert_eq!(ip.ttl, 63);
        assert!(ip.verify_checksum(&tx[0].1[14..]));
    }

    #[test]
    fn vpp_is_fastest_of_all_platforms() {
        let s = Scenario::router();
        let mut vpp = VppPlatform::new(s);
        let mut lfp = LinuxFpPlatform::new(s);
        let mut linux = LinuxPlatform::new(s);
        let mv = vpp.dut_mac();
        let mf = lfp.dut_mac();
        let ml = linux.dut_mac();
        let tv = vpp.service_time_ns(&mut |i, buf| s.fill_frame(mv, i, 60, buf));
        let tf = lfp.service_time_ns(&mut |i, buf| s.fill_frame(mf, i, 60, buf));
        let tl = linux.service_time_ns(&mut |i, buf| s.fill_frame(ml, i, 60, buf));
        assert!(
            tv < tf && tf < tl,
            "vpp {tv:.0} < linuxfp {tf:.0} < linux {tl:.0}"
        );
    }

    #[test]
    fn acl_denies_blacklisted() {
        let s = Scenario::gateway();
        let mut vpp = VppPlatform::new(s);
        let blocked = linuxfp_packet::builder::udp_packet(
            crate::scenario::SOURCE_MAC,
            vpp.dut_mac(),
            Ipv4Addr::new(10, 0, 1, 100),
            s.blocked_dst(11),
            1,
            2,
            b"",
        );
        let out = vpp.process(blocked);
        assert_eq!(out.drops(), vec!["vpp acl deny"]);
    }

    #[test]
    fn acl_cost_is_flat_in_rules() {
        let s10 = Scenario {
            filter_rules: 10,
            ..Scenario::router()
        };
        let s1000 = Scenario {
            filter_rules: 1000,
            ..Scenario::router()
        };
        let mut small = VppPlatform::new(s10);
        let mut large = VppPlatform::new(s1000);
        let ms = small.dut_mac();
        let ml = large.dut_mac();
        let ts = small.service_time_ns(&mut |i, buf| s10.fill_frame(ms, i, 60, buf));
        let tl = large.service_time_ns(&mut |i, buf| s1000.fill_frame(ml, i, 60, buf));
        assert!((tl - ts).abs() < 5.0, "{ts} vs {tl}");
    }

    #[test]
    fn table_ii_traits() {
        let vpp = VppPlatform::new(Scenario::router());
        let t = vpp.traits();
        assert!(!t.kernel_resident && !t.standard_linux_api);
        assert!(t.dedicated_cores);
        assert_eq!(t.scheduling, Scheduling::BusyPoll);
    }

    #[test]
    fn corner_cases_drop_cleanly() {
        let s = Scenario::router();
        let mut vpp = VppPlatform::new(s);
        assert_eq!(vpp.process(vec![1, 2, 3]).drops().len(), 1);
        // Unrouted destination.
        let frame = linuxfp_packet::builder::udp_packet(
            crate::scenario::SOURCE_MAC,
            vpp.dut_mac(),
            Ipv4Addr::new(10, 0, 1, 100),
            Ipv4Addr::new(172, 16, 0, 1),
            1,
            2,
            b"",
        );
        assert_eq!(vpp.process(frame).drops(), vec!["no route"]);
    }
}
