//! The four packet-processing platforms of the paper's evaluation, under
//! one measurement interface.
//!
//! - [`linux::LinuxPlatform`]: plain Linux — the complete, slow baseline.
//! - [`linuxfp::LinuxFpPlatform`]: the same kernel with the LinuxFP
//!   controller attached — standard configuration, transparent fast
//!   paths (XDP or TC).
//! - [`polycube::PolycubePlatform`]: a kernel-resident eBPF platform with
//!   a custom control plane, map-held state, and tail-call chaining —
//!   the Polycube v0.9.0 stand-in.
//! - [`vpp::VppPlatform`]: a user-space kernel-bypass platform with
//!   vector processing and dedicated busy-poll cores — the VPP 23.10
//!   stand-in.
//!
//! [`scenario::Scenario`] configures all four equivalently (the paper's
//! virtual router and virtual gateway), and [`platform::Platform`] is the
//! surface the workload generators in `linuxfp-traffic` drive.

pub mod linux;
pub mod linuxfp;
pub mod platform;
pub mod polycube;
pub mod scenario;
pub mod vpp;

pub use linux::LinuxPlatform;
pub use linuxfp::LinuxFpPlatform;
pub use platform::{Platform, PlatformTraits, Scheduling};
pub use polycube::PolycubePlatform;
pub use scenario::Scenario;
pub use vpp::VppPlatform;
